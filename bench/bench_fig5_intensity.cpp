// Figure 5: intensity (mean pressure-benchmark slowdown minus one) of the
// six representative games on each shared resource.
//
// Paper shape (Observation 2): intensity is NOT the mirror of
// sensitivity — e.g. Granado Espada is very sensitive to GPU-CE but puts
// little pressure on it.

#include <iostream>

#include "bench/bench_world.h"
#include "common/stats.h"
#include "common/table.h"

using namespace gaugur;
using resources::Resource;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const char* games[] = {"Dota2",
                         "Far Cry 4",
                         "Granado Espada",
                         "Rise of The Tomb Raider",
                         "The Elder Scrolls 5",
                         "World of Warcraft"};

  std::vector<std::string> headers = {"game"};
  for (Resource r : resources::kAllResources) {
    headers.emplace_back(resources::Name(r));
  }
  common::Table table(headers, 3);
  for (const char* name : games) {
    const auto& profile =
        world.features().Profile(world.catalog().ByName(name).id);
    std::vector<common::Cell> row{std::string(name)};
    for (Resource r : resources::kAllResources) {
      row.emplace_back(profile.intensity_ref[r]);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, "Figure 5: intensity of selected games (1080p)");
  bench::WriteResultCsv("fig5_intensity", table);

  // Observation 2: sensitivity and intensity are decoupled. Report the
  // correlation between (1 - sensitivity score) and intensity across all
  // games and resources — weak correlation = decoupled.
  std::vector<double> sens_amount, intensity;
  for (std::size_t id = 0; id < world.features().NumGames(); ++id) {
    const auto& p = world.features().Profile(static_cast<int>(id));
    for (Resource r : resources::kAllResources) {
      sens_amount.push_back(1.0 - p.Sensitivity(r).Score());
      intensity.push_back(p.intensity_ref[r]);
    }
  }
  std::printf(
      "\nObs2: correlation(sensitivity amount, intensity) across all games "
      "and resources = %.3f\n(low correlation confirms the two must be "
      "profiled separately).\n",
      common::PearsonCorrelation(sens_amount, intensity));

  const auto& ge =
      world.features().Profile(world.catalog().ByName("Granado Espada").id);
  std::printf(
      "Obs2 showcase: Granado Espada GPU-CE sensitivity score %.2f "
      "(very sensitive) yet GPU-CE intensity only %.2f.\n",
      ge.Sensitivity(Resource::kGpuCore).Score(),
      ge.intensity_ref[Resource::kGpuCore]);
  return 0;
}
