// Shared evaluation helpers for the §4 accuracy benches: test sets
// annotated with colocation size, and per-size error/accuracy breakdowns.
#pragma once

#include <span>
#include <vector>

#include "bench/bench_world.h"
#include "gaugur/training.h"

namespace gaugur::bench {

/// One test sample: the victim, its co-runners, the measured outcome.
struct TestSample {
  core::SessionRequest victim;
  std::vector<core::SessionRequest> corunners;
  double measured_fps = 0.0;
  double actual_degradation = 0.0;
  std::size_t colocation_size = 0;
};

inline std::vector<TestSample> BuildTestSamples(const BenchWorld& world) {
  std::vector<TestSample> samples;
  for (const auto& m : world.test_colocations()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      TestSample s;
      s.victim = m.sessions[v];
      for (std::size_t j = 0; j < m.sessions.size(); ++j) {
        if (j != v) s.corunners.push_back(m.sessions[j]);
      }
      s.measured_fps = m.fps[v];
      s.actual_degradation = core::DegradationTarget(
          world.features(), m.sessions[v], m.fps[v]);
      s.colocation_size = m.sessions.size();
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

/// Mean of |pred - actual| / actual restricted to samples of one
/// colocation size (0 = all sizes).
inline double SizeError(std::span<const TestSample> samples,
                        std::span<const double> predicted,
                        std::size_t size) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (size != 0 && samples[i].colocation_size != size) continue;
    sum += std::abs(predicted[i] - samples[i].actual_degradation) /
           samples[i].actual_degradation;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

/// Classification accuracy restricted to one colocation size (0 = all).
inline double SizeAccuracy(std::span<const TestSample> samples,
                           std::span<const int> predicted, double qos_fps,
                           std::size_t size) {
  std::size_t correct = 0, n = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (size != 0 && samples[i].colocation_size != size) continue;
    const int truth = samples[i].measured_fps >= qos_fps ? 1 : 0;
    correct += predicted[i] == truth ? 1 : 0;
    ++n;
  }
  return n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace gaugur::bench
