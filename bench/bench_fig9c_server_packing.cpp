// Figure 9c: number of servers Algorithm 1 needs to pack 5000 gaming
// requests (uniform over a 10-game study pool) so every game meets QoS.
//
// Two protocols are reported, mean over five independent study draws:
//
//  * paper protocol — each methodology packs using only the *actually
//    feasible* colocations it identified (its true positives; the paper
//    argues packing on false positives "is not meaningful" since they
//    violate QoS). This measures recall: a model that cries "feasible"
//    at everything matches the oracle here, because its false positives
//    are filtered away for free.
//
//  * deployed protocol — the methodology packs on its own judgements
//    (false positives included, since a real scheduler has no ground
//    truth to filter with), and we report both the servers used and the
//    fraction of the 5000 sessions whose realized FPS actually violates
//    QoS. This is the precision side of the trade-off the paper
//    emphasizes in §5.1.
//
// Paper shape: GAugur(CM) fewest servers — 20-40% fewer than baselines,
// up to 60% fewer than no colocation — with almost no violations.

#include <iostream>
#include <memory>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "common/table.h"
#include "sched/enumeration.h"
#include "sched/methodology.h"
#include "sched/packing.h"
#include "sched/study.h"

using namespace gaugur;

namespace {

struct Tally {
  double tp_servers_q60 = 0.0;
  double tp_servers_q50 = 0.0;
  double deployed_servers_q60 = 0.0;
  double deployed_violations_q60 = 0.0;  // sessions below QoS
};

}  // namespace

int main() {
  const int total_requests = 5000;
  constexpr double kQos = 60.0;
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();

  std::vector<std::unique_ptr<sched::Methodology>> methods;
  methods.push_back(sched::MakeGAugurCmMethod(stack.gaugur));
  methods.push_back(sched::MakeGAugurRmMethod(stack.gaugur));
  methods.push_back(sched::MakeSigmoidMethod(world.features(), stack.sigmoid));
  methods.push_back(sched::MakeSmiteMethod(world.features(), stack.smite));
  methods.push_back(sched::MakeVbpMethod(world.features(), stack.vbp));

  const std::vector<std::uint64_t> pool_seeds = {5, 6, 7, 8, 9};
  std::vector<Tally> tally(methods.size() + 1);  // +1 = oracle

  for (std::uint64_t seed : pool_seeds) {
    const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, seed);
    const auto colocations = sched::EnumerateColocations(setup.pool, 4);
    const auto requests = sched::GenerateRequestCounts(
        world.catalog().size(), setup.game_ids, total_requests, 17 + seed);

    for (double qos : {60.0, 50.0}) {
      std::vector<char> truly(colocations.size());
      for (std::size_t i = 0; i < colocations.size(); ++i) {
        truly[i] = world.lab().TrulyFeasible(colocations[i], qos) ? 1 : 0;
      }

      for (std::size_t mi = 0; mi <= methods.size(); ++mi) {
        const bool oracle = mi == methods.size();
        // One batched judgement of every enumerated colocation per
        // (draw, QoS, methodology); both protocols read from it.
        std::vector<char> verdicts;
        if (!oracle) verdicts = methods[mi]->FeasibleBatch(qos, colocations);
        // Paper protocol: true positives (singletons always known).
        std::vector<core::Colocation> tp_set;
        for (std::size_t i = 0; i < colocations.size(); ++i) {
          if (!truly[i]) continue;
          if (oracle || colocations[i].size() == 1 || verdicts[i] != 0) {
            tp_set.push_back(colocations[i]);
          }
        }
        const double tp_servers = static_cast<double>(
            sched::PackRequests(tp_set, requests).servers_used);
        if (qos == 60.0) {
          tally[mi].tp_servers_q60 += tp_servers;
        } else {
          tally[mi].tp_servers_q50 += tp_servers;
        }

        // Deployed protocol (QoS 60 only): the method's own judgements.
        if (qos != 60.0) continue;
        std::vector<core::Colocation> own_set;
        for (std::size_t i = 0; i < colocations.size(); ++i) {
          const bool believed =
              oracle ? truly[i] != 0
                     : (colocations[i].size() == 1
                            ? world.features()
                                      .Profile(colocations[i][0].game_id)
                                      .SoloFps(
                                          colocations[i][0].resolution) >=
                                  qos
                            : verdicts[i] != 0);
          if (believed) own_set.push_back(colocations[i]);
        }
        const auto packed = sched::PackRequests(own_set, requests);
        tally[mi].deployed_servers_q60 +=
            static_cast<double>(packed.servers_used);
        double violations = 0.0;
        for (const auto& server : packed.assignments) {
          for (double fps : world.lab().TrueFps(server)) {
            if (fps < qos) violations += 1.0;
          }
        }
        tally[mi].deployed_violations_q60 += violations;
      }
    }
  }

  const double draws = static_cast<double>(pool_seeds.size());
  common::Table table({"methodology", "servers QoS=60 (TP)",
                       "servers QoS=50 (TP)", "servers QoS=60 (deployed)",
                       "violations % (deployed)"},
                      1);
  auto add_row = [&](const std::string& name, const Tally& t) {
    table.AddRow({name,
                  static_cast<long long>(t.tp_servers_q60 / draws + 0.5),
                  static_cast<long long>(t.tp_servers_q50 / draws + 0.5),
                  static_cast<long long>(
                      t.deployed_servers_q60 / draws + 0.5),
                  100.0 * t.deployed_violations_q60 /
                      (draws * total_requests)});
  };
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    add_row(methods[mi]->Name(), tally[mi]);
  }
  add_row("Oracle (all feasible)", tally.back());
  table.AddRow({std::string("No colocation"),
                static_cast<long long>(total_requests),
                static_cast<long long>(total_requests),
                static_cast<long long>(total_requests), 0.0});
  table.Print(std::cout,
              "Figure 9c: servers used to pack 5000 requests "
              "(Algorithm 1; mean over 5 study draws)");
  bench::WriteResultCsv("fig9c_server_packing", table);

  std::printf(
      "\nPaper: GAugur(CM) uses the fewest servers (20-40%% fewer than "
      "baselines, up to 60%% fewer than no colocation).\nThe deployed "
      "columns expose the precision side: a sloppy high-recall model "
      "matches the oracle under the TP protocol\nbut violates QoS for "
      "many sessions once its false positives are actually scheduled.\n");
  return 0;
}
