// Collaborative-filtering profiling reduction (paper §6): onboard new
// games with a 45-measurement probe instead of the full 234-measurement
// profile, imputing the missing sensitivity-curve interior from similar
// reference games.
//
// Leave-one-out over the catalog: each game is removed from the reference
// fleet, probed cheaply, imputed, and compared against its full profile.
// Downstream effect: RM prediction error when every TEST victim uses an
// imputed profile instead of a full one.

#include <cmath>
#include <iostream>

#include "bench/bench_world.h"
#include "common/stats.h"
#include "common/table.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "ml/metrics.h"
#include "profiling/collaborative.h"

using namespace gaugur;
using resources::Resource;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto& features = world.features();

  const profiling::PartialProfiler prober(world.server());
  const profiling::Profiler full_profiler(world.server());
  std::printf("probe cost: %zu measurements/game vs %zu for the full "
              "profile (%.1fx cheaper)\n",
              prober.MeasurementsPerGame(),
              full_profiler.MeasurementsPerGame(),
              static_cast<double>(full_profiler.MeasurementsPerGame()) /
                  static_cast<double>(prober.MeasurementsPerGame()));

  // Leave-one-out curve reconstruction error.
  std::vector<double> curve_errors;
  std::vector<profiling::GameProfile> imputed_all;
  imputed_all.reserve(world.catalog().size());
  for (std::size_t id = 0; id < world.catalog().size(); ++id) {
    std::vector<profiling::GameProfile> reference;
    reference.reserve(world.catalog().size() - 1);
    for (std::size_t j = 0; j < world.catalog().size(); ++j) {
      if (j != id) reference.push_back(features.Profile(static_cast<int>(j)));
    }
    const profiling::CurveImputer imputer(std::move(reference));
    const auto probe = prober.ProbeGame(world.catalog()[id]);
    auto imputed = imputer.Impute(probe);

    const auto& truth = features.Profile(static_cast<int>(id));
    for (Resource r : resources::kAllResources) {
      for (std::size_t i = 0; i < 11; ++i) {
        curve_errors.push_back(
            std::abs(imputed.Sensitivity(r).degradation[i] -
                     truth.Sensitivity(r).degradation[i]));
      }
    }
    imputed_all.push_back(std::move(imputed));
  }

  common::Table table({"metric", "value"}, 4);
  table.AddRow({std::string("mean |curve gap| (imputed vs full)"),
                common::Mean(curve_errors)});
  table.AddRow({std::string("p95 |curve gap|"),
                common::Percentile(curve_errors, 0.95)});

  // Downstream: RM trained on full profiles, evaluated with imputed
  // victim profiles (the realistic onboarding scenario).
  {
    const auto rm_full =
        core::BuildRmDataset(features, world.train_colocations());
    const auto train = bench::BenchWorld::ShuffledSubset(rm_full, 1000, 7);
    auto model = ml::MakeRegressor("GBRT");
    model->Fit(train);

    const core::FeatureBuilder imputed_features(imputed_all);
    auto eval = [&](const core::FeatureBuilder& fb) {
      std::vector<double> predicted, actual;
      for (const auto& m : world.test_colocations()) {
        std::vector<core::SessionRequest> corunners;
        for (std::size_t v = 0; v < m.sessions.size(); ++v) {
          corunners.clear();
          for (std::size_t j = 0; j < m.sessions.size(); ++j) {
            if (j != v) corunners.push_back(m.sessions[j]);
          }
          const auto x = fb.RmFeatures(m.sessions[v], corunners);
          predicted.push_back(std::clamp(model->Predict(x), 0.01, 1.0));
          actual.push_back(core::DegradationTarget(features, m.sessions[v],
                                                   m.fps[v]));
        }
      }
      return ml::MeanRelativeError(predicted, actual);
    };
    table.AddRow({std::string("RM error with full profiles"),
                  eval(features)});
    table.AddRow({std::string("RM error with imputed profiles"),
                  eval(imputed_features)});
  }
  table.Print(std::cout,
              "Collaborative profiling: 5x cheaper onboarding probes");
  bench::WriteResultCsv("collaborative_profiling", table);
  return 0;
}
