// Figure 4: sensitivity curves of six representative games, one curve per
// shared resource, at pressure grid k = 10.
//
// Paper shape (Observations 1-4): games are sensitive to many resources
// at different magnitudes; curves are frequently nonlinear (cliffs,
// knees, plateaus); The Elder Scrolls 5 loses ~70% at max CPU-CE pressure
// while Far Cry 4 loses ~30%; Granado Espada is highly GPU-CE sensitive.

#include <cmath>
#include <iostream>

#include "bench/bench_world.h"
#include "common/table.h"

using namespace gaugur;
using resources::Resource;

namespace {

const char* kGames[] = {"Dota2",
                        "Far Cry 4",
                        "Granado Espada",
                        "Rise of The Tomb Raider",
                        "The Elder Scrolls 5",
                        "World of Warcraft"};

/// Max deviation of a curve from the straight line between its endpoints
/// — a scalar nonlinearity measure for Observation 4.
double Nonlinearity(const profiling::SensitivityCurve& curve) {
  const auto& d = curve.degradation;
  const std::size_t n = d.size();
  double max_dev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    const double line = d.front() + (d.back() - d.front()) * t;
    max_dev = std::max(max_dev, std::abs(d[i] - line));
  }
  return max_dev;
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();

  std::vector<std::string> headers = {"game", "resource"};
  for (int i = 0; i <= 10; ++i) {
    headers.push_back("p=" + std::to_string(i) + "/10");
  }
  common::Table table(headers, 3);
  for (const char* name : kGames) {
    const auto& profile =
        world.features().Profile(world.catalog().ByName(name).id);
    for (Resource r : resources::kAllResources) {
      std::vector<common::Cell> row{std::string(name),
                                    std::string(resources::Name(r))};
      for (double v : profile.Sensitivity(r).degradation) {
        row.emplace_back(v);
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout,
              "Figure 4: sensitivity curves (degradation = retained-FPS "
              "ratio; 1.0 = unharmed)");
  bench::WriteResultCsv("fig4_sensitivity_curves", table);

  // Observation summaries.
  common::Table obs({"observation", "measurement"}, 3);
  {
    const auto& tes = world.features().Profile(
        world.catalog().ByName("The Elder Scrolls 5").id);
    const auto& fc =
        world.features().Profile(world.catalog().ByName("Far Cry 4").id);
    obs.AddRow({std::string("Obs3: TES5 CPU-CE degradation at max pressure "
                            "(paper ~70% lost)"),
                1.0 - tes.Sensitivity(Resource::kCpuCore).Score()});
    obs.AddRow({std::string("Obs3: FarCry4 CPU-CE degradation at max "
                            "pressure (paper ~30% lost)"),
                1.0 - fc.Sensitivity(Resource::kCpuCore).Score()});
  }
  {
    // Observation 4: count clearly nonlinear curves among the showcased
    // games (deviation > 0.1 from the endpoint line).
    int nonlinear = 0, total = 0;
    for (const char* name : kGames) {
      const auto& profile =
          world.features().Profile(world.catalog().ByName(name).id);
      for (Resource r : resources::kAllResources) {
        ++total;
        if (Nonlinearity(profile.Sensitivity(r)) > 0.1) ++nonlinear;
      }
    }
    obs.AddRow({std::string("Obs4: fraction of showcased curves clearly "
                            "nonlinear"),
                static_cast<double>(nonlinear) / total});
  }
  obs.Print(std::cout, "Observations 3-4 checks");
  return 0;
}
