// Figures 8a/8b: CM prediction accuracy vs number of training samples for
// DTC, GBDT, RF and SVC, at QoS requirements of 60 FPS (8a) and 50 FPS
// (8b).
//
// Paper shape: accuracy rises with training data; GBDT reaches ~95% at
// 1000 samples and leads the other algorithms at both QoS levels.

#include <iostream>

#include "bench/bench_world.h"
#include "common/table.h"
#include "gaugur/predictor.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "ml/metrics.h"

using namespace gaugur;

namespace {

void RunAtQos(const bench::BenchWorld& world, double qos,
              const char* figure, const char* csv) {
  const auto cm_full = core::BuildCmDataset(
      world.features(), world.train_colocations(), qos);
  const auto cm_test = core::BuildCmDataset(
      world.features(), world.test_colocations(), qos);
  std::vector<int> actual;
  for (double y : cm_test.Targets()) actual.push_back(y > 0.5 ? 1 : 0);

  std::vector<std::size_t> sample_counts = {400, 600, 800, 1000};
  if (world.fast_mode()) sample_counts = {200, 400};

  // Each cell averages three training draws/seeds (see fig7a).
  const std::vector<std::uint64_t> seeds = {13, 14, 15};
  common::Table table({"samples", "DTC", "GBDT", "RF", "SVC"}, 4);
  double gbdt_at_max = 0.0;
  for (std::size_t n : sample_counts) {
    std::vector<common::Cell> row;
    long long rows_used = 0;
    for (const auto& name : ml::ClassifierNames()) {
      double acc_sum = 0.0;
      for (std::uint64_t seed : seeds) {
        const auto train = bench::BenchWorld::ShuffledSubset(cm_full, n, seed);
        rows_used = static_cast<long long>(train.NumRows());
        auto model = ml::MakeClassifier(name, 23 + seed);
        model->Fit(train);
        // Threshold decisions the same way the online predictor does, so
        // this figure reflects deployed accuracy rather than a hardcoded
        // 0.5 cut.
        acc_sum += ml::Accuracy(
            model->PredictBatch(cm_test,
                                core::PredictorConfig{}.cm_decision_threshold),
            actual);
      }
      const double acc = acc_sum / static_cast<double>(seeds.size());
      row.emplace_back(acc);
      if (name == "GBDT" && n == sample_counts.back()) gbdt_at_max = acc;
    }
    row.insert(row.begin(), common::Cell{rows_used});
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, figure);
  bench::WriteResultCsv(csv, table);
  std::printf("GBDT at max samples, QoS %.0f: %.1f%% (paper: ~95%%)\n", qos,
              100.0 * gbdt_at_max);
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();
  RunAtQos(world, 60.0,
           "Figure 8a: CM accuracy vs training samples (QoS = 60 FPS)",
           "fig8a_cm_algorithms_qos60");
  RunAtQos(world, 50.0,
           "Figure 8b: CM accuracy vs training samples (QoS = 50 FPS)",
           "fig8b_cm_algorithms_qos50");
  return 0;
}
