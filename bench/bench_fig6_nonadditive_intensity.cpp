// Figure 6: aggregate intensity of two colocated games vs the sum of their
// individual intensities, per shared resource (Observation 5).
//
// Paper shape: the two differ substantially on several resources, which
// breaks the additive-intensity assumption SMiTe/Paragon rely on. In our
// substrate the direction is physical: bandwidth-like resources saturate
// (aggregate < sum) while caches thrash (aggregate > sum).

#include <iostream>

#include "bench/bench_world.h"
#include "common/stats.h"
#include "common/table.h"
#include "microbench/pressure_bench.h"

using namespace gaugur;
using resources::Resource;

namespace {

/// Intensity observable, same protocol as the profiler: mean benchmark
/// slowdown over the pressure grid, minus one.
double MeasureIntensity(const gamesim::ServerSim& server,
                        std::vector<gamesim::WorkloadProfile> games,
                        Resource r) {
  std::vector<double> slowdowns;
  for (double x : microbench::PressureGrid(10)) {
    const auto bench = microbench::MakePressureBench(r, x);
    const std::vector<gamesim::WorkloadProfile> solo{bench};
    const double solo_rate = server.RunAnalytic(solo)[0].rate;
    auto group = games;
    group.push_back(bench);
    const auto res = server.RunAnalytic(group);
    slowdowns.push_back(
        microbench::BenchSlowdown(solo_rate, res.back().rate));
  }
  return std::max(0.0, common::Mean(slowdowns) - 1.0);
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto w1 = world.catalog()
                      .ByName("AirMech Strike")
                      .AtResolution(resources::k1080p);
  const auto w2 = world.catalog()
                      .ByName("Hobo: Tough Life")
                      .AtResolution(resources::k1080p);

  common::Table table({"resource", "AirMech", "Hobo", "sum", "holistic",
                       "holistic/sum"},
                      3);
  for (Resource r : resources::kAllResources) {
    const double i1 = MeasureIntensity(world.server(), {w1}, r);
    const double i2 = MeasureIntensity(world.server(), {w2}, r);
    const double holistic = MeasureIntensity(world.server(), {w1, w2}, r);
    const double sum = i1 + i2;
    table.AddRow({std::string(resources::Name(r)), i1, i2, sum, holistic,
                  sum > 1e-9 ? holistic / sum : 1.0});
  }
  table.Print(std::cout,
              "Figure 6: aggregate intensity vs sum of intensities "
              "(AirMech Strike + Hobo: Tough Life)");
  bench::WriteResultCsv("fig6_nonadditive_intensity", table);

  std::printf(
      "\nObservation 5: holistic/sum far from 1.0 on several resources — "
      "game intensity is not additive.\nExpect < 1 on bandwidth/compute "
      "(saturation) and > 1 on LLC/GPU-L2 (thrashing).\n");
  return 0;
}
