// Figure 7b: RM prediction error of GAugur(RM) vs Sigmoid vs SMiTe,
// overall and broken down by colocation size.
// Figure 7c: CDF of the per-sample prediction errors.
//
// Paper shape: GAugur ~7.9% overall and <10% even at size 4; Sigmoid
// ~22.5% and SMiTe ~23.6% overall, with SMiTe exploding at size 4
// (additivity assumption); GAugur dominates at every CDF percentile.

#include <iostream>

#include "bench/bench_world.h"
#include "bench/eval_util.h"
#include "bench/trained_stack.h"
#include "common/stats.h"
#include "common/table.h"
#include "ml/metrics.h"

using namespace gaugur;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();
  const auto samples = bench::BuildTestSamples(world);

  std::vector<double> gaugur_pred, sigmoid_pred, smite_pred;
  for (const auto& s : samples) {
    gaugur_pred.push_back(
        stack.gaugur.PredictDegradation(s.victim, s.corunners));
    sigmoid_pred.push_back(
        stack.sigmoid.PredictDegradation(s.victim, s.corunners.size()));
    smite_pred.push_back(
        stack.smite.PredictDegradation(s.victim, s.corunners));
  }

  common::Table table(
      {"colocation size", "GAugur(RM)", "Sigmoid", "SMiTe"}, 4);
  for (std::size_t size : {0u, 2u, 3u, 4u}) {
    table.AddRow({size == 0 ? std::string("overall")
                            : std::to_string(size) + "-games",
                  bench::SizeError(samples, gaugur_pred, size),
                  bench::SizeError(samples, sigmoid_pred, size),
                  bench::SizeError(samples, smite_pred, size)});
  }
  table.Print(std::cout,
              "Figure 7b: RM prediction error by methodology and "
              "colocation size");
  bench::WriteResultCsv("fig7b_rm_vs_baselines", table);

  // Figure 7c: error CDFs.
  auto errors = [&](std::span<const double> pred) {
    std::vector<double> e;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      e.push_back(std::abs(pred[i] - samples[i].actual_degradation) /
                  samples[i].actual_degradation);
    }
    return e;
  };
  const auto ga_err = errors(gaugur_pred);
  const auto si_err = errors(sigmoid_pred);
  const auto sm_err = errors(smite_pred);

  common::Table cdf({"CDF", "GAugur(RM)", "Sigmoid", "SMiTe"}, 4);
  for (int i = 1; i <= 10; ++i) {
    const double q = i / 10.0;
    cdf.AddRow({q, common::Percentile(ga_err, q),
                common::Percentile(si_err, q),
                common::Percentile(sm_err, q)});
  }
  cdf.Print(std::cout,
            "Figure 7c: prediction-error value at each CDF percentile");
  bench::WriteResultCsv("fig7c_rm_error_cdf", cdf);

  std::printf(
      "\nPaper: GAugur 7.9%% overall vs Sigmoid 22.5%% / SMiTe 23.6%%; "
      "SMiTe worst at 4-game colocations.\n");
  return 0;
}
