// Quantifies the §7/§8 extensions, which the paper discusses but does not
// evaluate:
//  * hardware video encoding overhead (§7: claimed insignificant);
//  * interaction-delay (p95 processing delay) prediction accuracy (§7);
//  * prediction transfer across heterogeneous server types (§8 future
//    work: models are trained per server type — how wrong do they get on
//    a different box?).

#include <cmath>
#include <iostream>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "gaugur/delay.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "ml/metrics.h"

using namespace gaugur;
using resources::Resource;

int main() {
  const auto& world = bench::BenchWorld::Get();

  // --- Encoder overhead across colocation sizes.
  {
    core::LabOptions with_encoders;
    with_encoders.include_encoders = true;
    const core::ColocationLab encoding_lab(world.catalog(), world.server(),
                                           with_encoders);
    common::Rng rng(5);
    common::Table table({"colocation size", "mean FPS loss %",
                         "max FPS loss %"},
                        2);
    for (std::size_t size : {1u, 2u, 4u}) {
      std::vector<double> losses;
      for (int rep = 0; rep < 40; ++rep) {
        core::Colocation colocation;
        const auto ids =
            rng.SampleWithoutReplacement(world.catalog().size(), size);
        for (std::size_t id : ids) {
          colocation.push_back(
              {static_cast<int>(id), resources::k1080p});
        }
        if (!world.lab().FitsMemory(colocation)) continue;
        const auto plain = world.lab().TrueFps(colocation);
        const auto encoded = encoding_lab.TrueFps(colocation);
        for (std::size_t i = 0; i < plain.size(); ++i) {
          losses.push_back(100.0 * (plain[i] - encoded[i]) / plain[i]);
        }
      }
      table.AddRow({static_cast<long long>(size), common::Mean(losses),
                    common::Max(losses)});
    }
    table.Print(std::cout,
                "Extension: hardware-encoder FPS overhead (paper §7 claims "
                "insignificant)");
    bench::WriteResultCsv("ext_encoder_overhead", table);
  }

  // --- Interaction-delay prediction accuracy.
  {
    core::DelayPredictor delay(world.features());
    const std::vector<core::MeasuredColocation> slice(
        world.train_colocations().begin(),
        world.train_colocations().begin() +
            std::min<std::size_t>(300, world.train_colocations().size()));
    delay.Train(world.lab(), slice);

    common::Rng rng(7);
    std::vector<double> errors;
    std::vector<double> errors_by_size[5];
    const std::size_t eval_count =
        std::min<std::size_t>(100, world.test_colocations().size());
    for (std::size_t c = 0; c < eval_count; ++c) {
      const auto& m = world.test_colocations()[c];
      const auto actual = world.lab().MeasureFrameTimes(m.sessions, rng.Next());
      for (std::size_t v = 0; v < m.sessions.size(); ++v) {
        std::vector<core::SessionRequest> corunners;
        for (std::size_t j = 0; j < m.sessions.size(); ++j) {
          if (j != v) corunners.push_back(m.sessions[j]);
        }
        const double predicted =
            delay.PredictP95DelayMs(m.sessions[v], corunners);
        const double err =
            std::abs(predicted - actual[v].p95_ms) / actual[v].p95_ms;
        errors.push_back(err);
        errors_by_size[m.sessions.size()].push_back(err);
      }
    }
    common::Table table({"colocation size", "p95-delay rel. error"}, 4);
    table.AddRow({std::string("overall"), common::Mean(errors)});
    for (std::size_t size : {2u, 3u, 4u}) {
      if (errors_by_size[size].empty()) continue;
      table.AddRow({std::to_string(size) + "-games",
                    common::Mean(errors_by_size[size])});
    }
    table.Print(std::cout,
                "Extension: p95 processing-delay prediction (paper §7: "
                "'can be predicted in a similar way')");
    bench::WriteResultCsv("ext_delay_prediction", table);
  }

  // --- Transfer across server types.
  {
    // The RM was trained on the default server. Evaluate it on servers
    // with scaled GPU capacity — the per-server-type retraining the paper
    // lists as future work is motivated by how fast accuracy decays.
    const auto& stack = bench::TrainedStack::Get();
    common::Table table({"GPU capacity", "RM rel. error"}, 4);
    for (double scale : {1.0, 1.25, 1.5, 2.0}) {
      resources::ServerSpec spec = resources::ServerSpec::Default();
      spec.capacity[Resource::kGpuCore] = scale;
      spec.capacity[Resource::kGpuBw] = scale;
      spec.capacity[Resource::kGpuL2] = scale;
      const gamesim::ServerSim other_server(spec);
      const core::ColocationLab other_lab(world.catalog(), other_server);

      std::vector<double> predicted, actual;
      common::Rng rng(11);
      const std::size_t eval_count =
          std::min<std::size_t>(120, world.test_colocations().size());
      for (std::size_t c = 0; c < eval_count; ++c) {
        const auto& sessions = world.test_colocations()[c].sessions;
        const auto measured = other_lab.Measure(sessions, rng.Next());
        for (std::size_t v = 0; v < sessions.size(); ++v) {
          std::vector<core::SessionRequest> corunners;
          for (std::size_t j = 0; j < sessions.size(); ++j) {
            if (j != v) corunners.push_back(sessions[j]);
          }
          predicted.push_back(
              stack.gaugur.PredictDegradation(sessions[v], corunners));
          actual.push_back(core::DegradationTarget(
              world.features(), sessions[v], measured.fps[v]));
        }
      }
      table.AddRow({scale, ml::MeanRelativeError(predicted, actual)});
    }
    table.Print(std::cout,
                "Extension: RM accuracy on unseen server types (trained at "
                "capacity 1.0)");
    bench::WriteResultCsv("ext_server_transfer", table);
    std::printf(
        "\nAccuracy decays on stronger GPUs — per-server-type profiling "
        "and training (the paper's future work) is warranted.\n");
  }
  return 0;
}
