// Figure 8c: classification accuracy of GAugur(CM) vs GAugur(RM)
// thresholded, vs Sigmoid and SMiTe (both thresholded), overall and by
// colocation size, at QoS 60 FPS.
//
// Paper shape: CM best (~95%); RM-as-classifier slightly worse;
// Sigmoid/SMiTe around 80%.

#include <iostream>

#include "bench/bench_world.h"
#include "bench/eval_util.h"
#include "bench/trained_stack.h"
#include "common/table.h"

using namespace gaugur;

int main() {
  constexpr double kQos = 60.0;
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();
  const auto samples = bench::BuildTestSamples(world);

  std::vector<int> cm_pred, rm_pred, sigmoid_pred, smite_pred;
  for (const auto& s : samples) {
    cm_pred.push_back(
        stack.gaugur.PredictQosOk(kQos, s.victim, s.corunners) ? 1 : 0);
    rm_pred.push_back(
        stack.gaugur.PredictFps(s.victim, s.corunners) >= kQos ? 1 : 0);
    sigmoid_pred.push_back(
        stack.sigmoid.PredictFps(s.victim, s.corunners.size()) >= kQos ? 1
                                                                       : 0);
    smite_pred.push_back(
        stack.smite.PredictFps(s.victim, s.corunners) >= kQos ? 1 : 0);
  }

  common::Table table({"colocation size", "GAugur(CM)", "GAugur(RM)",
                       "Sigmoid", "SMiTe"},
                      4);
  for (std::size_t size : {0u, 2u, 3u, 4u}) {
    table.AddRow({size == 0 ? std::string("overall")
                            : std::to_string(size) + "-games",
                  bench::SizeAccuracy(samples, cm_pred, kQos, size),
                  bench::SizeAccuracy(samples, rm_pred, kQos, size),
                  bench::SizeAccuracy(samples, sigmoid_pred, kQos, size),
                  bench::SizeAccuracy(samples, smite_pred, kQos, size)});
  }
  table.Print(std::cout,
              "Figure 8c: QoS-classification accuracy by methodology "
              "(QoS = 60 FPS)");
  bench::WriteResultCsv("fig8c_cm_vs_baselines", table);

  std::printf(
      "\nPaper: CM highest (~95%%), RM-thresholded a bit lower, Sigmoid "
      "and SMiTe around 80%%.\n");
  return 0;
}
