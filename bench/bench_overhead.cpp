// §3.6 overhead analysis: offline profiling and training cost the scale of
// the game count; online prediction is negligible (the property that lets
// GAugur serve request-arrival-time decisions).
//
// Micro-timings via google-benchmark:
//  * online RM / CM prediction and feature construction (target: µs);
//  * one full game profiling pass (offline, per game — O(N) total);
//  * one colocation measurement on the simulated server;
//  * RM training at the paper's 1000 samples (offline, once).

//  * telemetry-layer overhead: one colocation measurement with obs
//    enabled vs disabled (the disabled path must be < 2%), plus the raw
//    cost of the metric primitives themselves;
//  * health-engine overhead: the provenance fleet run with the default
//    alert rule pack armed vs disarmed (target < 2%);
//  * latency-profiler overhead: the same fleet run with the decision
//    flight recorder armed vs disarmed (target < 2% — the armed path
//    adds a handful of steady_clock reads and relaxed atomic adds per
//    decision).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/switch.h"
#include "obs/timeseries.h"
#include "profiling/profiler.h"
#include "sched/dynamic.h"

using namespace gaugur;

namespace {

constexpr int kWarmup = 200;
constexpr int kIters = 2000;

const core::Colocation& SampleColocation() {
  static const core::Colocation colocation = {
      {0, resources::k1080p}, {17, resources::k720p}, {42, resources::k1440p}};
  return colocation;
}

void BM_OnlineRmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFps(colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineRmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineCmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictQosOk(60.0, colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineCmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineFeasibilityCheck(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFeasible(60.0, SampleColocation()));
  }
}
BENCHMARK(BM_OnlineFeasibilityCheck)->Unit(benchmark::kMicrosecond);

void BM_FeatureConstruction(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.features().RmFeatures(colocation[0], corunners));
  }
}
BENCHMARK(BM_FeatureConstruction)->Unit(benchmark::kMicrosecond);

void BM_MeasureColocation(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.lab().Measure(SampleColocation(), seed++));
  }
}
BENCHMARK(BM_MeasureColocation)->Unit(benchmark::kMicrosecond);

void BM_MeasureColocationObsDisabled(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  obs::EnabledScope off(false);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.lab().Measure(SampleColocation(), seed++));
  }
}
BENCHMARK(BM_MeasureColocationObsDisabled)->Unit(benchmark::kMicrosecond);

void BM_ObsCounterAddEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("bench.counter_probe");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_ObsCounterAddEnabled);

void BM_ObsCounterAddDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("bench.counter_probe");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_ObsCounterAddDisabled);

void BM_EventLogAppendEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::EventLog& log = obs::EventLog::Global();
  double tick = 0.0;
  for (auto _ : state) {
    log.Append(obs::EventKind::kArrival, tick, 0,
               {{"game_id", obs::JsonValue(7)}});
    tick += 1.0;
  }
  log.Clear();
}
BENCHMARK(BM_EventLogAppendEnabled);

void BM_EventLogAppendDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  obs::EventLog& log = obs::EventLog::Global();
  double tick = 0.0;
  for (auto _ : state) {
    log.Append(obs::EventKind::kArrival, tick, 0,
               {{"game_id", obs::JsonValue(7)}});
    tick += 1.0;
  }
}
BENCHMARK(BM_EventLogAppendDisabled);

void BM_ObsHistogramRecordEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("bench.hist_probe");
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
}
BENCHMARK(BM_ObsHistogramRecordEnabled);

struct OverheadNumbers {
  double enabled_us = 0.0;
  double disabled_us = 0.0;
  double delta_pct = 0.0;
};

/// The §tentpole acceptance number: mean Measure() latency with the obs
/// switch on vs off. The disabled path leaves only relaxed-load branches
/// in the hot code; its overhead must stay under 2%.
OverheadNumbers ReportInstrumentationOverhead() {
  const auto& world = bench::BenchWorld::Get();
  const auto time_measure_loop = [&](int iters) {
    std::uint64_t seed = 1;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          world.lab().Measure(SampleColocation(), seed++));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::micro>(elapsed).count() /
           iters;
  };

  double enabled_us = 0.0, disabled_us = 0.0;
  {
    obs::EnabledScope on(true);
    time_measure_loop(kWarmup);
    enabled_us = time_measure_loop(kIters);
  }
  {
    obs::EnabledScope off(false);
    time_measure_loop(kWarmup);
    disabled_us = time_measure_loop(kIters);
  }
  const double delta_pct =
      100.0 * (enabled_us - disabled_us) / disabled_us;
  std::printf(
      "\nInstrumentation overhead on ColocationLab::Measure: "
      "obs on %.2f µs, obs off %.2f µs, enabled-path delta %+.2f%% "
      "(disabled path is a relaxed-load branch; target < 2%%).\n",
      enabled_us, disabled_us, delta_pct);
  return {enabled_us, disabled_us, delta_pct};
}

struct FleetOverheadNumbers {
  double enabled_ms = 0.0;
  double disabled_ms = 0.0;
  double delta_pct = 0.0;
};

/// Fleet-level counterpart of ReportInstrumentationOverhead: one
/// provenance-policy SimulateDynamicFleet run (arrivals, decision events
/// with candidate judgements, violation attribution, time-series
/// sampling) with the obs switch on vs off. Disabled, the whole event /
/// time-series layer must collapse to relaxed-load branches.
FleetOverheadNumbers ReportFleetOverhead() {
  const auto& stack = bench::TrainedStack::Get();
  const auto& world = bench::BenchWorld::Get();
  std::vector<int> games;
  for (int g = 0; g < 12; ++g) games.push_back(g);
  const auto trace = sched::GenerateDynamicTrace(
      games, /*horizon_min=*/120.0, /*arrivals_per_min=*/0.5,
      /*mean_duration_min=*/30.0, /*seed=*/11);
  const auto policy = sched::MakeProvenancePolicy(stack.gaugur, 60.0);
  sched::DynamicOptions options;
  options.qos_fps = 60.0;

  const auto time_fleet = [&](bool enabled, int iters) {
    obs::EnabledScope scope(enabled);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          sched::SimulateDynamicFleet(world.lab(), trace, policy, options));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    obs::EventLog::Global().Clear();
    obs::FleetTimeSeries::Global().Clear();
    return std::chrono::duration<double, std::milli>(elapsed).count() /
           iters;
  };

  constexpr int kFleetIters = 5;
  time_fleet(true, 1);  // warmup (fps caches inside the lab, allocator)
  const double enabled_ms = time_fleet(true, kFleetIters);
  const double disabled_ms = time_fleet(false, kFleetIters);
  const double delta_pct =
      100.0 * (enabled_ms - disabled_ms) / disabled_ms;
  std::printf(
      "Provenance overhead on SimulateDynamicFleet (%zu arrivals): "
      "obs on %.2f ms, obs off %.2f ms, enabled-path delta %+.2f%%.\n",
      trace.size(), enabled_ms, disabled_ms, delta_pct);
  return {enabled_ms, disabled_ms, delta_pct};
}

struct StreamingOverheadNumbers {
  double plain_ms = 0.0;
  double streaming_ms = 0.0;
  double delta_pct = 0.0;
  std::uint64_t events_written = 0;
  std::uint64_t segments = 0;
  std::uint64_t ring_peak_events = 0;
  std::uint64_t ring_capacity_events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t write_errors = 0;
};

/// The streaming-pipeline acceptance number: the same provenance fleet
/// run with a TelemetrySink draining the event log / metrics / time
/// series to rotating segments DURING the run, vs obs-on with no sink.
/// The async writer must keep the overhead under 5%, and because it
/// drains as it goes the event ring's residency stays bounded by its
/// configured capacity instead of growing with the horizon (the
/// peak-memory proxy reported below).
StreamingOverheadNumbers ReportStreamingOverhead() {
  const auto& stack = bench::TrainedStack::Get();
  const auto& world = bench::BenchWorld::Get();
  obs::EnabledScope on(true);
  std::vector<int> games;
  for (int g = 0; g < 12; ++g) games.push_back(g);
  const auto trace = sched::GenerateDynamicTrace(
      games, /*horizon_min=*/120.0, /*arrivals_per_min=*/0.5,
      /*mean_duration_min=*/30.0, /*seed=*/11);
  const auto policy = sched::MakeProvenancePolicy(stack.gaugur, 60.0);
  sched::DynamicOptions options;
  options.qos_fps = 60.0;

  constexpr int kFleetIters = 5;
  const auto time_fleet = [&](int iters) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          sched::SimulateDynamicFleet(world.lab(), trace, policy, options));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count() /
           iters;
  };

  StreamingOverheadNumbers out;
  time_fleet(1);  // warmup
  obs::EventLog::Global().Clear();
  obs::FleetTimeSeries::Global().Clear();
  out.plain_ms = time_fleet(kFleetIters);
  obs::EventLog::Global().Clear();
  obs::FleetTimeSeries::Global().Clear();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gaugur_bench_sink";
  std::filesystem::remove_all(dir);
  {
    obs::SinkConfig config;
    config.directory = dir.string();
    config.backpressure = obs::OverflowPolicy::kBlock;
    obs::TelemetrySink sink(std::move(config));
    out.streaming_ms = time_fleet(kFleetIters);
    // The final seal + manifest write is a one-time exit cost, kept
    // outside the per-run timing on purpose.
    sink.Stop();
    const obs::TelemetrySink::Stats stats = sink.GetStats();
    out.events_written = stats.events_written;
    out.ring_peak_events = stats.max_drain_batch;
    out.dropped = stats.dropped;
    out.write_errors = stats.write_errors;
    for (const auto& [name, stream] : sink.CurrentManifest().streams) {
      out.segments += stream.segments.size();
    }
  }
  out.ring_capacity_events =
      obs::EventLogConfig{}.shard_capacity * obs::EventLogConfig{}.num_shards;
  obs::EventLog::Global().Clear();
  obs::FleetTimeSeries::Global().Clear();
  std::filesystem::remove_all(dir);

  out.delta_pct = 100.0 * (out.streaming_ms - out.plain_ms) / out.plain_ms;
  std::printf(
      "Streaming overhead on SimulateDynamicFleet: plain %.2f ms, "
      "with sink %.2f ms, delta %+.2f%% (target < 5%% with a spare core "
      "for the writer; on a single-CPU box the writer's serialization "
      "cannot overlap and lands on the wall clock); %llu events in "
      "%llu segments, ring peak %llu / %llu events, dropped %llu, "
      "write errors %llu.\n",
      out.plain_ms, out.streaming_ms, out.delta_pct,
      static_cast<unsigned long long>(out.events_written),
      static_cast<unsigned long long>(out.segments),
      static_cast<unsigned long long>(out.ring_peak_events),
      static_cast<unsigned long long>(out.ring_capacity_events),
      static_cast<unsigned long long>(out.dropped),
      static_cast<unsigned long long>(out.write_errors));
  return out;
}

struct HealthOverheadNumbers {
  double disarmed_ms = 0.0;
  double armed_ms = 0.0;
  double delta_pct = 0.0;
  std::uint64_t evaluations = 0;
  std::uint64_t alerts_fired = 0;
  std::uint64_t transitions = 0;
};

/// The health-engine acceptance number: the same provenance fleet run,
/// obs on, with the default rule pack armed vs no rules installed. An
/// armed engine re-evaluates every rule per sim tick (ring upkeep +
/// burn-rate fractions + per-label state machines), so this isolates
/// exactly what alerting adds on top of the passive layers. Target < 2%.
HealthOverheadNumbers ReportHealthOverhead() {
  const auto& stack = bench::TrainedStack::Get();
  const auto& world = bench::BenchWorld::Get();
  obs::EnabledScope on(true);
  std::vector<int> games;
  for (int g = 0; g < 12; ++g) games.push_back(g);
  const auto trace = sched::GenerateDynamicTrace(
      games, /*horizon_min=*/120.0, /*arrivals_per_min=*/0.5,
      /*mean_duration_min=*/30.0, /*seed=*/11);
  const auto policy = sched::MakeProvenancePolicy(stack.gaugur, 60.0);
  sched::DynamicOptions options;
  options.qos_fps = 60.0;

  constexpr int kFleetIters = 5;
  const auto time_fleet = [&](int iters) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          sched::SimulateDynamicFleet(world.lab(), trace, policy, options));
      obs::EventLog::Global().Clear();
      obs::FleetTimeSeries::Global().Clear();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count() /
           iters;
  };

  HealthOverheadNumbers out;
  obs::HealthEngine& engine = obs::HealthEngine::Global();
  engine.Reset();
  time_fleet(1);  // warmup
  out.disarmed_ms = time_fleet(kFleetIters);

  engine.InstallDefaultRules(options.qos_fps);
  time_fleet(1);  // warmup (first pass populates the sliding rings)
  engine.Reset();
  engine.InstallDefaultRules(options.qos_fps);
  out.armed_ms = time_fleet(kFleetIters);
  const obs::HealthSummary summary = engine.Summary();
  out.evaluations = summary.evaluations;
  out.alerts_fired = summary.alerts_fired;
  out.transitions = summary.transitions;
  engine.Reset();

  out.delta_pct = 100.0 * (out.armed_ms - out.disarmed_ms) / out.disarmed_ms;
  std::printf(
      "Health-engine overhead on SimulateDynamicFleet: disarmed %.2f ms, "
      "default rule pack armed %.2f ms, delta %+.2f%% (target < 2%%); "
      "%llu evaluations, %llu alerts fired, %llu transitions across "
      "%d runs.\n",
      out.disarmed_ms, out.armed_ms, out.delta_pct,
      static_cast<unsigned long long>(out.evaluations),
      static_cast<unsigned long long>(out.alerts_fired),
      static_cast<unsigned long long>(out.transitions), kFleetIters);
  return out;
}

struct ProfilerOverheadNumbers {
  double disarmed_ms = 0.0;
  double armed_ms = 0.0;
  double delta_pct = 0.0;
  std::uint64_t decisions = 0;
  std::uint64_t exemplars = 0;
};

/// The flight-recorder acceptance number: the same provenance fleet run,
/// obs on, with the latency profiler armed (default) vs disarmed via
/// ArmedScope. Armed, every decision pays BeginDecision/EndDecision plus
/// a steady_clock read per phase boundary; disarmed, PhaseTimer sees an
/// inactive scratch and the whole layer collapses to a thread-local
/// bool load. Target < 2%.
ProfilerOverheadNumbers ReportProfilerOverhead() {
  const auto& stack = bench::TrainedStack::Get();
  const auto& world = bench::BenchWorld::Get();
  obs::EnabledScope on(true);
  std::vector<int> games;
  for (int g = 0; g < 12; ++g) games.push_back(g);
  const auto trace = sched::GenerateDynamicTrace(
      games, /*horizon_min=*/120.0, /*arrivals_per_min=*/0.5,
      /*mean_duration_min=*/30.0, /*seed=*/11);
  const auto policy = sched::MakeProvenancePolicy(stack.gaugur, 60.0);
  sched::DynamicOptions options;
  options.qos_fps = 60.0;

  constexpr int kFleetIters = 5;
  const auto time_fleet = [&](int iters) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          sched::SimulateDynamicFleet(world.lab(), trace, policy, options));
      obs::EventLog::Global().Clear();
      obs::FleetTimeSeries::Global().Clear();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count() /
           iters;
  };

  ProfilerOverheadNumbers out;
  obs::LatencyProfiler& profiler = obs::LatencyProfiler::Global();
  {
    obs::LatencyProfiler::ArmedScope disarmed(false);
    time_fleet(1);  // warmup
    out.disarmed_ms = time_fleet(kFleetIters);
  }
  profiler.Reset();
  time_fleet(1);  // warmup
  profiler.Reset();
  out.armed_ms = time_fleet(kFleetIters);
  const obs::LatencyProfileSummary summary = profiler.Summary();
  out.decisions = summary.decisions;
  out.exemplars = summary.exemplars.size();
  profiler.Reset();

  out.delta_pct = 100.0 * (out.armed_ms - out.disarmed_ms) / out.disarmed_ms;
  std::printf(
      "Latency-profiler overhead on SimulateDynamicFleet: disarmed "
      "%.2f ms, armed %.2f ms, delta %+.2f%% (target < 2%%); %llu "
      "decisions attributed, %llu tail exemplars across %d runs.\n",
      out.disarmed_ms, out.armed_ms, out.delta_pct,
      static_cast<unsigned long long>(out.decisions),
      static_cast<unsigned long long>(out.exemplars), kFleetIters);
  return out;
}

void BM_ProfileOneGame(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const profiling::Profiler profiler(world.server());
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.ProfileGame(world.catalog()[3]));
  }
  state.counters["measurements_per_game"] =
      static_cast<double>(profiler.MeasurementsPerGame());
}
BENCHMARK(BM_ProfileOneGame)->Unit(benchmark::kMillisecond);

void BM_TrainRm1000Samples(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto rm_full =
      core::BuildRmDataset(world.features(), world.train_colocations());
  const auto train = bench::BenchWorld::ShuffledSubset(rm_full, 1000, 7);
  for (auto _ : state) {
    auto model = ml::MakeRegressor("GBRT");
    model->Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_TrainRm1000Samples)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Build the shared world (profiling pass + corpus + trained stack)
  // outside the timed regions.
  bench::TrainedStack::Get();
  const auto wall_start = std::chrono::steady_clock::now();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const OverheadNumbers overhead = ReportInstrumentationOverhead();
  const FleetOverheadNumbers fleet_overhead = ReportFleetOverhead();
  const StreamingOverheadNumbers streaming = ReportStreamingOverhead();
  const HealthOverheadNumbers health = ReportHealthOverhead();
  const ProfilerOverheadNumbers profiler = ReportProfilerOverhead();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  obs::JsonObject config;
  config["warmup_iters"] = kWarmup;
  config["timed_iters"] = kIters;
  config["fast_mode"] = bench::BenchWorld::Get().fast_mode();
  config["cpu_cores"] = static_cast<unsigned long long>(
      std::thread::hardware_concurrency());
  obs::JsonObject counters;
  counters["measure_enabled_us"] = overhead.enabled_us;
  counters["measure_disabled_us"] = overhead.disabled_us;
  counters["enabled_delta_pct"] = overhead.delta_pct;
  counters["fleet_enabled_ms"] = fleet_overhead.enabled_ms;
  counters["fleet_disabled_ms"] = fleet_overhead.disabled_ms;
  counters["fleet_enabled_delta_pct"] = fleet_overhead.delta_pct;
  counters["fleet_plain_ms"] = streaming.plain_ms;
  counters["fleet_streaming_ms"] = streaming.streaming_ms;
  counters["streaming_overhead_pct"] = streaming.delta_pct;
  counters["sink_events_written"] =
      static_cast<unsigned long long>(streaming.events_written);
  counters["sink_segments"] =
      static_cast<unsigned long long>(streaming.segments);
  counters["sink_ring_peak_events"] =
      static_cast<unsigned long long>(streaming.ring_peak_events);
  counters["sink_ring_capacity_events"] =
      static_cast<unsigned long long>(streaming.ring_capacity_events);
  counters["sink_dropped"] =
      static_cast<unsigned long long>(streaming.dropped);
  counters["sink_write_errors"] =
      static_cast<unsigned long long>(streaming.write_errors);
  counters["fleet_health_disarmed_ms"] = health.disarmed_ms;
  counters["fleet_health_armed_ms"] = health.armed_ms;
  counters["health_overhead_pct"] = health.delta_pct;
  counters["health_evaluations"] =
      static_cast<unsigned long long>(health.evaluations);
  counters["health_alerts_fired"] =
      static_cast<unsigned long long>(health.alerts_fired);
  counters["health_transitions"] =
      static_cast<unsigned long long>(health.transitions);
  counters["fleet_profiler_disarmed_ms"] = profiler.disarmed_ms;
  counters["fleet_profiler_armed_ms"] = profiler.armed_ms;
  counters["profiler_overhead_pct"] = profiler.delta_pct;
  counters["profiler_decisions"] =
      static_cast<unsigned long long>(profiler.decisions);
  counters["profiler_exemplars"] =
      static_cast<unsigned long long>(profiler.exemplars);
  counters["lab_measurements"] = static_cast<unsigned long long>(
      obs::Registry::Global().GetCounter("lab.measurements").Value());
  bench::WriteBenchJson("overhead", wall_ms, std::move(config),
                        std::move(counters));

  std::printf(
      "\nSection 3.6: profiling cost is per-game (O(N) over the catalog) "
      "and training needs a few hundred colocations (also O(N)); online "
      "prediction is microseconds.\n");
  return 0;
}
