// §3.6 overhead analysis: offline profiling and training cost the scale of
// the game count; online prediction is negligible (the property that lets
// GAugur serve request-arrival-time decisions).
//
// Micro-timings via google-benchmark:
//  * online RM / CM prediction and feature construction (target: µs);
//  * one full game profiling pass (offline, per game — O(N) total);
//  * one colocation measurement on the simulated server;
//  * RM training at the paper's 1000 samples (offline, once).

//  * telemetry-layer overhead: one colocation measurement with obs
//    enabled vs disabled (the disabled path must be < 2%), plus the raw
//    cost of the metric primitives themselves.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/switch.h"
#include "obs/timeseries.h"
#include "profiling/profiler.h"
#include "sched/dynamic.h"

using namespace gaugur;

namespace {

constexpr int kWarmup = 200;
constexpr int kIters = 2000;

const core::Colocation& SampleColocation() {
  static const core::Colocation colocation = {
      {0, resources::k1080p}, {17, resources::k720p}, {42, resources::k1440p}};
  return colocation;
}

void BM_OnlineRmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFps(colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineRmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineCmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictQosOk(60.0, colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineCmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineFeasibilityCheck(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFeasible(60.0, SampleColocation()));
  }
}
BENCHMARK(BM_OnlineFeasibilityCheck)->Unit(benchmark::kMicrosecond);

void BM_FeatureConstruction(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.features().RmFeatures(colocation[0], corunners));
  }
}
BENCHMARK(BM_FeatureConstruction)->Unit(benchmark::kMicrosecond);

void BM_MeasureColocation(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.lab().Measure(SampleColocation(), seed++));
  }
}
BENCHMARK(BM_MeasureColocation)->Unit(benchmark::kMicrosecond);

void BM_MeasureColocationObsDisabled(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  obs::EnabledScope off(false);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.lab().Measure(SampleColocation(), seed++));
  }
}
BENCHMARK(BM_MeasureColocationObsDisabled)->Unit(benchmark::kMicrosecond);

void BM_ObsCounterAddEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("bench.counter_probe");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_ObsCounterAddEnabled);

void BM_ObsCounterAddDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("bench.counter_probe");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_ObsCounterAddDisabled);

void BM_EventLogAppendEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::EventLog& log = obs::EventLog::Global();
  double tick = 0.0;
  for (auto _ : state) {
    log.Append(obs::EventKind::kArrival, tick, 0,
               {{"game_id", obs::JsonValue(7)}});
    tick += 1.0;
  }
  log.Clear();
}
BENCHMARK(BM_EventLogAppendEnabled);

void BM_EventLogAppendDisabled(benchmark::State& state) {
  obs::EnabledScope off(false);
  obs::EventLog& log = obs::EventLog::Global();
  double tick = 0.0;
  for (auto _ : state) {
    log.Append(obs::EventKind::kArrival, tick, 0,
               {{"game_id", obs::JsonValue(7)}});
    tick += 1.0;
  }
}
BENCHMARK(BM_EventLogAppendDisabled);

void BM_ObsHistogramRecordEnabled(benchmark::State& state) {
  obs::EnabledScope on(true);
  obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("bench.hist_probe");
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
}
BENCHMARK(BM_ObsHistogramRecordEnabled);

struct OverheadNumbers {
  double enabled_us = 0.0;
  double disabled_us = 0.0;
  double delta_pct = 0.0;
};

/// The §tentpole acceptance number: mean Measure() latency with the obs
/// switch on vs off. The disabled path leaves only relaxed-load branches
/// in the hot code; its overhead must stay under 2%.
OverheadNumbers ReportInstrumentationOverhead() {
  const auto& world = bench::BenchWorld::Get();
  const auto time_measure_loop = [&](int iters) {
    std::uint64_t seed = 1;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          world.lab().Measure(SampleColocation(), seed++));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::micro>(elapsed).count() /
           iters;
  };

  double enabled_us = 0.0, disabled_us = 0.0;
  {
    obs::EnabledScope on(true);
    time_measure_loop(kWarmup);
    enabled_us = time_measure_loop(kIters);
  }
  {
    obs::EnabledScope off(false);
    time_measure_loop(kWarmup);
    disabled_us = time_measure_loop(kIters);
  }
  const double delta_pct =
      100.0 * (enabled_us - disabled_us) / disabled_us;
  std::printf(
      "\nInstrumentation overhead on ColocationLab::Measure: "
      "obs on %.2f µs, obs off %.2f µs, enabled-path delta %+.2f%% "
      "(disabled path is a relaxed-load branch; target < 2%%).\n",
      enabled_us, disabled_us, delta_pct);
  return {enabled_us, disabled_us, delta_pct};
}

struct FleetOverheadNumbers {
  double enabled_ms = 0.0;
  double disabled_ms = 0.0;
  double delta_pct = 0.0;
};

/// Fleet-level counterpart of ReportInstrumentationOverhead: one
/// provenance-policy SimulateDynamicFleet run (arrivals, decision events
/// with candidate judgements, violation attribution, time-series
/// sampling) with the obs switch on vs off. Disabled, the whole event /
/// time-series layer must collapse to relaxed-load branches.
FleetOverheadNumbers ReportFleetOverhead() {
  const auto& stack = bench::TrainedStack::Get();
  const auto& world = bench::BenchWorld::Get();
  std::vector<int> games;
  for (int g = 0; g < 12; ++g) games.push_back(g);
  const auto trace = sched::GenerateDynamicTrace(
      games, /*horizon_min=*/120.0, /*arrivals_per_min=*/0.5,
      /*mean_duration_min=*/30.0, /*seed=*/11);
  const auto policy = sched::MakeProvenancePolicy(stack.gaugur, 60.0);
  sched::DynamicOptions options;
  options.qos_fps = 60.0;

  const auto time_fleet = [&](bool enabled, int iters) {
    obs::EnabledScope scope(enabled);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(
          sched::SimulateDynamicFleet(world.lab(), trace, policy, options));
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    obs::EventLog::Global().Clear();
    obs::FleetTimeSeries::Global().Clear();
    return std::chrono::duration<double, std::milli>(elapsed).count() /
           iters;
  };

  constexpr int kFleetIters = 5;
  time_fleet(true, 1);  // warmup (fps caches inside the lab, allocator)
  const double enabled_ms = time_fleet(true, kFleetIters);
  const double disabled_ms = time_fleet(false, kFleetIters);
  const double delta_pct =
      100.0 * (enabled_ms - disabled_ms) / disabled_ms;
  std::printf(
      "Provenance overhead on SimulateDynamicFleet (%zu arrivals): "
      "obs on %.2f ms, obs off %.2f ms, enabled-path delta %+.2f%%.\n",
      trace.size(), enabled_ms, disabled_ms, delta_pct);
  return {enabled_ms, disabled_ms, delta_pct};
}

void BM_ProfileOneGame(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const profiling::Profiler profiler(world.server());
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.ProfileGame(world.catalog()[3]));
  }
  state.counters["measurements_per_game"] =
      static_cast<double>(profiler.MeasurementsPerGame());
}
BENCHMARK(BM_ProfileOneGame)->Unit(benchmark::kMillisecond);

void BM_TrainRm1000Samples(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto rm_full =
      core::BuildRmDataset(world.features(), world.train_colocations());
  const auto train = bench::BenchWorld::ShuffledSubset(rm_full, 1000, 7);
  for (auto _ : state) {
    auto model = ml::MakeRegressor("GBRT");
    model->Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_TrainRm1000Samples)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Build the shared world (profiling pass + corpus + trained stack)
  // outside the timed regions.
  bench::TrainedStack::Get();
  const auto wall_start = std::chrono::steady_clock::now();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const OverheadNumbers overhead = ReportInstrumentationOverhead();
  const FleetOverheadNumbers fleet_overhead = ReportFleetOverhead();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  obs::JsonObject config;
  config["warmup_iters"] = kWarmup;
  config["timed_iters"] = kIters;
  config["fast_mode"] = bench::BenchWorld::Get().fast_mode();
  obs::JsonObject counters;
  counters["measure_enabled_us"] = overhead.enabled_us;
  counters["measure_disabled_us"] = overhead.disabled_us;
  counters["enabled_delta_pct"] = overhead.delta_pct;
  counters["fleet_enabled_ms"] = fleet_overhead.enabled_ms;
  counters["fleet_disabled_ms"] = fleet_overhead.disabled_ms;
  counters["fleet_enabled_delta_pct"] = fleet_overhead.delta_pct;
  counters["lab_measurements"] = static_cast<unsigned long long>(
      obs::Registry::Global().GetCounter("lab.measurements").Value());
  bench::WriteBenchJson("overhead", wall_ms, std::move(config),
                        std::move(counters));

  std::printf(
      "\nSection 3.6: profiling cost is per-game (O(N) over the catalog) "
      "and training needs a few hundred colocations (also O(N)); online "
      "prediction is microseconds.\n");
  return 0;
}
