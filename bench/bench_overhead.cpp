// §3.6 overhead analysis: offline profiling and training cost the scale of
// the game count; online prediction is negligible (the property that lets
// GAugur serve request-arrival-time decisions).
//
// Micro-timings via google-benchmark:
//  * online RM / CM prediction and feature construction (target: µs);
//  * one full game profiling pass (offline, per game — O(N) total);
//  * one colocation measurement on the simulated server;
//  * RM training at the paper's 1000 samples (offline, once).

#include <benchmark/benchmark.h>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "profiling/profiler.h"

using namespace gaugur;

namespace {

const core::Colocation& SampleColocation() {
  static const core::Colocation colocation = {
      {0, resources::k1080p}, {17, resources::k720p}, {42, resources::k1440p}};
  return colocation;
}

void BM_OnlineRmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFps(colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineRmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineCmPrediction(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictQosOk(60.0, colocation[0], corunners));
  }
}
BENCHMARK(BM_OnlineCmPrediction)->Unit(benchmark::kMicrosecond);

void BM_OnlineFeasibilityCheck(benchmark::State& state) {
  const auto& stack = bench::TrainedStack::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.gaugur.PredictFeasible(60.0, SampleColocation()));
  }
}
BENCHMARK(BM_OnlineFeasibilityCheck)->Unit(benchmark::kMicrosecond);

void BM_FeatureConstruction(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto& colocation = SampleColocation();
  const std::vector<core::SessionRequest> corunners{colocation[1],
                                                    colocation[2]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.features().RmFeatures(colocation[0], corunners));
  }
}
BENCHMARK(BM_FeatureConstruction)->Unit(benchmark::kMicrosecond);

void BM_MeasureColocation(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.lab().Measure(SampleColocation(), seed++));
  }
}
BENCHMARK(BM_MeasureColocation)->Unit(benchmark::kMicrosecond);

void BM_ProfileOneGame(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const profiling::Profiler profiler(world.server());
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.ProfileGame(world.catalog()[3]));
  }
  state.counters["measurements_per_game"] =
      static_cast<double>(profiler.MeasurementsPerGame());
}
BENCHMARK(BM_ProfileOneGame)->Unit(benchmark::kMillisecond);

void BM_TrainRm1000Samples(benchmark::State& state) {
  const auto& world = bench::BenchWorld::Get();
  const auto rm_full =
      core::BuildRmDataset(world.features(), world.train_colocations());
  const auto train = bench::BenchWorld::ShuffledSubset(rm_full, 1000, 7);
  for (auto _ : state) {
    auto model = ml::MakeRegressor("GBRT");
    model->Fit(train);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_TrainRm1000Samples)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Build the shared world (profiling pass + corpus + trained stack)
  // outside the timed regions.
  bench::TrainedStack::Get();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nSection 3.6: profiling cost is per-game (O(N) over the catalog) "
      "and training needs a few hundred colocations (also O(N)); online "
      "prediction is microseconds.\n");
  return 0;
}
