// Fleet-scale stress bench for the sharded fleet service: drives the
// admission pipeline to ~1M concurrent sessions with a cheap packing
// policy (phase A, measuring arrivals/sec, p99 decision latency, and the
// multi-shard vs single-shard speedup on this machine), then compares the
// shared striped prediction cache's hit rate between a single-shard and a
// multi-shard run of the full predictor-backed policy (phase B — one
// shard's miss must warm every shard, so the sharded hit rate must not be
// worse).
//
// Phase A runs with observability disabled: at 10^6 live sessions the
// event log and fleet time series would dominate memory and runtime, and
// the kill switch is exactly the production posture for a latency bench.
//
// --smoke shrinks phase A to a few thousand sessions and skips phase B
// (which needs the profiled BenchWorld); the JSON schema is identical, so
// CI validates the same keys either way. Output:
// bench_results/BENCH_fleet_scale.json, schema gaugur.bench.result/v1,
// counters: arrivals_per_sec, decision_latency_p99_us, shards,
// speedup_multi_vs_single, peak_concurrent_sessions,
// hardware_concurrency (+ cache_hit_rate_single / cache_hit_rate_sharded
// in full mode).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_world.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/lab.h"
#include "gaugur/predictor.h"
#include "gaugur/training.h"
#include "obs/json.h"
#include "obs/switch.h"
#include "sched/dynamic.h"
#include "sched/study.h"

using namespace gaugur;

namespace {

/// A ramp of `n` arrivals over `ramp_min`, every one still live at the
/// end of the ramp (duration runs to ramp_min + 5): peak concurrency ==
/// n, by construction, sampled exactly at a tick barrier.
std::vector<sched::DynamicRequest> RampTrace(std::size_t n,
                                             double ramp_min) {
  std::vector<sched::DynamicRequest> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double arrival =
        ramp_min * static_cast<double>(i) / static_cast<double>(n);
    sched::DynamicRequest request;
    request.arrival_min = arrival;
    request.duration_min = (ramp_min + 5.0) - arrival;
    request.session = {0, resources::k1080p};
    trace.push_back(request);
  }
  return trace;
}

struct ScaleRun {
  double arrivals_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t peak_concurrent = 0;
  double wall_s = 0.0;
};

ScaleRun RunScale(const core::ColocationLab& lab,
                  std::span<const sched::DynamicRequest> trace,
                  std::size_t shards) {
  sched::ShardedFleetOptions options;
  options.num_shards = shards;
  options.tick_window_min = 5.0;
  options.dynamic.max_policy_candidates = 64;
  // First open candidate: pure packing pressure, O(1) per decision.
  const auto factory = [](std::size_t) -> sched::PlacementPolicy {
    return [](std::span<const core::Colocation> open_servers,
              const core::SessionRequest&) -> int {
      return open_servers.empty() ? -1 : 0;
    };
  };
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      sched::SimulateShardedFleet(lab, trace, factory, options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ScaleRun run;
  run.wall_s = wall_s;
  run.arrivals_per_sec =
      wall_s > 0.0 ? static_cast<double>(trace.size()) / wall_s : 0.0;
  run.p50_us = result.decision_latency_p50_us;
  run.p99_us = result.decision_latency_p99_us;
  run.peak_concurrent = result.peak_concurrent_sessions;
  return run;
}

/// Trains a fresh predictor identical to the previous one (same config,
/// seed, and data), so the single-shard and sharded cache measurements
/// both start cold on the same models.
core::GAugurPredictor TrainScheduler(const bench::BenchWorld& world) {
  core::PredictorConfig config;
  config.cm_decision_threshold = 0.8;
  core::GAugurPredictor predictor(world.features(), config);
  const auto rm_full =
      core::BuildRmDataset(world.features(), world.train_colocations());
  predictor.TrainRmOnDataset(
      bench::BenchWorld::ShuffledSubset(rm_full, 1000, 7));
  const std::vector<double> qos_grid{50.0, 60.0, 70.0};
  predictor.TrainCm(world.train_colocations(), qos_grid);
  return predictor;
}

double HitRate(const core::PredictionCache::Stats& stats) {
  const double traffic = static_cast<double>(stats.hits + stats.misses);
  return traffic > 0.0 ? static_cast<double>(stats.hits) / traffic : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t multi_shards = std::max<std::size_t>(2, hw);
  const std::size_t target_sessions = smoke ? 20'000 : 1'050'000;

  // ----- Phase A: admission throughput at scale (obs off, see header).
  obs::EnabledScope obs_off(false);
  const gamesim::GameCatalog catalog = gamesim::GameCatalog::MakeDefault(42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);
  const auto trace = RampTrace(target_sessions, 100.0);
  std::printf("phase A: %zu arrivals, shards 1 vs %zu (hw=%zu)\n",
              trace.size(), multi_shards, hw);

  const ScaleRun single = RunScale(lab, trace, 1);
  std::printf("  single-shard: %.0f arrivals/s, p99 %.2f us, peak %zu\n",
              single.arrivals_per_sec, single.p99_us,
              single.peak_concurrent);
  const ScaleRun multi = RunScale(lab, trace, multi_shards);
  std::printf("  %zu shards:    %.0f arrivals/s, p99 %.2f us, peak %zu\n",
              multi_shards, multi.arrivals_per_sec, multi.p99_us,
              multi.peak_concurrent);
  const double speedup =
      multi.wall_s > 0.0 ? single.wall_s / multi.wall_s : 0.0;
  std::printf("  speedup multi vs single: %.2fx (1 means none; needs >1 "
              "hardware thread)\n", speedup);

  // ----- Phase B: shared-cache hit rate (full only). Three arms on the
  // same trace, each from a cold, identically trained predictor:
  //   single          — 1 shard (the legacy single-threaded profile),
  //   sharded shared  — N shards, one cache (the service default), and
  //   sharded private — N shards, one cold cache per replica (control:
  //                     what the shared cache's cross-shard warming buys;
  //                     shared >= private holds structurally, since every
  //                     private hit would also hit in the shared cache).
  double hit_rate_single = 0.0;
  double hit_rate_sharded = 0.0;
  double hit_rate_private = 0.0;
  if (!smoke) {
    const auto& world = bench::BenchWorld::Get();
    const auto setup = sched::SelectStudyGames(world.lab(), 10, 60.0, 5);
    // Long enough that most colocation contents are repeats (steady
    // state), so rates measure caching rather than cold-start churn.
    const auto policy_trace = sched::GenerateDynamicTrace(
        setup.game_ids, 1440.0, /*arrivals_per_min=*/2.5,
        /*mean_duration_min=*/30.0, 21);
    sched::ShardedFleetOptions options;
    options.tick_window_min = 5.0;

    const core::GAugurPredictor cold_single = TrainScheduler(world);
    options.num_shards = 1;
    (void)sched::SimulateShardedFleet(
        world.lab(), policy_trace,
        sched::MakeReplicatedProvenanceFactory(cold_single, 60.0), options);
    hit_rate_single = HitRate(cold_single.PredictionCacheStats());

    const core::GAugurPredictor cold_shared = TrainScheduler(world);
    options.num_shards = multi_shards;
    (void)sched::SimulateShardedFleet(
        world.lab(), policy_trace,
        sched::MakeReplicatedProvenanceFactory(cold_shared, 60.0), options);
    hit_rate_sharded = HitRate(cold_shared.PredictionCacheStats());

    const core::GAugurPredictor cold_private = TrainScheduler(world);
    std::vector<std::shared_ptr<core::GAugurPredictor>> private_replicas;
    (void)sched::SimulateShardedFleet(
        world.lab(), policy_trace,
        [&](std::size_t) -> sched::PlacementPolicy {
          auto replica = std::make_shared<core::GAugurPredictor>(
              cold_private.MakeReplica(/*share_cache=*/false));
          private_replicas.push_back(replica);
          auto policy = std::make_shared<sched::PlacementPolicy>(
              sched::MakeProvenancePolicy(*replica, 60.0));
          return [replica, policy](
                     std::span<const core::Colocation> open_servers,
                     const core::SessionRequest& arrival) {
            return (*policy)(open_servers, arrival);
          };
        },
        options);
    core::PredictionCache::Stats private_stats;
    for (const auto& replica : private_replicas) {
      const auto stats = replica->PredictionCacheStats();
      private_stats.hits += stats.hits;
      private_stats.misses += stats.misses;
    }
    hit_rate_private = HitRate(private_stats);

    std::printf("phase B (%zu arrivals): cache hit rate single %.3f | "
                "%zu shards shared %.3f | %zu shards private %.3f\n",
                policy_trace.size(), hit_rate_single, multi_shards,
                hit_rate_sharded, multi_shards, hit_rate_private);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  obs::JsonObject config;
  config["smoke"] = smoke;
  config["target_sessions"] =
      static_cast<unsigned long long>(target_sessions);
  config["multi_shards"] = static_cast<unsigned long long>(multi_shards);
  config["max_policy_candidates"] = 64;
  obs::JsonObject counters;
  counters["arrivals_per_sec"] = multi.arrivals_per_sec;
  counters["arrivals_per_sec_single"] = single.arrivals_per_sec;
  counters["decision_latency_p99_us"] = multi.p99_us;
  counters["decision_latency_p50_us"] = multi.p50_us;
  counters["shards"] = static_cast<unsigned long long>(multi_shards);
  counters["speedup_multi_vs_single"] = speedup;
  counters["peak_concurrent_sessions"] =
      static_cast<unsigned long long>(multi.peak_concurrent);
  counters["hardware_concurrency"] = static_cast<unsigned long long>(hw);
  if (!smoke) {
    counters["cache_hit_rate_single"] = hit_rate_single;
    counters["cache_hit_rate_sharded"] = hit_rate_sharded;
    counters["cache_hit_rate_private_shards"] = hit_rate_private;
  }
  bench::WriteBenchJson("fleet_scale", wall_ms, std::move(config),
                        std::move(counters));
  return 0;
}
