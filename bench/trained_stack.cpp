#include "bench/trained_stack.h"

#include <array>

#include "gaugur/training.h"

namespace gaugur::bench {

namespace {
constexpr std::size_t kPaperTrainingSamples = 1000;
}

const TrainedStack& TrainedStack::Get() {
  static const TrainedStack* stack = [] {
    const auto& world = BenchWorld::Get();
    core::PredictorConfig config;
    // Scheduling experiments use the cost-sensitive CM threshold (see
    // PredictorConfig): violations are costlier than missed colocations.
    config.cm_decision_threshold = 0.8;
    auto* s = new TrainedStack{
        core::GAugurPredictor(world.features(), config),
        baselines::SigmoidModel(world.features()),
        baselines::SmiteModel(world.features()),
        baselines::VbpModel(world.features()),
        0};

    const auto rm_full =
        core::BuildRmDataset(world.features(), world.train_colocations());
    const auto rm_train =
        BenchWorld::ShuffledSubset(rm_full, kPaperTrainingSamples, 7);
    s->rm_samples = rm_train.NumRows();
    s->gaugur.TrainRmOnDataset(rm_train);

    // Q-aware CM: 1000 samples replicated across a dense QoS grid. The
    // binary labels carry far less information per measured colocation
    // than the RM's continuous targets, so the CM benefits from seeing
    // the same colocations thresholded at many QoS levels (no additional
    // measurement cost).
    const std::array<double, 7> qos_grid{40.0, 50.0, 55.0, 60.0,
                                         65.0, 70.0, 80.0};
    s->gaugur.TrainCm(world.train_colocations(), qos_grid);

    s->sigmoid.Train(world.train_colocations());
    s->smite.Train(world.train_colocations());
    return s;
  }();
  return *stack;
}

}  // namespace gaugur::bench
