// Shared experimental world for the figure-reproduction benches: the
// 100-game catalog on the simulated server, a full profiling pass, and the
// paper's measurement corpus — 500 two-game, 100 three-game and 100
// four-game colocations, split 400 train / 300 test at colocation
// granularity (§4).
//
// Building this costs ~15s (profiling dominates); each bench binary builds
// it once. Set GAUGUR_BENCH_FAST=1 to shrink the corpus and sweeps for
// quick iteration — results are then NOT comparable to the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/features.h"
#include "gaugur/lab.h"
#include "ml/dataset.h"
#include "obs/json.h"

namespace gaugur::bench {

class BenchWorld {
 public:
  static const BenchWorld& Get();

  /// True when GAUGUR_BENCH_FAST=1 trimmed the corpus.
  bool fast_mode() const { return fast_mode_; }

  const gamesim::GameCatalog& catalog() const { return catalog_; }
  const gamesim::ServerSim& server() const { return server_; }
  const core::ColocationLab& lab() const { return lab_; }
  const core::FeatureBuilder& features() const { return features_; }

  /// The 400 training colocations (paper: randomly selected from 700).
  const std::vector<core::MeasuredColocation>& train_colocations() const {
    return train_;
  }
  /// The held-out 300 test colocations.
  const std::vector<core::MeasuredColocation>& test_colocations() const {
    return test_;
  }

  /// Row-shuffled subset of a dataset for the "number of training samples"
  /// sweeps (shuffling matters: corpus rows are grouped by colocation
  /// size).
  static ml::Dataset ShuffledSubset(const ml::Dataset& full, std::size_t n,
                                    std::uint64_t seed);

 private:
  BenchWorld();

  bool fast_mode_ = false;
  gamesim::GameCatalog catalog_;
  gamesim::ServerSim server_;
  core::ColocationLab lab_;
  core::FeatureBuilder features_;
  std::vector<core::MeasuredColocation> train_;
  std::vector<core::MeasuredColocation> test_;
};

/// Writes `csv` into bench_results/<name>.csv (directory created on
/// demand); prints the path or a warning.
void WriteResultCsv(const std::string& name, const common::Table& table);

/// Writes a machine-readable bench summary to
/// bench_results/BENCH_<name>.json (next to the CSVs), schema
/// "gaugur.bench.result/v1":
///   {"schema", "name", "wall_ms", "config": {...}, "counters": {...}}
/// `config` holds the knobs the run used (QoS, trace size, fast mode);
/// `counters` the headline numbers CI trend-tracks.
void WriteBenchJson(const std::string& name, double wall_ms,
                    obs::JsonObject config, obs::JsonObject counters);

}  // namespace gaugur::bench
