// Figure 1: frame rates of colocated game pairs.
//
// Paper shape: Ancestors Legacy + Borderland both sustain high frame
// rates (105 / ~90 FPS); pairs involving H1Z1 drag their partners down
// (Ancestors Legacy falls to 57 FPS); ARK Survival Evolved pairs land in
// between. Absolute numbers differ (our substrate is a simulator), but
// the ordering and the "same game, very different FPS depending on
// partner" effect must hold.

#include <cstdio>
#include <iostream>

#include "bench/bench_world.h"
#include "common/table.h"

using namespace gaugur;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const char* pair_names[][2] = {
      {"Ancestors Legacy", "Borderland2"},
      {"Ancestors Legacy", "H1Z1"},
      {"Borderland2", "H1Z1"},
      {"ARK Survival Evolved", "Ancestors Legacy"},
      {"ARK Survival Evolved", "Borderland2"},
      {"ARK Survival Evolved", "H1Z1"},
  };

  common::Table table({"pair", "game", "solo FPS", "colocated FPS"}, 1);
  for (const auto& pair : pair_names) {
    const core::Colocation colocation = {
        {world.catalog().ByName(pair[0]).id, resources::k1080p},
        {world.catalog().ByName(pair[1]).id, resources::k1080p}};
    const auto fps = world.lab().TrueFps(colocation);
    for (std::size_t i = 0; i < 2; ++i) {
      table.AddRow({std::string(pair[0]) + " + " + pair[1],
                    std::string(pair[i]),
                    world.lab().TrueSoloFps(colocation[i]), fps[i]});
    }
  }
  table.Print(std::cout, "Figure 1: FPS of colocated game pairs (1080p)");
  bench::WriteResultCsv("fig1_colocated_pairs", table);

  // The paper's headline contrast, stated explicitly.
  const int al = world.catalog().ByName("Ancestors Legacy").id;
  const int bl = world.catalog().ByName("Borderland2").id;
  const int h1 = world.catalog().ByName("H1Z1").id;
  const double with_bl = world.lab().TrueFps(
      {{al, resources::k1080p}, {bl, resources::k1080p}})[0];
  const double with_h1 = world.lab().TrueFps(
      {{al, resources::k1080p}, {h1, resources::k1080p}})[0];
  std::printf(
      "\nAncestors Legacy runs at %.1f FPS with Borderland2 but %.1f FPS "
      "with H1Z1\n(paper: 105 vs 57 — partner identity matters).\n",
      with_bl, with_h1);
  return 0;
}
