// Figure 10: overall performance of interference-aware request assignment.
// (a) Average realized FPS of 5000 requests packed onto 1500/2000/2500/
//     3000 servers, per methodology: GAugur(RM), Sigmoid and SMiTe assign
//     each request to the server maximizing predicted average FPS; VBP
//     assigns worst-fit by remaining capacity.
// (b) CDF of realized FPS at 2000 servers.
//
// Paper shape: more servers -> higher FPS for everyone; GAugur(RM) wins
// at every fleet size, by up to 15%, and its FPS CDF dominates.

#include <iostream>
#include <memory>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "common/stats.h"
#include "common/table.h"
#include "sched/assignment.h"
#include "sched/methodology.h"
#include "sched/study.h"

using namespace gaugur;

int main() {
  const int total_requests = 5000;
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();

  const auto setup = sched::SelectStudyGames(world.lab(), 10, 60.0, 5);
  const auto counts = sched::GenerateRequestCounts(
      world.catalog().size(), setup.game_ids, total_requests, 17);
  const auto requests = sched::RequestStream(counts, 23);

  std::vector<std::unique_ptr<sched::Methodology>> predictive;
  predictive.push_back(sched::MakeGAugurRmMethod(stack.gaugur));
  predictive.push_back(
      sched::MakeSigmoidMethod(world.features(), stack.sigmoid));
  predictive.push_back(sched::MakeSmiteMethod(world.features(), stack.smite));

  common::Table table({"servers", "GAugur(RM)", "Sigmoid", "SMiTe", "VBP"},
                      1);
  std::vector<std::vector<double>> cdf_fps(4);
  for (std::size_t num_servers : {1500u, 2000u, 2500u, 3000u}) {
    sched::AssignmentOptions options;
    options.num_servers = num_servers;
    std::vector<common::Cell> row{static_cast<long long>(num_servers)};
    for (std::size_t mi = 0; mi < predictive.size(); ++mi) {
      const auto servers = sched::AssignByPredictedFps(
          *predictive[mi], world.features(), requests, options);
      const auto fps = sched::EvaluateAssignment(world.lab(), servers);
      row.emplace_back(common::Mean(fps));
      if (num_servers == 2000u) cdf_fps[mi] = fps;
    }
    const auto vbp_servers = sched::AssignWorstFit(
        stack.vbp, world.features(), requests, options);
    const auto vbp_fps = sched::EvaluateAssignment(world.lab(), vbp_servers);
    row.emplace_back(common::Mean(vbp_fps));
    if (num_servers == 2000u) cdf_fps[3] = vbp_fps;
    table.AddRow(std::move(row));
  }
  table.Print(std::cout,
              "Figure 10a: average realized FPS of 5000 requests");
  bench::WriteResultCsv("fig10a_average_fps", table);

  common::Table cdf({"CDF", "GAugur(RM)", "Sigmoid", "SMiTe", "VBP"}, 1);
  for (int i = 1; i <= 10; ++i) {
    const double q = i / 10.0;
    cdf.AddRow({q, common::Percentile(cdf_fps[0], q),
                common::Percentile(cdf_fps[1], q),
                common::Percentile(cdf_fps[2], q),
                common::Percentile(cdf_fps[3], q)});
  }
  cdf.Print(std::cout,
            "Figure 10b: FPS value at each CDF percentile (2000 servers)");
  bench::WriteResultCsv("fig10b_fps_cdf", cdf);

  std::printf(
      "\nPaper: GAugur(RM) best at every fleet size, up to 15%% over the "
      "alternatives; higher FPS CDF throughout.\n");
  return 0;
}
