// Figures 9a/9b: feasibility judgement quality over all 385 colocations
// (sizes 1-4) of 10 study games, at QoS 60 FPS: TP/FP/FN/TN counts (9a)
// and accuracy / precision / recall (9b) for GAugur(CM), GAugur(RM),
// Sigmoid, SMiTe and VBP.
//
// Paper shape: GAugur(CM) ~94% precision / ~88% recall, far ahead of
// Sigmoid, SMiTe and VBP, whose low precision (QoS-violating false
// positives) is the dangerous failure mode for cloud gaming.

#include <iostream>
#include <memory>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "common/table.h"
#include "ml/metrics.h"
#include "sched/enumeration.h"
#include "sched/methodology.h"
#include "sched/study.h"

using namespace gaugur;

int main() {
  constexpr double kQos = 60.0;
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();

  const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 4);
  std::printf("study pool: %zu games, %zu candidate colocations\n",
              setup.game_ids.size(), colocations.size());

  std::vector<int> truth;
  truth.reserve(colocations.size());
  std::size_t truly_feasible = 0;
  for (const auto& c : colocations) {
    const bool feasible = world.lab().TrulyFeasible(c, kQos);
    truth.push_back(feasible ? 1 : 0);
    truly_feasible += feasible ? 1 : 0;
  }
  std::printf("ground truth: %zu of %zu colocations are feasible\n\n",
              truly_feasible, colocations.size());

  std::vector<std::unique_ptr<sched::Methodology>> methods;
  methods.push_back(sched::MakeGAugurCmMethod(stack.gaugur));
  methods.push_back(sched::MakeGAugurRmMethod(stack.gaugur));
  methods.push_back(sched::MakeSigmoidMethod(world.features(), stack.sigmoid));
  methods.push_back(sched::MakeSmiteMethod(world.features(), stack.smite));
  methods.push_back(sched::MakeVbpMethod(world.features(), stack.vbp));

  common::Table counts({"methodology", "TP", "FP", "FN", "TN"}, 0);
  common::Table metrics({"methodology", "accuracy", "precision", "recall"},
                        3);
  for (const auto& method : methods) {
    // All 385 candidates judged in one batched call.
    const std::vector<char> verdicts =
        method->FeasibleBatch(kQos, colocations);
    std::vector<int> predicted(verdicts.begin(), verdicts.end());
    const auto cm = ml::ComputeConfusion(predicted, truth);
    counts.AddRow({method->Name(), static_cast<long long>(cm.tp),
                   static_cast<long long>(cm.fp),
                   static_cast<long long>(cm.fn),
                   static_cast<long long>(cm.tn)});
    metrics.AddRow(
        {method->Name(), cm.Accuracy(), cm.Precision(), cm.Recall()});
  }
  counts.Print(std::cout, "Figure 9a: TP/FP/FN/TN per methodology");
  metrics.Print(std::cout,
                "Figure 9b: accuracy, precision and recall per methodology");
  bench::WriteResultCsv("fig9a_confusion", counts);
  bench::WriteResultCsv("fig9b_metrics", metrics);

  std::printf(
      "\nPaper: GAugur(CM) precision 94%% / recall 88%%; the baselines "
      "mistake many infeasible colocations for feasible ones.\n");
  return 0;
}
