// The fully trained prediction stack shared by the §4/§5 benches:
// GAugur's GBRT regression model and GBDT classification model (each
// trained on the paper's 1000 training samples), plus the Sigmoid, SMiTe
// and VBP baselines trained on the same corpus.
#pragma once

#include "baselines/sigmoid_model.h"
#include "baselines/smite_model.h"
#include "baselines/vbp_model.h"
#include "bench/bench_world.h"
#include "gaugur/predictor.h"

namespace gaugur::bench {

struct TrainedStack {
  core::GAugurPredictor gaugur;
  baselines::SigmoidModel sigmoid;
  baselines::SmiteModel smite;
  baselines::VbpModel vbp;

  /// Number of RM training samples actually used (paper target: 1000).
  std::size_t rm_samples = 0;

  static const TrainedStack& Get();
};

}  // namespace gaugur::bench
