// Dynamic fleet study: sessions arrive and depart over a 12-hour horizon;
// each arrival is admitted immediately and never migrated. Compares
// admission policies on server-minutes (cost), peak fleet size
// (provisioning) and realized QoS violations:
//   * GAugur(CM) first-feasible admission,
//   * GAugur(RM) thresholded,
//   * Sigmoid / SMiTe thresholded,
//   * VBP capacity admission,
//   * ground-truth oracle and dedicated-server bounds.
//
// This extends the paper's static §5.1 study to the arrival/departure
// dynamics its motivation describes.

#include <chrono>
#include <iostream>
#include <memory>

#include "bench/bench_world.h"
#include "bench/trained_stack.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "sched/dynamic.h"
#include "sched/methodology.h"
#include "sched/study.h"

using namespace gaugur;

int main() {
  constexpr double kQos = 60.0;
  constexpr double kHorizonMin = 720.0;  // a 12-hour service day
  const auto& world = bench::BenchWorld::Get();
  const auto& stack = bench::TrainedStack::Get();
  const auto wall_start = std::chrono::steady_clock::now();

  const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, 5);
  const auto trace = sched::GenerateDynamicTrace(
      setup.game_ids, kHorizonMin, /*arrivals_per_min=*/1.5,
      /*mean_duration_min=*/35.0, 21);
  std::printf("trace: %zu sessions over %.0f minutes\n", trace.size(),
              kHorizonMin);

  std::vector<std::unique_ptr<sched::Methodology>> methods;
  methods.push_back(sched::MakeGAugurCmMethod(stack.gaugur));
  methods.push_back(sched::MakeGAugurRmMethod(stack.gaugur));
  methods.push_back(sched::MakeSigmoidMethod(world.features(), stack.sigmoid));
  methods.push_back(sched::MakeSmiteMethod(world.features(), stack.smite));
  methods.push_back(sched::MakeVbpMethod(world.features(), stack.vbp));

  common::Table table({"policy", "server-minutes", "mean servers",
                       "peak servers", "violated sessions %"},
                      1);
  obs::JsonObject policy_counters;
  auto run = [&](const std::string& name,
                 const sched::PlacementPolicy& policy) {
    const auto result =
        sched::SimulateDynamicFleet(world.lab(), trace, policy);
    table.AddRow({name, result.server_minutes,
                  result.MeanServersInUse(kHorizonMin),
                  static_cast<long long>(result.peak_servers),
                  100.0 * static_cast<double>(result.violated_sessions) /
                      static_cast<double>(result.sessions)});
    policy_counters[name + ".server_minutes"] = result.server_minutes;
    policy_counters[name + ".violated_sessions"] =
        static_cast<unsigned long long>(result.violated_sessions);
  };

  for (const auto& method : methods) {
    // One batched feasibility call per arrival (all open servers scored
    // together); GAugur methods answer it with a single model evaluation.
    run(method->Name(),
        sched::MakeBatchFeasiblePolicy(
            [&](std::span<const core::Colocation> candidates) {
              return method->FeasibleBatch(kQos, candidates);
            }));
  }
  run("Oracle", sched::MakeFirstFeasiblePolicy(
                    [&](const core::Colocation& c) {
                      return world.lab().TrulyFeasible(c, kQos);
                    }));
  run("Dedicated", sched::MakeDedicatedPolicy());

  table.Print(std::cout,
              "Dynamic fleet: admission policies over a 12-hour trace");
  bench::WriteResultCsv("dynamic_fleet", table);

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  obs::JsonObject config;
  config["qos_fps"] = kQos;
  config["horizon_min"] = kHorizonMin;
  config["sessions"] = static_cast<unsigned long long>(trace.size());
  config["fast_mode"] = world.fast_mode();
  policy_counters["sched.placements"] = static_cast<unsigned long long>(
      obs::Registry::Global().GetCounter("sched.placements").Value());
  policy_counters["model_monitor.outcomes_joined"] =
      static_cast<unsigned long long>(
          obs::Registry::Global()
              .GetCounter("model_monitor.outcomes_joined")
              .Value());
  bench::WriteBenchJson("dynamic", wall_ms, std::move(config),
                        std::move(policy_counters));

  std::printf(
      "\nColocation admission should approach the oracle's server-minutes "
      "at near-zero violations;\npermissive baselines trade violations "
      "for cost, conservative ones waste servers.\n");
  return 0;
}
