// Predictor throughput: queries/sec of the online feasibility service
// under three regimes over the same CM query stream:
//
//  * scalar  — the legacy per-query path: build one feature vector, walk
//    every boosting stage with the pointer-chasing TreeModel traversal,
//    sigmoid, threshold. This is what every scheduler paid per candidate
//    before the batched inference engine.
//  * batch   — GAugurPredictor::PredictQosOkBatch with the prediction
//    cache disabled: one row-major feature matrix per chunk and one
//    flattened-kernel PredictProbBatch call over it.
//  * cached  — the same entry point with the LRU PredictionCache warmed,
//    the regime a scheduler sees when arrivals revisit open servers.
//
// Decisions are cross-checked for agreement across all three regimes.
// Emits bench_results/BENCH_predictor.json with the three QPS numbers and
// the speedup ratios CI trend-tracks (batch >= 3x scalar, cached >=
// batch).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_world.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "gaugur/predictor.h"
#include "gaugur/training.h"
#include "ml/gradient_boosting.h"
#include "obs/switch.h"
#include "sched/enumeration.h"
#include "sched/study.h"

using namespace gaugur;

namespace {

constexpr double kQos = 60.0;
constexpr std::size_t kChunk = 512;  // queries per batched call

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-batching predictor hot path, replicated verbatim: fresh
/// feature vector, per-stage scalar tree walks, sigmoid, threshold.
std::vector<char> RunScalarBaseline(
    const core::FeatureBuilder& features,
    const ml::GradientBoostedClassifier& gbdt, double threshold,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::vector<double> x =
        features.CmFeatures(kQos, queries[i].victim, queries[i].corunners);
    double log_odds = gbdt.BaseValue();
    for (const ml::TreeModel& tree : gbdt.Stages()) {
      log_odds += gbdt.Config().learning_rate * tree.Predict(x);
    }
    decisions[i] = common::Sigmoid(log_odds) >= threshold ? 1 : 0;
  }
  return decisions;
}

std::vector<char> RunPredictorChunked(
    const core::GAugurPredictor& predictor,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions;
  decisions.reserve(queries.size());
  for (std::size_t begin = 0; begin < queries.size(); begin += kChunk) {
    const std::size_t count = std::min(kChunk, queries.size() - begin);
    const auto chunk = predictor.PredictQosOkBatch(
        kQos, queries.subspan(begin, count));
    decisions.insert(decisions.end(), chunk.begin(), chunk.end());
  }
  return decisions;
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto wall_start = std::chrono::steady_clock::now();

  // Two predictors trained identically (same config/seed/data): one with
  // the cache off, one with it on. The bare GBDT below is constructed
  // with the same seed and dataset as their CM, so all regimes evaluate
  // the exact same model.
  core::PredictorConfig config;
  config.cm_decision_threshold = 0.8;
  core::PredictorConfig uncached_config = config;
  uncached_config.prediction_cache_capacity = 0;
  core::GAugurPredictor uncached(world.features(), uncached_config);
  core::GAugurPredictor cached(world.features(), config);

  const std::vector<double> qos_grid{40.0, 50.0, 55.0, 60.0,
                                     65.0, 70.0, 80.0};
  const auto cm_dataset = core::BuildCmDatasetMultiQos(
      world.features(), world.train_colocations(), qos_grid);
  uncached.TrainCmOnDataset(cm_dataset);
  cached.TrainCmOnDataset(cm_dataset);

  ml::BoostConfig boost;
  boost.seed = config.seed + 1;  // the seed MakeClassifier gives the CM
  ml::GradientBoostedClassifier gbdt(boost);
  gbdt.Fit(cm_dataset);

  // Query stream: every (victim, colocation) pair of the study
  // enumeration, replayed round-robin — schedulers re-scoring the same
  // open-server candidates across arrivals.
  const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 4);
  std::vector<core::SessionRequest> pool;
  std::size_t slots = 0;
  for (const auto& c : colocations) slots += c.size() * (c.size() - 1);
  pool.reserve(slots);
  std::vector<core::QosQuery> distinct;
  for (const auto& colocation : colocations) {
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      const std::size_t begin = pool.size();
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) pool.push_back(colocation[j]);
      }
      distinct.push_back(
          {colocation[v],
           std::span<const core::SessionRequest>(pool.data() + begin,
                                                 pool.size() - begin)});
    }
  }
  const std::size_t target = world.fast_mode() ? 2000 : 20000;
  std::vector<core::QosQuery> queries;
  queries.reserve(target);
  while (queries.size() < target) {
    const std::size_t take =
        std::min(distinct.size(), target - queries.size());
    queries.insert(queries.end(), distinct.begin(),
                   distinct.begin() + static_cast<std::ptrdiff_t>(take));
  }
  std::printf("query stream: %zu queries (%zu distinct), %zu-query chunks\n",
              queries.size(), distinct.size(), kChunk);

  double scalar_s = 0.0, batch_s = 0.0, cached_s = 0.0;
  std::vector<char> scalar_dec, batch_dec, cached_dec;
  {
    // Timed sections run with observability off: measure inference, not
    // audit bookkeeping.
    const obs::EnabledScope obs_off(false);

    auto t0 = std::chrono::steady_clock::now();
    scalar_dec = RunScalarBaseline(world.features(), gbdt,
                                   config.cm_decision_threshold, queries);
    scalar_s = SecondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    batch_dec = RunPredictorChunked(uncached, queries);
    batch_s = SecondsSince(t0);

    RunPredictorChunked(cached, queries);  // warm the cache
    t0 = std::chrono::steady_clock::now();
    cached_dec = RunPredictorChunked(cached, queries);
    cached_s = SecondsSince(t0);
  }

  GAUGUR_CHECK_MSG(scalar_dec == batch_dec && batch_dec == cached_dec,
                   "regimes disagree on decisions");
  const auto stats = cached.PredictionCacheStats();
  GAUGUR_CHECK_MSG(stats.hits > 0, "cached regime never hit the cache");

  const double n = static_cast<double>(queries.size());
  const double scalar_qps = n / scalar_s;
  const double batch_qps = n / batch_s;
  const double cached_qps = n / cached_s;
  std::printf("scalar  : %10.0f queries/sec\n", scalar_qps);
  std::printf("batch   : %10.0f queries/sec  (%.2fx scalar)\n", batch_qps,
              batch_qps / scalar_qps);
  std::printf("cached  : %10.0f queries/sec  (%.2fx batch)\n", cached_qps,
              cached_qps / batch_qps);

  obs::JsonObject json_config;
  json_config["qos_fps"] = kQos;
  json_config["queries"] = static_cast<unsigned long long>(queries.size());
  json_config["distinct_queries"] =
      static_cast<unsigned long long>(distinct.size());
  json_config["chunk"] = static_cast<unsigned long long>(kChunk);
  json_config["cache_capacity"] = static_cast<unsigned long long>(
      config.prediction_cache_capacity);
  json_config["fast_mode"] = world.fast_mode();
  obs::JsonObject counters;
  counters["scalar_qps"] = scalar_qps;
  counters["batch_qps"] = batch_qps;
  counters["cached_qps"] = cached_qps;
  counters["speedup_batch_vs_scalar"] = batch_qps / scalar_qps;
  counters["speedup_cached_vs_batch"] = cached_qps / batch_qps;
  counters["cache_hits"] = static_cast<unsigned long long>(stats.hits);
  counters["cache_misses"] = static_cast<unsigned long long>(stats.misses);
  bench::WriteBenchJson("predictor",
                        1000.0 * SecondsSince(wall_start),
                        std::move(json_config), std::move(counters));

  std::printf(
      "\nThe flattened-kernel batch path should clear 3x the legacy "
      "scalar QPS,\nand the warmed cache should beat the batch path "
      "again.\n");
  return 0;
}
