// Predictor throughput: queries/sec of the online feasibility service
// under three regimes over the same CM query stream:
//
//  * scalar  — the legacy per-query path: build one feature vector, walk
//    every boosting stage with the pointer-chasing TreeModel traversal,
//    sigmoid, threshold. This is what every scheduler paid per candidate
//    before the batched inference engine.
//  * batch   — GAugurPredictor::PredictQosOkBatch with the prediction
//    cache disabled: one row-major feature matrix per chunk and one
//    flattened-kernel PredictProbBatch call over it.
//  * cached  — the same entry point with the LRU PredictionCache warmed,
//    the regime a scheduler sees when arrivals revisit open servers.
//
// Decisions are cross-checked for agreement across all three regimes.
//
// On top of the regimes, three kernel-variant axes, every variant
// cross-checked for decision agreement (the bit-identicality contract):
//
//  * SIMD tiers (see ml::SimdTier): the uncached batch regime re-timed
//    with dispatch forced to each tier the host supports
//    (batch_<scalar|sse|avx2>_qps), plus a kernel-only pass timing
//    PredictProbBatch over a prebuilt feature matrix per tier
//    (kernel_<tier>_rps) so the descent speedup is visible undiluted by
//    feature building. These force the quantized path OFF — they are
//    the float-kernel reference numbers, comparable across PRs.
//  * quantized descent: kernel_quant_<scalar|avx2>_rps times the
//    quantized DESCENT over a pre-binned batch (rows-blocked, trees
//    inner — exactly AccumulateBatch's loop structure), symmetric with
//    the float kernel descending a pre-built matrix. Binning is the
//    quantized path's batch prep the way feature materialization is the
//    float path's, so it is timed as its own number (quant_bin_rows_ps)
//    rather than smeared into the kernel rate, and the honest
//    through-the-predictor rate including binning ships alongside as
//    kernel_quant_<k>_e2e_rps. speedup_quant_vs_float_kernel = best
//    quantized descent / float descent at the best tier
//    (kernel_float_descent_rps, same harness) — the ratio the
//    quantization work is accountable for.
//  * multi-core (--threads k1,k2,...): AccumulateBatchMt over explicit
//    ThreadPool(k) instances (kernel_mt_<k>_rps), with results checked
//    bit-identical across every k, per-core scaling efficiency
//    reported (mt_scaling_efficiency), and the uncached batch regime
//    re-timed with the parallel path forced on (batch_mt_qps).
//
// Emits bench_results/BENCH_predictor.json with the QPS numbers and the
// speedup ratios CI trend-tracks (batch >= 3x scalar, cached >= batch,
// speedup_simd_vs_scalar_kernel on SIMD-capable hosts, and
// speedup_quant_vs_float_kernel >= 2 on quantized builds).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_world.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "common/thread_pool.h"
#include "gaugur/predictor.h"
#include "gaugur/training.h"
#include "ml/gradient_boosting.h"
#include "ml/tree_kernel.h"
#include "obs/switch.h"
#include "sched/enumeration.h"
#include "sched/study.h"

using namespace gaugur;

namespace {

constexpr double kQos = 60.0;
constexpr std::size_t kChunk = 512;  // queries per batched call

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-batching predictor hot path, replicated verbatim: fresh
/// feature vector, per-stage scalar tree walks, sigmoid, threshold.
std::vector<char> RunScalarBaseline(
    const core::FeatureBuilder& features,
    const ml::GradientBoostedClassifier& gbdt, double threshold,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::vector<double> x =
        features.CmFeatures(kQos, queries[i].victim, queries[i].corunners);
    double log_odds = gbdt.BaseValue();
    for (const ml::TreeModel& tree : gbdt.Stages()) {
      log_odds += gbdt.Config().learning_rate * tree.Predict(x);
    }
    decisions[i] = common::Sigmoid(log_odds) >= threshold ? 1 : 0;
  }
  return decisions;
}

std::vector<char> RunPredictorChunked(
    const core::GAugurPredictor& predictor,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions;
  decisions.reserve(queries.size());
  for (std::size_t begin = 0; begin < queries.size(); begin += kChunk) {
    const std::size_t count = std::min(kChunk, queries.size() - begin);
    const auto chunk = predictor.PredictQosOkBatch(
        kQos, queries.subspan(begin, count));
    decisions.insert(decisions.end(), chunk.begin(), chunk.end());
  }
  return decisions;
}

/// Parses "--threads 1,2,4" (or "--threads=1,2,4"). Default: powers of
/// two up to the hardware thread count, so the scaling claim is
/// measured against what the machine actually has.
std::vector<std::size_t> ParseThreadsAxis(int argc, char** argv) {
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--threads=", 0) == 0) {
      spec = arg.substr(10);
    } else if (arg == "--threads" && i + 1 < argc) {
      spec = argv[++i];
    }
  }
  std::vector<std::size_t> axis;
  if (spec.empty()) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    for (std::size_t k = 1; k <= hw; k *= 2) axis.push_back(k);
    return axis;
  }
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const unsigned long k = std::stoul(tok);
    GAUGUR_CHECK_MSG(k >= 1 && k <= 256, "--threads entry out of range");
    axis.push_back(static_cast<std::size_t>(k));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return axis;
}

}  // namespace

int main(int argc, char** argv) {
  const auto& world = bench::BenchWorld::Get();
  const std::vector<std::size_t> threads_axis = ParseThreadsAxis(argc, argv);
  const auto wall_start = std::chrono::steady_clock::now();

  // Two predictors trained identically (same config/seed/data): one with
  // the cache off, one with it on. The bare GBDT below is constructed
  // with the same seed and dataset as their CM, so all regimes evaluate
  // the exact same model.
  core::PredictorConfig config;
  config.cm_decision_threshold = 0.8;
  core::PredictorConfig uncached_config = config;
  uncached_config.prediction_cache_capacity = 0;
  core::GAugurPredictor uncached(world.features(), uncached_config);
  core::GAugurPredictor cached(world.features(), config);

  const std::vector<double> qos_grid{40.0, 50.0, 55.0, 60.0,
                                     65.0, 70.0, 80.0};
  const auto cm_dataset = core::BuildCmDatasetMultiQos(
      world.features(), world.train_colocations(), qos_grid);
  uncached.TrainCmOnDataset(cm_dataset);
  cached.TrainCmOnDataset(cm_dataset);

  ml::BoostConfig boost;
  boost.seed = config.seed + 1;  // the seed MakeClassifier gives the CM
  ml::GradientBoostedClassifier gbdt(boost);
  gbdt.Fit(cm_dataset);

  // Query stream: every (victim, colocation) pair of the study
  // enumeration, replayed round-robin — schedulers re-scoring the same
  // open-server candidates across arrivals.
  const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 4);
  std::vector<core::SessionRequest> pool;
  std::size_t slots = 0;
  for (const auto& c : colocations) slots += c.size() * (c.size() - 1);
  pool.reserve(slots);
  std::vector<core::QosQuery> distinct;
  for (const auto& colocation : colocations) {
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      const std::size_t begin = pool.size();
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) pool.push_back(colocation[j]);
      }
      distinct.push_back(
          {colocation[v],
           std::span<const core::SessionRequest>(pool.data() + begin,
                                                 pool.size() - begin)});
    }
  }
  const std::size_t target = world.fast_mode() ? 2000 : 20000;
  std::vector<core::QosQuery> queries;
  queries.reserve(target);
  while (queries.size() < target) {
    const std::size_t take =
        std::min(distinct.size(), target - queries.size());
    queries.insert(queries.end(), distinct.begin(),
                   distinct.begin() + static_cast<std::ptrdiff_t>(take));
  }
  std::printf("query stream: %zu queries (%zu distinct), %zu-query chunks\n",
              queries.size(), distinct.size(), kChunk);

  double scalar_s = 0.0, batch_s = 0.0, cached_s = 0.0;
  std::vector<char> scalar_dec, batch_dec, cached_dec;
  {
    // Timed sections run with observability off: measure inference, not
    // audit bookkeeping.
    const obs::EnabledScope obs_off(false);

    auto t0 = std::chrono::steady_clock::now();
    scalar_dec = RunScalarBaseline(world.features(), gbdt,
                                   config.cm_decision_threshold, queries);
    scalar_s = SecondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    batch_dec = RunPredictorChunked(uncached, queries);
    batch_s = SecondsSince(t0);

    RunPredictorChunked(cached, queries);  // warm the cache
    t0 = std::chrono::steady_clock::now();
    cached_dec = RunPredictorChunked(cached, queries);
    cached_s = SecondsSince(t0);
  }

  GAUGUR_CHECK_MSG(scalar_dec == batch_dec && batch_dec == cached_dec,
                   "regimes disagree on decisions");
  const auto stats = cached.PredictionCacheStats();
  GAUGUR_CHECK_MSG(stats.hits > 0, "cached regime never hit the cache");

  // Kernel-variant axis: every descent tier the host supports, timed two
  // ways. End-to-end re-runs the uncached batch regime with dispatch
  // forced to the tier; kernel-only times PredictProbBatch over one
  // prebuilt feature matrix, isolating the descent from feature building
  // and cache probes.
  std::vector<ml::SimdTier> tiers{ml::SimdTier::kScalar};
  if (ml::FlatForest::SupportedTier() >= ml::SimdTier::kSse) {
    tiers.push_back(ml::SimdTier::kSse);
  }
  if (ml::FlatForest::SupportedTier() >= ml::SimdTier::kAvx2) {
    tiers.push_back(ml::SimdTier::kAvx2);
  }
  std::vector<double> tier_batch_qps(tiers.size());
  std::vector<double> tier_kernel_rps(tiers.size());
  // Quantized kernels: the portable scalar one everywhere, the 8-lane
  // permute/gather one on AVX2 hosts.
  std::vector<std::string> quant_names;
  std::vector<double> quant_kernel_rps;
  std::vector<double> quant_e2e_rps;
  double quant_bin_rows_ps = 0.0;
  double float_descent_rps = 0.0;
  std::vector<double> mt_kernel_rps(threads_axis.size());
  double batch_mt_qps = 0.0;
  std::vector<double> matrix;
  for (const core::QosQuery& q : queries) {
    const std::vector<double> x =
        world.features().CmFeatures(kQos, q.victim, q.corunners);
    matrix.insert(matrix.end(), x.begin(), x.end());
  }
  const std::size_t cols = matrix.size() / queries.size();
  const ml::MatrixView view{matrix.data(), queries.size(), cols};
  const int kernel_reps = world.fast_mode() ? 4 : 8;
  {
    const obs::EnabledScope obs_off(false);
    std::vector<double> probs(queries.size());
    // Float reference numbers: quantization and the multi-core path
    // forced off, so kernel_<tier>_rps stays the pure single-core float
    // descent, comparable with earlier PRs' committed results.
    ml::FlatForest::ForceQuantized(
        ml::FlatForest::QuantizedSupported() ? std::optional<bool>(false)
                                             : std::nullopt);
    ml::FlatForest::ForceParallel(false);
    for (std::size_t k = 0; k < tiers.size(); ++k) {
      ml::FlatForest::ForceTier(tiers[k]);

      auto t0 = std::chrono::steady_clock::now();
      const auto tier_dec = RunPredictorChunked(uncached, queries);
      tier_batch_qps[k] =
          static_cast<double>(queries.size()) / SecondsSince(t0);
      GAUGUR_CHECK_MSG(tier_dec == batch_dec,
                       "tier " << ml::SimdTierName(tiers[k])
                               << " changed decisions");

      t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kernel_reps; ++rep) {
        gbdt.PredictProbBatch(view, probs);
      }
      tier_kernel_rps[k] = static_cast<double>(queries.size()) *
                           kernel_reps / SecondsSince(t0);
    }
    ml::FlatForest::ForceTier(std::nullopt);

    // Quantized axis. The kernel number is the descent over a
    // pre-binned batch, rows-blocked with trees inner exactly like
    // AccumulateBatch — symmetric with the float kernel descending the
    // pre-built matrix above. Binning (the quantized path's batch prep,
    // the analogue of feature materialization on the float side) gets
    // its own rate, and the end-to-end PredictProbBatch rate including
    // a fresh binning per call ships alongside so nothing hides.
    if (ml::FlatForest::QuantizedSupported() &&
        gbdt.Kernel().QuantizedBuilt()) {
      const auto& flat = gbdt.Kernel();
      const std::size_t rows = queries.size();
      constexpr std::size_t kRowBlock = 512;  // mirrors AccumulateBatch
      const auto descent_ms_per_rep = [&](auto&& tree_pass) {
        std::vector<double> sums(rows);
        const auto t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < kernel_reps; ++rep) {
          std::fill(sums.begin(), sums.end(), 0.0);
          for (std::size_t rb = 0; rb < rows; rb += kRowBlock) {
            const std::size_t brows = std::min(kRowBlock, rows - rb);
            for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
              tree_pass(t, rb, brows, std::span<double>(sums).subspan(rb, brows));
            }
          }
        }
        return SecondsSince(t0) / kernel_reps;
      };
      const double lr = gbdt.Config().learning_rate;

      // Float descent at the best tier, same harness: the denominator
      // of speedup_quant_vs_float_kernel.
      const ml::SimdTier best = ml::FlatForest::SupportedTier();
      float_descent_rps =
          static_cast<double>(rows) /
          descent_ms_per_rep([&](std::size_t t, std::size_t rb,
                                 std::size_t brows, std::span<double> o) {
            const ml::MatrixView bx{matrix.data() + rb * cols, brows, cols};
            flat.AccumulateTreeBatchTier(t, bx, o, lr, best);
          });

      ml::FlatForest::ForceQuantized(true);
      const auto quant_dec = RunPredictorChunked(uncached, queries);
      GAUGUR_CHECK_MSG(quant_dec == batch_dec,
                       "quantized path changed decisions");

      std::vector<std::uint16_t> bins;
      auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kernel_reps; ++rep) flat.BinBatch(view, bins);
      quant_bin_rows_ps = static_cast<double>(rows) * kernel_reps /
                          SecondsSince(t0);

      std::vector<ml::SimdTier> quant_tiers{ml::SimdTier::kScalar};
      if (ml::FlatForest::SupportedTier() >= ml::SimdTier::kAvx2) {
        quant_tiers.push_back(ml::SimdTier::kAvx2);
      }
      for (ml::SimdTier tier : quant_tiers) {
        quant_names.push_back(std::string("quant_") +
                              ml::SimdTierName(tier));
        quant_kernel_rps.push_back(
            static_cast<double>(rows) /
            descent_ms_per_rep([&](std::size_t t, std::size_t rb,
                                   std::size_t brows, std::span<double> o) {
              flat.AccumulateTreeQuantTier(t, bins.data() + rb * cols, brows,
                                           cols, o, lr, tier);
            }));

        // End-to-end including a fresh binning pass every call.
        ml::FlatForest::ForceTier(tier);
        t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < kernel_reps; ++rep) {
          gbdt.PredictProbBatch(view, probs);
        }
        quant_e2e_rps.push_back(static_cast<double>(rows) * kernel_reps /
                                SecondsSince(t0));
      }
      ml::FlatForest::ForceTier(std::nullopt);
    }
    ml::FlatForest::ForceQuantized(std::nullopt);

    // Multi-core axis: the raw kernel over explicit pools, one per
    // --threads entry, every worker count checked bit-identical against
    // the single-threaded accumulation (the deterministic-reduction
    // contract, enforced here so the JSON never ships numbers from a
    // run that broke it).
    std::vector<double> sums(queries.size());
    std::vector<double> reference(queries.size(), gbdt.BaseValue());
    gbdt.Kernel().AccumulateBatch(view, reference,
                                  gbdt.Config().learning_rate);
    for (std::size_t k = 0; k < threads_axis.size(); ++k) {
      common::ThreadPool pool(threads_axis[k]);
      auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kernel_reps; ++rep) {
        std::fill(sums.begin(), sums.end(), gbdt.BaseValue());
        gbdt.Kernel().AccumulateBatchMt(view, sums,
                                        gbdt.Config().learning_rate, pool);
      }
      mt_kernel_rps[k] = static_cast<double>(queries.size()) * kernel_reps /
                         SecondsSince(t0);
      GAUGUR_CHECK_MSG(sums == reference,
                       threads_axis[k]
                           << " workers changed the accumulation bits");
    }

    // End-to-end with the parallel path forced on (the global pool):
    // what a scheduler-facing batch sees on a many-core host.
    ml::FlatForest::ForceParallel(true);
    auto t0 = std::chrono::steady_clock::now();
    const auto mt_dec = RunPredictorChunked(uncached, queries);
    batch_mt_qps = static_cast<double>(queries.size()) / SecondsSince(t0);
    GAUGUR_CHECK_MSG(mt_dec == batch_dec,
                     "multi-core path changed decisions");
    ml::FlatForest::ForceParallel(std::nullopt);
  }

  const double n = static_cast<double>(queries.size());
  const double scalar_qps = n / scalar_s;
  const double batch_qps = n / batch_s;
  const double cached_qps = n / cached_s;
  std::printf("scalar  : %10.0f queries/sec\n", scalar_qps);
  std::printf("batch   : %10.0f queries/sec  (%.2fx scalar)\n", batch_qps,
              batch_qps / scalar_qps);
  std::printf("cached  : %10.0f queries/sec  (%.2fx batch)\n", cached_qps,
              cached_qps / batch_qps);
  for (std::size_t k = 0; k < tiers.size(); ++k) {
    std::printf(
        "kernel %-12s: %10.0f end-to-end qps, %12.0f kernel rows/sec"
        "  (%.2fx scalar kernel)\n",
        ml::SimdTierName(tiers[k]), tier_batch_qps[k], tier_kernel_rps[k],
        tier_kernel_rps[k] / tier_kernel_rps[0]);
  }
  if (float_descent_rps > 0.0) {
    std::printf("float descent     : %26.0f descent rows/sec  (best tier)\n",
                float_descent_rps);
    std::printf("quant binning     : %26.0f rows/sec  (batch prep)\n",
                quant_bin_rows_ps);
  }
  for (std::size_t k = 0; k < quant_names.size(); ++k) {
    std::printf(
        "kernel %-12s: %19.0f descent rows/sec  (%.2fx float descent, "
        "%.0f e2e rows/sec)\n",
        quant_names[k].c_str(), quant_kernel_rps[k],
        quant_kernel_rps[k] / float_descent_rps, quant_e2e_rps[k]);
  }
  for (std::size_t k = 0; k < threads_axis.size(); ++k) {
    const double eff = mt_kernel_rps[k] / mt_kernel_rps.front() /
                       static_cast<double>(threads_axis[k]);
    std::printf(
        "kernel mt %2zu thr : %27.0f kernel rows/sec  (%.0f%% per-core)\n",
        threads_axis[k], mt_kernel_rps[k], 100.0 * eff);
  }
  std::printf("batch mt: %10.0f queries/sec  (parallel path forced on)\n",
              batch_mt_qps);

  obs::JsonObject json_config;
  json_config["qos_fps"] = kQos;
  json_config["queries"] = static_cast<unsigned long long>(queries.size());
  json_config["distinct_queries"] =
      static_cast<unsigned long long>(distinct.size());
  json_config["chunk"] = static_cast<unsigned long long>(kChunk);
  json_config["cache_capacity"] = static_cast<unsigned long long>(
      config.prediction_cache_capacity);
  json_config["fast_mode"] = world.fast_mode();
  json_config["simd_supported"] =
      std::string(ml::SimdTierName(ml::FlatForest::SupportedTier()));
  json_config["simd_active"] =
      std::string(ml::SimdTierName(ml::FlatForest::ActiveTier()));
  json_config["quant_supported"] = ml::FlatForest::QuantizedSupported();
  json_config["quant_active"] = ml::FlatForest::QuantizedActive();
  json_config["hardware_threads"] = static_cast<unsigned long long>(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::string axis_str;
  for (std::size_t k : threads_axis) {
    if (!axis_str.empty()) axis_str += ",";
    axis_str += std::to_string(k);
  }
  json_config["threads_axis"] = axis_str;
  obs::JsonObject counters;
  counters["scalar_qps"] = scalar_qps;
  counters["batch_qps"] = batch_qps;
  counters["cached_qps"] = cached_qps;
  counters["speedup_batch_vs_scalar"] = batch_qps / scalar_qps;
  counters["speedup_cached_vs_batch"] = cached_qps / batch_qps;
  counters["cache_hits"] = static_cast<unsigned long long>(stats.hits);
  counters["cache_misses"] = static_cast<unsigned long long>(stats.misses);
  for (std::size_t k = 0; k < tiers.size(); ++k) {
    const std::string name = ml::SimdTierName(tiers[k]);
    counters["batch_" + name + "_qps"] = tier_batch_qps[k];
    counters["kernel_" + name + "_rps"] = tier_kernel_rps[k];
  }
  // Best supported tier's raw descent throughput over the portable
  // scalar kernel — the number the SIMD work is accountable for.
  counters["speedup_simd_vs_scalar_kernel"] =
      tier_kernel_rps.back() / tier_kernel_rps.front();
  for (std::size_t k = 0; k < quant_names.size(); ++k) {
    counters["kernel_" + quant_names[k] + "_rps"] = quant_kernel_rps[k];
    counters["kernel_" + quant_names[k] + "_e2e_rps"] = quant_e2e_rps[k];
  }
  if (!quant_kernel_rps.empty()) {
    counters["kernel_float_descent_rps"] = float_descent_rps;
    counters["quant_bin_rows_ps"] = quant_bin_rows_ps;
    // Best quantized descent over the float descent at the best tier,
    // both over pre-built inputs in the same rows-blocked harness — the
    // number the quantization work is accountable for (CI gates the
    // committed value >= 2).
    counters["speedup_quant_vs_float_kernel"] =
        *std::max_element(quant_kernel_rps.begin(), quant_kernel_rps.end()) /
        float_descent_rps;
  }
  for (std::size_t k = 0; k < threads_axis.size(); ++k) {
    counters["kernel_mt_" + std::to_string(threads_axis[k]) + "_rps"] =
        mt_kernel_rps[k];
  }
  // Per-core efficiency at the widest measured worker count: 1.0 is
  // perfect linear scaling over the 1-worker entry.
  counters["mt_scaling_efficiency"] =
      mt_kernel_rps.back() / mt_kernel_rps.front() /
      static_cast<double>(threads_axis.back());
  counters["batch_mt_qps"] = batch_mt_qps;
  bench::WriteBenchJson("predictor",
                        1000.0 * SecondsSince(wall_start),
                        std::move(json_config), std::move(counters));

  std::printf(
      "\nThe flattened-kernel batch path should clear 3x the legacy "
      "scalar QPS,\nthe warmed cache should beat the batch path again, "
      "and on SIMD-capable hosts\nthe best descent tier should clear "
      "1.5x the scalar kernel's rows/sec.\n");
  return 0;
}
