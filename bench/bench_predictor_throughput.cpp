// Predictor throughput: queries/sec of the online feasibility service
// under three regimes over the same CM query stream:
//
//  * scalar  — the legacy per-query path: build one feature vector, walk
//    every boosting stage with the pointer-chasing TreeModel traversal,
//    sigmoid, threshold. This is what every scheduler paid per candidate
//    before the batched inference engine.
//  * batch   — GAugurPredictor::PredictQosOkBatch with the prediction
//    cache disabled: one row-major feature matrix per chunk and one
//    flattened-kernel PredictProbBatch call over it.
//  * cached  — the same entry point with the LRU PredictionCache warmed,
//    the regime a scheduler sees when arrivals revisit open servers.
//
// Decisions are cross-checked for agreement across all three regimes.
//
// On top of the regimes, a kernel-variant axis pins the SIMD descent
// tiers (see ml::SimdTier): the uncached batch regime is re-timed with
// dispatch forced to each tier the host supports
// (batch_<scalar|sse|avx2>_qps), and a kernel-only pass times
// PredictProbBatch over a prebuilt feature matrix per tier
// (kernel_<tier>_rps) so the descent speedup is visible undiluted by
// feature building. Decisions must agree across every variant — the
// bit-identicality contract.
//
// Emits bench_results/BENCH_predictor.json with the QPS numbers and the
// speedup ratios CI trend-tracks (batch >= 3x scalar, cached >= batch,
// plus speedup_simd_vs_scalar_kernel on SIMD-capable hosts).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_world.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "gaugur/predictor.h"
#include "gaugur/training.h"
#include "ml/gradient_boosting.h"
#include "ml/tree_kernel.h"
#include "obs/switch.h"
#include "sched/enumeration.h"
#include "sched/study.h"

using namespace gaugur;

namespace {

constexpr double kQos = 60.0;
constexpr std::size_t kChunk = 512;  // queries per batched call

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-batching predictor hot path, replicated verbatim: fresh
/// feature vector, per-stage scalar tree walks, sigmoid, threshold.
std::vector<char> RunScalarBaseline(
    const core::FeatureBuilder& features,
    const ml::GradientBoostedClassifier& gbdt, double threshold,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::vector<double> x =
        features.CmFeatures(kQos, queries[i].victim, queries[i].corunners);
    double log_odds = gbdt.BaseValue();
    for (const ml::TreeModel& tree : gbdt.Stages()) {
      log_odds += gbdt.Config().learning_rate * tree.Predict(x);
    }
    decisions[i] = common::Sigmoid(log_odds) >= threshold ? 1 : 0;
  }
  return decisions;
}

std::vector<char> RunPredictorChunked(
    const core::GAugurPredictor& predictor,
    std::span<const core::QosQuery> queries) {
  std::vector<char> decisions;
  decisions.reserve(queries.size());
  for (std::size_t begin = 0; begin < queries.size(); begin += kChunk) {
    const std::size_t count = std::min(kChunk, queries.size() - begin);
    const auto chunk = predictor.PredictQosOkBatch(
        kQos, queries.subspan(begin, count));
    decisions.insert(decisions.end(), chunk.begin(), chunk.end());
  }
  return decisions;
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto wall_start = std::chrono::steady_clock::now();

  // Two predictors trained identically (same config/seed/data): one with
  // the cache off, one with it on. The bare GBDT below is constructed
  // with the same seed and dataset as their CM, so all regimes evaluate
  // the exact same model.
  core::PredictorConfig config;
  config.cm_decision_threshold = 0.8;
  core::PredictorConfig uncached_config = config;
  uncached_config.prediction_cache_capacity = 0;
  core::GAugurPredictor uncached(world.features(), uncached_config);
  core::GAugurPredictor cached(world.features(), config);

  const std::vector<double> qos_grid{40.0, 50.0, 55.0, 60.0,
                                     65.0, 70.0, 80.0};
  const auto cm_dataset = core::BuildCmDatasetMultiQos(
      world.features(), world.train_colocations(), qos_grid);
  uncached.TrainCmOnDataset(cm_dataset);
  cached.TrainCmOnDataset(cm_dataset);

  ml::BoostConfig boost;
  boost.seed = config.seed + 1;  // the seed MakeClassifier gives the CM
  ml::GradientBoostedClassifier gbdt(boost);
  gbdt.Fit(cm_dataset);

  // Query stream: every (victim, colocation) pair of the study
  // enumeration, replayed round-robin — schedulers re-scoring the same
  // open-server candidates across arrivals.
  const auto setup = sched::SelectStudyGames(world.lab(), 10, kQos, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 4);
  std::vector<core::SessionRequest> pool;
  std::size_t slots = 0;
  for (const auto& c : colocations) slots += c.size() * (c.size() - 1);
  pool.reserve(slots);
  std::vector<core::QosQuery> distinct;
  for (const auto& colocation : colocations) {
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      const std::size_t begin = pool.size();
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) pool.push_back(colocation[j]);
      }
      distinct.push_back(
          {colocation[v],
           std::span<const core::SessionRequest>(pool.data() + begin,
                                                 pool.size() - begin)});
    }
  }
  const std::size_t target = world.fast_mode() ? 2000 : 20000;
  std::vector<core::QosQuery> queries;
  queries.reserve(target);
  while (queries.size() < target) {
    const std::size_t take =
        std::min(distinct.size(), target - queries.size());
    queries.insert(queries.end(), distinct.begin(),
                   distinct.begin() + static_cast<std::ptrdiff_t>(take));
  }
  std::printf("query stream: %zu queries (%zu distinct), %zu-query chunks\n",
              queries.size(), distinct.size(), kChunk);

  double scalar_s = 0.0, batch_s = 0.0, cached_s = 0.0;
  std::vector<char> scalar_dec, batch_dec, cached_dec;
  {
    // Timed sections run with observability off: measure inference, not
    // audit bookkeeping.
    const obs::EnabledScope obs_off(false);

    auto t0 = std::chrono::steady_clock::now();
    scalar_dec = RunScalarBaseline(world.features(), gbdt,
                                   config.cm_decision_threshold, queries);
    scalar_s = SecondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    batch_dec = RunPredictorChunked(uncached, queries);
    batch_s = SecondsSince(t0);

    RunPredictorChunked(cached, queries);  // warm the cache
    t0 = std::chrono::steady_clock::now();
    cached_dec = RunPredictorChunked(cached, queries);
    cached_s = SecondsSince(t0);
  }

  GAUGUR_CHECK_MSG(scalar_dec == batch_dec && batch_dec == cached_dec,
                   "regimes disagree on decisions");
  const auto stats = cached.PredictionCacheStats();
  GAUGUR_CHECK_MSG(stats.hits > 0, "cached regime never hit the cache");

  // Kernel-variant axis: every descent tier the host supports, timed two
  // ways. End-to-end re-runs the uncached batch regime with dispatch
  // forced to the tier; kernel-only times PredictProbBatch over one
  // prebuilt feature matrix, isolating the descent from feature building
  // and cache probes.
  std::vector<ml::SimdTier> tiers{ml::SimdTier::kScalar};
  if (ml::FlatForest::SupportedTier() >= ml::SimdTier::kSse) {
    tiers.push_back(ml::SimdTier::kSse);
  }
  if (ml::FlatForest::SupportedTier() >= ml::SimdTier::kAvx2) {
    tiers.push_back(ml::SimdTier::kAvx2);
  }
  std::vector<double> tier_batch_qps(tiers.size());
  std::vector<double> tier_kernel_rps(tiers.size());
  {
    const obs::EnabledScope obs_off(false);
    std::vector<double> matrix;
    for (const core::QosQuery& q : queries) {
      const std::vector<double> x =
          world.features().CmFeatures(kQos, q.victim, q.corunners);
      matrix.insert(matrix.end(), x.begin(), x.end());
    }
    const std::size_t cols = matrix.size() / queries.size();
    const ml::MatrixView view{matrix.data(), queries.size(), cols};
    std::vector<double> probs(queries.size());
    const int kernel_reps = world.fast_mode() ? 4 : 8;
    for (std::size_t k = 0; k < tiers.size(); ++k) {
      ml::FlatForest::ForceTier(tiers[k]);

      auto t0 = std::chrono::steady_clock::now();
      const auto tier_dec = RunPredictorChunked(uncached, queries);
      tier_batch_qps[k] =
          static_cast<double>(queries.size()) / SecondsSince(t0);
      GAUGUR_CHECK_MSG(tier_dec == batch_dec,
                       "tier " << ml::SimdTierName(tiers[k])
                               << " changed decisions");

      t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kernel_reps; ++rep) {
        gbdt.PredictProbBatch(view, probs);
      }
      tier_kernel_rps[k] = static_cast<double>(queries.size()) *
                           kernel_reps / SecondsSince(t0);
    }
    ml::FlatForest::ForceTier(std::nullopt);
  }

  const double n = static_cast<double>(queries.size());
  const double scalar_qps = n / scalar_s;
  const double batch_qps = n / batch_s;
  const double cached_qps = n / cached_s;
  std::printf("scalar  : %10.0f queries/sec\n", scalar_qps);
  std::printf("batch   : %10.0f queries/sec  (%.2fx scalar)\n", batch_qps,
              batch_qps / scalar_qps);
  std::printf("cached  : %10.0f queries/sec  (%.2fx batch)\n", cached_qps,
              cached_qps / batch_qps);
  for (std::size_t k = 0; k < tiers.size(); ++k) {
    std::printf(
        "kernel %-6s: %10.0f end-to-end qps, %12.0f kernel rows/sec"
        "  (%.2fx scalar kernel)\n",
        ml::SimdTierName(tiers[k]), tier_batch_qps[k], tier_kernel_rps[k],
        tier_kernel_rps[k] / tier_kernel_rps[0]);
  }

  obs::JsonObject json_config;
  json_config["qos_fps"] = kQos;
  json_config["queries"] = static_cast<unsigned long long>(queries.size());
  json_config["distinct_queries"] =
      static_cast<unsigned long long>(distinct.size());
  json_config["chunk"] = static_cast<unsigned long long>(kChunk);
  json_config["cache_capacity"] = static_cast<unsigned long long>(
      config.prediction_cache_capacity);
  json_config["fast_mode"] = world.fast_mode();
  json_config["simd_supported"] =
      std::string(ml::SimdTierName(ml::FlatForest::SupportedTier()));
  json_config["simd_active"] =
      std::string(ml::SimdTierName(ml::FlatForest::ActiveTier()));
  obs::JsonObject counters;
  counters["scalar_qps"] = scalar_qps;
  counters["batch_qps"] = batch_qps;
  counters["cached_qps"] = cached_qps;
  counters["speedup_batch_vs_scalar"] = batch_qps / scalar_qps;
  counters["speedup_cached_vs_batch"] = cached_qps / batch_qps;
  counters["cache_hits"] = static_cast<unsigned long long>(stats.hits);
  counters["cache_misses"] = static_cast<unsigned long long>(stats.misses);
  for (std::size_t k = 0; k < tiers.size(); ++k) {
    const std::string name = ml::SimdTierName(tiers[k]);
    counters["batch_" + name + "_qps"] = tier_batch_qps[k];
    counters["kernel_" + name + "_rps"] = tier_kernel_rps[k];
  }
  // Best supported tier's raw descent throughput over the portable
  // scalar kernel — the number the SIMD work is accountable for.
  counters["speedup_simd_vs_scalar_kernel"] =
      tier_kernel_rps.back() / tier_kernel_rps.front();
  bench::WriteBenchJson("predictor",
                        1000.0 * SecondsSince(wall_start),
                        std::move(json_config), std::move(counters));

  std::printf(
      "\nThe flattened-kernel batch path should clear 3x the legacy "
      "scalar QPS,\nthe warmed cache should beat the batch path again, "
      "and on SIMD-capable hosts\nthe best descent tier should clear "
      "1.5x the scalar kernel's rows/sec.\n");
  return 0;
}
