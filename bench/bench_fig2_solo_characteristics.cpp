// Figure 2: (a) normalized CPU/GPU/memory demand and (b) solo frame rate
// of all 100 games running alone at 1080p.
//
// Paper shape: demands vary widely across games and resource types
// (motivating colocation), and solo FPS spans ~30-360 with many games far
// above a 60 FPS QoS floor (motivating the over-provisioning argument).

#include <algorithm>
#include <iostream>

#include "bench/bench_world.h"
#include "common/stats.h"
#include "common/table.h"

using namespace gaugur;
using resources::Resource;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto& features = world.features();

  // Normalize demands to the max across games, as the paper does.
  double max_cpu = 0.0, max_gpu = 0.0, max_mem = 0.0;
  for (std::size_t id = 0; id < features.NumGames(); ++id) {
    const auto& p = features.Profile(static_cast<int>(id));
    max_cpu = std::max(max_cpu, p.solo_utilization[Resource::kCpuCore]);
    max_gpu = std::max(max_gpu, p.solo_utilization[Resource::kGpuCore]);
    max_mem = std::max(max_mem, p.cpu_memory + p.gpu_memory);
  }

  common::Table table(
      {"game", "cpu demand", "gpu demand", "mem demand", "solo FPS"}, 3);
  std::vector<double> fps_all;
  for (std::size_t id = 0; id < features.NumGames(); ++id) {
    const auto& p = features.Profile(static_cast<int>(id));
    const double fps = p.SoloFps(resources::k1080p);
    fps_all.push_back(fps);
    table.AddRow({p.name,
                  p.solo_utilization[Resource::kCpuCore] / max_cpu,
                  p.solo_utilization[Resource::kGpuCore] / max_gpu,
                  (p.cpu_memory + p.gpu_memory) / max_mem, fps});
  }
  table.Print(std::cout,
              "Figure 2: solo demand and frame rate of 100 games (1080p)");
  bench::WriteResultCsv("fig2_solo_characteristics", table);

  common::Table summary({"metric", "value"}, 1);
  summary.AddRow({std::string("min solo FPS"), common::Min(fps_all)});
  summary.AddRow({std::string("median solo FPS"),
                  common::Percentile(fps_all, 0.5)});
  summary.AddRow({std::string("max solo FPS"), common::Max(fps_all)});
  const auto above60 = static_cast<long long>(std::count_if(
      fps_all.begin(), fps_all.end(), [](double f) { return f > 60.0; }));
  summary.AddRow({std::string("games above 60 FPS solo"), above60});
  summary.Print(std::cout, "Figure 2b summary");
  return 0;
}
