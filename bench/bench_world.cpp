#include "bench/bench_world.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "profiling/profiler.h"

namespace gaugur::bench {

BenchWorld::BenchWorld()
    : catalog_(gamesim::GameCatalog::MakeDefault(42)),
      server_(),
      lab_(catalog_, server_),
      features_([this] {
        const profiling::Profiler profiler(server_);
        return core::FeatureBuilder(
            profiler.ProfileCatalog(catalog_, &common::ThreadPool::Global()));
      }()) {
  const char* fast = std::getenv("GAUGUR_BENCH_FAST");
  fast_mode_ = fast != nullptr && fast[0] == '1';

  core::CorpusOptions options;
  options.num_pairs = fast_mode_ ? 120 : 500;
  options.num_triples = fast_mode_ ? 30 : 100;
  options.num_quads = fast_mode_ ? 30 : 100;
  options.seed = 99;
  auto corpus = core::GenerateCorpus(lab_, options);

  // Paper split: 400 of the 700 colocations train, 300 test.
  common::Rng rng(4242);
  rng.Shuffle(corpus);
  const std::size_t train_count =
      corpus.size() * 4 / 7;  // 400/700 proportionally in fast mode
  train_.assign(corpus.begin(),
                corpus.begin() + static_cast<std::ptrdiff_t>(train_count));
  test_.assign(corpus.begin() + static_cast<std::ptrdiff_t>(train_count),
               corpus.end());
  if (fast_mode_) {
    std::fprintf(stderr,
                 "[bench] GAUGUR_BENCH_FAST=1: corpus trimmed to %zu "
                 "colocations; results not paper-comparable\n",
                 corpus.size());
  }
}

const BenchWorld& BenchWorld::Get() {
  static const BenchWorld world;
  return world;
}

ml::Dataset BenchWorld::ShuffledSubset(const ml::Dataset& full,
                                       std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  const std::size_t take = std::min(n, full.NumRows());
  const auto idx = rng.SampleWithoutReplacement(full.NumRows(), take);
  return full.Subset(idx);
}

void WriteBenchJson(const std::string& name, double wall_ms,
                    obs::JsonObject config, obs::JsonObject counters) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_results", ec);
  obs::JsonObject doc;
  doc["schema"] = "gaugur.bench.result/v1";
  doc["name"] = name;
  doc["wall_ms"] = wall_ms;
  doc["config"] = obs::JsonValue(std::move(config));
  doc["counters"] = obs::JsonValue(std::move(counters));
  const std::string path = "bench_results/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (out && (out << obs::JsonValue(std::move(doc)).Dump(2) << '\n')) {
    std::printf("[json] %s\n", path.c_str());
  } else {
    std::printf("[json] FAILED to write %s\n", path.c_str());
  }
}

void WriteResultCsv(const std::string& name, const common::Table& table) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name + ".csv";
  if (table.WriteCsv(path)) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

}  // namespace gaugur::bench
