// Figure 7a: RM prediction error vs number of training samples, for the
// four learning algorithms the paper evaluates (DTR, GBRT, RF, SVR).
//
// Paper shape: error falls with more training data; every algorithm is
// within ~10% at 1000 samples; GBRT is best at ~7.9%.

#include <iostream>

#include "bench/bench_world.h"
#include "bench/eval_util.h"
#include "common/table.h"
#include "ml/factory.h"
#include "ml/metrics.h"

using namespace gaugur;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto rm_full =
      core::BuildRmDataset(world.features(), world.train_colocations());
  const auto rm_test =
      core::BuildRmDataset(world.features(), world.test_colocations());

  std::vector<std::size_t> sample_counts = {400, 600, 800, 1000};
  if (world.fast_mode()) sample_counts = {200, 400};

  // Each cell averages three training draws/seeds: single-draw noise is
  // around +-0.3pp, enough to scramble the close algorithms.
  const std::vector<std::uint64_t> seeds = {7, 8, 9};
  common::Table table({"samples", "DTR", "GBRT", "RF", "SVR"}, 4);
  double gbrt_at_max = 0.0;
  for (std::size_t n : sample_counts) {
    std::vector<common::Cell> row;
    long long rows_used = 0;
    for (const auto& name : ml::RegressorNames()) {
      double err_sum = 0.0;
      for (std::uint64_t seed : seeds) {
        const auto train = bench::BenchWorld::ShuffledSubset(rm_full, n, seed);
        rows_used = static_cast<long long>(train.NumRows());
        auto model = ml::MakeRegressor(name, 21 + seed);
        model->Fit(train);
        auto pred = model->PredictBatch(rm_test);
        for (auto& p : pred) p = std::clamp(p, 0.01, 1.0);
        err_sum += ml::MeanRelativeError(pred, rm_test.Targets());
      }
      const double err = err_sum / static_cast<double>(seeds.size());
      row.emplace_back(err);
      if (name == "GBRT" && n == sample_counts.back()) gbrt_at_max = err;
    }
    row.insert(row.begin(), common::Cell{rows_used});
    table.AddRow(std::move(row));
  }
  table.Print(std::cout,
              "Figure 7a: RM mean relative prediction error vs training "
              "samples");
  bench::WriteResultCsv("fig7a_rm_algorithms", table);

  std::printf(
      "\nPaper: all algorithms within 10%% at 1000 samples; GBRT best at "
      "7.9%%.\nMeasured GBRT at max samples: %.1f%%.\n",
      100.0 * gbrt_at_max);
  return 0;
}
