// Ablations of GAugur's design choices (DESIGN.md):
//  1. Aggregate-intensity transform: the paper's Eq. 5 <|G|, mean, var>
//     vs naive per-resource sums (the Paragon assumption) vs mean-only.
//  2. Sensitivity-grid granularity k: profiling cost vs RM accuracy.
//  3. Training-corpus mixture: pairs-only training vs mixed sizes,
//     evaluated on 4-game colocations (extrapolation ability).
//  4. Victim-side feature block: with vs without our V^A extension.

#include <iostream>

#include "bench/bench_world.h"
#include "bench/eval_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "ml/metrics.h"
#include "profiling/profiler.h"

using namespace gaugur;
using resources::Resource;

namespace {

constexpr std::size_t kTrainSamples = 1000;

/// Builds an RM dataset with a configurable aggregate transform and an
/// optional victim block, from raw test samples.
enum class Aggregate { kPaperMeanVar, kSum, kMeanOnly };

std::vector<double> BuildFeatures(const core::FeatureBuilder& features,
                                  const core::SessionRequest& victim,
                                  std::span<const core::SessionRequest> co,
                                  Aggregate aggregate, bool victim_block) {
  std::vector<double> x;
  const auto& profile = features.Profile(victim.game_id);
  for (const auto& curve : profile.sensitivity) {
    x.insert(x.end(), curve.degradation.begin(), curve.degradation.end());
  }
  if (victim_block) {
    x.push_back(victim.resolution.Megapixels());
    x.push_back(profile.SoloFps(victim.resolution));
    for (Resource r : resources::kAllResources) {
      x.push_back(profile.IntensityAt(r, victim.resolution));
    }
  }
  const auto agg = features.Aggregate(co);
  switch (aggregate) {
    case Aggregate::kPaperMeanVar:
      agg.AppendTo(x);
      break;
    case Aggregate::kSum:
      for (Resource r : resources::kAllResources) {
        x.push_back(agg.mean[r] * agg.group_size);
      }
      break;
    case Aggregate::kMeanOnly:
      x.push_back(agg.group_size);
      for (Resource r : resources::kAllResources) {
        x.push_back(agg.mean[r]);
      }
      break;
  }
  return x;
}

double EvalVariant(const bench::BenchWorld& world, Aggregate aggregate,
                   bool victim_block,
                   bool pairs_only_training = false,
                   std::size_t eval_size = 0) {
  const auto& features = world.features();
  auto build_dataset = [&](const std::vector<core::MeasuredColocation>& ms,
                           bool pairs_only) {
    std::size_t dim = 0;
    {
      const auto probe = BuildFeatures(
          features, {0, resources::k1080p}, {}, aggregate, victim_block);
      dim = probe.size();
    }
    ml::Dataset ds(dim);
    std::vector<core::SessionRequest> co;
    for (const auto& m : ms) {
      if (pairs_only && m.sessions.size() != 2) continue;
      for (std::size_t v = 0; v < m.sessions.size(); ++v) {
        co.clear();
        for (std::size_t j = 0; j < m.sessions.size(); ++j) {
          if (j != v) co.push_back(m.sessions[j]);
        }
        ds.Add(BuildFeatures(features, m.sessions[v], co, aggregate,
                             victim_block),
               core::DegradationTarget(features, m.sessions[v], m.fps[v]));
      }
    }
    return ds;
  };

  const auto train_full =
      build_dataset(world.train_colocations(), pairs_only_training);
  const auto train =
      bench::BenchWorld::ShuffledSubset(train_full, kTrainSamples, 7);
  auto model = ml::MakeRegressor("GBRT");
  model->Fit(train);

  const auto samples = bench::BuildTestSamples(world);
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (eval_size != 0 && s.colocation_size != eval_size) continue;
    const auto x = BuildFeatures(features, s.victim, s.corunners, aggregate,
                                 victim_block);
    const double pred = std::clamp(model->Predict(x), 0.01, 1.0);
    sum += std::abs(pred - s.actual_degradation) / s.actual_degradation;
    ++n;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main() {
  const auto& world = bench::BenchWorld::Get();

  {
    common::Table table({"aggregate transform", "RM error"}, 4);
    table.AddRow({std::string("paper Eq.5 <|G|, mean, var>"),
                  EvalVariant(world, Aggregate::kPaperMeanVar, true)});
    table.AddRow({std::string("mean only <|G|, mean>"),
                  EvalVariant(world, Aggregate::kMeanOnly, true)});
    table.AddRow({std::string("naive per-resource sum (Paragon-style)"),
                  EvalVariant(world, Aggregate::kSum, true)});
    table.Print(std::cout, "Ablation 1: aggregate-intensity transform");
    bench::WriteResultCsv("ablation1_aggregate", table);
  }

  {
    common::Table table({"victim-side block", "RM error"}, 4);
    table.AddRow({std::string("with V^A (ours)"),
                  EvalVariant(world, Aggregate::kPaperMeanVar, true)});
    table.AddRow({std::string("without (paper's strict Eq. 4)"),
                  EvalVariant(world, Aggregate::kPaperMeanVar, false)});
    table.Print(std::cout, "Ablation 4: victim-side feature block");
    bench::WriteResultCsv("ablation4_victim_block", table);
  }

  {
    common::Table table(
        {"training mixture", "error on 4-game colocations"}, 4);
    table.AddRow({std::string("mixed sizes (paper protocol)"),
                  EvalVariant(world, Aggregate::kPaperMeanVar, true, false,
                              4)});
    table.AddRow({std::string("pairs only"),
                  EvalVariant(world, Aggregate::kPaperMeanVar, true, true,
                              4)});
    table.Print(std::cout, "Ablation 3: training-corpus mixture");
    bench::WriteResultCsv("ablation3_mixture", table);
  }

  {
    // Ablation 2: curve granularity. Re-profile at several k and retrain.
    common::Table table(
        {"grid k", "measurements/game", "RM error"}, 4);
    for (int k : {2, 5, 10}) {
      profiling::ProfilerOptions options;
      options.pressure_granularity = k;
      const profiling::Profiler profiler(world.server(), options);
      core::FeatureBuilder coarse(profiler.ProfileCatalog(
          world.catalog(), &common::ThreadPool::Global()));

      const auto train_full =
          core::BuildRmDataset(coarse, world.train_colocations());
      const auto train =
          bench::BenchWorld::ShuffledSubset(train_full, kTrainSamples, 7);
      auto model = ml::MakeRegressor("GBRT");
      model->Fit(train);
      const auto test =
          core::BuildRmDataset(coarse, world.test_colocations());
      auto pred = model->PredictBatch(test);
      for (auto& p : pred) p = std::clamp(p, 0.01, 1.0);
      table.AddRow(
          {static_cast<long long>(k),
           static_cast<long long>(profiler.MeasurementsPerGame()),
           ml::MeanRelativeError(pred, test.Targets())});
    }
    table.Print(std::cout,
                "Ablation 2: sensitivity-grid granularity (profiling cost "
                "vs accuracy)");
    bench::WriteResultCsv("ablation2_granularity", table);
  }
  return 0;
}
