// §3.3 resolution laws: Eq. 2 (solo FPS linear in pixel count) and
// Observations 6-8 (sensitivity curves resolution-invariant; CPU-side
// intensity resolution-flat; GPU-side intensity linear in pixels).
//
// Paper shape: all three hold well enough that a game need only be
// profiled at two resolutions. We quantify how well each law holds in our
// substrate across the whole catalog.

#include <cmath>
#include <iostream>

#include "bench/bench_world.h"
#include "common/stats.h"
#include "common/table.h"
#include "profiling/profiler.h"

using namespace gaugur;
using resources::Resolution;
using resources::Resource;

int main() {
  const auto& world = bench::BenchWorld::Get();
  const auto& features = world.features();

  // --- Eq. 2: predict 900p and 1440p solo FPS. Two models: the paper's
  // two-point line (720p/1080p fit, extrapolated to 1440p) and our
  // piecewise three-anchor model that handles the bottleneck kink.
  {
    common::Table table({"resolution", "Eq.2 line mean |err| %",
                         "piecewise mean |err| %"},
                        2);
    for (const Resolution& res : {resources::k900p, resources::k1440p}) {
      std::vector<double> line_errors, pw_errors;
      for (std::size_t id = 0; id < features.NumGames(); ++id) {
        const auto& p = features.Profile(static_cast<int>(id));
        const double truth = world.catalog()[id].SoloFps(res);
        line_errors.push_back(
            100.0 * std::abs(std::max(1.0, p.solo_fps_model.Eval(res)) -
                             truth) /
            truth);
        pw_errors.push_back(100.0 * std::abs(p.SoloFps(res) - truth) /
                            truth);
      }
      table.AddRow({res.ToString(), common::Mean(line_errors),
                    common::Mean(pw_errors)});
    }
    table.Print(std::cout,
                "Eq. 2: solo-FPS vs resolution models, error at "
                "unprofiled resolutions (100 games)");
    bench::WriteResultCsv("obs_eq2_solo_fps", table);
  }

  // --- Observation 6: re-profile a sample of games at 900p and compare
  // sensitivity curves with the 1080p reference profile.
  {
    profiling::ProfilerOptions options;
    options.primary_res = resources::k900p;
    options.secondary_res = resources::k720p;
    const profiling::Profiler profiler(world.server(), options);
    common::Table table({"game", "max curve gap", "mean curve gap"}, 3);
    for (int id : {0, 10, 20, 35, 50, 65, 80, 95}) {
      const auto re = profiler.ProfileGame(world.catalog()[
          static_cast<std::size_t>(id)]);
      const auto& ref = features.Profile(id);
      double max_gap = 0.0, sum_gap = 0.0;
      int count = 0;
      for (Resource r : resources::kAllResources) {
        for (std::size_t i = 0; i < 11; ++i) {
          const double gap = std::abs(re.Sensitivity(r).degradation[i] -
                                      ref.Sensitivity(r).degradation[i]);
          max_gap = std::max(max_gap, gap);
          sum_gap += gap;
          ++count;
        }
      }
      table.AddRow({ref.name, max_gap, sum_gap / count});
    }
    table.Print(std::cout,
                "Observation 6: sensitivity-curve gap, 900p vs 1080p "
                "profile (approximate invariance)");
    bench::WriteResultCsv("obs6_sensitivity_invariance", table);
  }

  // --- Observations 7-8: intensity vs resolution, from the two-point
  // models, validated against a third profiled resolution.
  {
    profiling::ProfilerOptions options;
    options.primary_res = resources::k900p;
    options.secondary_res = resources::k720p;
    const profiling::Profiler profiler(world.server(), options);
    common::Table table({"resource side", "mean |predicted - measured|"},
                        4);
    double cpu_err = 0.0, gpu_err = 0.0;
    int cpu_n = 0, gpu_n = 0;
    for (int id : {5, 25, 45, 70, 90}) {
      const auto at_900 =
          profiler.ProfileGame(world.catalog()[static_cast<std::size_t>(id)]);
      const auto& ref = features.Profile(id);
      for (Resource r : resources::kAllResources) {
        // Predict the 900p intensity from the 1080p/720p linear model and
        // compare with the directly measured 900p value.
        const double predicted = ref.IntensityAt(r, resources::k900p);
        const double measured = at_900.intensity_ref[r];
        const double err = std::abs(predicted - measured);
        if (resources::ScalesWithPixels(r)) {
          gpu_err += err;
          ++gpu_n;
        } else {
          cpu_err += err;
          ++cpu_n;
        }
      }
    }
    table.AddRow({std::string("CPU-side (Obs 7: flat)"), cpu_err / cpu_n});
    table.AddRow({std::string("GPU-side (Obs 8: linear)"), gpu_err / gpu_n});
    table.Print(std::cout,
                "Observations 7-8: two-point intensity model vs direct "
                "900p measurement (5 games)");
    bench::WriteResultCsv("obs78_intensity_models", table);
  }
  return 0;
}
