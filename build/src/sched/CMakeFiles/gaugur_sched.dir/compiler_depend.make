# Empty compiler generated dependencies file for gaugur_sched.
# This may be replaced when dependencies are built.
