file(REMOVE_RECURSE
  "CMakeFiles/gaugur_sched.dir/assignment.cpp.o"
  "CMakeFiles/gaugur_sched.dir/assignment.cpp.o.d"
  "CMakeFiles/gaugur_sched.dir/dynamic.cpp.o"
  "CMakeFiles/gaugur_sched.dir/dynamic.cpp.o.d"
  "CMakeFiles/gaugur_sched.dir/enumeration.cpp.o"
  "CMakeFiles/gaugur_sched.dir/enumeration.cpp.o.d"
  "CMakeFiles/gaugur_sched.dir/methodology.cpp.o"
  "CMakeFiles/gaugur_sched.dir/methodology.cpp.o.d"
  "CMakeFiles/gaugur_sched.dir/packing.cpp.o"
  "CMakeFiles/gaugur_sched.dir/packing.cpp.o.d"
  "CMakeFiles/gaugur_sched.dir/study.cpp.o"
  "CMakeFiles/gaugur_sched.dir/study.cpp.o.d"
  "libgaugur_sched.a"
  "libgaugur_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
