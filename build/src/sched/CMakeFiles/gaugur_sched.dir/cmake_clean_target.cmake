file(REMOVE_RECURSE
  "libgaugur_sched.a"
)
