file(REMOVE_RECURSE
  "libgaugur_baselines.a"
)
