file(REMOVE_RECURSE
  "CMakeFiles/gaugur_baselines.dir/sigmoid_model.cpp.o"
  "CMakeFiles/gaugur_baselines.dir/sigmoid_model.cpp.o.d"
  "CMakeFiles/gaugur_baselines.dir/smite_model.cpp.o"
  "CMakeFiles/gaugur_baselines.dir/smite_model.cpp.o.d"
  "CMakeFiles/gaugur_baselines.dir/vbp_model.cpp.o"
  "CMakeFiles/gaugur_baselines.dir/vbp_model.cpp.o.d"
  "libgaugur_baselines.a"
  "libgaugur_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
