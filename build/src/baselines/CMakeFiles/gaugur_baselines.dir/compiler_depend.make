# Empty compiler generated dependencies file for gaugur_baselines.
# This may be replaced when dependencies are built.
