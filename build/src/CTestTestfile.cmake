# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("resources")
subdirs("gamesim")
subdirs("microbench")
subdirs("profiling")
subdirs("ml")
subdirs("gaugur")
subdirs("baselines")
subdirs("sched")
