file(REMOVE_RECURSE
  "CMakeFiles/gaugur_common.dir/linalg.cpp.o"
  "CMakeFiles/gaugur_common.dir/linalg.cpp.o.d"
  "CMakeFiles/gaugur_common.dir/stats.cpp.o"
  "CMakeFiles/gaugur_common.dir/stats.cpp.o.d"
  "CMakeFiles/gaugur_common.dir/table.cpp.o"
  "CMakeFiles/gaugur_common.dir/table.cpp.o.d"
  "CMakeFiles/gaugur_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gaugur_common.dir/thread_pool.cpp.o.d"
  "libgaugur_common.a"
  "libgaugur_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
