file(REMOVE_RECURSE
  "libgaugur_common.a"
)
