# Empty dependencies file for gaugur_core.
# This may be replaced when dependencies are built.
