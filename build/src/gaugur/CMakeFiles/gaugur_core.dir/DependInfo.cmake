
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gaugur/corpus.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/corpus.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/corpus.cpp.o.d"
  "/root/repo/src/gaugur/delay.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/delay.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/delay.cpp.o.d"
  "/root/repo/src/gaugur/features.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/features.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/features.cpp.o.d"
  "/root/repo/src/gaugur/lab.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/lab.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/lab.cpp.o.d"
  "/root/repo/src/gaugur/predictor.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/predictor.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/predictor.cpp.o.d"
  "/root/repo/src/gaugur/training.cpp" "src/gaugur/CMakeFiles/gaugur_core.dir/training.cpp.o" "gcc" "src/gaugur/CMakeFiles/gaugur_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gamesim/CMakeFiles/gaugur_gamesim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/gaugur_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gaugur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/gaugur_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
