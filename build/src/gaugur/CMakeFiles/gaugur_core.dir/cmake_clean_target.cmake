file(REMOVE_RECURSE
  "libgaugur_core.a"
)
