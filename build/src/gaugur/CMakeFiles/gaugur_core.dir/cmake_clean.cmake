file(REMOVE_RECURSE
  "CMakeFiles/gaugur_core.dir/corpus.cpp.o"
  "CMakeFiles/gaugur_core.dir/corpus.cpp.o.d"
  "CMakeFiles/gaugur_core.dir/delay.cpp.o"
  "CMakeFiles/gaugur_core.dir/delay.cpp.o.d"
  "CMakeFiles/gaugur_core.dir/features.cpp.o"
  "CMakeFiles/gaugur_core.dir/features.cpp.o.d"
  "CMakeFiles/gaugur_core.dir/lab.cpp.o"
  "CMakeFiles/gaugur_core.dir/lab.cpp.o.d"
  "CMakeFiles/gaugur_core.dir/predictor.cpp.o"
  "CMakeFiles/gaugur_core.dir/predictor.cpp.o.d"
  "CMakeFiles/gaugur_core.dir/training.cpp.o"
  "CMakeFiles/gaugur_core.dir/training.cpp.o.d"
  "libgaugur_core.a"
  "libgaugur_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
