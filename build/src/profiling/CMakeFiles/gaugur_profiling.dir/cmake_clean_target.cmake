file(REMOVE_RECURSE
  "libgaugur_profiling.a"
)
