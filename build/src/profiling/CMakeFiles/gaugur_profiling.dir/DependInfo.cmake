
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/collaborative.cpp" "src/profiling/CMakeFiles/gaugur_profiling.dir/collaborative.cpp.o" "gcc" "src/profiling/CMakeFiles/gaugur_profiling.dir/collaborative.cpp.o.d"
  "/root/repo/src/profiling/profile_io.cpp" "src/profiling/CMakeFiles/gaugur_profiling.dir/profile_io.cpp.o" "gcc" "src/profiling/CMakeFiles/gaugur_profiling.dir/profile_io.cpp.o.d"
  "/root/repo/src/profiling/profiler.cpp" "src/profiling/CMakeFiles/gaugur_profiling.dir/profiler.cpp.o" "gcc" "src/profiling/CMakeFiles/gaugur_profiling.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gamesim/CMakeFiles/gaugur_gamesim.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/gaugur_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
