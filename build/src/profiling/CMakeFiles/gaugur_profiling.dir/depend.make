# Empty dependencies file for gaugur_profiling.
# This may be replaced when dependencies are built.
