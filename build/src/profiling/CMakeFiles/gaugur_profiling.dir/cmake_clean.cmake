file(REMOVE_RECURSE
  "CMakeFiles/gaugur_profiling.dir/collaborative.cpp.o"
  "CMakeFiles/gaugur_profiling.dir/collaborative.cpp.o.d"
  "CMakeFiles/gaugur_profiling.dir/profile_io.cpp.o"
  "CMakeFiles/gaugur_profiling.dir/profile_io.cpp.o.d"
  "CMakeFiles/gaugur_profiling.dir/profiler.cpp.o"
  "CMakeFiles/gaugur_profiling.dir/profiler.cpp.o.d"
  "libgaugur_profiling.a"
  "libgaugur_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
