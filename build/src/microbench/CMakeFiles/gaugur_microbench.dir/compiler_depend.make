# Empty compiler generated dependencies file for gaugur_microbench.
# This may be replaced when dependencies are built.
