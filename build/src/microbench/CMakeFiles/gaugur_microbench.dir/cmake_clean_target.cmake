file(REMOVE_RECURSE
  "libgaugur_microbench.a"
)
