file(REMOVE_RECURSE
  "CMakeFiles/gaugur_microbench.dir/pressure_bench.cpp.o"
  "CMakeFiles/gaugur_microbench.dir/pressure_bench.cpp.o.d"
  "libgaugur_microbench.a"
  "libgaugur_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
