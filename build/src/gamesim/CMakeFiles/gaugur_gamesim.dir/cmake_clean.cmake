file(REMOVE_RECURSE
  "CMakeFiles/gaugur_gamesim.dir/catalog.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/catalog.cpp.o.d"
  "CMakeFiles/gaugur_gamesim.dir/contention.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/contention.cpp.o.d"
  "CMakeFiles/gaugur_gamesim.dir/encoder.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/encoder.cpp.o.d"
  "CMakeFiles/gaugur_gamesim.dir/game.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/game.cpp.o.d"
  "CMakeFiles/gaugur_gamesim.dir/inflation_shape.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/inflation_shape.cpp.o.d"
  "CMakeFiles/gaugur_gamesim.dir/server_sim.cpp.o"
  "CMakeFiles/gaugur_gamesim.dir/server_sim.cpp.o.d"
  "libgaugur_gamesim.a"
  "libgaugur_gamesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_gamesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
