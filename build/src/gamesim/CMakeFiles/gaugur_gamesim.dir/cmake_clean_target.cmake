file(REMOVE_RECURSE
  "libgaugur_gamesim.a"
)
