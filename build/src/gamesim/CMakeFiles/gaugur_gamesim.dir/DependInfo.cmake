
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gamesim/catalog.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/catalog.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/catalog.cpp.o.d"
  "/root/repo/src/gamesim/contention.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/contention.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/contention.cpp.o.d"
  "/root/repo/src/gamesim/encoder.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/encoder.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/encoder.cpp.o.d"
  "/root/repo/src/gamesim/game.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/game.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/game.cpp.o.d"
  "/root/repo/src/gamesim/inflation_shape.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/inflation_shape.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/inflation_shape.cpp.o.d"
  "/root/repo/src/gamesim/server_sim.cpp" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/server_sim.cpp.o" "gcc" "src/gamesim/CMakeFiles/gaugur_gamesim.dir/server_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
