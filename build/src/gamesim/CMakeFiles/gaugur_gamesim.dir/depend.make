# Empty dependencies file for gaugur_gamesim.
# This may be replaced when dependencies are built.
