# Empty dependencies file for gaugur_ml.
# This may be replaced when dependencies are built.
