
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/gradient_boosting.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/gaugur_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/gaugur_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
