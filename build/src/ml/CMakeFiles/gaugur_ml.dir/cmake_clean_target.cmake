file(REMOVE_RECURSE
  "libgaugur_ml.a"
)
