file(REMOVE_RECURSE
  "CMakeFiles/gaugur_ml.dir/dataset.cpp.o"
  "CMakeFiles/gaugur_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/gaugur_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/factory.cpp.o"
  "CMakeFiles/gaugur_ml.dir/factory.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/gradient_boosting.cpp.o"
  "CMakeFiles/gaugur_ml.dir/gradient_boosting.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/metrics.cpp.o"
  "CMakeFiles/gaugur_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/random_forest.cpp.o"
  "CMakeFiles/gaugur_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/scaler.cpp.o"
  "CMakeFiles/gaugur_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/serialize.cpp.o"
  "CMakeFiles/gaugur_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/gaugur_ml.dir/svm.cpp.o"
  "CMakeFiles/gaugur_ml.dir/svm.cpp.o.d"
  "libgaugur_ml.a"
  "libgaugur_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
