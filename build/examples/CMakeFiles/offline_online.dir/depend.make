# Empty dependencies file for offline_online.
# This may be replaced when dependencies are built.
