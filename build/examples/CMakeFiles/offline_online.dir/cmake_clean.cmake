file(REMOVE_RECURSE
  "CMakeFiles/offline_online.dir/offline_online.cpp.o"
  "CMakeFiles/offline_online.dir/offline_online.cpp.o.d"
  "offline_online"
  "offline_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
