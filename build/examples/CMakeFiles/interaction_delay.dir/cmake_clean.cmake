file(REMOVE_RECURSE
  "CMakeFiles/interaction_delay.dir/interaction_delay.cpp.o"
  "CMakeFiles/interaction_delay.dir/interaction_delay.cpp.o.d"
  "interaction_delay"
  "interaction_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interaction_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
