# Empty compiler generated dependencies file for interaction_delay.
# This may be replaced when dependencies are built.
