
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gamesim/catalog_property_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/catalog_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/catalog_property_test.cpp.o.d"
  "/root/repo/tests/gamesim/catalog_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/catalog_test.cpp.o.d"
  "/root/repo/tests/gamesim/contention_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/contention_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/contention_test.cpp.o.d"
  "/root/repo/tests/gamesim/game_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/game_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/game_test.cpp.o.d"
  "/root/repo/tests/gamesim/inflation_shape_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/inflation_shape_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/inflation_shape_test.cpp.o.d"
  "/root/repo/tests/gamesim/pressure_bench_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/pressure_bench_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/pressure_bench_test.cpp.o.d"
  "/root/repo/tests/gamesim/resolution_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/resolution_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/resolution_test.cpp.o.d"
  "/root/repo/tests/gamesim/resource_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/resource_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/resource_test.cpp.o.d"
  "/root/repo/tests/gamesim/server_sim_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/server_sim_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/server_sim_test.cpp.o.d"
  "/root/repo/tests/gamesim/simulation_property_test.cpp" "tests/CMakeFiles/tests_gamesim.dir/gamesim/simulation_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_gamesim.dir/gamesim/simulation_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gamesim/CMakeFiles/gaugur_gamesim.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/gaugur_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
