file(REMOVE_RECURSE
  "CMakeFiles/tests_gamesim.dir/gamesim/catalog_property_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/catalog_property_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/catalog_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/catalog_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/contention_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/contention_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/game_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/game_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/inflation_shape_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/inflation_shape_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/pressure_bench_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/pressure_bench_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/resolution_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/resolution_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/resource_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/resource_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/server_sim_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/server_sim_test.cpp.o.d"
  "CMakeFiles/tests_gamesim.dir/gamesim/simulation_property_test.cpp.o"
  "CMakeFiles/tests_gamesim.dir/gamesim/simulation_property_test.cpp.o.d"
  "tests_gamesim"
  "tests_gamesim.pdb"
  "tests_gamesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gamesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
