# Empty dependencies file for tests_gamesim.
# This may be replaced when dependencies are built.
