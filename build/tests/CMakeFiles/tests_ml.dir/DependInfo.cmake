
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/ensemble_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/ensemble_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/ensemble_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/scaler_factory_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/scaler_factory_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/scaler_factory_test.cpp.o.d"
  "/root/repo/tests/ml/serialize_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/serialize_test.cpp.o.d"
  "/root/repo/tests/ml/svm_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/svm_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/svm_test.cpp.o.d"
  "/root/repo/tests/ml/tree_property_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/tree_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/tree_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/gaugur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
