file(REMOVE_RECURSE
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/ensemble_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/ensemble_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/scaler_factory_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/scaler_factory_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/serialize_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/serialize_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/svm_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/svm_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/tree_property_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/tree_property_test.cpp.o.d"
  "tests_ml"
  "tests_ml.pdb"
  "tests_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
