# Empty compiler generated dependencies file for tests_pipeline.
# This may be replaced when dependencies are built.
