
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline/baselines_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/baselines_test.cpp.o.d"
  "/root/repo/tests/pipeline/collaborative_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/collaborative_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/collaborative_test.cpp.o.d"
  "/root/repo/tests/pipeline/corpus_training_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/corpus_training_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/corpus_training_test.cpp.o.d"
  "/root/repo/tests/pipeline/dynamic_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/dynamic_test.cpp.o.d"
  "/root/repo/tests/pipeline/extensions_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/extensions_test.cpp.o.d"
  "/root/repo/tests/pipeline/features_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/features_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/features_test.cpp.o.d"
  "/root/repo/tests/pipeline/integration_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/integration_test.cpp.o.d"
  "/root/repo/tests/pipeline/predictor_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/predictor_test.cpp.o.d"
  "/root/repo/tests/pipeline/profiler_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/profiler_test.cpp.o.d"
  "/root/repo/tests/pipeline/sched_test.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/sched_test.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/sched_test.cpp.o.d"
  "/root/repo/tests/pipeline/world.cpp" "tests/CMakeFiles/tests_pipeline.dir/pipeline/world.cpp.o" "gcc" "tests/CMakeFiles/tests_pipeline.dir/pipeline/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/gaugur_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gaugur_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gaugur/CMakeFiles/gaugur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/gaugur_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/gaugur_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/gamesim/CMakeFiles/gaugur_gamesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gaugur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
