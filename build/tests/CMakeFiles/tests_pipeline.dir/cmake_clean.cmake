file(REMOVE_RECURSE
  "CMakeFiles/tests_pipeline.dir/pipeline/baselines_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/baselines_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/collaborative_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/collaborative_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/corpus_training_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/corpus_training_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/dynamic_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/dynamic_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/extensions_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/extensions_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/features_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/features_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/integration_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/integration_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/predictor_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/predictor_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/profiler_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/profiler_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/sched_test.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/sched_test.cpp.o.d"
  "CMakeFiles/tests_pipeline.dir/pipeline/world.cpp.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/world.cpp.o.d"
  "tests_pipeline"
  "tests_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
