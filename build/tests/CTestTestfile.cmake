# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_gamesim[1]_include.cmake")
include("/root/repo/build/tests/tests_ml[1]_include.cmake")
add_test(tests_pipeline "/root/repo/build/tests/tests_pipeline")
set_tests_properties(tests_pipeline PROPERTIES  TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
