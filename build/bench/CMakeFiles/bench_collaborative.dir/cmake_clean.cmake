file(REMOVE_RECURSE
  "CMakeFiles/bench_collaborative.dir/bench_collaborative.cpp.o"
  "CMakeFiles/bench_collaborative.dir/bench_collaborative.cpp.o.d"
  "bench_collaborative"
  "bench_collaborative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collaborative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
