# Empty dependencies file for bench_collaborative.
# This may be replaced when dependencies are built.
