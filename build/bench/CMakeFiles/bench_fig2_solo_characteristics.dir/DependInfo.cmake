
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_solo_characteristics.cpp" "bench/CMakeFiles/bench_fig2_solo_characteristics.dir/bench_fig2_solo_characteristics.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_solo_characteristics.dir/bench_fig2_solo_characteristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gaugur_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gaugur_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gaugur_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gaugur/CMakeFiles/gaugur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/gaugur_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/gaugur_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/gamesim/CMakeFiles/gaugur_gamesim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gaugur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gaugur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
