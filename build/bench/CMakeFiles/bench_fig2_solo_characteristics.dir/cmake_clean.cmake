file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_solo_characteristics.dir/bench_fig2_solo_characteristics.cpp.o"
  "CMakeFiles/bench_fig2_solo_characteristics.dir/bench_fig2_solo_characteristics.cpp.o.d"
  "bench_fig2_solo_characteristics"
  "bench_fig2_solo_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_solo_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
