# Empty compiler generated dependencies file for bench_fig2_solo_characteristics.
# This may be replaced when dependencies are built.
