file(REMOVE_RECURSE
  "libgaugur_bench_common.a"
)
