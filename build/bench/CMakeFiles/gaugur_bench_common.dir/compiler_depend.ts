# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gaugur_bench_common.
