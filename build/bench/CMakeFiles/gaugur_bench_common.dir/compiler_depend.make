# Empty compiler generated dependencies file for gaugur_bench_common.
# This may be replaced when dependencies are built.
