file(REMOVE_RECURSE
  "CMakeFiles/gaugur_bench_common.dir/bench_world.cpp.o"
  "CMakeFiles/gaugur_bench_common.dir/bench_world.cpp.o.d"
  "CMakeFiles/gaugur_bench_common.dir/trained_stack.cpp.o"
  "CMakeFiles/gaugur_bench_common.dir/trained_stack.cpp.o.d"
  "libgaugur_bench_common.a"
  "libgaugur_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaugur_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
