file(REMOVE_RECURSE
  "CMakeFiles/bench_obs_resolution_laws.dir/bench_obs_resolution_laws.cpp.o"
  "CMakeFiles/bench_obs_resolution_laws.dir/bench_obs_resolution_laws.cpp.o.d"
  "bench_obs_resolution_laws"
  "bench_obs_resolution_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs_resolution_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
