# Empty compiler generated dependencies file for bench_obs_resolution_laws.
# This may be replaced when dependencies are built.
