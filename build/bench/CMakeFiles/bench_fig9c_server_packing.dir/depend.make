# Empty dependencies file for bench_fig9c_server_packing.
# This may be replaced when dependencies are built.
