# Empty dependencies file for bench_fig7a_rm_algorithms.
# This may be replaced when dependencies are built.
