# Empty compiler generated dependencies file for bench_fig7bc_rm_vs_baselines.
# This may be replaced when dependencies are built.
