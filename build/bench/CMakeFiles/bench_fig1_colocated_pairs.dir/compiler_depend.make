# Empty compiler generated dependencies file for bench_fig1_colocated_pairs.
# This may be replaced when dependencies are built.
