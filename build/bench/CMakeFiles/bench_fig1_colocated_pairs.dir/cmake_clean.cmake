file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_colocated_pairs.dir/bench_fig1_colocated_pairs.cpp.o"
  "CMakeFiles/bench_fig1_colocated_pairs.dir/bench_fig1_colocated_pairs.cpp.o.d"
  "bench_fig1_colocated_pairs"
  "bench_fig1_colocated_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_colocated_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
