file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nonadditive_intensity.dir/bench_fig6_nonadditive_intensity.cpp.o"
  "CMakeFiles/bench_fig6_nonadditive_intensity.dir/bench_fig6_nonadditive_intensity.cpp.o.d"
  "bench_fig6_nonadditive_intensity"
  "bench_fig6_nonadditive_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nonadditive_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
