# Empty dependencies file for bench_fig6_nonadditive_intensity.
# This may be replaced when dependencies are built.
