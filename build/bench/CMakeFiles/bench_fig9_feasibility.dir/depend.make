# Empty dependencies file for bench_fig9_feasibility.
# This may be replaced when dependencies are built.
