file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8ab_cm_algorithms.dir/bench_fig8ab_cm_algorithms.cpp.o"
  "CMakeFiles/bench_fig8ab_cm_algorithms.dir/bench_fig8ab_cm_algorithms.cpp.o.d"
  "bench_fig8ab_cm_algorithms"
  "bench_fig8ab_cm_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8ab_cm_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
