# Empty dependencies file for bench_fig8ab_cm_algorithms.
# This may be replaced when dependencies are built.
