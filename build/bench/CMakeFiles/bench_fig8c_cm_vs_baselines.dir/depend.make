# Empty dependencies file for bench_fig8c_cm_vs_baselines.
# This may be replaced when dependencies are built.
