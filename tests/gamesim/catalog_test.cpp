#include "gamesim/catalog.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gamesim/server_sim.h"
#include "resources/resolution.h"

namespace gaugur::gamesim {
namespace {

using resources::Resource;

class CatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { catalog_ = new GameCatalog(GameCatalog::MakeDefault(42)); }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static const GameCatalog& catalog() { return *catalog_; }

 private:
  static const GameCatalog* catalog_;
};

const GameCatalog* CatalogTest::catalog_ = nullptr;

TEST_F(CatalogTest, HasExactlyHundredGames) {
  EXPECT_EQ(catalog().size(), 100u);
}

TEST_F(CatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& g : catalog().games()) names.insert(g.name);
  EXPECT_EQ(names.size(), catalog().size());
}

TEST_F(CatalogTest, IdsMatchPositions) {
  for (std::size_t i = 0; i < catalog().size(); ++i) {
    EXPECT_EQ(catalog()[i].id, static_cast<int>(i));
  }
}

TEST_F(CatalogTest, DeterministicAcrossBuilds) {
  const auto again = GameCatalog::MakeDefault(42);
  for (std::size_t i = 0; i < catalog().size(); ++i) {
    EXPECT_EQ(catalog()[i].name, again[i].name);
    EXPECT_DOUBLE_EQ(catalog()[i].t_cpu_ms, again[i].t_cpu_ms);
    EXPECT_DOUBLE_EQ(catalog()[i].gpu_fps_intercept,
                     again[i].gpu_fps_intercept);
    for (Resource r : resources::kAllResources) {
      EXPECT_DOUBLE_EQ(catalog()[i].occupancy_ref[r],
                       again[i].occupancy_ref[r]);
    }
  }
}

TEST_F(CatalogTest, DifferentSeedDifferentParameters) {
  const auto other = GameCatalog::MakeDefault(43);
  int differing = 0;
  for (std::size_t i = 0; i < catalog().size(); ++i) {
    if (catalog()[i].t_cpu_ms != other[i].t_cpu_ms) ++differing;
  }
  EXPECT_GT(differing, 80);
}

TEST_F(CatalogTest, ParametersInPhysicalRanges) {
  for (const auto& g : catalog().games()) {
    EXPECT_GT(g.t_cpu_ms, 0.0) << g.name;
    EXPECT_LT(g.t_cpu_ms, 30.0) << g.name;
    EXPECT_GT(g.gpu_fps_intercept, 50.0) << g.name;
    EXPECT_GE(g.xfer_fraction, 0.0) << g.name;
    EXPECT_LT(g.xfer_fraction, 0.5) << g.name;
    EXPECT_GT(g.cpu_memory, 0.0) << g.name;
    EXPECT_LE(g.cpu_memory, 0.6) << g.name;
    EXPECT_GT(g.gpu_memory, 0.0) << g.name;
    EXPECT_LE(g.gpu_memory, 0.6) << g.name;
    for (Resource r : resources::kAllResources) {
      EXPECT_GE(g.occupancy_ref[r], 0.0) << g.name;
      EXPECT_LE(g.occupancy_ref[r], 1.0) << g.name;
      EXPECT_GE(g.response[r].amplitude, 0.0) << g.name;
      EXPECT_LT(g.response[r].amplitude, 3.5) << g.name;
    }
  }
}

TEST_F(CatalogTest, SoloFpsSpectrumIsWide) {
  // The paper's Fig. 2b shows solo rates from ~30 to ~360 FPS.
  double lo = 1e9, hi = 0.0;
  for (const auto& g : catalog().games()) {
    const double fps = g.SoloFps(resources::k1080p);
    lo = std::min(lo, fps);
    hi = std::max(hi, fps);
    EXPECT_GT(fps, 20.0) << g.name;
    EXPECT_LT(fps, 500.0) << g.name;
  }
  EXPECT_LT(lo, 70.0);
  EXPECT_GT(hi, 200.0);
}

TEST_F(CatalogTest, ByNameFindsShowcaseGames) {
  for (const char* name :
       {"Dota2", "Far Cry 4", "Granado Espada", "Rise of The Tomb Raider",
        "The Elder Scrolls 5", "World of Warcraft", "Ancestors Legacy",
        "Borderland2", "H1Z1", "ARK Survival Evolved", "AirMech Strike",
        "Hobo: Tough Life", "Dragon's Dogma", "Little Witch Academia"}) {
    EXPECT_NE(catalog().FindByName(name), nullptr) << name;
  }
}

TEST_F(CatalogTest, ByNameThrowsOnUnknown) {
  EXPECT_EQ(catalog().FindByName("No Such Game"), nullptr);
  EXPECT_THROW(catalog().ByName("No Such Game"), std::logic_error);
}

TEST_F(CatalogTest, AllGenresRepresented) {
  std::set<Genre> genres;
  for (const auto& g : catalog().games()) genres.insert(g.genre);
  EXPECT_EQ(genres.size(), static_cast<std::size_t>(kNumGenres));
}

TEST_F(CatalogTest, ShowcaseElderScrollsCpuSensitive) {
  // Observation 3: ~70% degradation under max CPU-CE pressure — i.e. a
  // high CPU-CE amplitude on a CPU-bound game.
  const Game& tes = catalog().ByName("The Elder Scrolls 5");
  EXPECT_GT(tes.response[Resource::kCpuCore].amplitude, 2.0);
  EXPECT_LT(1000.0 / tes.t_cpu_ms, tes.GpuLimitFps(resources::k1080p));
}

TEST_F(CatalogTest, ShowcaseGranadoEspadaDecoupled) {
  // Observation 2: sensitivity and intensity are decoupled.
  const Game& ge = catalog().ByName("Granado Espada");
  EXPECT_GT(ge.response[Resource::kGpuCore].amplitude, 2.0);
  EXPECT_LT(ge.occupancy_ref[Resource::kGpuCore], 0.2);
}

TEST_F(CatalogTest, SectionTwoVbpCounterexampleDemands) {
  // §2.2's demand vectors must make the VBP sums fit the server.
  const Game& dd = catalog().ByName("Dragon's Dogma");
  const Game& lwa = catalog().ByName("Little Witch Academia");
  EXPECT_LE(dd.occupancy_ref[Resource::kCpuCore] +
                lwa.occupancy_ref[Resource::kCpuCore],
            1.0);
  EXPECT_LE(dd.occupancy_ref[Resource::kGpuCore] +
                lwa.occupancy_ref[Resource::kGpuCore],
            1.0);
  EXPECT_LE(dd.cpu_memory + lwa.cpu_memory, 1.0);
  EXPECT_LE(dd.gpu_memory + lwa.gpu_memory, 1.0);
}

TEST_F(CatalogTest, SectionTwoVbpCounterexampleViolatesQos) {
  // ... and yet the actual colocation drops Little Witch Academia well
  // below 60 FPS (the paper measures 42).
  const ServerSim sim;
  const Game& dd = catalog().ByName("Dragon's Dogma");
  const Game& lwa = catalog().ByName("Little Witch Academia");
  const std::array<WorkloadProfile, 2> pair = {
      lwa.AtResolution(resources::k1080p),
      dd.AtResolution(resources::k1080p)};
  const auto results = sim.RunAnalytic(pair);
  EXPECT_LT(results[0].rate, 60.0);
  EXPECT_GT(lwa.SoloFps(resources::k1080p), 60.0);
}

}  // namespace
}  // namespace gaugur::gamesim
