#include "gamesim/game.h"

#include <gtest/gtest.h>

#include "resources/resolution.h"

namespace gaugur::gamesim {
namespace {

using resources::Resolution;
using resources::Resource;

Game MakeTestGame() {
  Game g;
  g.id = 0;
  g.name = "test";
  g.t_cpu_ms = 8.0;  // 125 FPS CPU limit
  g.gpu_fps_intercept = 200.0;
  g.gpu_fps_slope = 40.0;
  g.xfer_fraction = 0.1;
  g.fps_cap = 1e5;
  g.pixel_scale_floor = 0.25;
  for (Resource r : resources::kAllResources) {
    g.occupancy_ref[r] = 0.4;
    g.response[r] = InflationResponse{0.5, InflationShape::Linear()};
  }
  return g;
}

TEST(GameTest, GpuLimitLinearInMegapixels) {
  const Game g = MakeTestGame();
  // Eq. 2: F_gpu = 200 - 40 * Mpix.
  EXPECT_NEAR(g.GpuLimitFps(resources::k1080p),
              200.0 - 40.0 * resources::k1080p.Megapixels(), 1e-9);
  EXPECT_NEAR(g.GpuLimitFps(resources::k720p),
              200.0 - 40.0 * resources::k720p.Megapixels(), 1e-9);
}

TEST(GameTest, GpuLimitFlooredAtLowFps) {
  Game g = MakeTestGame();
  g.gpu_fps_slope = 1000.0;  // negative at any real resolution
  EXPECT_GT(g.GpuLimitFps(resources::k1440p), 0.0);
}

TEST(GameTest, SoloFpsIsMinOfLimits) {
  const Game g = MakeTestGame();
  // At 1080p: CPU limit 125, GPU limit ~117 -> GPU-bound.
  const double solo = g.SoloFps(resources::k1080p);
  EXPECT_NEAR(solo, g.GpuLimitFps(resources::k1080p), 1e-9);
  // At 720p: GPU limit ~163 > CPU limit 125 -> CPU-bound.
  EXPECT_NEAR(g.SoloFps(resources::k720p), 125.0, 1e-9);
}

TEST(GameTest, SoloFpsRespectsCap) {
  Game g = MakeTestGame();
  g.fps_cap = 60.0;
  EXPECT_DOUBLE_EQ(g.SoloFps(resources::k1080p), 60.0);
}

TEST(GameTest, SoloFpsDecreasesWithResolution) {
  const Game g = MakeTestGame();
  EXPECT_GT(g.SoloFps(resources::k720p), g.SoloFps(resources::k1080p));
  EXPECT_GT(g.SoloFps(resources::k1080p), g.SoloFps(resources::k1440p));
}

TEST(GameTest, WorkloadSoloRateMatchesGameSoloFps) {
  const Game g = MakeTestGame();
  for (const Resolution& res :
       {resources::k720p, resources::k1080p, resources::k1440p}) {
    const WorkloadProfile w = g.AtResolution(res);
    EXPECT_NEAR(w.SoloRate(), g.SoloFps(res), 1e-6) << res.ToString();
  }
}

TEST(GameTest, CpuStageResolutionIndependent) {
  const Game g = MakeTestGame();
  const auto w1 = g.AtResolution(resources::k720p);
  const auto w2 = g.AtResolution(resources::k1440p);
  EXPECT_DOUBLE_EQ(w1.t_cpu_ms, w2.t_cpu_ms);
}

TEST(GameTest, GpuStageGrowsWithResolution) {
  const Game g = MakeTestGame();
  const auto w1 = g.AtResolution(resources::k720p);
  const auto w2 = g.AtResolution(resources::k1440p);
  EXPECT_LT(w1.t_gpu_render_ms + w1.t_xfer_ms,
            w2.t_gpu_render_ms + w2.t_xfer_ms);
}

TEST(GameTest, XferFractionRespected) {
  const Game g = MakeTestGame();
  const auto w = g.AtResolution(resources::k1080p);
  const double total = w.t_gpu_render_ms + w.t_xfer_ms;
  EXPECT_NEAR(w.t_xfer_ms / total, g.xfer_fraction, 1e-9);
}

TEST(GameTest, CpuSideOccupancyResolutionIndependent) {
  // Observation 7.
  const Game g = MakeTestGame();
  const auto w1 = g.AtResolution(resources::k720p);
  const auto w2 = g.AtResolution(resources::k1440p);
  for (Resource r :
       {Resource::kCpuCore, Resource::kLlc, Resource::kMemBw}) {
    EXPECT_DOUBLE_EQ(w1.occupancy[r], w2.occupancy[r])
        << resources::Name(r);
  }
}

TEST(GameTest, GpuSideOccupancyLinearInPixels) {
  // Observation 8: occupancy at resolution M is o_ref * (floor +
  // (1-floor) * M / M_ref) — affine in M.
  const Game g = MakeTestGame();
  const auto w_ref = g.AtResolution(resources::kReferenceResolution);
  const auto w_720 = g.AtResolution(resources::k720p);
  const auto w_1440 = g.AtResolution(resources::k1440p);
  const double m_ref = resources::kReferenceResolution.Megapixels();
  for (Resource r : {Resource::kGpuCore, Resource::kGpuBw,
                     Resource::kGpuL2, Resource::kPcieBw}) {
    EXPECT_NEAR(w_ref.occupancy[r], 0.4, 1e-12);
    const double expected_720 =
        0.4 * (0.25 + 0.75 * resources::k720p.Megapixels() / m_ref);
    EXPECT_NEAR(w_720.occupancy[r], expected_720, 1e-12);
    EXPECT_GT(w_1440.occupancy[r], w_ref.occupancy[r]);
  }
}

TEST(GameTest, CappedGameShedsOccupancy) {
  Game g = MakeTestGame();
  g.fps_cap = 60.0;  // pipeline could do ~117 at 1080p
  const auto w = g.AtResolution(resources::k1080p);
  const auto uncapped = MakeTestGame().AtResolution(resources::k1080p);
  for (Resource r : resources::kAllResources) {
    EXPECT_LT(w.occupancy[r], uncapped.occupancy[r]) << resources::Name(r);
  }
}

TEST(GameTest, GenreNamesDistinct) {
  EXPECT_NE(GenreName(Genre::kMoba), GenreName(Genre::kCasual));
  EXPECT_EQ(GenreName(Genre::kOpenWorldAaa), "OpenWorldAAA");
}

}  // namespace
}  // namespace gaugur::gamesim
