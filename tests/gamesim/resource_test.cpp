#include "resources/resource.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace gaugur::resources {
namespace {

TEST(ResourceTest, SevenResources) {
  EXPECT_EQ(kNumResources, 7u);
  EXPECT_EQ(kAllResources.size(), kNumResources);
}

TEST(ResourceTest, IndicesAreDense) {
  std::set<std::size_t> indices;
  for (Resource r : kAllResources) indices.insert(Index(r));
  EXPECT_EQ(indices.size(), kNumResources);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), kNumResources - 1);
}

TEST(ResourceTest, NamesMatchPaper) {
  EXPECT_EQ(Name(Resource::kCpuCore), "CPU-CE");
  EXPECT_EQ(Name(Resource::kLlc), "LLC");
  EXPECT_EQ(Name(Resource::kMemBw), "MEM-BW");
  EXPECT_EQ(Name(Resource::kGpuCore), "GPU-CE");
  EXPECT_EQ(Name(Resource::kGpuBw), "GPU-BW");
  EXPECT_EQ(Name(Resource::kGpuL2), "GPU-L2");
  EXPECT_EQ(Name(Resource::kPcieBw), "PCIe-BW");
}

TEST(ResourceTest, SidePartition) {
  // Every resource is CPU-side, GPU-side, or the PCIe link — exactly one.
  int cpu = 0, gpu = 0, other = 0;
  for (Resource r : kAllResources) {
    EXPECT_FALSE(IsCpuSide(r) && IsGpuSide(r)) << Name(r);
    if (IsCpuSide(r)) {
      ++cpu;
    } else if (IsGpuSide(r)) {
      ++gpu;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(cpu, 3);
  EXPECT_EQ(gpu, 3);
  EXPECT_EQ(other, 1);
}

TEST(ResourceTest, CacheCapacityResources) {
  EXPECT_TRUE(IsCacheCapacity(Resource::kLlc));
  EXPECT_TRUE(IsCacheCapacity(Resource::kGpuL2));
  EXPECT_FALSE(IsCacheCapacity(Resource::kMemBw));
  EXPECT_FALSE(IsCacheCapacity(Resource::kGpuBw));
}

TEST(ResourceTest, PixelScalingIsGpuSidePlusPcie) {
  // Observation 8's resources.
  for (Resource r : kAllResources) {
    EXPECT_EQ(ScalesWithPixels(r), IsGpuSide(r) || r == Resource::kPcieBw)
        << Name(r);
  }
}

TEST(PerResourceTest, IndexingByEnumAndSize) {
  PerResource<double> values{};
  values[Resource::kGpuBw] = 3.5;
  EXPECT_DOUBLE_EQ(values[Index(Resource::kGpuBw)], 3.5);
  EXPECT_EQ(PerResource<double>::size(), kNumResources);
}

TEST(PerResourceTest, IterationCoversAll) {
  PerResource<int> values{};
  for (auto& v : values) v = 2;
  int sum = 0;
  for (int v : values) sum += v;
  EXPECT_EQ(sum, 14);
}

}  // namespace
}  // namespace gaugur::resources
