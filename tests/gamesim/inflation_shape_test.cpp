#include "gamesim/inflation_shape.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

namespace gaugur::gamesim {
namespace {

// Every shape family, across parameters, must satisfy the normalized-shape
// contract: h(0) = 0, h(1) = 1, monotone nondecreasing, bounded in [0,1].
class ShapeContractTest
    : public ::testing::TestWithParam<std::tuple<std::string, InflationShape>> {
};

TEST_P(ShapeContractTest, Endpoints) {
  const auto& shape = std::get<1>(GetParam());
  EXPECT_NEAR(shape.Eval(0.0), 0.0, 1e-12);
  EXPECT_NEAR(shape.Eval(1.0), 1.0, 1e-12);
}

TEST_P(ShapeContractTest, MonotoneNondecreasing) {
  const auto& shape = std::get<1>(GetParam());
  double prev = -1e-9;
  for (int i = 0; i <= 100; ++i) {
    const double v = shape.Eval(i / 100.0);
    EXPECT_GE(v, prev - 1e-12) << "at x=" << i / 100.0;
    prev = v;
  }
}

TEST_P(ShapeContractTest, BoundedAndClamped) {
  const auto& shape = std::get<1>(GetParam());
  for (double x : {-0.5, 0.3, 0.9, 1.5}) {
    const double v = shape.Eval(x);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(shape.Eval(-1.0), shape.Eval(0.0));
  EXPECT_DOUBLE_EQ(shape.Eval(2.0), shape.Eval(1.0));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeContractTest,
    ::testing::Values(
        std::make_tuple("linear", InflationShape::Linear()),
        std::make_tuple("power_0_5", InflationShape::Power(0.5)),
        std::make_tuple("power_2", InflationShape::Power(2.0)),
        std::make_tuple("power_3_2", InflationShape::Power(3.2)),
        std::make_tuple("logistic_mild", InflationShape::Logistic(4.0, 0.5)),
        std::make_tuple("logistic_steep", InflationShape::Logistic(12.0, 0.3)),
        std::make_tuple("logistic_late", InflationShape::Logistic(8.0, 0.7)),
        std::make_tuple("plateau_early", InflationShape::Plateau(0.25)),
        std::make_tuple("plateau_late", InflationShape::Plateau(0.6))),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(InflationShapeTest, LinearIsIdentity) {
  const auto shape = InflationShape::Linear();
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(shape.Eval(x), x);
  }
}

TEST(InflationShapeTest, ConvexPowerBelowLinear) {
  const auto shape = InflationShape::Power(2.0);
  EXPECT_LT(shape.Eval(0.5), 0.5);
}

TEST(InflationShapeTest, ConcavePowerAboveLinear) {
  const auto shape = InflationShape::Power(0.5);
  EXPECT_GT(shape.Eval(0.5), 0.5);
}

TEST(InflationShapeTest, PlateauFlatBeforeKnee) {
  const auto shape = InflationShape::Plateau(0.4);
  EXPECT_DOUBLE_EQ(shape.Eval(0.2), 0.0);
  EXPECT_DOUBLE_EQ(shape.Eval(0.4), 0.0);
  EXPECT_GT(shape.Eval(0.5), 0.0);
  EXPECT_NEAR(shape.Eval(0.7), 0.5, 1e-12);
}

TEST(InflationShapeTest, LogisticKneeLocation) {
  // At the knee the normalized logistic passes near its midpoint.
  const auto shape = InflationShape::Logistic(10.0, 0.5);
  EXPECT_NEAR(shape.Eval(0.5), 0.5, 0.02);
}

TEST(InflationResponseTest, SlowdownFactorAtZeroPressureIsOne) {
  const InflationResponse response{0.8, InflationShape::Power(2.0)};
  EXPECT_DOUBLE_EQ(response.SlowdownFactor(0.0), 1.0);
}

TEST(InflationResponseTest, SlowdownFactorAtMaxPressure) {
  const InflationResponse response{0.8, InflationShape::Linear()};
  EXPECT_DOUBLE_EQ(response.SlowdownFactor(1.0), 1.8);
}

TEST(InflationResponseTest, ZeroAmplitudeIsInert) {
  const InflationResponse response{0.0, InflationShape::Power(2.0)};
  for (double x : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(response.SlowdownFactor(x), 1.0);
  }
}

}  // namespace
}  // namespace gaugur::gamesim
