// Catalog-wide property sweep: every one of the 100 games must satisfy
// the workload-model invariants at every player resolution.
#include <gtest/gtest.h>

#include "gamesim/catalog.h"
#include "resources/resolution.h"

namespace gaugur::gamesim {
namespace {

using resources::Resolution;
using resources::Resource;

class EveryGameTest : public ::testing::TestWithParam<int> {
 protected:
  static const GameCatalog& catalog() {
    static const GameCatalog* instance =
        new GameCatalog(GameCatalog::MakeDefault(42));
    return *instance;
  }
  const Game& game() const {
    return catalog()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(EveryGameTest, WorkloadSoloRateMatchesClosedForm) {
  for (const Resolution& res : resources::kPlayerResolutions) {
    const WorkloadProfile w = game().AtResolution(res);
    EXPECT_NEAR(w.SoloRate(), game().SoloFps(res), 1e-6)
        << game().name << " @ " << res.ToString();
  }
}

TEST_P(EveryGameTest, OccupancyStaysPhysical) {
  for (const Resolution& res : resources::kPlayerResolutions) {
    const WorkloadProfile w = game().AtResolution(res);
    for (Resource r : resources::kAllResources) {
      EXPECT_GE(w.occupancy[r], 0.0) << game().name;
      // Occupancy is a demand indicator: a AAA title at 1440p can demand
      // somewhat more than the reference GPU offers (the contention laws
      // saturate it), but nothing should be wildly unphysical.
      EXPECT_LE(w.occupancy[r], 1.5) << game().name << " @ "
                                     << res.ToString();
    }
  }
}

TEST_P(EveryGameTest, StageTimesPositive) {
  for (const Resolution& res : resources::kPlayerResolutions) {
    const WorkloadProfile w = game().AtResolution(res);
    EXPECT_GT(w.t_cpu_ms, 0.0);
    EXPECT_GT(w.t_gpu_render_ms, 0.0);
    EXPECT_GE(w.t_xfer_ms, 0.0);
  }
}

TEST_P(EveryGameTest, SoloFpsMonotoneNonIncreasingInPixels) {
  double prev = 1e18;
  for (const Resolution& res :
       {resources::k720p, resources::k900p, resources::k1080p,
        resources::k1440p}) {
    const double fps = game().SoloFps(res);
    EXPECT_LE(fps, prev + 1e-9) << game().name << " @ " << res.ToString();
    prev = fps;
  }
}

TEST_P(EveryGameTest, GpuLimitExactlyLinearAboveFloor) {
  // Eq. 2's substrate-side guarantee: the GPU throughput limit is an
  // affine function of megapixels (when above the 5 FPS floor).
  const Game& g = game();
  const double f720 = g.GpuLimitFps(resources::k720p);
  const double f1080 = g.GpuLimitFps(resources::k1080p);
  const double f1440 = g.GpuLimitFps(resources::k1440p);
  if (f1440 <= 5.0 + 1e-9) GTEST_SKIP() << "hits the throughput floor";
  const double m720 = resources::k720p.Megapixels();
  const double m1080 = resources::k1080p.Megapixels();
  const double m1440 = resources::k1440p.Megapixels();
  const double slope_a = (f1080 - f720) / (m1080 - m720);
  const double slope_b = (f1440 - f1080) / (m1440 - m1080);
  EXPECT_NEAR(slope_a, slope_b, 1e-9) << g.name;
}

TEST_P(EveryGameTest, CappedGamesNeverExceedCap) {
  for (const Resolution& res : resources::kPlayerResolutions) {
    EXPECT_LE(game().SoloFps(res), game().fps_cap + 1e-9);
  }
}

TEST_P(EveryGameTest, ResponsesHaveValidShapes) {
  for (Resource r : resources::kAllResources) {
    const auto& response = game().response[r];
    EXPECT_GE(response.amplitude, 0.0);
    EXPECT_NEAR(response.shape.Eval(0.0), 0.0, 1e-12);
    EXPECT_NEAR(response.shape.Eval(1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(response.SlowdownFactor(0.0), 1.0);
  }
}

TEST_P(EveryGameTest, MemoryAllowsFourWayColocationOrIsShowcase) {
  // The catalog keeps memory from being the binding constraint (the
  // paper's testbed never hit it) — except for the §2.2 showcase game.
  const Game& g = game();
  if (g.name == "Little Witch Academia") {
    EXPECT_DOUBLE_EQ(g.gpu_memory, 0.5);  // the deliberate outlier
    return;
  }
  EXPECT_LE(g.cpu_memory, 0.25) << g.name;
  EXPECT_LE(g.gpu_memory, 0.25) << g.name;
}

INSTANTIATE_TEST_SUITE_P(AllHundredGames, EveryGameTest,
                         ::testing::Range(0, 100));

}  // namespace
}  // namespace gaugur::gamesim
