#include "microbench/pressure_bench.h"

#include <gtest/gtest.h>

#include <array>

#include "gamesim/server_sim.h"

namespace gaugur::microbench {
namespace {

using gamesim::ServerSim;
using gamesim::WorkloadProfile;
using resources::Resource;

class PressureBenchAllResources
    : public ::testing::TestWithParam<Resource> {};

TEST_P(PressureBenchAllResources, TargetOccupancyEqualsPressure) {
  const Resource r = GetParam();
  for (double x : {0.0, 0.3, 0.7, 1.0}) {
    const WorkloadProfile w = MakePressureBench(r, x);
    EXPECT_DOUBLE_EQ(w.occupancy[r], x) << resources::Name(r);
  }
}

TEST_P(PressureBenchAllResources, MinimalCrossResourceLeak) {
  // Design principle 2: little contention on non-target resources. The
  // one sanctioned exception is GPU-BW's GPU-L2 footprint.
  const Resource r = GetParam();
  const WorkloadProfile w = MakePressureBench(r, 1.0);
  for (Resource other : resources::kAllResources) {
    if (other == r) continue;
    if (r == Resource::kGpuBw && other == Resource::kGpuL2) {
      EXPECT_GT(w.occupancy[other], 0.2);  // the documented cache leak
      continue;
    }
    EXPECT_LE(w.occupancy[other], 0.05) << resources::Name(other);
  }
}

TEST_P(PressureBenchAllResources, PressureIsPinned) {
  // throughput_coupling 0: the bench re-tunes its sleep to hold pressure.
  const WorkloadProfile w = MakePressureBench(GetParam(), 0.5);
  EXPECT_DOUBLE_EQ(w.throughput_coupling, 0.0);
}

TEST_P(PressureBenchAllResources, RunsOnItsResourceSide) {
  const Resource r = GetParam();
  const WorkloadProfile w = MakePressureBench(r, 0.5);
  if (resources::IsCpuSide(r)) {
    EXPECT_GT(w.t_cpu_ms, w.t_gpu_render_ms);
    EXPECT_GT(w.t_cpu_ms, w.t_xfer_ms);
  } else if (resources::IsGpuSide(r)) {
    EXPECT_GT(w.t_gpu_render_ms, w.t_cpu_ms);
  } else {
    EXPECT_GT(w.t_xfer_ms, w.t_cpu_ms);
  }
}

TEST_P(PressureBenchAllResources, SlowdownGrowsWithVictimOccupancy) {
  // The intensity observable: a heavier co-runner slows the bench more.
  const Resource r = GetParam();
  const ServerSim sim;
  const WorkloadProfile bench = MakePressureBench(r, 0.5);
  const double solo = sim.RunAnalytic(std::array{bench})[0].rate;

  auto slowdown_against = [&](double occ) {
    WorkloadProfile game;
    game.name = "synthetic-game";
    game.t_cpu_ms = 5.0;
    game.t_gpu_render_ms = 5.0;
    game.t_xfer_ms = 0.5;
    game.occupancy[r] = occ;
    game.throughput_coupling = 0.0;
    const auto res = sim.RunAnalytic(std::array{bench, game});
    return BenchSlowdown(solo, res[0].rate);
  };
  EXPECT_NEAR(slowdown_against(0.0), 1.0, 1e-9);
  EXPECT_LT(slowdown_against(0.3), slowdown_against(0.9));
  EXPECT_GT(slowdown_against(0.9), 1.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllResources, PressureBenchAllResources,
    ::testing::ValuesIn(resources::kAllResources),
    [](const auto& info) {
      std::string name(resources::Name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PressureBenchTest, RejectsOutOfRangePressure) {
  EXPECT_THROW(MakePressureBench(Resource::kLlc, -0.1), std::logic_error);
  EXPECT_THROW(MakePressureBench(Resource::kLlc, 1.1), std::logic_error);
}

TEST(PressureBenchTest, ZeroPressureIsHarmless) {
  const ServerSim sim;
  const WorkloadProfile bench =
      MakePressureBench(Resource::kGpuCore, 0.0);
  WorkloadProfile game;
  game.t_cpu_ms = 5.0;
  game.t_gpu_render_ms = 8.0;
  game.t_xfer_ms = 0.5;
  for (Resource r : resources::kAllResources) {
    game.response[r] = gamesim::InflationResponse{
        1.0, gamesim::InflationShape::Linear()};
  }
  const auto res = sim.RunAnalytic(std::array{game, bench});
  EXPECT_NEAR(res[0].rate_ratio, 1.0, 1e-9);
}

TEST(PressureBenchTest, PressureGridMatchesPaper) {
  const auto grid = PressureGrid(10);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_DOUBLE_EQ(grid[5], 0.5);
}

TEST(PressureBenchTest, PressureGridGranularityOne) {
  const auto grid = PressureGrid(1);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
}

TEST(PressureBenchTest, GpuBwLeaksIntoGpuL2Proportionally) {
  const auto half = MakePressureBench(Resource::kGpuBw, 0.5);
  const auto full = MakePressureBench(Resource::kGpuBw, 1.0);
  EXPECT_NEAR(full.occupancy[Resource::kGpuL2],
              2.0 * half.occupancy[Resource::kGpuL2], 1e-12);
}

}  // namespace
}  // namespace gaugur::microbench
