#include "resources/resolution.h"

#include <gtest/gtest.h>

namespace gaugur::resources {
namespace {

TEST(ResolutionTest, PixelCounts) {
  EXPECT_DOUBLE_EQ(k1080p.NumPixels(), 1920.0 * 1080.0);
  EXPECT_DOUBLE_EQ(k720p.Megapixels(), 1280.0 * 720.0 / 1e6);
}

TEST(ResolutionTest, OrderingByPixels) {
  EXPECT_LT(k720p.NumPixels(), k900p.NumPixels());
  EXPECT_LT(k900p.NumPixels(), k1080p.NumPixels());
  EXPECT_LT(k1080p.NumPixels(), k1440p.NumPixels());
}

TEST(ResolutionTest, ToStringFormat) {
  EXPECT_EQ(k1080p.ToString(), "1920x1080");
}

TEST(ResolutionTest, EqualityComparison) {
  EXPECT_EQ(k1080p, (Resolution{1920, 1080}));
  EXPECT_NE(k1080p, k720p);
}

TEST(PixelLinearModelTest, FromTwoPointsInterpolates) {
  const auto m = PixelLinearModel::FromTwoPoints(k720p, 100.0, k1440p, 40.0);
  EXPECT_NEAR(m.Eval(k720p), 100.0, 1e-9);
  EXPECT_NEAR(m.Eval(k1440p), 40.0, 1e-9);
}

TEST(PixelLinearModelTest, EvalIsLinearInMegapixels) {
  const auto m = PixelLinearModel::FromTwoPoints(k720p, 100.0, k1440p, 40.0);
  const double mid_megapixels =
      (k720p.Megapixels() + k1440p.Megapixels()) / 2.0;
  // A synthetic resolution at the megapixel midpoint maps to the value
  // midpoint.
  PixelLinearModel direct = m;
  EXPECT_NEAR(direct.intercept + direct.slope * mid_megapixels, 70.0, 1e-9);
}

TEST(PixelLinearModelTest, NegativeSlopeForFpsLikeData) {
  // Eq. 2: FPS falls as pixels grow.
  const auto m = PixelLinearModel::FromTwoPoints(k720p, 120.0, k1080p, 80.0);
  EXPECT_LT(m.slope, 0.0);
}

TEST(PixelLinearModelTest, RejectsDegenerateFit) {
  EXPECT_THROW(PixelLinearModel::FromTwoPoints(k1080p, 1.0, k1080p, 2.0),
               std::logic_error);
}

TEST(ResolutionTest, ReferenceIsAPlayerResolution) {
  bool found = false;
  for (const auto& r : kPlayerResolutions) {
    if (r == kReferenceResolution) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gaugur::resources
