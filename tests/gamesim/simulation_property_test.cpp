// Server-simulation property sweeps across resources and group sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gamesim/server_sim.h"
#include "microbench/pressure_bench.h"

namespace gaugur::gamesim {
namespace {

using resources::Resource;

WorkloadProfile SensitiveGame(Resource r, double amplitude) {
  WorkloadProfile w;
  w.name = "victim";
  w.t_cpu_ms = 5.0;
  w.t_gpu_render_ms = 6.0;
  w.t_xfer_ms = 1.0;
  w.response[r] = InflationResponse{amplitude, InflationShape::Linear()};
  w.occupancy[r] = 0.2;
  return w;
}

class PerResourceSimTest : public ::testing::TestWithParam<Resource> {};

TEST_P(PerResourceSimTest, DegradationMonotoneInBenchPressure) {
  const Resource r = GetParam();
  const ServerSim sim;
  const WorkloadProfile victim = SensitiveGame(r, 1.0);
  double prev_ratio = 1.0 + 1e-9;
  for (double x = 0.0; x <= 1.0; x += 0.125) {
    const std::vector<WorkloadProfile> pair{
        victim, microbench::MakePressureBench(r, x)};
    const double ratio = sim.RunAnalytic(pair)[0].rate_ratio;
    EXPECT_LE(ratio, prev_ratio + 1e-9)
        << resources::Name(r) << " at x=" << x;
    prev_ratio = ratio;
  }
}

TEST_P(PerResourceSimTest, AmplitudeScalesHarm) {
  const Resource r = GetParam();
  const ServerSim sim;
  const auto bench = microbench::MakePressureBench(r, 0.8);
  const std::vector<WorkloadProfile> mild{SensitiveGame(r, 0.3), bench};
  const std::vector<WorkloadProfile> harsh{SensitiveGame(r, 1.5), bench};
  EXPECT_GT(sim.RunAnalytic(mild)[0].rate_ratio,
            sim.RunAnalytic(harsh)[0].rate_ratio)
      << resources::Name(r);
}

TEST_P(PerResourceSimTest, OnlyMatchingResourceHurtsIsolatedVictim) {
  // A victim sensitive to exactly one resource is untouched by pressure
  // benchmarks for the others (modulo the benches' tiny residual leak).
  const Resource r = GetParam();
  const ServerSim sim;
  const WorkloadProfile victim = SensitiveGame(r, 1.2);
  for (Resource other : resources::kAllResources) {
    if (other == r) continue;
    // GPU-BW's sanctioned GPU-L2 leak can touch a GPU-L2-sensitive game.
    if (other == Resource::kGpuBw && r == Resource::kGpuL2) continue;
    const std::vector<WorkloadProfile> pair{
        victim, microbench::MakePressureBench(other, 1.0)};
    EXPECT_GT(sim.RunAnalytic(pair)[0].rate_ratio, 0.93)
        << "victim sensitive to " << resources::Name(r)
        << " harmed by bench on " << resources::Name(other);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllResources, PerResourceSimTest,
    ::testing::ValuesIn(resources::kAllResources),
    [](const auto& info) {
      std::string name(resources::Name(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

class GroupSizeSimTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizeSimTest, PermutationInvariance) {
  const int n = GetParam();
  const ServerSim sim;
  std::vector<WorkloadProfile> group;
  for (int i = 0; i < n; ++i) {
    WorkloadProfile w = SensitiveGame(Resource::kGpuCore, 0.8);
    w.occupancy[Resource::kGpuCore] = 0.2 + 0.15 * i;
    w.t_cpu_ms = 4.0 + i;
    w.name = "g" + std::to_string(i);
    group.push_back(w);
  }
  const auto base = sim.RunAnalytic(group);
  auto rotated = group;
  std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
  const auto shifted = sim.RunAnalytic(rotated);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(base[static_cast<std::size_t>(i)].rate,
                shifted[static_cast<std::size_t>((i + n - 1) % n)].rate,
                1e-6)
        << "n=" << n << " i=" << i;
  }
}

TEST_P(GroupSizeSimTest, AddingAnIdleCorunnerChangesNothing) {
  const int n = GetParam();
  const ServerSim sim;
  std::vector<WorkloadProfile> group;
  for (int i = 0; i < n; ++i) {
    group.push_back(SensitiveGame(Resource::kMemBw, 0.7));
  }
  const auto before = sim.RunAnalytic(group);
  WorkloadProfile idle;
  idle.name = "idle";
  idle.t_cpu_ms = 1.0;
  idle.t_gpu_render_ms = 1.0;
  idle.t_xfer_ms = 0.1;
  // Zero occupancy everywhere: exerts no pressure.
  group.push_back(idle);
  const auto after = sim.RunAnalytic(group);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(after[static_cast<std::size_t>(i)].rate,
                before[static_cast<std::size_t>(i)].rate, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GroupSizeSimTest,
                         ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace gaugur::gamesim
