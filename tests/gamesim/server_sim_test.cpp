#include "gamesim/server_sim.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/stats.h"
#include "gamesim/game.h"
#include "resources/resolution.h"

namespace gaugur::gamesim {
namespace {

using resources::Resource;

WorkloadProfile MakeWorkload(double occ, double amplitude,
                             double t_cpu = 5.0, double t_gpu = 8.0) {
  WorkloadProfile w;
  w.name = "w";
  w.t_cpu_ms = t_cpu;
  w.t_gpu_render_ms = t_gpu;
  w.t_xfer_ms = 1.0;
  w.throughput_coupling = 0.5;
  for (Resource r : resources::kAllResources) {
    w.occupancy[r] = occ;
    w.response[r] = InflationResponse{amplitude, InflationShape::Linear()};
  }
  return w;
}

TEST(ServerSimTest, SoloRunsAtSoloRate) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 1> w = {MakeWorkload(0.5, 1.0)};
  const auto results = sim.RunAnalytic(w);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].rate, w[0].SoloRate(), 1e-9);
  EXPECT_DOUBLE_EQ(results[0].rate_ratio, 1.0);
}

TEST(ServerSimTest, EmptyColocationIsEmpty) {
  const ServerSim sim;
  EXPECT_TRUE(sim.RunAnalytic(std::vector<WorkloadProfile>{}).empty());
}

TEST(ServerSimTest, ColocationDegradesBothWorkloads) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               MakeWorkload(0.5, 1.0)};
  const auto results = sim.RunAnalytic(pair);
  for (const auto& r : results) {
    EXPECT_LT(r.rate_ratio, 1.0);
    EXPECT_GT(r.rate_ratio, 0.1);
  }
}

TEST(ServerSimTest, SymmetricWorkloadsDegradeEqually) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.6, 0.8),
                                               MakeWorkload(0.6, 0.8)};
  const auto results = sim.RunAnalytic(pair);
  EXPECT_NEAR(results[0].rate_ratio, results[1].rate_ratio, 1e-6);
}

TEST(ServerSimTest, InsensitiveWorkloadUnharmed) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {
      MakeWorkload(0.5, /*amplitude=*/0.0), MakeWorkload(0.5, 1.0)};
  const auto results = sim.RunAnalytic(pair);
  EXPECT_NEAR(results[0].rate_ratio, 1.0, 1e-9);
  EXPECT_LT(results[1].rate_ratio, 1.0);
}

TEST(ServerSimTest, HarmlessCorunnerCausesNoDegradation) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {
      MakeWorkload(0.5, 1.0), MakeWorkload(/*occ=*/0.0, 1.0)};
  const auto results = sim.RunAnalytic(pair);
  EXPECT_NEAR(results[0].rate_ratio, 1.0, 1e-9);
}

TEST(ServerSimTest, MoreCorunnersMoreDegradation) {
  const ServerSim sim;
  std::vector<WorkloadProfile> group{MakeWorkload(0.4, 1.0)};
  double prev_ratio = 1.0;
  for (int k = 1; k <= 3; ++k) {
    group.push_back(MakeWorkload(0.4, 1.0));
    const auto results = sim.RunAnalytic(group);
    EXPECT_LT(results[0].rate_ratio, prev_ratio + 1e-9) << "k=" << k;
    prev_ratio = results[0].rate_ratio;
  }
}

TEST(ServerSimTest, HeavierCorunnerHurtsMore) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> light = {MakeWorkload(0.5, 1.0),
                                                MakeWorkload(0.2, 1.0)};
  const std::array<WorkloadProfile, 2> heavy = {MakeWorkload(0.5, 1.0),
                                                MakeWorkload(0.8, 1.0)};
  EXPECT_GT(sim.RunAnalytic(light)[0].rate_ratio,
            sim.RunAnalytic(heavy)[0].rate_ratio);
}

TEST(ServerSimTest, FrameCapHidesMildInterference) {
  // A game capped well below its pipeline rate has headroom: mild
  // contention doesn't dent its delivered FPS.
  const ServerSim sim;
  WorkloadProfile capped = MakeWorkload(0.3, 0.3, 2.0, 3.0);  // ~200 FPS pipe
  capped.fps_cap = 60.0;
  const std::array<WorkloadProfile, 2> pair = {capped,
                                               MakeWorkload(0.3, 0.5)};
  const auto results = sim.RunAnalytic(pair);
  EXPECT_NEAR(results[0].rate, 60.0, 1e-6);
  EXPECT_DOUBLE_EQ(results[0].rate_ratio, 1.0);
}

TEST(ServerSimTest, MeasureIsDeterministicInSeed) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               MakeWorkload(0.4, 0.7)};
  const auto a = sim.Measure(pair, 77);
  const auto b = sim.Measure(pair, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].rate, b[i].rate);
  }
}

TEST(ServerSimTest, MeasureNoiseIsSmallAndCentered) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 1> solo = {MakeWorkload(0.5, 1.0)};
  const double truth = sim.RunAnalytic(solo)[0].rate;
  std::vector<double> rates;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    rates.push_back(sim.Measure(solo, seed, 0.015)[0].rate);
  }
  EXPECT_NEAR(common::Mean(rates), truth, truth * 0.01);
  EXPECT_LT(common::StdDev(rates) / truth, 0.03);
}

TEST(ServerSimTest, ZeroNoiseMeasureMatchesAnalytic) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               MakeWorkload(0.4, 0.7)};
  const auto measured = sim.Measure(pair, 5, 0.0);
  const auto truth = sim.RunAnalytic(pair);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(measured[i].rate, truth[i].rate, 1e-9);
  }
}

TEST(ServerSimTest, SimulateFramesMeanNearAnalytic) {
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 0.8),
                                               MakeWorkload(0.4, 0.6)};
  const auto frames = sim.SimulateFrames(pair, 2000, 3);
  const auto truth = sim.RunAnalytic(pair);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // AR(1) scene jitter (5%) plus Jensen effects: a few percent of truth.
    EXPECT_NEAR(frames[i].rate, truth[i].rate, truth[i].rate * 0.05);
  }
}

TEST(ServerSimTest, FitsMemoryBoundary) {
  const ServerSim sim;
  WorkloadProfile a = MakeWorkload(0.1, 0.1);
  WorkloadProfile b = a;
  a.cpu_memory = 0.6;
  b.cpu_memory = 0.5;
  const std::array<WorkloadProfile, 2> over = {a, b};
  EXPECT_FALSE(sim.FitsMemory(over));
  b.cpu_memory = 0.4;
  const std::array<WorkloadProfile, 2> exact = {a, b};
  EXPECT_TRUE(sim.FitsMemory(exact));
}

TEST(ServerSimTest, GpuMemoryAlsoConstrains) {
  const ServerSim sim;
  WorkloadProfile a = MakeWorkload(0.1, 0.1);
  a.gpu_memory = 0.7;
  const std::array<WorkloadProfile, 2> over = {a, a};
  EXPECT_FALSE(sim.FitsMemory(over));
}

TEST(ServerSimTest, EquilibriumPressureSingleCorunnerBelowOccupancy) {
  // With throughput coupling, a degraded co-runner exerts less pressure
  // than its nominal occupancy.
  const ServerSim sim;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               MakeWorkload(0.7, 1.0)};
  const auto pressure = sim.EquilibriumPressureOn(pair, 0);
  for (Resource r : resources::kAllResources) {
    EXPECT_LE(pressure[r], 0.7 + 1e-9);
    EXPECT_GT(pressure[r], 0.3);
  }
}

TEST(ServerSimTest, PinnedWorkloadKeepsFullPressure) {
  // throughput_coupling = 0 (micro-benchmarks) pins occupancy.
  const ServerSim sim;
  WorkloadProfile pinned = MakeWorkload(0.6, 1.0);
  pinned.throughput_coupling = 0.0;
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               pinned};
  const auto pressure = sim.EquilibriumPressureOn(pair, 0);
  for (Resource r : resources::kAllResources) {
    EXPECT_NEAR(pressure[r], 0.6, 1e-9);
  }
}

TEST(ServerSimTest, CapacityScalingReducesFeltPressure) {
  resources::ServerSpec big = resources::ServerSpec::Default();
  for (auto& c : big.capacity) c = 2.0;
  const ServerSim small_sim;
  const ServerSim big_sim(big);
  const std::array<WorkloadProfile, 2> pair = {MakeWorkload(0.5, 1.0),
                                               MakeWorkload(0.5, 1.0)};
  EXPECT_GT(big_sim.RunAnalytic(pair)[0].rate_ratio,
            small_sim.RunAnalytic(pair)[0].rate_ratio);
}

}  // namespace
}  // namespace gaugur::gamesim
