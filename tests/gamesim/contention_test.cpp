#include "gamesim/contention.h"

#include <gtest/gtest.h>

#include <vector>

#include "resources/resource.h"

namespace gaugur::gamesim {
namespace {

using resources::Resource;

TEST(ContentionTest, NoCorunnersNoPressure) {
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(AggregatePressure(r, std::vector<double>{}), 0.0);
  }
}

TEST(ContentionTest, SingleCorunnerIsIdentityEverywhere) {
  // Both aggregation laws reduce to P = o for one co-runner — that's what
  // keeps sensitivity curves interpretable (profiling uses one benchmark).
  const std::vector<double> occ{0.37};
  for (Resource r : resources::kAllResources) {
    EXPECT_NEAR(AggregatePressure(r, occ), 0.37, 1e-12)
        << resources::Name(r);
  }
}

TEST(ContentionTest, BandwidthSubAdditive) {
  const std::vector<double> occ{0.6, 0.6};
  const double p = AggregatePressure(Resource::kMemBw, occ);
  EXPECT_LT(p, 1.2);       // below the naive sum
  EXPECT_GT(p, 0.6);       // but more than either alone
  EXPECT_NEAR(p, 0.84, 1e-12);  // 1 - 0.4 * 0.4
}

TEST(ContentionTest, BandwidthSaturatesBelowOne) {
  const std::vector<double> occ{0.9, 0.9, 0.9, 0.9};
  for (Resource r : {Resource::kCpuCore, Resource::kMemBw, Resource::kGpuBw,
                     Resource::kGpuCore, Resource::kPcieBw}) {
    EXPECT_LE(AggregatePressure(r, occ), 1.0);
  }
}

TEST(ContentionTest, CacheSuperAdditive) {
  const std::vector<double> occ{0.4, 0.4};
  const ContentionParams params;
  for (Resource r : {Resource::kLlc, Resource::kGpuL2}) {
    const double p = AggregatePressure(r, occ, params);
    EXPECT_GT(p, 0.8) << resources::Name(r);  // above the naive sum
    EXPECT_NEAR(p, 0.8 + params.cache_overlap_boost * 0.4, 1e-12);
  }
}

TEST(ContentionTest, CachePressureCapped) {
  const ContentionParams params;
  const std::vector<double> occ{0.8, 0.8, 0.8};
  EXPECT_DOUBLE_EQ(AggregatePressure(Resource::kLlc, occ, params),
                   params.cache_pressure_cap);
}

TEST(ContentionTest, MonotoneInOccupancy) {
  for (Resource r : resources::kAllResources) {
    double prev = -1.0;
    for (double o = 0.0; o <= 1.0; o += 0.1) {
      const std::vector<double> occ{o, 0.3};
      const double p = AggregatePressure(r, occ);
      EXPECT_GE(p, prev - 1e-12) << resources::Name(r) << " at o=" << o;
      prev = p;
    }
  }
}

TEST(ContentionTest, MonotoneInGroupSize) {
  for (Resource r : resources::kAllResources) {
    std::vector<double> occ;
    double prev = 0.0;
    for (int k = 1; k <= 4; ++k) {
      occ.push_back(0.3);
      const double p = AggregatePressure(r, occ);
      EXPECT_GE(p, prev - 1e-12) << resources::Name(r) << " k=" << k;
      prev = p;
    }
  }
}

TEST(ContentionTest, PermutationInvariant) {
  const std::vector<double> a{0.2, 0.5, 0.7};
  const std::vector<double> b{0.7, 0.2, 0.5};
  for (Resource r : resources::kAllResources) {
    EXPECT_NEAR(AggregatePressure(r, a), AggregatePressure(r, b), 1e-12);
  }
}

TEST(ContentionTest, NegativeOccupancyTreatedAsZero) {
  const std::vector<double> occ{-0.3, 0.5};
  for (Resource r : resources::kAllResources) {
    EXPECT_NEAR(AggregatePressure(r, occ), 0.5, 1e-12);
  }
}

TEST(ContentionTest, AggregatePressuresMatchesPerResource) {
  std::vector<resources::PerResource<double>> occupancies(2);
  for (Resource r : resources::kAllResources) {
    occupancies[0][r] = 0.3;
    occupancies[1][r] = 0.5;
  }
  const auto all = AggregatePressures(occupancies);
  for (Resource r : resources::kAllResources) {
    const std::vector<double> column{0.3, 0.5};
    EXPECT_DOUBLE_EQ(all[r], AggregatePressure(r, column));
  }
}

TEST(ContentionTest, ConfigurableCacheBoost) {
  ContentionParams params;
  params.cache_overlap_boost = 0.0;
  const std::vector<double> occ{0.4, 0.4};
  EXPECT_NEAR(AggregatePressure(Resource::kLlc, occ, params), 0.8, 1e-12);
}

}  // namespace
}  // namespace gaugur::gamesim
