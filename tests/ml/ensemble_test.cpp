// Random forest + gradient boosting tests.
#include <gtest/gtest.h>

#include <vector>

#include "ml/gradient_boosting.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

std::vector<int> Labels(const Dataset& data) {
  std::vector<int> out;
  for (double y : data.Targets()) out.push_back(y > 0.5 ? 1 : 0);
  return out;
}

TEST(RandomForestRegressorTest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = testing::MakeRegressionData(800, 21, /*noise=*/0.3);
  const Dataset test = testing::MakeRegressionData(300, 22);

  DecisionTreeRegressor tree;
  tree.Fit(train);
  ForestConfig fc;
  fc.num_trees = 80;
  RandomForestRegressor forest(fc);
  forest.Fit(train);

  const double tree_rmse =
      RootMeanSquaredError(tree.PredictBatch(test), test.Targets());
  const double forest_rmse =
      RootMeanSquaredError(forest.PredictBatch(test), test.Targets());
  EXPECT_LT(forest_rmse, tree_rmse);
}

TEST(RandomForestRegressorTest, PredictBeforeFitThrows) {
  RandomForestRegressor forest;
  EXPECT_THROW(forest.Predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RandomForestRegressorTest, NumTreesHonored) {
  ForestConfig fc;
  fc.num_trees = 17;
  RandomForestRegressor forest(fc);
  forest.Fit(testing::MakeRegressionData(200, 23));
  EXPECT_EQ(forest.Trees().size(), 17u);
}

TEST(RandomForestRegressorTest, DeterministicInSeed) {
  const Dataset train = testing::MakeRegressionData(300, 24);
  const Dataset test = testing::MakeRegressionData(50, 25);
  ForestConfig fc;
  fc.num_trees = 20;
  fc.seed = 7;
  RandomForestRegressor a(fc), b(fc);
  a.Fit(train);
  b.Fit(train);
  for (std::size_t i = 0; i < test.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(test.Row(i)), b.Predict(test.Row(i)));
  }
}

TEST(RandomForestRegressorTest, SerialAndParallelFitAgree) {
  const Dataset train = testing::MakeRegressionData(300, 26);
  ForestConfig fc;
  fc.num_trees = 10;
  fc.seed = 11;
  fc.parallel_fit = true;
  RandomForestRegressor parallel(fc);
  fc.parallel_fit = false;
  RandomForestRegressor serial(fc);
  parallel.Fit(train);
  serial.Fit(train);
  const Dataset test = testing::MakeRegressionData(50, 27);
  for (std::size_t i = 0; i < test.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.Predict(test.Row(i)),
                     serial.Predict(test.Row(i)));
  }
}

TEST(RandomForestClassifierTest, LearnsNonlinearBoundary) {
  const Dataset train = testing::MakeClassificationData(1200, 28);
  const Dataset test = testing::MakeClassificationData(300, 29);
  RandomForestClassifier forest;
  forest.Fit(train);
  EXPECT_GT(Accuracy(forest.PredictBatch(test), Labels(test)), 0.92);
}

TEST(RandomForestClassifierTest, ProbabilitiesBounded) {
  const Dataset train = testing::MakeClassificationData(300, 30, 0.1);
  RandomForestClassifier forest;
  forest.Fit(train);
  for (std::size_t i = 0; i < 50; ++i) {
    const double p = forest.PredictProb(train.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GradientBoostedRegressorTest, FitsNonlinearFunctionWell) {
  const Dataset train = testing::MakeRegressionData(1200, 31, 0.05);
  const Dataset test = testing::MakeRegressionData(300, 32);
  GradientBoostedRegressor gbrt;
  gbrt.Fit(train);
  EXPECT_LT(RootMeanSquaredError(gbrt.PredictBatch(test), test.Targets()),
            0.15);
  EXPECT_EQ(gbrt.Name(), "GBRT");
}

TEST(GradientBoostedRegressorTest, MoreStagesFitBetter) {
  const Dataset train = testing::MakeRegressionData(600, 33);
  const Dataset test = testing::MakeRegressionData(200, 34);
  double prev = 1e9;
  for (int stages : {5, 50, 300}) {
    BoostConfig config;
    config.num_stages = stages;
    GradientBoostedRegressor gbrt(config);
    gbrt.Fit(train);
    const double rmse =
        RootMeanSquaredError(gbrt.PredictBatch(test), test.Targets());
    EXPECT_LT(rmse, prev + 0.02) << stages;
    prev = rmse;
  }
}

TEST(GradientBoostedRegressorTest, ConstantTargetGivesConstantModel) {
  Dataset data(2);
  common::Rng rng(35);
  for (int i = 0; i < 50; ++i) {
    data.Add(std::vector{rng.Uniform(), rng.Uniform()}, 7.5);
  }
  GradientBoostedRegressor gbrt;
  gbrt.Fit(data);
  EXPECT_NEAR(gbrt.Predict(std::vector{0.3, 0.9}), 7.5, 1e-6);
}

TEST(GradientBoostedRegressorTest, PredictBeforeFitThrows) {
  GradientBoostedRegressor gbrt;
  EXPECT_THROW(gbrt.Predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(GradientBoostedClassifierTest, LearnsXor) {
  const Dataset train = testing::MakeClassificationData(1200, 36);
  const Dataset test = testing::MakeClassificationData(300, 37);
  GradientBoostedClassifier gbdt;
  gbdt.Fit(train);
  EXPECT_GT(Accuracy(gbdt.PredictBatch(test), Labels(test)), 0.93);
  EXPECT_EQ(gbdt.Name(), "GBDT");
}

TEST(GradientBoostedClassifierTest, RobustToLabelNoise) {
  const Dataset train = testing::MakeClassificationData(1200, 38, 0.1);
  const Dataset test = testing::MakeClassificationData(300, 39);
  GradientBoostedClassifier gbdt;
  gbdt.Fit(train);
  EXPECT_GT(Accuracy(gbdt.PredictBatch(test), Labels(test)), 0.85);
}

TEST(GradientBoostedClassifierTest, ProbabilitiesCalibratedOnPureData) {
  const Dataset train = testing::MakeClassificationData(1500, 40);
  GradientBoostedClassifier gbdt;
  gbdt.Fit(train);
  // On cleanly labeled training points, predicted probabilities should be
  // confidently near the labels.
  double sum_conf = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    const double p = gbdt.PredictProb(train.Row(i));
    const double label = train.Target(i);
    sum_conf += label > 0.5 ? p : 1.0 - p;
  }
  EXPECT_GT(sum_conf / 200.0, 0.85);
}

TEST(GradientBoostedClassifierTest, RejectsNonBinaryLabels) {
  Dataset data(1);
  data.Add(std::vector{0.1}, 0.0);
  data.Add(std::vector{0.2}, 2.0);
  GradientBoostedClassifier gbdt;
  EXPECT_THROW(gbdt.Fit(data), std::logic_error);
}

TEST(GradientBoostedClassifierTest, SkewedPriorHandled) {
  Dataset data(1);
  common::Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    data.Add(std::vector{x}, x > 0.9 ? 1.0 : 0.0);
  }
  GradientBoostedClassifier gbdt;
  gbdt.Fit(data);
  EXPECT_EQ(gbdt.Predict(std::vector{0.95}), 1);
  EXPECT_EQ(gbdt.Predict(std::vector{0.2}), 0);
}

}  // namespace
}  // namespace gaugur::ml
