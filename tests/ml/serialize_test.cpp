#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/factory.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

std::unique_ptr<Regressor> MakeRegressorForTest(const std::string& name) {
  if (name == "RF") {
    ForestConfig config;
    config.num_trees = 15;  // keep the round-trip test fast
    return std::make_unique<RandomForestRegressor>(config);
  }
  if (name == "GBRT") {
    BoostConfig config;
    config.num_stages = 40;
    return std::make_unique<GradientBoostedRegressor>(config);
  }
  return MakeRegressor(name);
}

std::unique_ptr<Classifier> MakeClassifierForTest(const std::string& name) {
  if (name == "RF") {
    ForestConfig config;
    config.num_trees = 15;
    return std::make_unique<RandomForestClassifier>(config);
  }
  if (name == "GBDT") {
    BoostConfig config;
    config.num_stages = 40;
    return std::make_unique<GradientBoostedClassifier>(config);
  }
  return MakeClassifier(name);
}

/// Round-trips a regressor through the text format and checks bit-equal
/// predictions on fresh data.
void ExpectRegressorRoundTrip(const std::string& name) {
  const Dataset train = testing::MakeRegressionData(300, 81);
  const Dataset probe = testing::MakeRegressionData(50, 82);
  auto model = MakeRegressorForTest(name);
  model->Fit(train);

  std::stringstream stream;
  SaveRegressor(stream, *model);
  const auto loaded = LoadRegressor(stream);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Name(), model->Name());
  for (std::size_t i = 0; i < probe.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->Predict(probe.Row(i)),
                     model->Predict(probe.Row(i)))
        << name << " row " << i;
  }
}

void ExpectClassifierRoundTrip(const std::string& name) {
  const Dataset train = testing::MakeClassificationData(300, 83);
  const Dataset probe = testing::MakeClassificationData(50, 84);
  auto model = MakeClassifierForTest(name);
  model->Fit(train);

  std::stringstream stream;
  SaveClassifier(stream, *model);
  const auto loaded = LoadClassifier(stream);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Name(), model->Name());
  for (std::size_t i = 0; i < probe.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->PredictProb(probe.Row(i)),
                     model->PredictProb(probe.Row(i)))
        << name << " row " << i;
  }
}

TEST(SerializeTest, TreeRoundTrip) {
  const Dataset train = testing::MakeRegressionData(200, 85);
  TreeModel tree;
  tree.Fit(train);
  std::stringstream stream;
  SaveTree(stream, tree);
  const TreeModel loaded = LoadTree(stream);
  ASSERT_EQ(loaded.Nodes().size(), tree.Nodes().size());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(loaded.Predict(train.Row(i)),
                     tree.Predict(train.Row(i)));
  }
}

TEST(SerializeTest, ScalerRoundTrip) {
  const Dataset train = testing::MakeRegressionData(100, 86);
  StandardScaler scaler;
  scaler.Fit(train);
  std::stringstream stream;
  SaveScaler(stream, scaler);
  const StandardScaler loaded = LoadScaler(stream);
  std::vector<double> a, b;
  scaler.Transform(train.Row(0), a);
  loaded.Transform(train.Row(0), b);
  EXPECT_EQ(a, b);
}

TEST(SerializeTest, RegressorDtr) { ExpectRegressorRoundTrip("DTR"); }
TEST(SerializeTest, RegressorGbrt) { ExpectRegressorRoundTrip("GBRT"); }
TEST(SerializeTest, RegressorRf) { ExpectRegressorRoundTrip("RF"); }
TEST(SerializeTest, RegressorSvr) { ExpectRegressorRoundTrip("SVR"); }

TEST(SerializeTest, ClassifierDtc) { ExpectClassifierRoundTrip("DTC"); }
TEST(SerializeTest, ClassifierGbdt) { ExpectClassifierRoundTrip("GBDT"); }
TEST(SerializeTest, ClassifierRf) { ExpectClassifierRoundTrip("RF"); }
TEST(SerializeTest, ClassifierSvc) { ExpectClassifierRoundTrip("SVC"); }

TEST(SerializeTest, FileRoundTrip) {
  const Dataset train = testing::MakeRegressionData(200, 87);
  auto model = MakeRegressorForTest("GBRT");
  model->Fit(train);
  const std::string path = "/tmp/gaugur_model_test.txt";
  ASSERT_TRUE(SaveRegressorToFile(path, *model));
  const auto loaded = LoadRegressorFromFile(path);
  EXPECT_DOUBLE_EQ(loaded->Predict(train.Row(0)),
                   model->Predict(train.Row(0)));
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptStreamRejected) {
  std::stringstream stream("model UNKNOWN_THING\n");
  EXPECT_THROW(LoadRegressor(stream), std::logic_error);
  std::stringstream garbage("not-a-model 1 2 3\n");
  EXPECT_THROW(LoadRegressor(garbage), std::logic_error);
  std::stringstream empty("");
  EXPECT_THROW(LoadRegressor(empty), std::logic_error);
}

TEST(SerializeTest, MissingFileRejected) {
  EXPECT_THROW(LoadRegressorFromFile("/nonexistent/path/model.txt"),
               std::logic_error);
}

TEST(SerializeTest, TruncatedStreamRejected) {
  const Dataset train = testing::MakeRegressionData(100, 88);
  auto model = MakeRegressorForTest("GBRT");
  model->Fit(train);
  std::stringstream stream;
  SaveRegressor(stream, *model);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(LoadRegressor(truncated), std::logic_error);
}

}  // namespace
}  // namespace gaugur::ml
