// Property suite for the SIMD-dispatched FlatForest descent:
//
//  * every kernel tier the host supports (scalar / SSE4.2 / AVX2)
//    produces bit-identical accumulations over random forests x random
//    row blocks — the contract that lets runtime dispatch, the
//    PredictionCache, and the model monitor ignore which kernel ran;
//  * the level-ordered layout round-trips: flattening a tree and
//    walking the flat form reaches the same leaf values as the
//    canonical pointer traversal, every level is one contiguous
//    segment, every split's children are adjacent in the next segment,
//    and a descent touches exactly one node per level;
//  * dispatch plumbing: ForceTier overrides ActiveTier, GAUGUR_SIMD
//    string parsing, and concurrent batches racing a ForceTier flip
//    stay bit-identical (the TSan job runs this suite).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/tree_kernel.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

/// Restores automatic dispatch even if a test fails mid-way.
struct TierGuard {
  ~TierGuard() { FlatForest::ForceTier(std::nullopt); }
};

std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  if (FlatForest::SupportedTier() >= SimdTier::kSse) {
    tiers.push_back(SimdTier::kSse);
  }
  if (FlatForest::SupportedTier() >= SimdTier::kAvx2) {
    tiers.push_back(SimdTier::kAvx2);
  }
  return tiers;
}

/// A forest of trees with varied depth/seed fit on noisy data, plus odd
/// shapes: a stump and a root-only leaf are produced by tiny depth
/// limits, exercising the leaf-chaining path hard.
FlatForest MakeRandomForest(std::uint64_t seed, std::vector<TreeModel>* keep) {
  const Dataset train = testing::MakeRegressionData(260, seed, 0.2);
  FlatForest flat;
  for (int depth : {1, 2, 4, 7, 12}) {
    TreeConfig config;
    config.max_depth = depth;
    config.seed = seed * 131 + static_cast<std::uint64_t>(depth);
    config.min_samples_leaf = depth >= 7 ? 2 : 5;
    TreeModel tree(config);
    tree.Fit(train);
    flat.Add(tree);
    keep->push_back(std::move(tree));
  }
  return flat;
}

/// Random row block with some adversarial values mixed in: +/-inf and
/// NaN (`NaN > t` is false on every tier, so all kernels send NaN rows
/// down the left child together).
Dataset MakeRowBlock(std::size_t rows, std::uint64_t seed) {
  common::Rng rng(seed);
  Dataset data(5);
  std::vector<double> row(5);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = rng.Uniform(-0.25, 1.25);
    if (i % 7 == 3) row[i % 5] = std::numeric_limits<double>::infinity();
    if (i % 11 == 5) row[(i + 1) % 5] = -row[(i + 1) % 5];
    if (i % 13 == 8) row[(i + 2) % 5] = std::numeric_limits<double>::quiet_NaN();
    data.Add(row, 0.0);
  }
  return data;
}

TEST(SimdKernel, AllTiersBitIdenticalOnRandomForestsAndBlocks) {
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    std::vector<TreeModel> trees;
    const FlatForest flat = MakeRandomForest(seed, &trees);
    // Block sizes straddle every kernel's unroll width and tail path.
    for (std::size_t rows : {1u, 3u, 4u, 7u, 8u, 9u, 16u, 33u, 128u}) {
      const Dataset block = MakeRowBlock(rows, seed * 977 + rows);
      std::vector<double> reference(rows, 0.5);
      for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
        flat.AccumulateTreeBatchTier(t, block.Matrix(), reference, 0.375,
                                     SimdTier::kScalar);
      }
      for (SimdTier tier : SupportedTiers()) {
        SCOPED_TRACE(SimdTierName(tier));
        std::vector<double> out(rows, 0.5);
        for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
          flat.AccumulateTreeBatchTier(t, block.Matrix(), out, 0.375, tier);
        }
        for (std::size_t i = 0; i < rows; ++i) {
          // Bitwise, not approximate: EXPECT_EQ on doubles.
          EXPECT_EQ(reference[i], out[i]) << "seed " << seed << " rows "
                                          << rows << " row " << i;
        }
      }
    }
  }
}

TEST(SimdKernel, LevelLayoutRoundTripsToPointerTrees) {
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeRandomForest(91, &trees);
  const Dataset block = MakeRowBlock(160, 4242);
  for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
    for (std::size_t i = 0; i < block.NumRows(); ++i) {
      const auto row = block.Matrix().Row(i);
      // Skip NaN rows: TreeModel::Predict descends `x <= t ? left :
      // right` (NaN goes right) while every flat kernel uses `x > t`
      // (NaN goes left). All production scalar/batch paths run the flat
      // form, so only this pointer-tree comparison sees the difference;
      // cross-kernel NaN agreement is pinned by the tier test above.
      if (std::any_of(row.begin(), row.end(),
                      [](double v) { return std::isnan(v); })) {
        continue;
      }
      EXPECT_EQ(trees[t].Predict(row), flat.PredictTree(t, row))
          << "tree " << t << " row " << i;
    }
  }
}

TEST(SimdKernel, LevelSegmentsAreContiguousAndChildrenAdjacent) {
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeRandomForest(7, &trees);
  std::int32_t expected_begin = 0;
  for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
    ASSERT_GE(flat.NumLevels(t), 1);
    for (std::int32_t d = 0; d < flat.NumLevels(t); ++d) {
      const auto [begin, end] = flat.LevelSpan(t, d);
      // Segments tile the node array with no gaps, across trees too.
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);
      expected_begin = end;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(expected_begin), flat.NumNodes());
}

TEST(SimdKernel, ChildPointersLandInTheNextLevelSegment) {
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeRandomForest(29, &trees);
  const std::span<const FlatNode> nodes = flat.Nodes();
  for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
    for (std::int32_t d = 0; d < flat.NumLevels(t); ++d) {
      const auto [begin, end] = flat.LevelSpan(t, d);
      const bool last = d + 1 == flat.NumLevels(t);
      for (std::int32_t n = begin; n < end; ++n) {
        const FlatNode& node = nodes[static_cast<std::size_t>(n)];
        const bool leaf = std::isinf(node.threshold);
        if (last) {
          // Deepest level holds only self-looping leaves: the +inf
          // threshold compares false so the step adds 0 and stays put.
          EXPECT_TRUE(leaf) << "tree " << t << " node " << n;
          EXPECT_EQ(node.child, n) << "tree " << t << " node " << n;
          continue;
        }
        const auto [nb, ne] = flat.LevelSpan(t, d + 1);
        EXPECT_GE(node.child, nb) << "tree " << t << " node " << n;
        // A split reaches child and child + 1; a chained leaf only its
        // single copy one level down.
        EXPECT_LT(node.child + (leaf ? 0 : 1), ne)
            << "tree " << t << " node " << n;
      }
    }
  }
}

TEST(SimdKernel, DescentTouchesExactlyOneNodePerLevel) {
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeRandomForest(29, &trees);
  const std::span<const FlatNode> nodes = flat.Nodes();
  const Dataset block = MakeRowBlock(64, 5151);
  for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
    const std::int32_t steps = flat.NumLevels(t) - 1;
    for (std::size_t i = 0; i < block.NumRows(); ++i) {
      const auto row = block.Matrix().Row(i);
      std::int32_t idx = flat.LevelSpan(t, 0).first;  // the root
      for (std::int32_t d = 0; d < steps; ++d) {
        const auto [begin, end] = flat.LevelSpan(t, d);
        ASSERT_GE(idx, begin) << "tree " << t << " row " << i << " level "
                              << d;
        ASSERT_LT(idx, end) << "tree " << t << " row " << i << " level "
                            << d;
        // Mirror the kernel recurrence one step.
        const FlatNode& n = nodes[static_cast<std::size_t>(idx)];
        idx = n.child +
              static_cast<std::int32_t>(
                  row[static_cast<std::size_t>(n.feature)] > n.threshold);
      }
      const auto [lb, le] = flat.LevelSpan(t, steps);
      ASSERT_GE(idx, lb) << "tree " << t << " row " << i;
      ASSERT_LT(idx, le) << "tree " << t << " row " << i;
    }
  }
}

TEST(SimdKernel, ForceTierOverridesActiveTier) {
  TierGuard guard;
  for (SimdTier tier : SupportedTiers()) {
    FlatForest::ForceTier(tier);
    EXPECT_EQ(FlatForest::ActiveTier(), tier);
  }
  FlatForest::ForceTier(std::nullopt);
  EXPECT_LE(FlatForest::ActiveTier(), FlatForest::SupportedTier());
}

TEST(SimdKernel, ForceTierBeyondSupportThrows) {
  TierGuard guard;
  if (FlatForest::SupportedTier() == SimdTier::kAvx2) {
    GTEST_SKIP() << "host supports every tier";
  }
  EXPECT_THROW(FlatForest::ForceTier(SimdTier::kAvx2), std::logic_error);
}

TEST(SimdKernel, SimdTierFromStringParsesTheDocumentedValues) {
  const SimdTier fb = SimdTier::kAvx2;
  EXPECT_EQ(SimdTierFromString("off", fb), SimdTier::kScalar);
  EXPECT_EQ(SimdTierFromString("scalar", fb), SimdTier::kScalar);
  EXPECT_EQ(SimdTierFromString("sse", fb), SimdTier::kSse);
  EXPECT_EQ(SimdTierFromString("avx2", fb), SimdTier::kAvx2);
  EXPECT_EQ(SimdTierFromString(nullptr, fb), fb);
  EXPECT_EQ(SimdTierFromString("", fb), fb);
  EXPECT_EQ(SimdTierFromString("bogus", fb), fb);
}

TEST(SimdKernel, ConcurrentBatchesRacingForceTierStayBitIdentical) {
  TierGuard guard;
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeRandomForest(61, &trees);
  const Dataset block = MakeRowBlock(96, 8888);
  std::vector<double> reference(block.NumRows(), 0.0);
  flat.AccumulateBatch(block.Matrix(), reference, 1.0);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      std::vector<double> out(block.NumRows());
      for (int iter = 0; iter < 50; ++iter) {
        std::fill(out.begin(), out.end(), 0.0);
        flat.AccumulateBatch(block.Matrix(), out, 1.0);
        for (std::size_t i = 0; i < out.size(); ++i) {
          const bool same =
              out[i] == reference[i] ||
              (std::isnan(out[i]) && std::isnan(reference[i]));
          if (!same) mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread flipper([&] {
    const auto tiers = SupportedTiers();
    std::size_t k = 0;
    while (!stop.load()) {
      FlatForest::ForceTier(tiers[k++ % tiers.size()]);
      std::this_thread::yield();
    }
  });
  for (auto& worker : workers) worker.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace gaugur::ml
