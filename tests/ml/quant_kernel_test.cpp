// Property suite for the quantized and multi-core FlatForest paths:
//
//  * the quantized descent is EXPECT_EQ-equal (bitwise, not
//    approximate) to the float kernels over random forests x random
//    row blocks, including NaN/inf rows and rows holding exact
//    bin-edge (threshold) values — the exactness-by-construction
//    contract: bin edges ARE the split thresholds, so `bin(x) >
//    rank(t)` decides identically to `x > t`;
//  * the bin tables themselves honor the contract: edges sorted and
//    distinct, a threshold's own bin equals its rank (so equality
//    descends left), the next representable value above it bins one
//    higher (descends right), NaN bins to 0;
//  * AccumulateBatchMt is bit-identical to the sequential path for
//    every worker count (1 / 2 / N), in both the quantized and float
//    variants — the deterministic tree-order reduction contract;
//  * dispatch plumbing: ForceQuantized/ForceParallel override the
//    env-driven defaults, Add() invalidates the quantized tables, and
//    concurrent batches racing a ForceQuantized flip stay bit-identical
//    (the TSan job runs this suite).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/decision_tree.h"
#include "ml/tree_kernel.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

/// Restores automatic dispatch even if a test fails mid-way.
struct DispatchGuard {
  ~DispatchGuard() {
    FlatForest::ForceTier(std::nullopt);
    FlatForest::ForceQuantized(std::nullopt);
    FlatForest::ForceParallel(std::nullopt);
  }
};

std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  if (FlatForest::SupportedTier() >= SimdTier::kSse) {
    tiers.push_back(SimdTier::kSse);
  }
  if (FlatForest::SupportedTier() >= SimdTier::kAvx2) {
    tiers.push_back(SimdTier::kAvx2);
  }
  return tiers;
}

/// Varied-depth forest (stumps through depth 12) fit on noisy data,
/// finalized for the quantized descent.
FlatForest MakeQuantForest(std::uint64_t seed, std::vector<TreeModel>* keep) {
  const Dataset train = testing::MakeRegressionData(260, seed, 0.2);
  FlatForest flat;
  for (int depth : {1, 2, 4, 7, 12}) {
    TreeConfig config;
    config.max_depth = depth;
    config.seed = seed * 131 + static_cast<std::uint64_t>(depth);
    config.min_samples_leaf = depth >= 7 ? 2 : 5;
    TreeModel tree(config);
    tree.Fit(train);
    flat.Add(tree);
    keep->push_back(std::move(tree));
  }
  flat.FinalizeQuantized();
  return flat;
}

/// Random row block with adversarial values: +/-inf, NaN, and — the
/// quantized path's sharpest edge — values copied EXACTLY from the
/// forest's own split thresholds, where `x > t` is false and the bin
/// compare must agree.
Dataset MakeRowBlock(const FlatForest& flat, std::size_t rows,
                     std::uint64_t seed) {
  std::vector<double> thresholds;
  for (const FlatNode& n : flat.Nodes()) {
    if (std::isfinite(n.threshold)) thresholds.push_back(n.threshold);
  }
  common::Rng rng(seed);
  Dataset data(5);
  std::vector<double> row(5);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = rng.Uniform(-0.25, 1.25);
    if (i % 3 == 1 && !thresholds.empty()) {
      row[i % 5] = thresholds[static_cast<std::size_t>(
          rng.UniformInt(thresholds.size()))];
    }
    if (i % 7 == 3) row[i % 5] = std::numeric_limits<double>::infinity();
    if (i % 11 == 5) row[(i + 1) % 5] = -row[(i + 1) % 5];
    if (i % 13 == 8) {
      row[(i + 2) % 5] = std::numeric_limits<double>::quiet_NaN();
    }
    data.Add(row, 0.0);
  }
  return data;
}

TEST(QuantKernel, QuantizedMatchesFloatBitwiseOnEveryTier) {
  if (!FlatForest::QuantizedSupported()) {
    GTEST_SKIP() << "built with GAUGUR_NO_QUANT";
  }
  for (std::uint64_t seed : {17u, 31u, 59u}) {
    std::vector<TreeModel> trees;
    const FlatForest flat = MakeQuantForest(seed, &trees);
    ASSERT_TRUE(flat.QuantizedBuilt());
    // Block sizes straddle the 128-row AVX2 main block, the 16-row mid
    // block, and the scalar tail (plus the scalar kernel's 4-row
    // unroll).
    for (std::size_t rows : {1u, 3u, 5u, 15u, 16u, 17u, 127u, 128u, 131u}) {
      const Dataset block = MakeRowBlock(flat, rows, seed * 977 + rows);
      std::vector<double> reference(rows, 0.5);
      for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
        flat.AccumulateTreeBatchTier(t, block.Matrix(), reference, 0.375,
                                     SimdTier::kScalar);
      }
      std::vector<std::uint16_t> bins;
      flat.BinBatch(block.Matrix(), bins);
      for (SimdTier tier : SupportedTiers()) {
        SCOPED_TRACE(SimdTierName(tier));
        std::vector<double> out(rows, 0.5);
        for (std::size_t t = 0; t < flat.NumTrees(); ++t) {
          flat.AccumulateTreeQuantTier(t, bins.data(), rows, 5, out, 0.375,
                                       tier);
        }
        for (std::size_t i = 0; i < rows; ++i) {
          // Bitwise, not approximate: EXPECT_EQ on doubles.
          EXPECT_EQ(reference[i], out[i])
              << "seed " << seed << " rows " << rows << " row " << i;
        }
      }
    }
  }
}

TEST(QuantKernel, BinEdgesAreTheThresholdsAndDecideIdentically) {
  if (!FlatForest::QuantizedSupported()) {
    GTEST_SKIP() << "built with GAUGUR_NO_QUANT";
  }
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeQuantForest(43, &trees);
  ASSERT_TRUE(flat.QuantizedBuilt());
  const double inf = std::numeric_limits<double>::infinity();
  for (const FlatNode& n : flat.Nodes()) {
    if (!(n.threshold < inf)) continue;  // leaf record
    const auto f = static_cast<std::size_t>(n.feature);
    // x == t bins to t's own rank (the float compare `t > t` is false,
    // so equality must descend left), and the next representable double
    // above t must cross into the next bin (float `above > t` is true).
    const std::uint16_t rank = flat.BinValue(f, n.threshold);
    const double above = std::nextafter(n.threshold, inf);
    EXPECT_GT(flat.BinValue(f, above), rank)
        << "feature " << f << " threshold " << n.threshold;
    EXPECT_LE(rank, flat.NumBinEdges(f));
  }
  // NaN sorts below every edge (descends left, like the float NaN rule);
  // +inf above every edge.
  EXPECT_EQ(flat.BinValue(0, std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(flat.BinValue(0, -inf), 0);
  EXPECT_EQ(flat.BinValue(0, inf), flat.NumBinEdges(0));
}

TEST(QuantKernel, WorkerCountNeverChangesABit) {
  DispatchGuard guard;
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeQuantForest(71, &trees);
  // 2050 rows crosses two kMtRowBlock boundaries plus a remainder.
  const Dataset block = MakeRowBlock(flat, 2050, 4242);

  for (bool quant : {false, true}) {
    if (quant && !flat.QuantizedBuilt()) continue;
    SCOPED_TRACE(quant ? "quantized" : "float");
    FlatForest::ForceQuantized(FlatForest::QuantizedSupported()
                                   ? std::optional<bool>(quant)
                                   : std::nullopt);
    FlatForest::ForceParallel(false);
    std::vector<double> reference(block.NumRows(), 0.25);
    flat.AccumulateBatch(block.Matrix(), reference, 0.75);

    for (std::size_t workers : {1u, 2u, 5u}) {
      SCOPED_TRACE(workers);
      common::ThreadPool pool(workers);
      std::vector<double> out(block.NumRows(), 0.25);
      flat.AccumulateBatchMt(block.Matrix(), out, 0.75, pool);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(reference[i], out[i]) << "row " << i;
      }
    }
  }
}

TEST(QuantKernel, AutoParallelDispatchMatchesSequential) {
  DispatchGuard guard;
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeQuantForest(83, &trees);
  const Dataset block = MakeRowBlock(flat, 512, 9191);

  FlatForest::ForceParallel(false);
  std::vector<double> reference(block.NumRows(), 0.0);
  flat.AccumulateBatch(block.Matrix(), reference, 1.0);

  // trees (5) < the trees >= 16 cutoff, so the auto path stays
  // sequential here — the point is that forcing it on is still safe
  // and identical through the public entry point.
  FlatForest::ForceParallel(true);
  std::vector<double> out(block.NumRows(), 0.0);
  flat.AccumulateBatch(block.Matrix(), out, 1.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(reference[i], out[i]) << "row " << i;
  }

  // And the explicit MT entry point against the global pool.
  std::fill(out.begin(), out.end(), 0.0);
  flat.AccumulateBatchMt(block.Matrix(), out, 1.0,
                         common::ThreadPool::Global());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(reference[i], out[i]) << "row " << i;
  }
}

TEST(QuantKernel, ForceQuantizedOverridesDispatch) {
  DispatchGuard guard;
  if (!FlatForest::QuantizedSupported()) {
    EXPECT_FALSE(FlatForest::QuantizedActive());
    EXPECT_THROW(FlatForest::ForceQuantized(true), std::logic_error);
    return;
  }
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeQuantForest(97, &trees);
  ASSERT_TRUE(flat.QuantizedBuilt());
  FlatForest::ForceQuantized(true);
  EXPECT_TRUE(FlatForest::QuantizedActive());
  EXPECT_TRUE(flat.UsesQuantized());
  FlatForest::ForceQuantized(false);
  EXPECT_FALSE(FlatForest::QuantizedActive());
  EXPECT_FALSE(flat.UsesQuantized());
}

TEST(QuantKernel, AddInvalidatesTheQuantizedTables) {
  if (!FlatForest::QuantizedSupported()) {
    GTEST_SKIP() << "built with GAUGUR_NO_QUANT";
  }
  std::vector<TreeModel> trees;
  FlatForest flat = MakeQuantForest(3, &trees);
  ASSERT_TRUE(flat.QuantizedBuilt());
  flat.Add(trees.front());
  EXPECT_FALSE(flat.QuantizedBuilt());
  flat.FinalizeQuantized();
  EXPECT_TRUE(flat.QuantizedBuilt());
  flat.Clear();
  EXPECT_FALSE(flat.QuantizedBuilt());
}

TEST(QuantKernel, ConcurrentBatchesRacingForceQuantizedStayBitIdentical) {
  DispatchGuard guard;
  if (!FlatForest::QuantizedSupported()) {
    GTEST_SKIP() << "built with GAUGUR_NO_QUANT";
  }
  std::vector<TreeModel> trees;
  const FlatForest flat = MakeQuantForest(61, &trees);
  const Dataset block = MakeRowBlock(flat, 96, 8888);
  std::vector<double> reference(block.NumRows(), 0.0);
  flat.AccumulateBatch(block.Matrix(), reference, 1.0);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      std::vector<double> out(block.NumRows());
      for (int iter = 0; iter < 50; ++iter) {
        std::fill(out.begin(), out.end(), 0.0);
        flat.AccumulateBatch(block.Matrix(), out, 1.0);
        for (std::size_t i = 0; i < out.size(); ++i) {
          const bool same = out[i] == reference[i] ||
                            (std::isnan(out[i]) && std::isnan(reference[i]));
          if (!same) mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread flipper([&] {
    bool on = false;
    while (!stop.load()) {
      FlatForest::ForceQuantized(on = !on);
      std::this_thread::yield();
    }
  });
  for (auto& worker : workers) worker.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace gaugur::ml
