// Synthetic learnable problems shared by the ML tests.
#pragma once

#include "common/rng.h"
#include "ml/dataset.h"

namespace gaugur::ml::testing {

/// Nonlinear regression target: smooth interaction of three features.
inline double Friedmanish(std::span<const double> x) {
  return 2.0 * x[0] * x[1] + 1.5 * (x[2] > 0.5 ? 1.0 : 0.0) + 0.5 * x[3];
}

inline Dataset MakeRegressionData(std::size_t n, std::uint64_t seed,
                                  double noise = 0.0) {
  common::Rng rng(seed);
  Dataset data(5);
  std::vector<double> row(5);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.Uniform();
    data.Add(row, Friedmanish(row) + rng.Gaussian(0.0, noise));
  }
  return data;
}

/// Binary labels from a nonlinear boundary (XOR-of-halves plus a margin
/// feature), not linearly separable.
inline Dataset MakeClassificationData(std::size_t n, std::uint64_t seed,
                                      double flip_prob = 0.0) {
  common::Rng rng(seed);
  Dataset data(4);
  std::vector<double> row(4);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.Uniform();
    bool label = (row[0] > 0.5) != (row[1] > 0.5);
    if (row[2] > 0.9) label = !label;
    if (rng.Bernoulli(flip_prob)) label = !label;
    data.Add(row, label ? 1.0 : 0.0);
  }
  return data;
}

/// A linearly separable problem for the SVM happy path.
inline Dataset MakeSeparableData(std::size_t n, std::uint64_t seed,
                                 double margin = 0.2) {
  common::Rng rng(seed);
  Dataset data(2);
  std::vector<double> row(2);
  for (std::size_t i = 0; i < n; ++i) {
    const bool label = rng.Bernoulli(0.5);
    const double offset = label ? margin : -margin;
    row[0] = rng.Uniform(-1.0, 1.0);
    row[1] = row[0] + offset + (label ? rng.Uniform(0.0, 1.0)
                                      : rng.Uniform(-1.0, 0.0));
    data.Add(row, label ? 1.0 : 0.0);
  }
  return data;
}

}  // namespace gaugur::ml::testing
