#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace gaugur::ml {
namespace {

TEST(DatasetTest, AddAndRetrieveRows) {
  Dataset data(3);
  data.Add(std::array{1.0, 2.0, 3.0}, 10.0);
  data.Add(std::array{4.0, 5.0, 6.0}, 20.0);
  ASSERT_EQ(data.NumRows(), 2u);
  EXPECT_EQ(data.NumFeatures(), 3u);
  EXPECT_DOUBLE_EQ(data.Row(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(data.Target(0), 10.0);
  EXPECT_DOUBLE_EQ(data.Targets()[1], 20.0);
}

TEST(DatasetTest, RejectsWrongArity) {
  Dataset data(2);
  EXPECT_THROW(data.Add(std::array{1.0}, 0.0), std::logic_error);
  EXPECT_THROW(data.Add(std::array{1.0, 2.0, 3.0}, 0.0), std::logic_error);
}

TEST(DatasetTest, FeatureNamesValidated) {
  EXPECT_THROW(Dataset(2, {"only-one"}), std::logic_error);
  const Dataset ok(2, {"a", "b"});
  EXPECT_EQ(ok.FeatureNames()[1], "b");
}

TEST(DatasetTest, SubsetSelectsAndRepeats) {
  Dataset data(1);
  data.Add(std::array{1.0}, 1.0);
  data.Add(std::array{2.0}, 2.0);
  data.Add(std::array{3.0}, 3.0);
  const std::array<std::size_t, 4> idx{2, 0, 2, 1};
  const Dataset sub = data.Subset(idx);
  ASSERT_EQ(sub.NumRows(), 4u);
  EXPECT_DOUBLE_EQ(sub.Target(0), 3.0);
  EXPECT_DOUBLE_EQ(sub.Target(1), 1.0);
  EXPECT_DOUBLE_EQ(sub.Target(2), 3.0);
  EXPECT_DOUBLE_EQ(sub.Target(3), 2.0);
}

TEST(DatasetTest, HeadTakesPrefix) {
  Dataset data(1);
  for (int i = 0; i < 5; ++i) {
    data.Add(std::array{static_cast<double>(i)}, i);
  }
  const Dataset head = data.Head(3);
  ASSERT_EQ(head.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(head.Target(2), 2.0);
  EXPECT_THROW(data.Head(6), std::logic_error);
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a(2), b(2);
  a.Add(std::array{1.0, 1.0}, 1.0);
  b.Add(std::array{2.0, 2.0}, 2.0);
  b.Add(std::array{3.0, 3.0}, 3.0);
  a.Append(b);
  ASSERT_EQ(a.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(a.Target(2), 3.0);
}

TEST(DatasetTest, AppendRejectsMismatchedWidth) {
  Dataset a(2), b(3);
  EXPECT_THROW(a.Append(b), std::logic_error);
}

TEST(MakeSplitTest, PartitionsAllRows) {
  const auto split = MakeSplit(100, 0.7, 5);
  EXPECT_EQ(split.train_indices.size(), 70u);
  EXPECT_EQ(split.test_indices.size(), 30u);
  std::set<std::size_t> all(split.train_indices.begin(),
                            split.train_indices.end());
  all.insert(split.test_indices.begin(), split.test_indices.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(MakeSplitTest, DeterministicInSeed) {
  const auto a = MakeSplit(50, 0.5, 9);
  const auto b = MakeSplit(50, 0.5, 9);
  EXPECT_EQ(a.train_indices, b.train_indices);
  const auto c = MakeSplit(50, 0.5, 10);
  EXPECT_NE(a.train_indices, c.train_indices);
}

TEST(MakeSplitTest, RejectsDegenerateFractions) {
  EXPECT_THROW(MakeSplit(10, 0.0, 1), std::logic_error);
  EXPECT_THROW(MakeSplit(10, 1.0, 1), std::logic_error);
}

}  // namespace
}  // namespace gaugur::ml
