#include "ml/svm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/metrics.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

std::vector<int> Labels(const Dataset& data) {
  std::vector<int> out;
  for (double y : data.Targets()) out.push_back(y > 0.5 ? 1 : 0);
  return out;
}

TEST(SvmClassifierTest, SeparableDataNearPerfect) {
  const Dataset train = testing::MakeSeparableData(400, 51);
  const Dataset test = testing::MakeSeparableData(200, 52);
  SvmClassifier svc;
  svc.Fit(train);
  EXPECT_GT(Accuracy(svc.PredictBatch(test), Labels(test)), 0.97);
  EXPECT_EQ(svc.Name(), "SVC");
}

TEST(SvmClassifierTest, RbfHandlesXor) {
  const Dataset train = testing::MakeClassificationData(800, 53);
  const Dataset test = testing::MakeClassificationData(200, 54);
  SvmConfig config;
  config.c = 50.0;
  SvmClassifier svc(config);
  svc.Fit(train);
  EXPECT_GT(Accuracy(svc.PredictBatch(test), Labels(test)), 0.85);
}

TEST(SvmClassifierTest, LinearKernelFailsXor) {
  // Sanity check that the kernel choice matters: a linear SVM cannot cut
  // the XOR board much better than chance.
  const Dataset train = testing::MakeClassificationData(800, 55);
  const Dataset test = testing::MakeClassificationData(200, 56);
  SvmConfig config;
  config.kernel = KernelKind::kLinear;
  SvmClassifier svc(config);
  svc.Fit(train);
  EXPECT_LT(Accuracy(svc.PredictBatch(test), Labels(test)), 0.75);
}

TEST(SvmClassifierTest, ProbabilityMonotoneInMargin) {
  const Dataset train = testing::MakeSeparableData(300, 57);
  SvmClassifier svc;
  svc.Fit(train);
  // Deep in the positive region beats the boundary region.
  const double deep = svc.PredictProb(std::vector{0.0, 1.5});
  const double boundary = svc.PredictProb(std::vector{0.0, 0.0});
  EXPECT_GT(deep, boundary);
}

TEST(SvmClassifierTest, SingleClassDegenerateFit) {
  Dataset data(2);
  data.Add(std::vector{0.0, 0.0}, 1.0);
  data.Add(std::vector{1.0, 1.0}, 1.0);
  SvmClassifier svc;
  svc.Fit(data);  // must not crash
  EXPECT_EQ(svc.Predict(std::vector{0.5, 0.5}), 1);
}

TEST(SvmClassifierTest, RejectsNonBinaryLabels) {
  Dataset data(1);
  data.Add(std::vector{0.1}, 0.5);
  data.Add(std::vector{0.2}, 1.0);
  SvmClassifier svc;
  EXPECT_THROW(svc.Fit(data), std::logic_error);
}

TEST(SvmClassifierTest, SupportVectorsAreSubset) {
  const Dataset train = testing::MakeSeparableData(300, 58, /*margin=*/0.5);
  SvmClassifier svc;
  svc.Fit(train);
  EXPECT_GT(svc.NumSupportVectors(), 0u);
  EXPECT_LT(svc.NumSupportVectors(), train.NumRows());
}

TEST(SvmRegressorTest, FitsLinearFunction) {
  common::Rng rng(59);
  Dataset train(2);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    train.Add(std::vector{a, b}, 2.0 * a - b + 0.5);
  }
  SvmRegressor svr;
  svr.Fit(train);
  EXPECT_NEAR(svr.Predict(std::vector{0.5, 0.5}), 1.0, 0.1);
  EXPECT_NEAR(svr.Predict(std::vector{-0.5, 0.0}), -0.5, 0.1);
  EXPECT_EQ(svr.Name(), "SVR");
}

TEST(SvmRegressorTest, FitsSmoothNonlinearFunction) {
  common::Rng rng(60);
  Dataset train(1), test(1);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    train.Add(std::vector{x}, std::sin(6.0 * x));
  }
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    test.Add(std::vector{x}, std::sin(6.0 * x));
  }
  SvmConfig config;
  config.c = 50.0;
  config.epsilon = 0.02;
  SvmRegressor svr(config);
  svr.Fit(train);
  EXPECT_LT(RootMeanSquaredError(svr.PredictBatch(test), test.Targets()),
            0.1);
}

TEST(SvmRegressorTest, EpsilonTubeSparsifies) {
  common::Rng rng(61);
  Dataset train(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    train.Add(std::vector{x}, x);
  }
  SvmConfig tight, loose;
  tight.epsilon = 0.001;
  loose.epsilon = 0.2;
  SvmRegressor svr_tight(tight), svr_loose(loose);
  svr_tight.Fit(train);
  svr_loose.Fit(train);
  EXPECT_LT(svr_loose.NumSupportVectors(), svr_tight.NumSupportVectors());
}

TEST(SvmRegressorTest, ConstantTargetsHandled) {
  Dataset train(1);
  for (int i = 0; i < 20; ++i) {
    train.Add(std::vector{i / 20.0}, 5.0);
  }
  SvmRegressor svr;
  svr.Fit(train);
  EXPECT_NEAR(svr.Predict(std::vector{0.5}), 5.0, 0.25);
}

TEST(SvmRegressorTest, DeterministicInSeed) {
  const Dataset train = testing::MakeRegressionData(200, 62);
  SvmConfig config;
  config.seed = 5;
  SvmRegressor a(config), b(config);
  a.Fit(train);
  b.Fit(train);
  const Dataset test = testing::MakeRegressionData(20, 63);
  for (std::size_t i = 0; i < test.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(test.Row(i)), b.Predict(test.Row(i)));
  }
}

}  // namespace
}  // namespace gaugur::ml
