#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gaugur::ml {
namespace {

TEST(MetricsTest, MeanRelativeErrorKnownValues) {
  const std::vector<double> pred{110.0, 90.0};
  const std::vector<double> actual{100.0, 100.0};
  EXPECT_DOUBLE_EQ(MeanRelativeError(pred, actual), 0.1);
}

TEST(MetricsTest, RelativeErrorsPerSample) {
  const std::vector<double> pred{0.5, 0.8};
  const std::vector<double> actual{0.4, 1.0};
  const auto errors = RelativeErrors(pred, actual);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NEAR(errors[0], 0.25, 1e-12);
  EXPECT_NEAR(errors[1], 0.2, 1e-12);
}

TEST(MetricsTest, RelativeErrorRejectsZeroActual) {
  const std::vector<double> pred{1.0};
  const std::vector<double> actual{0.0};
  EXPECT_THROW(RelativeErrors(pred, actual), std::logic_error);
}

TEST(MetricsTest, MaeAndRmse) {
  const std::vector<double> pred{1.0, 3.0};
  const std::vector<double> actual{2.0, 1.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(pred, actual), 1.5);
  EXPECT_NEAR(RootMeanSquaredError(pred, actual), std::sqrt(2.5), 1e-12);
}

TEST(MetricsTest, PerfectPredictionsZeroError) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(MeanRelativeError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(v, v), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(v, v), 0.0);
}

TEST(MetricsTest, ConfusionCounts) {
  const std::vector<int> pred{1, 1, 0, 0, 1};
  const std::vector<int> actual{1, 0, 0, 1, 1};
  const auto cm = ComputeConfusion(pred, actual);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.Total(), 5u);
}

TEST(MetricsTest, ConfusionDerivedMetrics) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fp = 2;
  cm.fn = 4;
  cm.tn = 6;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.8);
  EXPECT_NEAR(cm.Recall(), 8.0 / 12.0, 1e-12);
}

TEST(MetricsTest, ConfusionEdgeCases) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);

  ConfusionMatrix all_negative;
  all_negative.tn = 10;
  EXPECT_DOUBLE_EQ(all_negative.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(all_negative.Precision(), 0.0);  // no positives judged
}

TEST(MetricsTest, AccuracyHelper) {
  const std::vector<int> pred{1, 0, 1, 0};
  const std::vector<int> actual{1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(pred, actual), 0.75);
}

TEST(MetricsTest, SizeMismatchThrows) {
  const std::vector<int> a{1};
  const std::vector<int> b{1, 0};
  EXPECT_THROW(ComputeConfusion(a, b), std::logic_error);
}

}  // namespace
}  // namespace gaugur::ml
