// Batch-equivalence tests for the baseline models: Sigmoid and SMiTe
// PredictFpsBatch / PredictDegradationBatch over an ml::MatrixView must
// be bit-identical to the scalar entry points row by row — the same
// contract the GAugur predictor's batch path honors, so the scheduler
// methodology wrappers can switch every baseline to batched scoring
// without changing a single placement verdict.
//
// Lives in tests/ml (not tests/pipeline) on purpose: the models here are
// trained on a small synthetic catalog so the equivalence property is
// pinned without the heavyweight profiling fixture.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/sigmoid_model.h"
#include "baselines/smite_model.h"
#include "gaugur/colocation.h"
#include "gaugur/features.h"
#include "ml/dataset.h"
#include "resources/resolution.h"
#include "resources/resource.h"

namespace gaugur::baselines {
namespace {

using core::Colocation;
using core::QosQuery;
using core::SessionRequest;
using resources::Resource;

constexpr int kNumGames = 4;

profiling::GameProfile MakeProfile(int id) {
  profiling::GameProfile profile;
  profile.game_id = id;
  profile.name = "synthetic-" + std::to_string(id);
  const double fps_720 = 150.0 - 9.0 * id;
  const double fps_1080 = 120.0 - 7.0 * id;
  profile.solo_fps_ref = fps_1080;
  profile.solo_fps_model = resources::PixelLinearModel::FromTwoPoints(
      resources::k720p, fps_720, resources::k1080p, fps_1080);
  for (Resource r : resources::kAllResources) {
    const std::size_t ri = resources::Index(r);
    // Decreasing 3-point sensitivity curve, varied per game and resource.
    const double floor = 0.35 + 0.05 * ((id + static_cast<int>(ri)) % 5);
    profile.sensitivity[ri].degradation = {1.0, 0.5 * (1.0 + floor), floor};
    const double i_720 = 0.05 + 0.04 * ((2 * id + static_cast<int>(ri)) % 4);
    const double i_1080 = i_720 + 0.02 + 0.01 * (id % 3);
    profile.intensity_ref[r] = i_1080;
    profile.intensity_model[r] = resources::PixelLinearModel::FromTwoPoints(
        resources::k720p, i_720, resources::k1080p, i_1080);
  }
  return profile;
}

core::FeatureBuilder MakeFeatures() {
  std::vector<profiling::GameProfile> profiles;
  for (int id = 0; id < kNumGames; ++id) profiles.push_back(MakeProfile(id));
  return core::FeatureBuilder(std::move(profiles));
}

/// A small synthetic corpus: every pair and a few triples, with FPS
/// values that degrade with colocation size and victim identity. The
/// exact numbers don't matter — only that both models train and the
/// batch path reproduces whatever they learned.
std::vector<core::MeasuredColocation> MakeCorpus(
    const core::FeatureBuilder& features) {
  std::vector<core::MeasuredColocation> corpus;
  auto add = [&](std::vector<int> ids) {
    core::MeasuredColocation measured;
    for (int id : ids) {
      measured.sessions.push_back({id, resources::k1080p});
    }
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      const auto& victim = measured.sessions[v];
      const double solo =
          features.Profile(victim.game_id).SoloFps(victim.resolution);
      const double degradation = 0.97 -
                                 0.09 * static_cast<double>(ids.size() - 1) -
                                 0.015 * victim.game_id;
      measured.fps.push_back(solo * degradation);
    }
    corpus.push_back(std::move(measured));
  };
  for (int a = 0; a < kNumGames; ++a) {
    for (int b = a + 1; b < kNumGames; ++b) add({a, b});
  }
  add({0, 1, 2});
  add({1, 2, 3});
  add({0, 2, 3});
  add({0, 1, 2, 3});
  return corpus;
}

/// Query mix: varied victims, resolutions, and co-runner counts (including
/// zero). The corunner storage must outlive the spans inside QosQuery.
struct QuerySet {
  std::vector<Colocation> storage;
  std::vector<QosQuery> queries;
};

QuerySet MakeQueries() {
  QuerySet set;
  set.storage = {
      {},
      {{1, resources::k1080p}},
      {{0, resources::k720p}, {3, resources::k1080p}},
      {{1, resources::k1080p}, {2, resources::k720p}, {3, resources::k1080p}},
  };
  for (int id = 0; id < kNumGames; ++id) {
    for (const Colocation& corunners : set.storage) {
      set.queries.push_back(
          {{id, id % 2 == 0 ? resources::k1080p : resources::k720p},
           corunners});
    }
  }
  return set;
}

class TrainedSyntheticBaselines : public ::testing::Test {
 protected:
  TrainedSyntheticBaselines()
      : features_(MakeFeatures()), sigmoid_(features_), smite_(features_) {
    const auto corpus = MakeCorpus(features_);
    sigmoid_.Train(corpus);
    smite_.Train(corpus);
  }

  core::FeatureBuilder features_;
  SigmoidModel sigmoid_;
  SmiteModel smite_;
};

TEST_F(TrainedSyntheticBaselines, SigmoidFpsBatchMatchesScalarBitForBit) {
  const QuerySet set = MakeQueries();
  const std::vector<double> batch = sigmoid_.PredictFpsBatch(set.queries);
  ASSERT_EQ(batch.size(), set.queries.size());
  for (std::size_t i = 0; i < set.queries.size(); ++i) {
    const QosQuery& q = set.queries[i];
    EXPECT_EQ(batch[i], sigmoid_.PredictFps(q.victim, q.corunners.size()))
        << "query " << i;
  }
}

TEST_F(TrainedSyntheticBaselines,
       SigmoidDegradationBatchMatchesScalarBitForBit) {
  const QuerySet set = MakeQueries();
  std::vector<double> matrix;
  for (const QosQuery& q : set.queries) {
    matrix.push_back(static_cast<double>(q.victim.game_id));
    matrix.push_back(static_cast<double>(q.corunners.size()));
  }
  std::vector<double> batch(set.queries.size());
  sigmoid_.PredictDegradationBatch({matrix.data(), set.queries.size(), 2},
                                   batch);
  for (std::size_t i = 0; i < set.queries.size(); ++i) {
    const QosQuery& q = set.queries[i];
    EXPECT_EQ(batch[i],
              sigmoid_.PredictDegradation(q.victim, q.corunners.size()))
        << "query " << i;
  }
}

TEST_F(TrainedSyntheticBaselines, SmiteFpsBatchMatchesScalarBitForBit) {
  const QuerySet set = MakeQueries();
  const std::vector<double> batch = smite_.PredictFpsBatch(set.queries);
  ASSERT_EQ(batch.size(), set.queries.size());
  for (std::size_t i = 0; i < set.queries.size(); ++i) {
    const QosQuery& q = set.queries[i];
    EXPECT_EQ(batch[i], smite_.PredictFps(q.victim, q.corunners))
        << "query " << i;
  }
}

TEST_F(TrainedSyntheticBaselines,
       SmiteDegradationBatchMatchesScalarBitForBit) {
  const QuerySet set = MakeQueries();
  const std::vector<double> matrix = smite_.BuildFeatureMatrix(set.queries);
  constexpr std::size_t kCols = resources::kNumResources + 1;
  ASSERT_EQ(matrix.size(), set.queries.size() * kCols);
  std::vector<double> batch(set.queries.size());
  smite_.PredictDegradationBatch({matrix.data(), set.queries.size(), kCols},
                                 batch);
  for (std::size_t i = 0; i < set.queries.size(); ++i) {
    const QosQuery& q = set.queries[i];
    EXPECT_EQ(batch[i], smite_.PredictDegradation(q.victim, q.corunners))
        << "query " << i;
  }
}

TEST_F(TrainedSyntheticBaselines, EmptyBatchesReturnEmpty) {
  EXPECT_TRUE(sigmoid_.PredictFpsBatch({}).empty());
  EXPECT_TRUE(smite_.PredictFpsBatch({}).empty());
}

TEST(BaselineBatchUntrained, BatchEntryPointsThrow) {
  const core::FeatureBuilder features = MakeFeatures();
  const SigmoidModel sigmoid(features);
  const SmiteModel smite(features);
  EXPECT_THROW(sigmoid.PredictFpsBatch({}), std::logic_error);
  EXPECT_THROW(smite.PredictFpsBatch({}), std::logic_error);
}

}  // namespace
}  // namespace gaugur::baselines
