// StandardScaler + learner-factory tests.
#include <gtest/gtest.h>

#include <vector>

#include "ml/factory.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

TEST(StandardScalerTest, TransformedDataHasZeroMeanUnitVar) {
  const Dataset data = testing::MakeRegressionData(500, 71);
  StandardScaler scaler;
  scaler.Fit(data);
  const Dataset scaled = scaler.TransformDataset(data);
  for (std::size_t f = 0; f < data.NumFeatures(); ++f) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < scaled.NumRows(); ++i) {
      sum += scaled.Row(i)[f];
      sum_sq += scaled.Row(i)[f] * scaled.Row(i)[f];
    }
    const double n = static_cast<double>(scaled.NumRows());
    EXPECT_NEAR(sum / n, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / n, 1.0, 1e-9);
  }
}

TEST(StandardScalerTest, ConstantFeaturePassesThroughCentered) {
  Dataset data(2);
  data.Add(std::vector{5.0, 1.0}, 0.0);
  data.Add(std::vector{5.0, 3.0}, 0.0);
  StandardScaler scaler;
  scaler.Fit(data);
  std::vector<double> out;
  scaler.Transform(std::vector{5.0, 2.0}, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);  // centered, not divided by 0
}

TEST(StandardScalerTest, TargetsPreserved) {
  const Dataset data = testing::MakeRegressionData(50, 72);
  StandardScaler scaler;
  scaler.Fit(data);
  const Dataset scaled = scaler.TransformDataset(data);
  for (std::size_t i = 0; i < data.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.Target(i), data.Target(i));
  }
}

TEST(StandardScalerTest, TransformBeforeFitThrows) {
  StandardScaler scaler;
  std::vector<double> out;
  EXPECT_THROW(scaler.Transform(std::vector{1.0}, out), std::logic_error);
}

TEST(FactoryTest, AllRegressorNamesConstruct) {
  for (const auto& name : RegressorNames()) {
    const auto model = MakeRegressor(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->Name(), name);
  }
}

TEST(FactoryTest, AllClassifierNamesConstruct) {
  for (const auto& name : ClassifierNames()) {
    const auto model = MakeClassifier(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->Name(), name);
  }
}

TEST(FactoryTest, UnknownNamesRejected) {
  EXPECT_THROW(MakeRegressor("XGB"), std::logic_error);
  EXPECT_THROW(MakeClassifier("MLP"), std::logic_error);
}

TEST(FactoryTest, PaperAlgorithmLists) {
  EXPECT_EQ(RegressorNames(),
            (std::vector<std::string>{"DTR", "GBRT", "RF", "SVR"}));
  EXPECT_EQ(ClassifierNames(),
            (std::vector<std::string>{"DTC", "GBDT", "RF", "SVC"}));
}

TEST(FactoryTest, EveryRegressorLearnsSomething) {
  const Dataset train = testing::MakeRegressionData(600, 73);
  const Dataset test = testing::MakeRegressionData(150, 74);
  // Baseline: predicting the mean.
  double mean = 0.0;
  for (double y : train.Targets()) mean += y;
  mean /= static_cast<double>(train.NumRows());
  std::vector<double> mean_pred(test.NumRows(), mean);
  const double mean_rmse = RootMeanSquaredError(mean_pred, test.Targets());

  for (const auto& name : RegressorNames()) {
    auto model = MakeRegressor(name);
    model->Fit(train);
    const double rmse =
        RootMeanSquaredError(model->PredictBatch(test), test.Targets());
    EXPECT_LT(rmse, mean_rmse) << name;
  }
}

TEST(FactoryTest, EveryClassifierBeatsChance) {
  const Dataset train = testing::MakeClassificationData(800, 75);
  const Dataset test = testing::MakeClassificationData(200, 76);
  std::vector<int> actual;
  for (double y : test.Targets()) actual.push_back(y > 0.5 ? 1 : 0);
  for (const auto& name : ClassifierNames()) {
    auto model = MakeClassifier(name);
    model->Fit(train);
    EXPECT_GT(Accuracy(model->PredictBatch(test), actual), 0.7) << name;
  }
}

}  // namespace
}  // namespace gaugur::ml
