// Property tests for the batched inference engine: for every algorithm in
// the factory, PredictBatch / PredictProbBatch over a matrix must be
// bit-identical to calling the scalar entry point row by row — the
// contract that lets the schedulers switch to batch scoring without
// changing a single decision. Also pins the FlatForest kernel against the
// canonical TreeModel traversal it re-lays.

#include <gtest/gtest.h>

#include <vector>

#include "ml/decision_tree.h"
#include "ml/factory.h"
#include "ml/tree_kernel.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

TEST(BatchEquivalence, EveryRegressorMatchesScalarBitForBit) {
  const Dataset train = testing::MakeRegressionData(300, 11, 0.05);
  const Dataset test = testing::MakeRegressionData(120, 12);
  for (const std::string& name : RegressorNames()) {
    SCOPED_TRACE(name);
    auto model = MakeRegressor(name, 5);
    model->Fit(train);

    const std::vector<double> via_dataset = model->PredictBatch(test);
    std::vector<double> via_matrix(test.NumRows());
    model->PredictBatch(test.Matrix(), via_matrix);

    ASSERT_EQ(via_dataset.size(), test.NumRows());
    for (std::size_t i = 0; i < test.NumRows(); ++i) {
      const double scalar = model->Predict(test.Matrix().Row(i));
      EXPECT_EQ(scalar, via_dataset[i]) << "row " << i;
      EXPECT_EQ(scalar, via_matrix[i]) << "row " << i;
    }
  }
}

TEST(BatchEquivalence, EveryClassifierMatchesScalarBitForBit) {
  const Dataset train = testing::MakeClassificationData(300, 21, 0.02);
  const Dataset test = testing::MakeClassificationData(120, 22);
  for (const std::string& name : ClassifierNames()) {
    SCOPED_TRACE(name);
    auto model = MakeClassifier(name, 5);
    model->Fit(train);

    const std::vector<double> via_dataset = model->PredictProbBatch(test);
    std::vector<double> via_matrix(test.NumRows());
    model->PredictProbBatch(test.Matrix(), via_matrix);

    ASSERT_EQ(via_dataset.size(), test.NumRows());
    for (std::size_t i = 0; i < test.NumRows(); ++i) {
      const double scalar = model->PredictProb(test.Matrix().Row(i));
      EXPECT_EQ(scalar, via_dataset[i]) << "row " << i;
      EXPECT_EQ(scalar, via_matrix[i]) << "row " << i;
    }
  }
}

TEST(BatchEquivalence, ClassifierDecisionsHonorThreshold) {
  const Dataset train = testing::MakeClassificationData(300, 31, 0.02);
  const Dataset test = testing::MakeClassificationData(80, 32);
  for (const std::string& name : ClassifierNames()) {
    SCOPED_TRACE(name);
    auto model = MakeClassifier(name, 5);
    model->Fit(train);
    for (const double threshold : {0.2, 0.5, 0.8}) {
      const std::vector<int> decisions =
          model->PredictBatch(test, threshold);
      for (std::size_t i = 0; i < test.NumRows(); ++i) {
        const auto row = test.Matrix().Row(i);
        const int expected =
            model->PredictProb(row) >= threshold ? 1 : 0;
        EXPECT_EQ(decisions[i], expected) << "row " << i << " threshold "
                                          << threshold;
        EXPECT_EQ(model->Predict(row, threshold), expected);
      }
    }
    // The defaulted threshold is the plain 0.5 rule.
    EXPECT_EQ(model->PredictBatch(test), model->PredictBatch(test, 0.5));
  }
}

TEST(BatchEquivalence, FlatForestMatchesCanonicalTreeTraversal) {
  const Dataset train = testing::MakeRegressionData(400, 41, 0.1);
  TreeConfig config;
  config.max_depth = 6;
  TreeModel tree(config);
  tree.Fit(train);

  FlatForest flat;
  flat.Add(tree);
  ASSERT_EQ(flat.NumTrees(), 1u);
  // The level-ordered layout chains shallow leaves down to the tree's
  // depth, so the flat form holds at least the original node count.
  ASSERT_GE(flat.NumNodes(), tree.Nodes().size());

  const Dataset test = testing::MakeRegressionData(200, 42);
  std::vector<double> batch(test.NumRows(), 0.0);
  flat.AccumulateTreeBatch(0, test.Matrix(), batch, 1.0);
  for (std::size_t i = 0; i < test.NumRows(); ++i) {
    const auto row = test.Matrix().Row(i);
    EXPECT_EQ(tree.Predict(row), flat.PredictTree(0, row)) << "row " << i;
    EXPECT_EQ(tree.Predict(row), batch[i]) << "row " << i;
  }
}

TEST(BatchEquivalence, FlatForestAccumulatesInTreeOrder) {
  const Dataset train = testing::MakeRegressionData(300, 51, 0.1);
  TreeConfig config;
  config.max_depth = 4;
  config.seed = 3;
  TreeModel t0(config);
  t0.Fit(train);
  config.max_depth = 7;
  TreeModel t1(config);
  t1.Fit(train);

  FlatForest flat;
  flat.Add(t0);
  flat.Add(t1);

  const Dataset test = testing::MakeRegressionData(64, 52);
  const double scale = 0.125;
  std::vector<double> batch(test.NumRows(), 1.0);
  flat.AccumulateBatch(test.Matrix(), batch, scale);
  for (std::size_t i = 0; i < test.NumRows(); ++i) {
    const auto row = test.Matrix().Row(i);
    double expected = 1.0;
    expected += scale * t0.Predict(row);
    expected += scale * t1.Predict(row);
    EXPECT_EQ(expected, batch[i]) << "row " << i;
    EXPECT_EQ(t0.Predict(row) + t1.Predict(row), flat.PredictRowSum(row));
  }
}

TEST(BatchEquivalence, PredictBeforeFitThrowsOnBatchPath) {
  FlatForest flat;
  const double x[3] = {0.0, 0.0, 0.0};
  EXPECT_THROW(flat.PredictRowSum(std::span<const double>(x, 3)),
               std::logic_error);
}

}  // namespace
}  // namespace gaugur::ml
