#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "ml/metrics.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

TEST(TreeModelTest, PredictBeforeFitThrows) {
  TreeModel tree;
  EXPECT_THROW(tree.Predict(std::array{1.0}), std::logic_error);
}

TEST(TreeModelTest, SingleLeafForConstantTargets) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.Add(std::array{static_cast<double>(i)}, 5.0);
  }
  TreeModel tree;
  tree.Fit(data);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{3.0}), 5.0);
}

TEST(TreeModelTest, LearnsPerfectStepFunction) {
  Dataset data(1);
  for (int i = 0; i < 50; ++i) {
    const double x = i / 50.0;
    data.Add(std::array{x}, x < 0.5 ? 1.0 : 3.0);
  }
  TreeModel tree;
  tree.Fit(data);
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{0.2}), 1.0);
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{0.8}), 3.0);
}

TEST(TreeModelTest, SplitsOnTheInformativeFeature) {
  // Feature 0 is noise, feature 1 carries the signal.
  Dataset data(2);
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double noise = rng.Uniform();
    const double signal = rng.Uniform();
    data.Add(std::array{noise, signal}, signal > 0.5 ? 10.0 : -10.0);
  }
  TreeModel tree;
  tree.Fit(data);
  ASSERT_FALSE(tree.Nodes().empty());
  EXPECT_EQ(tree.Nodes()[0].feature, 1);
  EXPECT_NEAR(tree.Nodes()[0].threshold, 0.5, 0.06);
}

TEST(TreeModelTest, MaxDepthRespected) {
  const Dataset data = testing::MakeRegressionData(500, 7);
  TreeConfig config;
  config.max_depth = 3;
  TreeModel tree(config);
  tree.Fit(data);
  EXPECT_LE(tree.Depth(), 4);  // root at depth 1
}

TEST(TreeModelTest, MinSamplesLeafRespected) {
  const Dataset data = testing::MakeRegressionData(200, 8);
  TreeConfig config;
  config.min_samples_leaf = 20;
  TreeModel tree(config);
  tree.Fit(data);
  for (const auto& node : tree.Nodes()) {
    if (node.feature < 0) {
      EXPECT_GE(node.num_samples, 20u);
    }
  }
}

TEST(TreeModelTest, DeeperTreesFitBetter) {
  const Dataset train = testing::MakeRegressionData(800, 9);
  const Dataset test = testing::MakeRegressionData(200, 10);
  double prev_rmse = 1e9;
  for (int depth : {1, 3, 8}) {
    TreeConfig config;
    config.max_depth = depth;
    TreeModel tree(config);
    tree.Fit(train);
    std::vector<double> pred;
    for (std::size_t i = 0; i < test.NumRows(); ++i) {
      pred.push_back(tree.Predict(test.Row(i)));
    }
    const double rmse = RootMeanSquaredError(
        pred, test.Targets());
    EXPECT_LT(rmse, prev_rmse + 0.05) << "depth=" << depth;
    prev_rmse = rmse;
  }
  EXPECT_LT(prev_rmse, 0.25);
}

TEST(TreeModelTest, ResidualTargetsViaRowIndirection) {
  // Fit against an external target vector (the gradient-boosting path).
  Dataset data(1);
  for (int i = 0; i < 20; ++i) {
    data.Add(std::array{static_cast<double>(i)}, 0.0 /*ignored*/);
  }
  std::vector<double> residuals(20);
  for (int i = 0; i < 20; ++i) residuals[static_cast<std::size_t>(i)] = i < 10 ? -2.0 : 2.0;
  std::vector<std::size_t> rows(20);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  TreeModel tree;
  tree.Fit(data, rows, residuals);
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{4.0}), -2.0);
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{15.0}), 2.0);
}

TEST(TreeModelTest, CustomLeafValueFunction) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.Add(std::array{static_cast<double>(i)}, 1.0);
  }
  std::vector<std::size_t> rows(10);
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  TreeModel tree;
  tree.Fit(data, rows, data.Targets(),
           [](std::span<const std::size_t> leaf_rows) {
             return static_cast<double>(leaf_rows.size()) * 100.0;
           });
  // Constant targets -> single leaf holding all 10 rows.
  EXPECT_DOUBLE_EQ(tree.Predict(std::array{0.0}), 1000.0);
}

TEST(TreeModelTest, FeatureSubsamplingStillLearns) {
  const Dataset train = testing::MakeRegressionData(800, 11);
  TreeConfig config;
  config.max_features = 2;
  config.seed = 5;
  TreeModel tree(config);
  tree.Fit(train);
  EXPECT_GT(tree.NumLeaves(), 4u);
}

TEST(DecisionTreeRegressorTest, FitsNonlinearFunction) {
  const Dataset train = testing::MakeRegressionData(1500, 12);
  const Dataset test = testing::MakeRegressionData(300, 13);
  DecisionTreeRegressor dtr;
  dtr.Fit(train);
  const auto pred = dtr.PredictBatch(test);
  EXPECT_LT(RootMeanSquaredError(pred, test.Targets()), 0.3);
  EXPECT_EQ(dtr.Name(), "DTR");
}

TEST(DecisionTreeClassifierTest, LearnsXorBoundary) {
  const Dataset train = testing::MakeClassificationData(1500, 14);
  const Dataset test = testing::MakeClassificationData(300, 15);
  // XOR's first split has near-zero impurity gain, so the greedy tree
  // needs depth headroom and small leaves to carve the board.
  TreeConfig config = DecisionTreeClassifier::MakeDefaultConfig();
  config.max_depth = 16;
  config.min_samples_leaf = 1;
  config.min_samples_split = 2;
  DecisionTreeClassifier dtc(config);
  dtc.Fit(train);
  std::vector<int> pred = dtc.PredictBatch(test);
  std::vector<int> actual;
  for (double y : test.Targets()) actual.push_back(y > 0.5 ? 1 : 0);
  EXPECT_GT(Accuracy(pred, actual), 0.85);
  EXPECT_EQ(dtc.Name(), "DTC");
}

TEST(DecisionTreeClassifierTest, ProbabilitiesAreLeafFractions) {
  const Dataset train = testing::MakeClassificationData(500, 16,
                                                        /*flip_prob=*/0.2);
  DecisionTreeClassifier dtc;
  dtc.Fit(train);
  for (std::size_t i = 0; i < 50; ++i) {
    const double p = dtc.PredictProb(train.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TreeModelTest, DeterministicForSameSeed) {
  const Dataset train = testing::MakeRegressionData(400, 17);
  TreeConfig config;
  config.max_features = 3;
  config.seed = 99;
  TreeModel a(config), b(config);
  a.Fit(train);
  b.Fit(train);
  ASSERT_EQ(a.Nodes().size(), b.Nodes().size());
  for (std::size_t i = 0; i < a.Nodes().size(); ++i) {
    EXPECT_EQ(a.Nodes()[i].feature, b.Nodes()[i].feature);
    EXPECT_DOUBLE_EQ(a.Nodes()[i].threshold, b.Nodes()[i].threshold);
  }
}

}  // namespace
}  // namespace gaugur::ml
