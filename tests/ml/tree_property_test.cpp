// Parameterized CART invariants across a config grid.
#include <gtest/gtest.h>

#include <tuple>

#include "ml/decision_tree.h"
#include "tests/ml/synthetic.h"

namespace gaugur::ml {
namespace {

// (max_depth, min_samples_leaf)
using TreeParam = std::tuple<int, std::size_t>;

class TreeConfigGridTest : public ::testing::TestWithParam<TreeParam> {
 protected:
  TreeConfig MakeConfig() const {
    TreeConfig config;
    config.max_depth = std::get<0>(GetParam());
    config.min_samples_leaf = std::get<1>(GetParam());
    config.min_samples_split = 2 * config.min_samples_leaf;
    return config;
  }
};

TEST_P(TreeConfigGridTest, DepthBoundHolds) {
  const Dataset train = testing::MakeRegressionData(600, 101);
  TreeModel tree(MakeConfig());
  tree.Fit(train);
  EXPECT_LE(tree.Depth(), std::get<0>(GetParam()) + 1);
}

TEST_P(TreeConfigGridTest, LeavesRespectMinimumSize) {
  const Dataset train = testing::MakeRegressionData(600, 102);
  TreeModel tree(MakeConfig());
  tree.Fit(train);
  for (const auto& node : tree.Nodes()) {
    if (node.feature < 0) {
      EXPECT_GE(node.num_samples, std::get<1>(GetParam()));
    }
  }
}

TEST_P(TreeConfigGridTest, PredictionsWithinTargetRange) {
  // Leaf means cannot extrapolate beyond the observed target range.
  const Dataset train = testing::MakeRegressionData(600, 103);
  double lo = 1e18, hi = -1e18;
  for (double y : train.Targets()) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  TreeModel tree(MakeConfig());
  tree.Fit(train);
  const Dataset probe = testing::MakeRegressionData(200, 104);
  for (std::size_t i = 0; i < probe.NumRows(); ++i) {
    const double p = tree.Predict(probe.Row(i));
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST_P(TreeConfigGridTest, NodeChildrenAreConsistent) {
  const Dataset train = testing::MakeClassificationData(600, 105);
  TreeConfig config = MakeConfig();
  config.criterion = SplitCriterion::kGini;
  TreeModel tree(config);
  tree.Fit(train);
  const auto& nodes = tree.Nodes();
  for (const auto& node : nodes) {
    if (node.feature >= 0) {
      ASSERT_GE(node.left, 0);
      ASSERT_GE(node.right, 0);
      ASSERT_LT(static_cast<std::size_t>(node.left), nodes.size());
      ASSERT_LT(static_cast<std::size_t>(node.right), nodes.size());
      // Children partition the parent.
      EXPECT_EQ(nodes[static_cast<std::size_t>(node.left)].num_samples +
                    nodes[static_cast<std::size_t>(node.right)].num_samples,
                node.num_samples);
    } else {
      EXPECT_GE(node.value, 0.0);  // gini leaves are class fractions
      EXPECT_LE(node.value, 1.0);
    }
  }
}

TEST_P(TreeConfigGridTest, InvariantToAffineFeatureTransforms) {
  // CART splits depend only on feature order, so shifting/scaling a
  // feature must leave every prediction unchanged.
  const Dataset train = testing::MakeRegressionData(400, 106);
  Dataset scaled(train.NumFeatures());
  std::vector<double> row;
  for (std::size_t i = 0; i < train.NumRows(); ++i) {
    row.assign(train.Row(i).begin(), train.Row(i).end());
    row[0] = row[0] * 37.0 - 5.0;
    row[2] = row[2] * 0.001 + 100.0;
    scaled.Add(row, train.Target(i));
  }
  TreeModel a(MakeConfig()), b(MakeConfig());
  a.Fit(train);
  b.Fit(scaled);
  const Dataset probe = testing::MakeRegressionData(100, 107);
  for (std::size_t i = 0; i < probe.NumRows(); ++i) {
    row.assign(probe.Row(i).begin(), probe.Row(i).end());
    const double pa = a.Predict(row);
    row[0] = row[0] * 37.0 - 5.0;
    row[2] = row[2] * 0.001 + 100.0;
    EXPECT_NEAR(b.Predict(row), pa, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, TreeConfigGridTest,
    ::testing::Combine(::testing::Values(2, 5, 10),
                       ::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{25})),
    [](const auto& info) {
      return "depth" + std::to_string(std::get<0>(info.param)) + "_leaf" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gaugur::ml
