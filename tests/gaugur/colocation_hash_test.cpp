// Property suite for the additive (Zobrist-style) colocation hash: the
// incremental value must equal the from-scratch sum after any interleaved
// arrival/departure sequence, multisets must hash by multiplicity (the
// reason the group is (Z/2^64, +) rather than XOR), and the derived
// ModelJoinKey must match the span-based entry point exactly — that
// identity is what lets the sharded scheduler form candidate cache keys
// in O(1) without rehashing co-runner sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gaugur/colocation.h"
#include "resources/resolution.h"

namespace gaugur::core {
namespace {

SessionRequest Session(int game_id, resources::Resolution resolution =
                                        resources::kReferenceResolution) {
  return SessionRequest{game_id, resolution};
}

TEST(ColocationHash, EmptyColocationHashesToZero) {
  IncrementalColocationHash hash;
  EXPECT_EQ(hash.Value(), 0u);
  EXPECT_EQ(IncrementalColocationHash::FromScratch({}), 0u);

  hash.Add(Session(3));
  hash.Remove(Session(3));
  EXPECT_EQ(hash.Value(), 0u) << "add/remove must return to the identity";

  hash.Add(Session(7, resources::k720p));
  hash.Reset();
  EXPECT_EQ(hash.Value(), 0u);
}

TEST(ColocationHash, OrderInsensitive) {
  Colocation forward = {Session(1), Session(2, resources::k720p),
                        Session(3, resources::k1440p), Session(2)};
  Colocation reversed(forward.rbegin(), forward.rend());
  EXPECT_EQ(IncrementalColocationHash::FromScratch(forward),
            IncrementalColocationHash::FromScratch(reversed));
}

TEST(ColocationHash, MultisetMultiplicityIsPreserved) {
  // XOR-Zobrist would cancel the duplicate; the additive group must not.
  const Colocation one = {Session(5)};
  const Colocation two = {Session(5), Session(5)};
  const Colocation three = {Session(5), Session(5), Session(5)};
  EXPECT_NE(IncrementalColocationHash::FromScratch(two), 0u);
  EXPECT_NE(IncrementalColocationHash::FromScratch(two),
            IncrementalColocationHash::FromScratch(one));
  EXPECT_NE(IncrementalColocationHash::FromScratch(three),
            IncrementalColocationHash::FromScratch(one));
  EXPECT_EQ(IncrementalColocationHash::FromScratch(two),
            2 * SessionHash(Session(5)));
}

TEST(ColocationHash, SessionHashSeparatesGameAndResolution) {
  EXPECT_NE(SessionHash(Session(1)), SessionHash(Session(2)));
  EXPECT_NE(SessionHash(Session(1, resources::k720p)),
            SessionHash(Session(1, resources::k1080p)));
}

TEST(ColocationHash, IncrementalMatchesFromScratchUnderRandomChurn) {
  // Random arrival/departure sequences over a small catalog (small on
  // purpose: duplicates are frequent, exercising the multiset property).
  common::Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    IncrementalColocationHash incremental;
    std::vector<SessionRequest> live;
    for (int step = 0; step < 200; ++step) {
      const bool arrive = live.empty() || rng.Uniform() < 0.55;
      if (arrive) {
        const SessionRequest session =
            Session(static_cast<int>(rng.UniformInt(6)),
                    resources::kPlayerResolutions[rng.UniformInt(4)]);
        live.push_back(session);
        incremental.Add(session);
      } else {
        const std::size_t victim = rng.UniformInt(live.size());
        incremental.Remove(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      ASSERT_EQ(incremental.Value(),
                IncrementalColocationHash::FromScratch(live))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(ColocationHash, ModelJoinKeyMatchesHashDerivedForm) {
  // The O(1) candidate-key path: a scheduler holding the open server's
  // additive hash H forms the key for "victim joins this server" as
  // JoinKeyFromHashes(SessionHash(victim), H) — bit-identical to the
  // span-based ModelJoinKey over the materialized co-runner list.
  common::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<SessionRequest> corunners;
    const std::size_t n = rng.UniformInt(5);
    IncrementalColocationHash server_hash;
    for (std::size_t i = 0; i < n; ++i) {
      corunners.push_back(
          Session(static_cast<int>(rng.UniformInt(10)),
                  resources::kPlayerResolutions[rng.UniformInt(4)]));
      server_hash.Add(corunners.back());
    }
    const SessionRequest victim =
        Session(static_cast<int>(rng.UniformInt(10)),
                resources::kPlayerResolutions[rng.UniformInt(4)]);
    EXPECT_EQ(ModelJoinKey(victim, corunners),
              JoinKeyFromHashes(SessionHash(victim), server_hash.Value()));
  }
}

TEST(ColocationHash, ModelJoinKeyIsVictimSensitive) {
  // Same total multiset, different victim -> different key: the final mix
  // must not collapse "A among {B}" with "B among {A}".
  const SessionRequest a = Session(1);
  const SessionRequest b = Session(2);
  const Colocation only_b = {b};
  const Colocation only_a = {a};
  EXPECT_NE(ModelJoinKey(a, only_b), ModelJoinKey(b, only_a));
}

TEST(ColocationHash, PerVictimKeysDeriveFromTotalInConstantTime) {
  // From the full colocation's additive hash, every victim's co-runner
  // sum is total - SessionHash(victim): the subtraction trick the
  // predictor's scoring loop uses to key all victims of one candidate.
  const Colocation content = {Session(1), Session(2, resources::k720p),
                              Session(2, resources::k720p), Session(4)};
  const std::uint64_t total = IncrementalColocationHash::FromScratch(content);
  for (std::size_t i = 0; i < content.size(); ++i) {
    std::vector<SessionRequest> corunners;
    for (std::size_t j = 0; j < content.size(); ++j) {
      if (j != i) corunners.push_back(content[j]);
    }
    EXPECT_EQ(ModelJoinKey(content[i], corunners),
              JoinKeyFromHashes(SessionHash(content[i]),
                                total - SessionHash(content[i])));
  }
}

}  // namespace
}  // namespace gaugur::core
