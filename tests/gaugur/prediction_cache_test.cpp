// Unit tests for the predictor's LRU memoization layer: roundtrip,
// recency/eviction bounds, retrain invalidation, the capacity-0 disabled
// mode, and a concurrent mixed-workload loop for the TSan build.

#include "gaugur/prediction_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gaugur::core {
namespace {

PredictionCacheKey Key(std::uint64_t join_key, std::uint64_t qos_bits = 0,
                       std::uint8_t kind = 0) {
  return PredictionCacheKey{join_key, qos_bits, kind};
}

TEST(PredictionCache, RoundtripPreservesFeaturesAndValue) {
  PredictionCache cache(8);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(1), {{0.25, 0.5, 0.75}, 0.9});

  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 0.9);
  EXPECT_EQ(hit->features, (std::vector<double>{0.25, 0.5, 0.75}));

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredictionCache, KeyComponentsAreAllSignificant) {
  PredictionCache cache(8);
  cache.Insert(Key(1, 0, 0), {{}, 1.0});
  EXPECT_EQ(cache.Lookup(Key(2, 0, 0)), nullptr);  // different join key
  EXPECT_EQ(cache.Lookup(Key(1, 7, 0)), nullptr);  // different QoS bits
  EXPECT_EQ(cache.Lookup(Key(1, 0, 1)), nullptr);  // different kind
  ASSERT_NE(cache.Lookup(Key(1, 0, 0)), nullptr);
}

TEST(PredictionCache, EvictsLeastRecentlyUsedAtCapacity) {
  PredictionCache cache(3);
  cache.Insert(Key(1), {{}, 1.0});
  cache.Insert(Key(2), {{}, 2.0});
  cache.Insert(Key(3), {{}, 3.0});
  EXPECT_EQ(cache.Size(), 3u);

  // Touch key 1 so key 2 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(4), {{}, 4.0});

  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_NE(cache.Lookup(Key(4)), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(PredictionCache, SizeNeverExceedsCapacity) {
  PredictionCache cache(16);
  for (std::uint64_t k = 0; k < 200; ++k) {
    cache.Insert(Key(k), {{}, static_cast<double>(k)});
    EXPECT_LE(cache.Size(), 16u);
  }
  EXPECT_EQ(cache.Size(), 16u);
  EXPECT_EQ(cache.GetStats().evictions, 200u - 16u);
}

TEST(PredictionCache, ReinsertRefreshesInsteadOfDuplicating) {
  PredictionCache cache(2);
  cache.Insert(Key(1), {{}, 1.0});
  cache.Insert(Key(1), {{}, 1.5});
  EXPECT_EQ(cache.Size(), 1u);
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(1))->value, 1.5);
  EXPECT_EQ(cache.GetStats().evictions, 0u);
}

TEST(PredictionCache, ClearEmptiesButKeepsStats) {
  PredictionCache cache(8);
  cache.Insert(Key(1), {{}, 1.0});
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Lookup(Key(99));

  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // 99, then 1 again after Clear
}

TEST(PredictionCache, CapacityZeroDisables) {
  PredictionCache cache(0);
  cache.Insert(Key(1), {{}, 1.0});
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  // The disabled cache neither hits nor counts traffic.
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredictionCache, MaxAgeExpiresEntriesOnLookup) {
  PredictionCache cache(8, /*max_age_epochs=*/2);
  cache.Insert(Key(1), {{}, 1.0});

  // Age 0 and 1: still a hit.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.AdvanceEpoch();
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);

  // Age 2 == max_age: lazily expired, counted separately from evictions.
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Size(), 0u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);  // the expiring lookup also counts a miss
}

TEST(PredictionCache, ReinsertResetsEntryAge) {
  PredictionCache cache(8, /*max_age_epochs=*/2);
  cache.Insert(Key(1), {{}, 1.0});
  cache.AdvanceEpoch();
  // Refresh at epoch 1: the age clock restarts.
  cache.Insert(Key(1), {{}, 1.5});
  cache.AdvanceEpoch();
  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 1.5);
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.GetStats().expired, 1u);
}

TEST(PredictionCache, MaxAgeZeroNeverExpires) {
  PredictionCache cache(8);  // default: no age bound
  cache.Insert(Key(1), {{}, 1.0});
  for (int i = 0; i < 100; ++i) cache.AdvanceEpoch();
  EXPECT_EQ(cache.Epoch(), 100u);
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.GetStats().expired, 0u);
}

TEST(PredictionCache, ConcurrentMixedWorkloadIsSafe) {
  PredictionCache cache(64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = (static_cast<std::uint64_t>(t) * 37 + i) % 128;
        if (i % 3 == 0) {
          cache.Insert(Key(k), {{1.0, 2.0}, static_cast<double>(k)});
        } else if (i % 257 == 0) {
          cache.Clear();
        } else {
          const auto hit = cache.Lookup(Key(k));
          if (hit != nullptr) {
            // Entries are immutable snapshots: a concurrent Clear or
            // eviction must not invalidate a handed-out pointer.
            EXPECT_EQ(hit->value, static_cast<double>(k));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_LE(cache.Size(), 64u);
  const auto stats = cache.GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace gaugur::core
