// Unit tests for the predictor's LRU memoization layer: roundtrip,
// recency/eviction bounds, retrain invalidation, the capacity-0 disabled
// mode, striped-lock behavior (per-stripe stats folding, exact lookup
// outcomes), and concurrent mixed workloads for the TSan build.
//
// Tests that pin exact global LRU order construct the cache with
// stripes=1 (the single-lock legacy layout); striping only changes which
// entries contend for a slot, never the hit/miss contract.

#include "gaugur/prediction_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gaugur::core {
namespace {

PredictionCacheKey Key(std::uint64_t join_key, std::uint64_t qos_bits = 0,
                       std::uint8_t kind = 0) {
  return PredictionCacheKey{join_key, qos_bits, kind};
}

TEST(PredictionCache, RoundtripPreservesFeaturesAndValue) {
  PredictionCache cache(8);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(1), {{0.25, 0.5, 0.75}, 0.9});

  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 0.9);
  EXPECT_EQ(hit->features, (std::vector<double>{0.25, 0.5, 0.75}));

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredictionCache, KeyComponentsAreAllSignificant) {
  PredictionCache cache(8);
  cache.Insert(Key(1, 0, 0), {{}, 1.0});
  EXPECT_EQ(cache.Lookup(Key(2, 0, 0)), nullptr);  // different join key
  EXPECT_EQ(cache.Lookup(Key(1, 7, 0)), nullptr);  // different QoS bits
  EXPECT_EQ(cache.Lookup(Key(1, 0, 1)), nullptr);  // different kind
  ASSERT_NE(cache.Lookup(Key(1, 0, 0)), nullptr);
}

TEST(PredictionCache, EvictsLeastRecentlyUsedAtCapacity) {
  PredictionCache cache(3, /*max_age_epochs=*/0, /*stripes=*/1);
  cache.Insert(Key(1), {{}, 1.0});
  cache.Insert(Key(2), {{}, 2.0});
  cache.Insert(Key(3), {{}, 3.0});
  EXPECT_EQ(cache.Size(), 3u);

  // Touch key 1 so key 2 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(4), {{}, 4.0});

  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_NE(cache.Lookup(Key(4)), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(PredictionCache, SizeNeverExceedsCapacity) {
  PredictionCache cache(16, /*max_age_epochs=*/0, /*stripes=*/1);
  for (std::uint64_t k = 0; k < 200; ++k) {
    cache.Insert(Key(k), {{}, static_cast<double>(k)});
    EXPECT_LE(cache.Size(), 16u);
  }
  EXPECT_EQ(cache.Size(), 16u);
  EXPECT_EQ(cache.GetStats().evictions, 200u - 16u);
}

TEST(PredictionCache, ReinsertRefreshesInsteadOfDuplicating) {
  PredictionCache cache(2);
  cache.Insert(Key(1), {{}, 1.0});
  cache.Insert(Key(1), {{}, 1.5});
  EXPECT_EQ(cache.Size(), 1u);
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(1))->value, 1.5);
  EXPECT_EQ(cache.GetStats().evictions, 0u);
}

TEST(PredictionCache, ClearEmptiesButKeepsStats) {
  PredictionCache cache(8);
  cache.Insert(Key(1), {{}, 1.0});
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Lookup(Key(99));

  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // 99, then 1 again after Clear
}

TEST(PredictionCache, CapacityZeroDisables) {
  PredictionCache cache(0);
  cache.Insert(Key(1), {{}, 1.0});
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  // The disabled cache neither hits nor counts traffic.
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PredictionCache, MaxAgeExpiresEntriesOnLookup) {
  PredictionCache cache(8, /*max_age_epochs=*/2);
  cache.Insert(Key(1), {{}, 1.0});

  // Age 0 and 1: still a hit.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.AdvanceEpoch();
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);

  // Age 2 == max_age: lazily expired, counted separately from evictions.
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Size(), 0u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);  // the expiring lookup also counts a miss
}

TEST(PredictionCache, ReinsertResetsEntryAge) {
  PredictionCache cache(8, /*max_age_epochs=*/2);
  cache.Insert(Key(1), {{}, 1.0});
  cache.AdvanceEpoch();
  // Refresh at epoch 1: the age clock restarts.
  cache.Insert(Key(1), {{}, 1.5});
  cache.AdvanceEpoch();
  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 1.5);
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.GetStats().expired, 1u);
}

TEST(PredictionCache, MaxAgeZeroNeverExpires) {
  PredictionCache cache(8);  // default: no age bound
  cache.Insert(Key(1), {{}, 1.0});
  for (int i = 0; i < 100; ++i) cache.AdvanceEpoch();
  EXPECT_EQ(cache.Epoch(), 100u);
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.GetStats().expired, 0u);
}

TEST(PredictionCache, ConcurrentMixedWorkloadIsSafe) {
  PredictionCache cache(64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = (static_cast<std::uint64_t>(t) * 37 + i) % 128;
        if (i % 3 == 0) {
          cache.Insert(Key(k), {{1.0, 2.0}, static_cast<double>(k)});
        } else if (i % 257 == 0) {
          cache.Clear();
        } else {
          const auto hit = cache.Lookup(Key(k));
          if (hit != nullptr) {
            // Entries are immutable snapshots: a concurrent Clear or
            // eviction must not invalidate a handed-out pointer.
            EXPECT_EQ(hit->value, static_cast<double>(k));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_LE(cache.Size(), 64u);
  const auto stats = cache.GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(PredictionCache, LookupReportsExactOutcome) {
  PredictionCache cache(8, /*max_age_epochs=*/1, /*stripes=*/1);
  CacheLookupOutcome outcome;

  EXPECT_EQ(cache.Lookup(Key(1), &outcome), nullptr);
  EXPECT_EQ(outcome, CacheLookupOutcome::kMiss);

  cache.Insert(Key(1), {{}, 1.0});
  ASSERT_NE(cache.Lookup(Key(1), &outcome), nullptr);
  EXPECT_EQ(outcome, CacheLookupOutcome::kHit);

  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup(Key(1), &outcome), nullptr);
  EXPECT_EQ(outcome, CacheLookupOutcome::kExpired);
}

TEST(PredictionCache, InsertReturnsEvictionCount) {
  PredictionCache cache(2, /*max_age_epochs=*/0, /*stripes=*/1);
  EXPECT_EQ(cache.Insert(Key(1), {{}, 1.0}), 0u);
  EXPECT_EQ(cache.Insert(Key(2), {{}, 2.0}), 0u);
  EXPECT_EQ(cache.Insert(Key(3), {{}, 3.0}), 1u);  // evicts key 1
  EXPECT_EQ(cache.Insert(Key(3), {{}, 3.5}), 0u);  // refresh, no eviction
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(PredictionCache, StripeCountIsClampedToAtLeastOne) {
  PredictionCache cache(8, /*max_age_epochs=*/0, /*stripes=*/0);
  EXPECT_EQ(cache.NumStripes(), 1u);
  cache.Insert(Key(1), {{}, 1.0});
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
}

TEST(PredictionCache, GetStatsFoldsPerStripeTalliesExactly) {
  PredictionCache cache(64, /*max_age_epochs=*/0, /*stripes=*/8);
  ASSERT_EQ(cache.NumStripes(), 8u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    cache.Insert(Key(k), {{}, static_cast<double>(k)});
    cache.Lookup(Key(k));       // hit
    cache.Lookup(Key(k + 1000));  // miss
  }
  PredictionCache::Stats folded;
  for (std::size_t s = 0; s < cache.NumStripes(); ++s) {
    const auto stripe = cache.StripeStats(s);
    folded.hits += stripe.hits;
    folded.misses += stripe.misses;
    folded.evictions += stripe.evictions;
    folded.expired += stripe.expired;
  }
  const auto total = cache.GetStats();
  EXPECT_EQ(total.hits, folded.hits);
  EXPECT_EQ(total.misses, folded.misses);
  EXPECT_EQ(total.evictions, folded.evictions);
  EXPECT_EQ(total.expired, folded.expired);
  // Single-threaded, so the totals are also exactly the issued traffic.
  EXPECT_EQ(total.hits, 100u);
  EXPECT_EQ(total.misses, 100u);
}

TEST(PredictionCache, StripesPartitionTheKeySpace) {
  // The same key must always land in the same stripe: insert through one
  // path, look up through another, across many keys and both stripe
  // geometries.
  for (const std::size_t stripes : {2u, 8u, 13u}) {
    PredictionCache cache(1024, /*max_age_epochs=*/0, stripes);
    for (std::uint64_t k = 0; k < 300; ++k) {
      cache.Insert(Key(k * 0x9e3779b97f4a7c15ULL), {{}, static_cast<double>(k)});
    }
    for (std::uint64_t k = 0; k < 300; ++k) {
      const auto hit = cache.Lookup(Key(k * 0x9e3779b97f4a7c15ULL));
      ASSERT_NE(hit, nullptr) << "stripes=" << stripes << " k=" << k;
      EXPECT_EQ(hit->value, static_cast<double>(k));
    }
  }
}

TEST(PredictionCache, ConcurrentTalliesAreExactUnderStriping) {
  // The racy pattern this replaces (GetStats deltas around each call)
  // undercounted under contention. With per-stripe tallies updated under
  // the stripe lock, hits + misses must equal the exact number of lookups
  // issued, and per-thread outcome counts must fold to the same totals.
  PredictionCache cache(4096, /*max_age_epochs=*/0, /*stripes=*/8);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kLookupsPerThread = 5000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> observed_misses{0};

  for (std::uint64_t k = 0; k < 256; ++k) {
    cache.Insert(Key(k), {{}, static_cast<double>(k)});
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t hits = 0, misses = 0;
      for (std::uint64_t i = 0; i < kLookupsPerThread; ++i) {
        // Even iterations probe the warmed range, odd ones miss.
        const std::uint64_t k =
            i % 2 == 0 ? (static_cast<std::uint64_t>(t) * 67 + i) % 256
                       : 1000000 + static_cast<std::uint64_t>(t) * 10000 + i;
        CacheLookupOutcome outcome;
        cache.Lookup(Key(k), &outcome);
        (outcome == CacheLookupOutcome::kHit ? hits : misses) += 1;
      }
      observed_hits.fetch_add(hits);
      observed_misses.fetch_add(misses);
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.misses, observed_misses.load());
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLookupsPerThread);
}

}  // namespace
}  // namespace gaugur::core
