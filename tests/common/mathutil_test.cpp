#include "common/mathutil.h"

#include <gtest/gtest.h>

#include <array>

namespace gaugur::common {
namespace {

TEST(MathUtilTest, Clamp01) {
  EXPECT_DOUBLE_EQ(Clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(Clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(Clamp01(1.5), 1.0);
}

TEST(MathUtilTest, SigmoidSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
}

TEST(MathUtilTest, SigmoidExtremesStable) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathUtilTest, Lerp) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(MathUtilTest, InterpUniformGridEndpoints) {
  const std::array<double, 3> ys{1.0, 0.5, 0.2};
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 3, 1.0), 0.2);
}

TEST(MathUtilTest, InterpUniformGridMidpoints) {
  const std::array<double, 3> ys{1.0, 0.5, 0.2};
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 3, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 3, 0.25), 0.75);
  EXPECT_NEAR(InterpUniformGrid(ys.data(), 3, 0.75), 0.35, 1e-12);
}

TEST(MathUtilTest, InterpUniformGridClampsOutOfRange) {
  const std::array<double, 2> ys{3.0, 7.0};
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 2, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(InterpUniformGrid(ys.data(), 2, 2.0), 7.0);
}

TEST(MathUtilTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
}

TEST(MathUtilTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1.0, 1e-8));
}

}  // namespace
}  // namespace gaugur::common
