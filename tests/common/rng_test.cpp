#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gaugur::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(12);
  EXPECT_THROW(rng.UniformInt(std::uint64_t{0}), std::logic_error);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(14);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng root(16);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng r1(17), r2(17);
  Rng a = r1.Fork(5);
  Rng b = r2.Fork(5);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(20);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(21);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleRejectsOversizedRequest) {
  Rng rng(22);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::logic_error);
}

}  // namespace
}  // namespace gaugur::common
