#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gaugur::common {
namespace {

TEST(TableTest, TextHasHeaderAndRows) {
  Table table({"name", "value"});
  table.AddRow({std::string("alpha"), 1.5});
  table.AddRow({std::string("beta"), 2.25});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.250"), std::string::npos);
}

TEST(TableTest, RowArityEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({std::string("only-one")}), std::logic_error);
}

TEST(TableTest, IntegerCellsUnpadded) {
  Table table({"n"});
  table.AddRow({static_cast<long long>(42)});
  EXPECT_NE(table.ToText().find("42"), std::string::npos);
  EXPECT_EQ(table.ToText().find("42.0"), std::string::npos);
}

TEST(TableTest, DoublePrecisionConfigurable) {
  Table table({"x"}, /*double_precision=*/1);
  table.AddRow({3.14159});
  EXPECT_NE(table.ToText().find("3.1"), std::string::npos);
  EXPECT_EQ(table.ToText().find("3.14"), std::string::npos);
}

TEST(TableTest, CsvBasicFormat) {
  Table table({"a", "b"});
  table.AddRow({std::string("x"), static_cast<long long>(1)});
  EXPECT_EQ(table.ToCsv(), "a,b\nx,1\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table table({"a"});
  table.AddRow({std::string("hello, world")});
  table.AddRow({std::string("say \"hi\"")});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, PrintIncludesTitle) {
  Table table({"a"});
  table.AddRow({static_cast<long long>(1)});
  std::ostringstream os;
  table.Print(os, "My Title");
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table table({"k", "v"});
  table.AddRow({std::string("x"), 1.0});
  const std::string path = "/tmp/gaugur_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), table.ToCsv());
  std::remove(path.c_str());
}

TEST(TableTest, NumRowsTracksAdds) {
  Table table({"a"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({1.0});
  table.AddRow({2.0});
  EXPECT_EQ(table.NumRows(), 2u);
}

}  // namespace
}  // namespace gaugur::common
