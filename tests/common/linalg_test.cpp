#include "common/linalg.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace gaugur::common {
namespace {

TEST(LinalgTest, SolvesIdentity) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> b{3, 4};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 2, x));
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(LinalgTest, Solves3x3System) {
  // x = 1, y = -2, z = 3.
  std::vector<double> a{2, 1, 1, 1, 3, 2, 1, 0, 0};
  std::vector<double> b{3, 1, 1};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 3, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LinalgTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{5, 7};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 2, x));
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(LinalgTest, DetectsSingularMatrix) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, b, 2, x));
}

TEST(LinalgTest, LeastSquaresRecoversExactSolution) {
  // y = 2a + 3b, noise-free, overdetermined.
  Rng rng(41);
  std::vector<double> design;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    design.push_back(a);
    design.push_back(b);
    y.push_back(2.0 * a + 3.0 * b);
  }
  const auto w = LeastSquares(design, 50, 2, y);
  EXPECT_NEAR(w[0], 2.0, 1e-6);
  EXPECT_NEAR(w[1], 3.0, 1e-6);
}

TEST(LinalgTest, LeastSquaresHandlesIntercept) {
  Rng rng(42);
  std::vector<double> design;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.Uniform(0.0, 5.0);
    design.push_back(a);
    design.push_back(1.0);  // intercept column
    y.push_back(-1.5 * a + 4.0 + rng.Gaussian(0.0, 0.01));
  }
  const auto w = LeastSquares(design, 100, 2, y);
  EXPECT_NEAR(w[0], -1.5, 0.01);
  EXPECT_NEAR(w[1], 4.0, 0.02);
}

TEST(LinalgTest, LeastSquaresSurvivesCollinearDesign) {
  // Two identical columns: rank-deficient; ridge escalation must cope.
  std::vector<double> design;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    const double a = static_cast<double>(i);
    design.push_back(a);
    design.push_back(a);
    y.push_back(4.0 * a);
  }
  const auto w = LeastSquares(design, 20, 2, y);
  // Any split w0 + w1 = 4 is acceptable; prediction must be right.
  EXPECT_NEAR(w[0] + w[1], 4.0, 0.01);
}

TEST(LinalgTest, LeastSquaresSingleColumn) {
  std::vector<double> design{1.0, 2.0, 3.0};
  std::vector<double> y{2.0, 4.0, 6.0};
  const auto w = LeastSquares(design, 3, 1, y);
  EXPECT_NEAR(w[0], 2.0, 1e-6);
}

}  // namespace
}  // namespace gaugur::common
