#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace gaugur::common {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, MinMaxSum) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
  EXPECT_DOUBLE_EQ(Sum(xs), 11.0);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 2.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 5.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, PearsonAntiCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(StatsTest, FitLineExactThroughTwoPoints) {
  const std::vector<double> xs{1.0, 3.0};
  const std::vector<double> ys{2.0, 8.0};
  const LineFit fit = FitLine(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 3.0);
  EXPECT_DOUBLE_EQ(fit.intercept, -1.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(StatsTest, FitLineRecoversNoisyLine) {
  Rng rng(31);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(2.5 * x + 1.0 + rng.Gaussian(0.0, 0.1));
  }
  const LineFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(StatsTest, FitLineRejectsConstantX) {
  const std::vector<double> xs{2.0, 2.0};
  const std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW(FitLine(xs, ys), std::logic_error);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = EmpiricalCdf(xs, 10);
  ASSERT_EQ(cdf.size(), 10u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  Rng rng(32);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_EQ(rs.Count(), 1000u);
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.Variance(), Variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.Min(), Min(xs));
  EXPECT_DOUBLE_EQ(rs.Max(), Max(xs));
}

TEST(StatsTest, RunningStatsSingleValue) {
  RunningStats rs;
  rs.Add(7.0);
  EXPECT_DOUBLE_EQ(rs.Mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 7.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 7.0);
}

}  // namespace
}  // namespace gaugur::common
