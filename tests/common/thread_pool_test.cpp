#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/switch.h"

namespace gaugur::common {
namespace {

TEST(ThreadPoolTest, NumThreadsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.NumThreads(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.NumThreads(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.Submit([&] { counter = 42; });
  f.wait();
  EXPECT_EQ(counter.load(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(0, 1000, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRespectsBeginEnd) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  pool.ParallelFor(10, 20, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { ++counter; });
  pool.ParallelFor(7, 3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  // Inner ParallelFor issued from a worker thread must not deadlock.
  pool.ParallelFor(0, 4, [&](std::size_t) {
    pool.ParallelFor(0, 10, [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPoolTest, CountsExecutedTasksAndDrainsQueue) {
  obs::EnabledScope on(true);
  obs::Counter& executed =
      obs::Registry::Global().GetCounter("pool.tasks_executed");
  const std::uint64_t executed_before = executed.Value();
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([] {}));
    }
    for (auto& f : futures) f.wait();
    EXPECT_EQ(pool.TasksExecuted(), 64u);
    EXPECT_EQ(pool.QueueDepth(), 0u);
    // Destruction drains deterministically and asserts QueueDepth() == 0.
  }
  EXPECT_EQ(executed.Value() - executed_before, 64u);
}

TEST(ThreadPoolTest, QueueDepthGaugeReadsZeroWhenIdle) {
  obs::EnabledScope on(true);
  obs::Gauge& gauge = obs::Registry::Global().GetGauge("pool.queue_depth");
  const std::int64_t idle_before = gauge.Value();
  {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&] { ++done; }));
    }
    for (auto& f : futures) f.wait();
    EXPECT_EQ(done.load(), 32);
    EXPECT_EQ(pool.QueueDepth(), 0u);
  }
  // Every submit was matched by a dequeue, across all pools in the binary.
  EXPECT_EQ(gauge.Value(), idle_before);
}

TEST(ThreadPoolTest, ParallelForContributesToTaskCounter) {
  obs::EnabledScope on(true);
  ThreadPool pool(4);
  std::atomic<int> touched{0};
  pool.ParallelFor(0, 256, [&](std::size_t) { ++touched; });
  EXPECT_EQ(touched.load(), 256);
  // ParallelFor distributes chunks via Submit; the helpers it enqueued
  // are visible in the pool's task counter.
  EXPECT_GT(pool.TasksExecuted(), 0u);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
}

TEST(ThreadPoolTest, PinnedTasksRunOnTheirWorkerInOrder) {
  ThreadPool pool(3);
  // Per-worker journals: every pinned task records the thread it ran on
  // and its submission rank; affinity requires one thread id per worker
  // and strictly increasing ranks.
  std::vector<std::vector<std::thread::id>> thread_ids(3);
  std::vector<std::vector<int>> ranks(3);
  std::vector<std::future<void>> futures;
  for (int r = 0; r < 60; ++r) {
    const std::size_t worker = static_cast<std::size_t>(r) % 3;
    futures.push_back(pool.SubmitPinned(worker, [&, worker, r] {
      // Only this worker touches its journal, so no locking is needed —
      // exactly the property the sharded fleet service relies on.
      thread_ids[worker].push_back(std::this_thread::get_id());
      ranks[worker].push_back(r);
    }));
  }
  for (auto& f : futures) f.wait();
  for (std::size_t w = 0; w < 3; ++w) {
    ASSERT_EQ(thread_ids[w].size(), 20u);
    for (const std::thread::id& id : thread_ids[w]) {
      EXPECT_EQ(id, thread_ids[w].front()) << "worker " << w;
    }
    for (std::size_t i = 1; i < ranks[w].size(); ++i) {
      EXPECT_LT(ranks[w][i - 1], ranks[w][i]) << "worker " << w;
    }
  }
}

TEST(ThreadPoolTest, PinnedWorkerOutOfRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW((void)pool.SubmitPinned(2, [] {}), std::logic_error);
}

TEST(ThreadPoolTest, NamedSubmissionMapsTrailingIntegersRoundRobin) {
  ThreadPool pool(4);
  // Numbered names partition round-robin: shard k -> worker k % N.
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(pool.WorkerIndexForName("fleet-shard-" + std::to_string(k)),
              k % 4);
  }
  // Unnumbered names hash, but stably, and in range.
  const std::size_t w = pool.WorkerIndexForName("compactor");
  EXPECT_LT(w, 4u);
  EXPECT_EQ(pool.WorkerIndexForName("compactor"), w);
}

TEST(ThreadPoolTest, SameNameAlwaysSharesAWorker) {
  ThreadPool pool(3);
  std::vector<std::thread::id> seen;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(pool.SubmitNamed("shard-1", [&] {
      std::lock_guard lock(mu);
      seen.push_back(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.wait();
  ASSERT_EQ(seen.size(), 30u);
  for (const std::thread::id& id : seen) EXPECT_EQ(id, seen.front());
}

TEST(ThreadPoolTest, PinnedAndSharedQueuesCoexist) {
  ThreadPool pool(2);
  std::atomic<int> pinned_done{0};
  std::atomic<int> shared_done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      futures.push_back(pool.SubmitPinned(static_cast<std::size_t>(i) % 2,
                                          [&] { ++pinned_done; }));
    } else {
      futures.push_back(pool.Submit([&] { ++shared_done; }));
    }
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(pinned_done.load(), 20);
  EXPECT_EQ(shared_done.load(), 20);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, PinnedQueueDepthGaugeTracksBacklogAndDrains) {
  obs::EnabledScope on(true);
  obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("pool.pinned_queue_depth");
  const std::int64_t idle_before = gauge.Value();
  {
    ThreadPool pool(1);
    // Park the lone worker so pinned submissions pile up observably:
    // affinity work cannot be stolen, so the backlog must show in the
    // pinned gauge and NOT in the shared-queue gauge.
    std::promise<void> started;
    std::promise<void> release;
    auto blocker = pool.SubmitPinned(0, [&] {
      started.set_value();
      release.get_future().wait();
    });
    started.get_future().wait();
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.SubmitPinned(0, [&] { ++done; }));
    }
    EXPECT_EQ(pool.PinnedQueueDepth(), 8u);
    EXPECT_EQ(pool.QueueDepth(), 0u);
    EXPECT_EQ(gauge.Value(), idle_before + 8);
    release.set_value();
    blocker.wait();
    for (auto& f : futures) f.wait();
    EXPECT_EQ(done.load(), 8);
    // The dequeue decrement happens-before each future resolves, so the
    // depth is exactly zero once every future is ready.
    EXPECT_EQ(pool.PinnedQueueDepth(), 0u);
    // Destruction re-asserts PinnedQueueDepth() == 0 after the joins.
  }
  EXPECT_EQ(gauge.Value(), idle_before);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<double> values(kN);
  std::iota(values.begin(), values.end(), 0.0);
  std::vector<double> doubled(kN);
  pool.ParallelFor(0, kN, [&](std::size_t i) { doubled[i] = 2 * values[i]; });
  double sum = 0;
  for (double d : doubled) sum += d;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1));
}

}  // namespace
}  // namespace gaugur::common
