#include "profiling/collaborative.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/pipeline/world.h"

namespace gaugur::profiling {
namespace {

using gaugur::testing::TestWorld;
using resources::Resource;

const PartialProfile& ProbeOf(int game_id) {
  static std::map<int, PartialProfile>* cache =
      new std::map<int, PartialProfile>();
  auto it = cache->find(game_id);
  if (it == cache->end()) {
    const auto& world = TestWorld::Get();
    const PartialProfiler prober(world.server());
    it = cache->emplace(game_id,
                        prober.ProbeGame(world.catalog()[
                            static_cast<std::size_t>(game_id)]))
             .first;
  }
  return it->second;
}

CurveImputer MakeLeaveOneOutImputer(int excluded_id) {
  const auto& world = TestWorld::Get();
  std::vector<GameProfile> reference;
  for (std::size_t j = 0; j < world.catalog().size(); ++j) {
    if (static_cast<int>(j) != excluded_id) {
      reference.push_back(world.features().Profile(static_cast<int>(j)));
    }
  }
  return CurveImputer(std::move(reference));
}

TEST(PartialProfilerTest, ProbeIsMuchCheaperThanFullProfile) {
  const auto& world = TestWorld::Get();
  const PartialProfiler prober(world.server());
  const Profiler full(world.server());
  EXPECT_LT(prober.MeasurementsPerGame() * 4,
            full.MeasurementsPerGame());
  EXPECT_EQ(prober.MeasurementsPerGame(), 3u + 7u * 6u);
}

TEST(PartialProfilerTest, ProbeMatchesFullProfileOnSharedQuantities) {
  const auto& world = TestWorld::Get();
  const auto& probe = ProbeOf(4);
  const auto& full = world.features().Profile(4);
  for (Resource r : resources::kAllResources) {
    // Intensity protocols differ (2-point vs 11-point average), so allow
    // a modest gap.
    EXPECT_NEAR(probe.intensity_ref[r], full.intensity_ref[r], 0.15)
        << resources::Name(r);
    // Sensitivity anchors are the same measurement as the full curve's
    // grid points, modulo noise.
    EXPECT_NEAR(probe.sensitivity_mid[r], full.Sensitivity(r).At(0.5), 0.05);
    EXPECT_NEAR(probe.sensitivity_max[r], full.Sensitivity(r).Score(), 0.05);
  }
}

TEST(PartialProfilerTest, DeterministicInSeed) {
  const auto& world = TestWorld::Get();
  const PartialProfiler prober(world.server());
  const auto a = prober.ProbeGame(world.catalog()[9]);
  const auto b = prober.ProbeGame(world.catalog()[9]);
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(a.sensitivity_mid[r], b.sensitivity_mid[r]);
    EXPECT_DOUBLE_EQ(a.intensity_ref[r], b.intensity_ref[r]);
  }
}

TEST(CurveImputerTest, RejectsTinyReferenceFleet) {
  const auto& world = TestWorld::Get();
  std::vector<GameProfile> tiny{world.features().Profile(0)};
  EXPECT_THROW(CurveImputer imputer(std::move(tiny)), std::logic_error);
}

TEST(CurveImputerTest, ImputedCurvesHonorMeasuredAnchors) {
  const int id = 7;
  const auto imputer = MakeLeaveOneOutImputer(id);
  const auto& probe = ProbeOf(id);
  const auto imputed = imputer.Impute(probe);
  for (Resource r : resources::kAllResources) {
    EXPECT_NEAR(imputed.Sensitivity(r).At(0.5), probe.sensitivity_mid[r],
                0.02)
        << resources::Name(r);
    EXPECT_NEAR(imputed.Sensitivity(r).Score(), probe.sensitivity_max[r],
                0.02);
  }
}

TEST(CurveImputerTest, ImputedCurvesAreValid) {
  const int id = 22;
  const auto imputer = MakeLeaveOneOutImputer(id);
  const auto imputed = imputer.Impute(ProbeOf(id));
  for (Resource r : resources::kAllResources) {
    const auto& curve = imputed.Sensitivity(r).degradation;
    EXPECT_EQ(curve.size(), 11u);
    for (double v : curve) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(CurveImputerTest, LeaveOneOutReconstructionIsClose) {
  const auto& world = TestWorld::Get();
  double max_gap = 0.0;
  double sum_gap = 0.0;
  int count = 0;
  for (int id : {3, 18, 40, 61, 88}) {
    const auto imputer = MakeLeaveOneOutImputer(id);
    const auto imputed = imputer.Impute(ProbeOf(id));
    const auto& truth = world.features().Profile(id);
    for (Resource r : resources::kAllResources) {
      for (std::size_t i = 0; i < 11; ++i) {
        const double gap = std::abs(imputed.Sensitivity(r).degradation[i] -
                                    truth.Sensitivity(r).degradation[i]);
        max_gap = std::max(max_gap, gap);
        sum_gap += gap;
        ++count;
      }
    }
  }
  EXPECT_LT(sum_gap / count, 0.05);
  EXPECT_LT(max_gap, 0.35);
}

TEST(CurveImputerTest, DirectlyMeasuredQuantitiesPassThrough) {
  const int id = 12;
  const auto imputer = MakeLeaveOneOutImputer(id);
  const auto& probe = ProbeOf(id);
  const auto imputed = imputer.Impute(probe);
  EXPECT_EQ(imputed.solo_fps_points, probe.solo_fps_points);
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(imputed.intensity_ref[r], probe.intensity_ref[r]);
  }
  EXPECT_DOUBLE_EQ(imputed.cpu_memory, probe.cpu_memory);
}

}  // namespace
}  // namespace gaugur::profiling
