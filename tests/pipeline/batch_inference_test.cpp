// Regression tests for the batched inference engine at the scheduler
// boundary: batch entry points must agree bit for bit with the scalar
// ones, the prediction cache must be invisible (same numbers, same audit
// records) and retrain-invalidated, and every scheduler that switched to
// batch scoring must still produce the exact placements/assignments the
// scalar path did.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "gaugur/predictor.h"
#include "ml/tree_kernel.h"
#include "obs/model_monitor.h"
#include "obs/switch.h"
#include "sched/assignment.h"
#include "sched/dynamic.h"
#include "sched/methodology.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using core::Colocation;
using core::GAugurPredictor;
using core::QosQuery;
using core::SessionRequest;
using gaugur::testing::TestWorld;

constexpr double kQos = 60.0;

/// Two predictors trained identically on the same slice, one with the
/// cache disabled — memoization must be unobservable in the outputs.
struct TrainedPair {
  GAugurPredictor cached;
  GAugurPredictor uncached;
};

const TrainedPair& Trained() {
  static const TrainedPair* pair = [] {
    const auto& world = TestWorld::Get();
    core::PredictorConfig config;
    core::PredictorConfig no_cache = config;
    no_cache.prediction_cache_capacity = 0;
    auto* p = new TrainedPair{GAugurPredictor(world.features(), config),
                              GAugurPredictor(world.features(), no_cache)};
    const std::span<const core::MeasuredColocation> slice =
        std::span(world.corpus()).first(200);
    const std::vector<double> qos_grid{kQos};
    for (GAugurPredictor* predictor : {&p->cached, &p->uncached}) {
      predictor->TrainRm(slice);
      predictor->TrainCm(slice, qos_grid);
    }
    return p;
  }();
  return *pair;
}

/// Per-victim queries over a span of colocations, with stable co-runner
/// storage.
struct QueryPool {
  std::vector<SessionRequest> pool;
  std::vector<QosQuery> queries;
};

QueryPool BuildQueries(std::span<const core::MeasuredColocation> measured) {
  QueryPool out;
  std::size_t slots = 0;
  for (const auto& m : measured) {
    slots += m.sessions.size() * (m.sessions.size() - 1);
  }
  out.pool.reserve(slots);
  for (const auto& m : measured) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const std::size_t begin = out.pool.size();
      for (std::size_t j = 0; j < m.sessions.size(); ++j) {
        if (j != v) out.pool.push_back(m.sessions[j]);
      }
      out.queries.push_back(
          {m.sessions[v],
           std::span<const SessionRequest>(out.pool.data() + begin,
                                           out.pool.size() - begin)});
    }
  }
  return out;
}

std::vector<Colocation> TestCandidates() {
  std::vector<Colocation> candidates;
  for (const auto& m : TestWorld::Get().test_corpus()) {
    candidates.push_back(m.sessions);
  }
  return candidates;
}

TEST(BatchInferenceTest, BatchEntryPointsMatchScalarBitForBit) {
  const auto& predictor = Trained().uncached;
  const auto q =
      BuildQueries(std::span(TestWorld::Get().test_corpus()).first(40));

  const std::vector<double> fps = predictor.PredictFpsBatch(q.queries);
  const std::vector<char> ok = predictor.PredictQosOkBatch(kQos, q.queries);
  ASSERT_EQ(fps.size(), q.queries.size());
  ASSERT_EQ(ok.size(), q.queries.size());
  for (std::size_t i = 0; i < q.queries.size(); ++i) {
    const auto& query = q.queries[i];
    EXPECT_EQ(fps[i], predictor.PredictFps(query.victim, query.corunners))
        << "query " << i;
    EXPECT_EQ(ok[i] != 0,
              predictor.PredictQosOk(kQos, query.victim, query.corunners))
        << "query " << i;
  }
}

TEST(BatchInferenceTest, CachedPredictorIsBitIdenticalToUncached) {
  const auto& pair = Trained();
  const auto q =
      BuildQueries(std::span(TestWorld::Get().test_corpus()).first(40));

  const std::vector<double> baseline = pair.uncached.PredictFpsBatch(q.queries);
  const std::vector<char> baseline_ok =
      pair.uncached.PredictQosOkBatch(kQos, q.queries);
  // First pass fills the cache, second pass replays from it; both must
  // match the uncached answers exactly.
  for (int pass = 0; pass < 2; ++pass) {
    EXPECT_EQ(pair.cached.PredictFpsBatch(q.queries), baseline)
        << "pass " << pass;
    EXPECT_EQ(pair.cached.PredictQosOkBatch(kQos, q.queries), baseline_ok)
        << "pass " << pass;
  }
  const auto stats = pair.cached.PredictionCacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(pair.cached.PredictionCacheSize(), 0u);
}

TEST(BatchInferenceTest, ScoreCandidatesMatchesPerVictimQueries) {
  const auto& predictor = Trained().cached;
  const auto candidates = TestCandidates();

  const std::vector<char> verdicts =
      predictor.ScoreCandidates(kQos, candidates);
  ASSERT_EQ(verdicts.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(verdicts[i] != 0, predictor.PredictFeasible(kQos, candidates[i]))
        << "candidate " << i;
    bool all_ok = true;
    for (std::size_t v = 0; v < candidates[i].size(); ++v) {
      Colocation corunners = candidates[i];
      corunners.erase(corunners.begin() + static_cast<std::ptrdiff_t>(v));
      all_ok = all_ok &&
               predictor.PredictQosOk(kQos, candidates[i][v], corunners);
    }
    EXPECT_EQ(verdicts[i] != 0, all_ok) << "candidate " << i;
  }
}

TEST(BatchInferenceTest, RetrainInvalidatesPredictionCache) {
  const auto& world = TestWorld::Get();
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(100);
  GAugurPredictor predictor(world.features());
  predictor.TrainRm(slice);
  const std::vector<double> qos_grid{kQos};
  predictor.TrainCm(slice, qos_grid);

  const auto q = BuildQueries(std::span(world.test_corpus()).first(10));
  (void)predictor.PredictFpsBatch(q.queries);
  EXPECT_GT(predictor.PredictionCacheSize(), 0u);
  predictor.TrainRm(slice);
  EXPECT_EQ(predictor.PredictionCacheSize(), 0u);

  (void)predictor.PredictQosOkBatch(kQos, q.queries);
  EXPECT_GT(predictor.PredictionCacheSize(), 0u);
  predictor.TrainCm(slice, qos_grid);
  EXPECT_EQ(predictor.PredictionCacheSize(), 0u);
}

TEST(BatchInferenceTest, FeasibleBatchMatchesScalarForGAugurMethods) {
  const auto& pair = Trained();
  const auto candidates = TestCandidates();
  for (const auto& method :
       {MakeGAugurCmMethod(pair.cached), MakeGAugurRmMethod(pair.cached)}) {
    SCOPED_TRACE(method->Name());
    const std::vector<char> verdicts =
        method->FeasibleBatch(kQos, candidates);
    ASSERT_EQ(verdicts.size(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(verdicts[i] != 0, method->Feasible(kQos, candidates[i]))
          << "candidate " << i;
    }
  }
}

TEST(BatchInferenceTest, PredictFpsSumsMatchScalarLoopBitForBit) {
  const auto& pair = Trained();
  const auto candidates = TestCandidates();
  for (const auto& method :
       {MakeGAugurCmMethod(pair.cached), MakeGAugurRmMethod(pair.cached)}) {
    SCOPED_TRACE(method->Name());
    const std::vector<double> sums = method->PredictFpsSums(candidates);
    ASSERT_EQ(sums.size(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      double expected = 0.0;
      for (std::size_t v = 0; v < candidates[i].size(); ++v) {
        Colocation corunners = candidates[i];
        corunners.erase(corunners.begin() + static_cast<std::ptrdiff_t>(v));
        expected += method->PredictFps(candidates[i][v], corunners);
      }
      EXPECT_EQ(sums[i], expected) << "candidate " << i;
    }
  }
}

TEST(BatchInferenceTest, BatchPolicyReproducesScalarFleetExactly) {
  const auto& world = TestWorld::Get();
  const auto method = MakeGAugurCmMethod(Trained().cached);
  const auto setup = SelectStudyGames(world.lab(), 6, kQos, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 150.0, 0.4, 25.0, 23);

  const auto scalar = SimulateDynamicFleet(
      world.lab(), trace, MakeFirstFeasiblePolicy([&](const Colocation& c) {
        return method->Feasible(kQos, c);
      }));
  const auto batch = SimulateDynamicFleet(
      world.lab(), trace,
      MakeBatchFeasiblePolicy(
          [&](std::span<const Colocation> candidates) {
            return method->FeasibleBatch(kQos, candidates);
          }));

  EXPECT_EQ(scalar.sessions, batch.sessions);
  EXPECT_EQ(scalar.peak_servers, batch.peak_servers);
  EXPECT_EQ(scalar.violated_sessions, batch.violated_sessions);
  EXPECT_EQ(scalar.powerons, batch.powerons);
  EXPECT_DOUBLE_EQ(scalar.server_minutes, batch.server_minutes);
}

TEST(BatchInferenceTest, QuantizedTierReproducesFloatTierFleetExactly) {
  if (!ml::FlatForest::QuantizedSupported()) {
    GTEST_SKIP() << "built with GAUGUR_NO_QUANT";
  }
  struct Guard {
    ~Guard() {
      ml::FlatForest::ForceQuantized(std::nullopt);
      ml::FlatForest::ForceParallel(std::nullopt);
    }
  } guard;
  const auto& world = TestWorld::Get();
  // The uncached predictor: a warm prediction cache would replay the
  // first run's numbers and mask any kernel difference.
  const auto method = MakeGAugurCmMethod(Trained().uncached);
  const auto setup = SelectStudyGames(world.lab(), 6, kQos, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 150.0, 0.4, 25.0, 23);
  const auto run = [&] {
    return SimulateDynamicFleet(
        world.lab(), trace,
        MakeBatchFeasiblePolicy(
            [&](std::span<const Colocation> candidates) {
              return method->FeasibleBatch(kQos, candidates);
            }));
  };

  ml::FlatForest::ForceQuantized(false);
  const auto float_tier = run();

  // Quantized, and quantized + multi-core: every variant must place
  // every session on exactly the same server as the float kernels.
  for (const bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "quantized+mt" : "quantized");
    ml::FlatForest::ForceQuantized(true);
    ml::FlatForest::ForceParallel(parallel);
    const auto quant_tier = run();
    EXPECT_EQ(float_tier.sessions, quant_tier.sessions);
    EXPECT_EQ(float_tier.peak_servers, quant_tier.peak_servers);
    EXPECT_EQ(float_tier.violated_sessions, quant_tier.violated_sessions);
    EXPECT_EQ(float_tier.powerons, quant_tier.powerons);
    EXPECT_DOUBLE_EQ(float_tier.server_minutes, quant_tier.server_minutes);
  }
}

/// Delegates the scalar virtuals and inherits the base-class batch
/// defaults, recovering the pre-refactor per-candidate evaluation path.
class ScalarOnlyMethod : public Methodology {
 public:
  explicit ScalarOnlyMethod(const Methodology& inner) : inner_(inner) {}
  std::string Name() const override { return inner_.Name(); }
  bool Feasible(double qos_fps, const Colocation& c) const override {
    return inner_.Feasible(qos_fps, c);
  }
  bool CanPredictFps() const override { return inner_.CanPredictFps(); }
  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return inner_.PredictFps(victim, corunners);
  }

 private:
  const Methodology& inner_;
};

TEST(BatchInferenceTest, AssignmentUnchangedByBatchScoring) {
  const auto& world = TestWorld::Get();
  const auto method = MakeGAugurRmMethod(Trained().cached);
  const ScalarOnlyMethod scalar_method(*method);

  std::vector<SessionRequest> requests;
  for (const auto& m : world.test_corpus()) {
    for (const auto& s : m.sessions) {
      requests.push_back(s);
      if (requests.size() >= 120) break;
    }
    if (requests.size() >= 120) break;
  }
  AssignmentOptions options;
  options.num_servers = 100;

  const auto batched = AssignByPredictedFps(*method, world.features(),
                                            requests, options);
  const auto scalar = AssignByPredictedFps(scalar_method, world.features(),
                                           requests, options);
  EXPECT_EQ(batched, scalar);
}

TEST(BatchInferenceTest, CacheHitsReplayOneAuditRecordPerQuery) {
  obs::EnabledScope on(true);
  auto& monitor = obs::ModelMonitor::Global();
  const auto& world = TestWorld::Get();

  // Fresh predictor so the first batch is all misses.
  GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(100);
  predictor.TrainRm(slice);
  const std::vector<double> qos_grid{kQos};
  predictor.TrainCm(slice, qos_grid);

  const auto q = BuildQueries(std::span(world.test_corpus()).first(10));
  const std::uint64_t before = monitor.Summary().cm_predictions;
  (void)predictor.PredictQosOkBatch(kQos, q.queries);
  const std::uint64_t after_cold = monitor.Summary().cm_predictions;
  EXPECT_EQ(after_cold - before, q.queries.size());

  // Second pass is served from the cache yet must audit every logical
  // query again — memoization is invisible to the model monitor.
  EXPECT_GT(predictor.PredictionCacheStats().misses, 0u);
  (void)predictor.PredictQosOkBatch(kQos, q.queries);
  EXPECT_GT(predictor.PredictionCacheStats().hits, 0u);
  const std::uint64_t after_warm = monitor.Summary().cm_predictions;
  EXPECT_EQ(after_warm - after_cold, q.queries.size());
}

}  // namespace
}  // namespace gaugur::sched
