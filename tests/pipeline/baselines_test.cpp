// Sigmoid, SMiTe and VBP baseline tests.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/sigmoid_model.h"
#include "baselines/smite_model.h"
#include "baselines/vbp_model.h"
#include "common/rng.h"
#include "ml/metrics.h"
#include "tests/pipeline/world.h"

namespace gaugur::baselines {
namespace {

using core::SessionRequest;
using gaugur::testing::TestWorld;
using resources::Resource;

std::vector<SessionRequest> CorunnersOf(const core::MeasuredColocation& m,
                                        std::size_t victim) {
  std::vector<SessionRequest> corunners;
  for (std::size_t j = 0; j < m.sessions.size(); ++j) {
    if (j != victim) corunners.push_back(m.sessions[j]);
  }
  return corunners;
}

TEST(FitSigmoidTest, RecoversSyntheticSigmoid) {
  const SigmoidParams truth{0.95, -1.2, -0.8};
  std::vector<double> n, y;
  for (double x = 0.0; x <= 4.0; x += 0.5) {
    n.push_back(x);
    y.push_back(truth.Eval(x));
  }
  const SigmoidParams fit = FitSigmoid(n, y);
  for (double x = 0.0; x <= 4.0; x += 0.25) {
    EXPECT_NEAR(fit.Eval(x), truth.Eval(x), 0.02) << "x=" << x;
  }
}

TEST(FitSigmoidTest, NoisyFitStillClose) {
  common::Rng rng(5);
  const SigmoidParams truth{0.9, -1.5, -1.0};
  std::vector<double> n, y;
  for (int rep = 0; rep < 10; ++rep) {
    for (double x = 0.0; x <= 3.0; x += 1.0) {
      n.push_back(x);
      y.push_back(truth.Eval(x) + rng.Gaussian(0.0, 0.03));
    }
  }
  const SigmoidParams fit = FitSigmoid(n, y);
  for (double x = 0.0; x <= 3.0; x += 1.0) {
    EXPECT_NEAR(fit.Eval(x), truth.Eval(x), 0.05);
  }
}

TEST(FitSigmoidTest, ConstantDataFitsConstant) {
  const std::vector<double> n{0.0, 1.0, 2.0};
  const std::vector<double> y{0.7, 0.7, 0.7};
  const SigmoidParams fit = FitSigmoid(n, y);
  for (double x : {0.0, 1.0, 2.0}) {
    EXPECT_NEAR(fit.Eval(x), 0.7, 0.02);
  }
}

class TrainedBaselines {
 public:
  static const TrainedBaselines& Get() {
    static const TrainedBaselines instance;
    return instance;
  }
  const SigmoidModel& sigmoid() const { return sigmoid_; }
  const SmiteModel& smite() const { return smite_; }
  const VbpModel& vbp() const { return vbp_; }

 private:
  TrainedBaselines()
      : sigmoid_(TestWorld::Get().features()),
        smite_(TestWorld::Get().features()),
        vbp_(TestWorld::Get().features()) {
    sigmoid_.Train(TestWorld::Get().corpus());
    smite_.Train(TestWorld::Get().corpus());
  }
  SigmoidModel sigmoid_;
  SmiteModel smite_;
  VbpModel vbp_;
};

TEST(SigmoidModelTest, UntrainedThrows) {
  SigmoidModel model(TestWorld::Get().features());
  EXPECT_THROW(model.PredictDegradation({0, resources::k1080p}, 1),
               std::logic_error);
}

TEST(SigmoidModelTest, PredictionsInUnitRange) {
  const auto& model = TrainedBaselines::Get().sigmoid();
  for (int id = 0; id < 20; ++id) {
    for (std::size_t n = 0; n <= 3; ++n) {
      const double d =
          model.PredictDegradation({id, resources::k1080p}, n);
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(SigmoidModelTest, SoloAnchorNearOne) {
  const auto& model = TrainedBaselines::Get().sigmoid();
  int near_one = 0;
  for (int id = 0; id < 100; ++id) {
    if (model.PredictDegradation({id, resources::k1080p}, 0) > 0.85) {
      ++near_one;
    }
  }
  // The 3-parameter sigmoid can't always honor the solo anchor while
  // fitting the colocated points — part of why the baseline is weak.
  EXPECT_GT(near_one, 70);
}

TEST(SigmoidModelTest, MoreCorunnersPredictMoreDegradation) {
  const auto& model = TrainedBaselines::Get().sigmoid();
  int monotone = 0;
  for (int id = 0; id < 100; ++id) {
    const double d1 = model.PredictDegradation({id, resources::k1080p}, 1);
    const double d3 = model.PredictDegradation({id, resources::k1080p}, 3);
    if (d3 <= d1 + 1e-9) ++monotone;
  }
  EXPECT_GT(monotone, 90);
}

TEST(SigmoidModelTest, IgnoresCorunnerIdentityByDesign) {
  // The documented blind spot: prediction depends only on the count.
  const auto& model = TrainedBaselines::Get().sigmoid();
  const SessionRequest victim{0, resources::k1080p};
  EXPECT_DOUBLE_EQ(model.PredictDegradation(victim, 2),
                   model.PredictDegradation(victim, 2));
}

TEST(SmiteModelTest, UntrainedThrows) {
  SmiteModel model(TestWorld::Get().features());
  const std::vector<SessionRequest> corunners{{1, resources::k1080p}};
  EXPECT_THROW(model.PredictDegradation({0, resources::k1080p}, corunners),
               std::logic_error);
}

TEST(SmiteModelTest, CoefficientCountMatchesResourcesPlusIntercept) {
  const auto& model = TrainedBaselines::Get().smite();
  EXPECT_EQ(model.Coefficients().size(), resources::kNumResources + 1);
}

TEST(SmiteModelTest, PredictionsClampedToUnitRange) {
  const auto& model = TrainedBaselines::Get().smite();
  for (const auto& m : TestWorld::Get().test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const double d =
          model.PredictDegradation(m.sessions[v], CorunnersOf(m, v));
      EXPECT_GE(d, 0.01);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(SmiteModelTest, BetterThanNothingWorseThanGAugurShape) {
  // SMiTe should carry some signal (better than predicting 1.0 for all)
  // but its linear-additive form leaves substantial error.
  const auto& world = TestWorld::Get();
  const auto& model = TrainedBaselines::Get().smite();
  std::vector<double> predicted, ones, actual;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      predicted.push_back(
          model.PredictDegradation(m.sessions[v], CorunnersOf(m, v)));
      ones.push_back(1.0);
      actual.push_back(core::DegradationTarget(world.features(),
                                               m.sessions[v], m.fps[v]));
    }
  }
  EXPECT_LT(ml::MeanRelativeError(predicted, actual),
            ml::MeanRelativeError(ones, actual));
}

TEST(VbpModelTest, DemandDimensions) {
  const auto& vbp = TrainedBaselines::Get().vbp();
  const auto demand = vbp.Demand({0, resources::k1080p});
  EXPECT_EQ(demand.size(), VbpModel::kNumDims);
  EXPECT_EQ(VbpModel::kNumDims, 7u);  // 5 non-cache contention + 2 memories
}

TEST(VbpModelTest, EmptyColocationFeasible) {
  const auto& vbp = TrainedBaselines::Get().vbp();
  EXPECT_TRUE(vbp.Feasible({}));
}

TEST(VbpModelTest, SingleGameFeasible) {
  const auto& vbp = TrainedBaselines::Get().vbp();
  for (int id = 0; id < 100; ++id) {
    EXPECT_TRUE(vbp.Feasible({{id, resources::k1080p}})) << id;
  }
}

TEST(VbpModelTest, OverloadedColocationInfeasible) {
  // Stack one game with itself many times until some dimension overflows.
  const auto& vbp = TrainedBaselines::Get().vbp();
  core::Colocation pile;
  for (int i = 0; i < 12; ++i) {
    pile.push_back({0, resources::k1440p});
  }
  EXPECT_FALSE(vbp.Feasible(pile));
}

TEST(VbpModelTest, RemainingCapacityDecreasesWithLoad) {
  const auto& vbp = TrainedBaselines::Get().vbp();
  const double empty = vbp.RemainingCapacity({});
  const double one = vbp.RemainingCapacity({{0, resources::k1080p}});
  const double two = vbp.RemainingCapacity(
      {{0, resources::k1080p}, {1, resources::k1080p}});
  EXPECT_GT(empty, one);
  EXPECT_GT(one, two);
  EXPECT_DOUBLE_EQ(empty, static_cast<double>(VbpModel::kNumDims));
}

TEST(VbpModelTest, HigherResolutionHigherGpuDemand) {
  const auto& vbp = TrainedBaselines::Get().vbp();
  const auto lo = vbp.Demand({0, resources::k720p});
  const auto hi = vbp.Demand({0, resources::k1440p});
  // Dimension 0 is CPU (resolution-independent); GPU dims grow.
  EXPECT_DOUBLE_EQ(lo[0], hi[0]);
  EXPECT_LT(lo[3], hi[3]);  // GPU-CE dimension
}

TEST(VbpModelTest, PaperCounterexampleJudgedFeasible) {
  // §2.2: VBP accepts Dragon's Dogma + Little Witch Academia...
  const auto& world = TestWorld::Get();
  const auto& vbp = TrainedBaselines::Get().vbp();
  const core::Colocation pair{
      {world.catalog().ByName("Dragon's Dogma").id, resources::k1080p},
      {world.catalog().ByName("Little Witch Academia").id,
       resources::k1080p}};
  EXPECT_TRUE(vbp.Feasible(pair));
  // ... but the colocation actually violates 60 FPS.
  EXPECT_FALSE(world.lab().TrulyFeasible(pair, 60.0));
}

}  // namespace
}  // namespace gaugur::baselines
