// Corpus generation + training-sample construction tests.
#include <gtest/gtest.h>

#include <set>

#include "gaugur/corpus.h"
#include "gaugur/training.h"
#include "tests/pipeline/world.h"

namespace gaugur::core {
namespace {

using gaugur::testing::TestWorld;

TEST(CorpusTest, SizesMatchOptions) {
  const auto& corpus = TestWorld::Get().corpus();
  std::size_t pairs = 0, triples = 0, quads = 0;
  for (const auto& m : corpus) {
    switch (m.sessions.size()) {
      case 2: ++pairs; break;
      case 3: ++triples; break;
      case 4: ++quads; break;
      default: FAIL() << "unexpected colocation size " << m.sessions.size();
    }
  }
  EXPECT_EQ(pairs, 500u);
  EXPECT_EQ(triples, 100u);
  EXPECT_EQ(quads, 100u);
}

TEST(CorpusTest, GamesWithinColocationAreDistinct) {
  for (const auto& m : TestWorld::Get().corpus()) {
    std::set<int> ids;
    for (const auto& s : m.sessions) ids.insert(s.game_id);
    EXPECT_EQ(ids.size(), m.sessions.size());
  }
}

TEST(CorpusTest, AllColocationsFitMemory) {
  const auto& world = TestWorld::Get();
  for (const auto& m : world.corpus()) {
    EXPECT_TRUE(world.lab().FitsMemory(m.sessions));
  }
}

TEST(CorpusTest, MeasuredFpsPositiveAndPlausible) {
  for (const auto& m : TestWorld::Get().corpus()) {
    for (double fps : m.fps) {
      EXPECT_GT(fps, 0.1);
      EXPECT_LT(fps, 500.0);
    }
  }
}

TEST(CorpusTest, ResolutionsComeFromPlayerSet) {
  for (const auto& m : TestWorld::Get().corpus()) {
    for (const auto& s : m.sessions) {
      bool known = false;
      for (const auto& r : resources::kPlayerResolutions) {
        if (s.resolution == r) known = true;
      }
      EXPECT_TRUE(known) << s.resolution.ToString();
    }
  }
}

TEST(CorpusTest, DeterministicInSeed) {
  const auto& world = TestWorld::Get();
  CorpusOptions options;
  options.num_pairs = 5;
  options.num_triples = 2;
  options.num_quads = 1;
  options.seed = 7;
  const auto a = GenerateCorpus(world.lab(), options);
  const auto b = GenerateCorpus(world.lab(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sessions, b[i].sessions);
    EXPECT_EQ(a[i].fps, b[i].fps);
  }
}

TEST(CorpusTest, FixedResolutionOption) {
  const auto& world = TestWorld::Get();
  CorpusOptions options;
  options.num_pairs = 5;
  options.num_triples = 0;
  options.num_quads = 0;
  options.random_resolutions = false;
  const auto corpus = GenerateCorpus(world.lab(), options);
  for (const auto& m : corpus) {
    for (const auto& s : m.sessions) {
      EXPECT_EQ(s.resolution, resources::kReferenceResolution);
    }
  }
}

TEST(TrainingTest, RmDatasetHasKSamplesPerColocation) {
  const auto& world = TestWorld::Get();
  std::size_t expected = 0;
  for (const auto& m : world.corpus()) expected += m.sessions.size();
  const auto rm = BuildRmDataset(world.features(), world.corpus());
  EXPECT_EQ(rm.NumRows(), expected);
  EXPECT_EQ(rm.NumFeatures(), world.features().RmDim());
}

TEST(TrainingTest, RmTargetsAreDegradationRatios) {
  const auto& world = TestWorld::Get();
  const auto rm = BuildRmDataset(world.features(), world.corpus());
  for (std::size_t i = 0; i < rm.NumRows(); ++i) {
    EXPECT_GT(rm.Target(i), 0.0);
    EXPECT_LE(rm.Target(i), 1.0);
  }
}

TEST(TrainingTest, DegradationTargetMatchesDefinition) {
  const auto& world = TestWorld::Get();
  const auto& m = world.corpus()[0];
  const auto& victim = m.sessions[0];
  const double solo =
      world.features().Profile(victim.game_id).SoloFps(victim.resolution);
  EXPECT_NEAR(DegradationTarget(world.features(), victim, m.fps[0]),
              std::clamp(m.fps[0] / solo, 0.01, 1.0), 1e-12);
}

TEST(TrainingTest, CmLabelsConsistentWithQos) {
  const auto& world = TestWorld::Get();
  const auto cm = BuildCmDataset(world.features(), world.corpus(), 60.0);
  std::size_t row = 0;
  for (const auto& m : world.corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v, ++row) {
      EXPECT_DOUBLE_EQ(cm.Target(row), m.fps[v] >= 60.0 ? 1.0 : 0.0);
    }
  }
  EXPECT_EQ(row, cm.NumRows());
}

TEST(TrainingTest, CmQosFeatureIsFirstColumn) {
  const auto& world = TestWorld::Get();
  const auto cm = BuildCmDataset(world.features(), world.corpus(), 45.0);
  for (std::size_t i = 0; i < cm.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(cm.Row(i)[0], 45.0);
  }
}

TEST(TrainingTest, LowerQosNeverDecreasesPositives) {
  const auto& world = TestWorld::Get();
  const auto strict = BuildCmDataset(world.features(), world.corpus(), 60.0);
  const auto loose = BuildCmDataset(world.features(), world.corpus(), 30.0);
  double strict_pos = 0.0, loose_pos = 0.0;
  for (std::size_t i = 0; i < strict.NumRows(); ++i) {
    strict_pos += strict.Target(i);
    loose_pos += loose.Target(i);
  }
  EXPECT_GE(loose_pos, strict_pos);
  EXPECT_GT(loose_pos, 0.0);
}

TEST(TrainingTest, FeatureReferenceCoversTrainingDistribution) {
  const auto& world = TestWorld::Get();
  const auto rm = BuildRmDataset(world.features(), world.corpus());
  const auto reference = BuildFeatureReference(rm);
  ASSERT_EQ(reference.NumFeatures(), rm.NumFeatures());
  EXPECT_EQ(reference.samples, rm.NumRows());
  EXPECT_FALSE(reference.Empty());
  for (std::size_t f = 0; f < reference.NumFeatures(); ++f) {
    // Edges are strictly increasing (deduplicated quantiles).
    for (std::size_t e = 1; e < reference.edges[f].size(); ++e) {
      EXPECT_GT(reference.edges[f][e], reference.edges[f][e - 1]);
    }
    ASSERT_EQ(reference.probs[f].size(), reference.edges[f].size() + 1);
    double total = 0.0;
    for (double p : reference.probs[f]) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Re-binning the training rows through the same Bin() the monitor uses
  // online reproduces the stored proportions exactly.
  std::vector<std::vector<double>> recount(reference.NumFeatures());
  for (std::size_t f = 0; f < reference.NumFeatures(); ++f) {
    recount[f].assign(reference.probs[f].size(), 0.0);
  }
  for (std::size_t i = 0; i < rm.NumRows(); ++i) {
    const auto row = rm.Row(i);
    for (std::size_t f = 0; f < reference.NumFeatures(); ++f) {
      recount[f][reference.Bin(f, row[f])] += 1.0;
    }
  }
  for (std::size_t f = 0; f < reference.NumFeatures(); ++f) {
    for (std::size_t b = 0; b < recount[f].size(); ++b) {
      EXPECT_NEAR(recount[f][b] / static_cast<double>(rm.NumRows()),
                  reference.probs[f][b], 1e-12);
    }
  }
}

TEST(TrainingTest, FeatureReferenceCollapsesConstantColumns) {
  ml::Dataset dataset(2, {"constant", "varying"});
  for (int i = 0; i < 100; ++i) {
    const double x[] = {5.0, static_cast<double>(i)};
    dataset.Add(x, 0.0);
  }
  const auto reference = BuildFeatureReference(dataset, 4);
  // The constant column deduplicates to zero interior edges: one wide bin
  // holding all the mass.
  ASSERT_EQ(reference.edges[0].size(), 0u);
  ASSERT_EQ(reference.probs[0].size(), 1u);
  EXPECT_NEAR(reference.probs[0][0], 1.0, 1e-12);
  // The varying column keeps its 3 interior quartile edges.
  ASSERT_EQ(reference.edges[1].size(), 3u);
  for (double p : reference.probs[1]) EXPECT_NEAR(p, 0.25, 1e-12);
  EXPECT_EQ(reference.names[0], "constant");
}

TEST(TrainingTest, MultiQosReplication) {
  const auto& world = TestWorld::Get();
  const std::vector<double> grid{50.0, 60.0};
  const auto multi =
      BuildCmDatasetMultiQos(world.features(), world.corpus(), grid);
  const auto single = BuildCmDataset(world.features(), world.corpus(), 50.0);
  EXPECT_EQ(multi.NumRows(), 2 * single.NumRows());
}

}  // namespace
}  // namespace gaugur::core
