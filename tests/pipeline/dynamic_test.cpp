#include "sched/dynamic.h"

#include "sched/study.h"

#include <gtest/gtest.h>

#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using core::Colocation;
using core::SessionRequest;
using gaugur::testing::TestWorld;

std::vector<DynamicRequest> TinyTrace(int game_id = 0) {
  // Two overlapping sessions, one later one.
  return {
      {0.0, 10.0, {game_id, resources::k1080p}},
      {2.0, 10.0, {game_id, resources::k1080p}},
      {30.0, 5.0, {game_id, resources::k1080p}},
  };
}

TEST(DynamicFleetTest, DedicatedPolicyOneServerPerSession) {
  const auto& world = TestWorld::Get();
  const auto result = SimulateDynamicFleet(world.lab(), TinyTrace(),
                                           MakeDedicatedPolicy());
  EXPECT_EQ(result.sessions, 3u);
  EXPECT_EQ(result.peak_servers, 2u);  // two overlap, third is later
  EXPECT_NEAR(result.server_minutes, 25.0, 1e-9);
  EXPECT_EQ(result.violated_sessions, 0u);
}

TEST(DynamicFleetTest, AlwaysColocatePolicyPacksOverlaps) {
  const auto& world = TestWorld::Get();
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  const auto result =
      SimulateDynamicFleet(world.lab(), TinyTrace(), always);
  EXPECT_EQ(result.peak_servers, 1u);
  // Server busy [0, 12] and [30, 35].
  EXPECT_NEAR(result.server_minutes, 17.0, 1e-9);
}

TEST(DynamicFleetTest, CapacityLimitsColocation) {
  const auto& world = TestWorld::Get();
  std::vector<DynamicRequest> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back({0.0 + 0.1 * i, 20.0, {0, resources::k1080p}});
  }
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  DynamicOptions options;
  options.max_sessions_per_server = 4;
  const auto result =
      SimulateDynamicFleet(world.lab(), burst, always, options);
  EXPECT_EQ(result.peak_servers, 2u);  // 4 + 2
}

TEST(DynamicFleetTest, ViolationsDetectedForGreedyPacking) {
  // Packing four heavy games on one box must violate 60 FPS sometime.
  const auto& world = TestWorld::Get();
  std::vector<DynamicRequest> burst;
  const char* heavies[] = {"Far Cry 4", "ARK Survival Evolved",
                           "Rise of The Tomb Raider",
                           "The Witcher 3 - Wild Hunt"};
  for (int i = 0; i < 4; ++i) {
    burst.push_back({0.1 * i, 20.0,
                     {world.catalog().ByName(heavies[i]).id,
                      resources::k1080p}});
  }
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  const auto result = SimulateDynamicFleet(world.lab(), burst, always);
  EXPECT_GT(result.violated_sessions, 0u);
}

TEST(DynamicFleetTest, GroundTruthPolicyAvoidsViolations) {
  const auto& world = TestWorld::Get();
  const auto setup = SelectStudyGames(world.lab(), 8, 60.0, 3);
  const auto trace = GenerateDynamicTrace(setup.game_ids, 200.0, 0.5,
                                          25.0, 7);
  const auto oracle = MakeFirstFeasiblePolicy([&](const Colocation& c) {
    return world.lab().TrulyFeasible(c, 60.0);
  });
  const auto result = SimulateDynamicFleet(world.lab(), trace, oracle);
  // Admission checks every intermediate colocation, so at the moment of
  // each placement nothing violates; departures only relieve pressure.
  EXPECT_EQ(result.violated_sessions, 0u);
  // And colocation must beat dedicated servers on cost.
  const auto dedicated =
      SimulateDynamicFleet(world.lab(), trace, MakeDedicatedPolicy());
  EXPECT_LT(result.server_minutes, dedicated.server_minutes);
  EXPECT_EQ(dedicated.violated_sessions, 0u);
}

TEST(DynamicTraceTest, RespectsHorizonAndGames) {
  const std::vector<int> ids{3, 7, 11};
  const auto trace = GenerateDynamicTrace(ids, 100.0, 1.0, 30.0, 5);
  EXPECT_GT(trace.size(), 50u);
  EXPECT_LT(trace.size(), 200u);
  for (const auto& r : trace) {
    EXPECT_GE(r.arrival_min, 0.0);
    EXPECT_LT(r.arrival_min, 100.0);
    EXPECT_GE(r.duration_min, 2.0);
    EXPECT_TRUE(std::find(ids.begin(), ids.end(), r.session.game_id) !=
                ids.end());
  }
}

TEST(DynamicTraceTest, DeterministicInSeed) {
  const std::vector<int> ids{1, 2};
  const auto a = GenerateDynamicTrace(ids, 50.0, 0.8, 20.0, 9);
  const auto b = GenerateDynamicTrace(ids, 50.0, 0.8, 20.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_min, b[i].arrival_min);
    EXPECT_EQ(a[i].session.game_id, b[i].session.game_id);
  }
}

TEST(DynamicTraceTest, ArrivalRateRoughlyHonored) {
  const std::vector<int> ids{0};
  const auto trace = GenerateDynamicTrace(ids, 2000.0, 2.0, 30.0, 13);
  EXPECT_NEAR(static_cast<double>(trace.size()), 4000.0, 400.0);
}

}  // namespace
}  // namespace gaugur::sched
