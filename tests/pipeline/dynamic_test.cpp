#include "sched/dynamic.h"

#include "sched/study.h"

#include <gtest/gtest.h>

#include <span>

#include "gaugur/predictor.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/switch.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using core::Colocation;
using core::SessionRequest;
using gaugur::testing::TestWorld;

std::vector<DynamicRequest> TinyTrace(int game_id = 0) {
  // Two overlapping sessions, one later one.
  return {
      {0.0, 10.0, {game_id, resources::k1080p}},
      {2.0, 10.0, {game_id, resources::k1080p}},
      {30.0, 5.0, {game_id, resources::k1080p}},
  };
}

TEST(DynamicFleetTest, DedicatedPolicyOneServerPerSession) {
  const auto& world = TestWorld::Get();
  const auto result = SimulateDynamicFleet(world.lab(), TinyTrace(),
                                           MakeDedicatedPolicy());
  EXPECT_EQ(result.sessions, 3u);
  EXPECT_EQ(result.peak_servers, 2u);  // two overlap, third is later
  EXPECT_NEAR(result.server_minutes, 25.0, 1e-9);
  EXPECT_EQ(result.violated_sessions, 0u);
}

TEST(DynamicFleetTest, AlwaysColocatePolicyPacksOverlaps) {
  const auto& world = TestWorld::Get();
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  const auto result =
      SimulateDynamicFleet(world.lab(), TinyTrace(), always);
  EXPECT_EQ(result.peak_servers, 1u);
  // Server busy [0, 12] and [30, 35].
  EXPECT_NEAR(result.server_minutes, 17.0, 1e-9);
}

TEST(DynamicFleetTest, CapacityLimitsColocation) {
  const auto& world = TestWorld::Get();
  std::vector<DynamicRequest> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back({0.0 + 0.1 * i, 20.0, {0, resources::k1080p}});
  }
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  DynamicOptions options;
  options.max_sessions_per_server = 4;
  const auto result =
      SimulateDynamicFleet(world.lab(), burst, always, options);
  EXPECT_EQ(result.peak_servers, 2u);  // 4 + 2
}

TEST(DynamicFleetTest, ViolationsDetectedForGreedyPacking) {
  // Packing four heavy games on one box must violate 60 FPS sometime.
  const auto& world = TestWorld::Get();
  std::vector<DynamicRequest> burst;
  const char* heavies[] = {"Far Cry 4", "ARK Survival Evolved",
                           "Rise of The Tomb Raider",
                           "The Witcher 3 - Wild Hunt"};
  for (int i = 0; i < 4; ++i) {
    burst.push_back({0.1 * i, 20.0,
                     {world.catalog().ByName(heavies[i]).id,
                      resources::k1080p}});
  }
  const auto always = MakeFirstFeasiblePolicy(
      [](const Colocation&) { return true; });
  const auto result = SimulateDynamicFleet(world.lab(), burst, always);
  EXPECT_GT(result.violated_sessions, 0u);
}

TEST(DynamicFleetTest, GroundTruthPolicyAvoidsViolations) {
  const auto& world = TestWorld::Get();
  const auto setup = SelectStudyGames(world.lab(), 8, 60.0, 3);
  const auto trace = GenerateDynamicTrace(setup.game_ids, 200.0, 0.5,
                                          25.0, 7);
  const auto oracle = MakeFirstFeasiblePolicy([&](const Colocation& c) {
    return world.lab().TrulyFeasible(c, 60.0);
  });
  const auto result = SimulateDynamicFleet(world.lab(), trace, oracle);
  // Admission checks every intermediate colocation, so at the moment of
  // each placement nothing violates; departures only relieve pressure.
  EXPECT_EQ(result.violated_sessions, 0u);
  // And colocation must beat dedicated servers on cost.
  const auto dedicated =
      SimulateDynamicFleet(world.lab(), trace, MakeDedicatedPolicy());
  EXPECT_LT(result.server_minutes, dedicated.server_minutes);
  EXPECT_EQ(dedicated.violated_sessions, 0u);
}

TEST(DynamicFleetTest, PoweronsTrackServerTrajectories) {
  const auto& world = TestWorld::Get();
  // Dedicated policy on the tiny trace: sessions 1+2 overlap on two
  // servers, session 3 re-powers an idle one -> 3 trajectory starts.
  const auto result = SimulateDynamicFleet(world.lab(), TinyTrace(),
                                           MakeDedicatedPolicy());
  EXPECT_EQ(result.powerons, 3u);
  EXPECT_GE(result.powerons, result.peak_servers);
}

TEST(DynamicFleetTest, SchedulerMetricsConsistentWithResult) {
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  auto& registry = obs::Registry::Global();
  const obs::Snapshot before = registry.Snap();

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace = GenerateDynamicTrace(setup.game_ids, 150.0, 0.4,
                                          25.0, 11);
  const auto oracle = MakeFirstFeasiblePolicy([&](const Colocation& c) {
    return world.lab().TrulyFeasible(c, 60.0);
  });
  const auto result = SimulateDynamicFleet(world.lab(), trace, oracle);

  const obs::Snapshot after = registry.Snap();
  const auto counter_delta = [&](const char* name) -> std::uint64_t {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    return after.counters.at(name) - base;
  };

  // Every arrival is exactly one placement decision...
  EXPECT_EQ(counter_delta("sched.placements"), result.sessions);
  // ...each power-on transition starts one billed server trajectory...
  EXPECT_EQ(counter_delta("sched.powerons"), result.powerons);
  EXPECT_GE(result.powerons, result.peak_servers);
  // ...and each decision was timed.
  const auto decision_before = before.histograms.find("sched.decision_us");
  const std::uint64_t decisions_before =
      decision_before == before.histograms.end() ? 0
                                                 : decision_before->second.count;
  EXPECT_EQ(after.histograms.at("sched.decision_us").count - decisions_before,
            result.sessions);
}

TEST(DynamicFleetTest, RegistrySnapshotAfterFullRunRoundTripsJson) {
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  // A real fleet run on top of the TestWorld (whose construction already
  // exercised profiling, corpus measurement, and the simulator): the
  // resulting registry must serialize to valid JSON and round-trip the
  // documented run-report schema exactly.
  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace = GenerateDynamicTrace(setup.game_ids, 100.0, 0.4,
                                          20.0, 17);
  const auto oracle = MakeFirstFeasiblePolicy([&](const Colocation& c) {
    return world.lab().TrulyFeasible(c, 60.0);
  });
  (void)SimulateDynamicFleet(world.lab(), trace, oracle);

  obs::RunReport report = obs::RunReport::Capture("pipeline-dynamic");
  report.SetMeta("suite", "tests_pipeline");
  const std::string json = report.ToJsonString();
  const obs::JsonValue doc = obs::JsonValue::Parse(json);  // valid JSON
  EXPECT_EQ(doc.Find("schema")->AsString(), obs::kRunReportSchema);

  const obs::RunReport parsed = obs::RunReport::FromJsonString(json);
  EXPECT_TRUE(parsed.snapshot() == report.snapshot());
  // The run left real footprints in every layer it touched.
  EXPECT_GT(parsed.snapshot().counters.at("sched.placements"), 0u);
  EXPECT_GT(parsed.snapshot().counters.at("lab.true_fps_calls"), 0u);
  EXPECT_GT(parsed.snapshot().counters.at("sim.solve_calls"), 0u);
}

TEST(DynamicFleetTest, ModelMonitorJoinsPredictionsWithFleetOutcomes) {
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  auto& monitor = obs::ModelMonitor::Global();
  monitor.Reset();

  // A modest training slice keeps this test fast; fit-time feature
  // references are installed because obs is enabled during training.
  core::GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(200);
  predictor.TrainRm(slice);
  const std::vector<double> qos_grid{60.0};
  predictor.TrainCm(slice, qos_grid);
  EXPECT_FALSE(monitor.Reference(obs::ModelKind::kRm).Empty());
  EXPECT_FALSE(monitor.Reference(obs::ModelKind::kCm).Empty());

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace = GenerateDynamicTrace(setup.game_ids, 150.0, 0.5,
                                          25.0, 19);
  const auto policy = MakeFirstFeasiblePolicy([&](const Colocation& c) {
    return predictor.PredictFeasible(60.0, c);
  });
  const auto result = SimulateDynamicFleet(world.lab(), trace, policy);
  EXPECT_GT(result.sessions, 0u);

  // The predictor audited CM queries during admission and the simulator
  // observed realized FPS for every placed colocation: records joined.
  const obs::ModelMonitorSummary summary = monitor.Summary();
  EXPECT_GT(summary.cm_predictions, 0u);
  EXPECT_GT(summary.outcomes_joined, 0u);
  EXPECT_TRUE(summary.cm_drift.has_reference);
  EXPECT_GT(summary.cm_drift.online_samples, 0u);
  // Joined outcomes landed in the CM confusion matrix.
  EXPECT_GT(summary.cm_tp + summary.cm_fp + summary.cm_tn + summary.cm_fn,
            0u);

  // The run report carries the monitor section and round-trips.
  const obs::RunReport report =
      obs::RunReport::Capture("pipeline-model-monitor");
  ASSERT_TRUE(report.model_monitor().has_value());
  const obs::RunReport parsed =
      obs::RunReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(parsed.model_monitor().has_value());
  EXPECT_TRUE(*parsed.model_monitor() == *report.model_monitor());
  monitor.Reset();
}

TEST(DynamicTraceTest, RespectsHorizonAndGames) {
  const std::vector<int> ids{3, 7, 11};
  const auto trace = GenerateDynamicTrace(ids, 100.0, 1.0, 30.0, 5);
  EXPECT_GT(trace.size(), 50u);
  EXPECT_LT(trace.size(), 200u);
  for (const auto& r : trace) {
    EXPECT_GE(r.arrival_min, 0.0);
    EXPECT_LT(r.arrival_min, 100.0);
    EXPECT_GE(r.duration_min, 2.0);
    EXPECT_TRUE(std::find(ids.begin(), ids.end(), r.session.game_id) !=
                ids.end());
  }
}

TEST(DynamicTraceTest, DeterministicInSeed) {
  const std::vector<int> ids{1, 2};
  const auto a = GenerateDynamicTrace(ids, 50.0, 0.8, 20.0, 9);
  const auto b = GenerateDynamicTrace(ids, 50.0, 0.8, 20.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_min, b[i].arrival_min);
    EXPECT_EQ(a[i].session.game_id, b[i].session.game_id);
  }
}

TEST(DynamicTraceTest, ArrivalRateRoughlyHonored) {
  const std::vector<int> ids{0};
  const auto trace = GenerateDynamicTrace(ids, 2000.0, 2.0, 30.0, 13);
  EXPECT_NEAR(static_cast<double>(trace.size()), 4000.0, 400.0);
}

}  // namespace
}  // namespace gaugur::sched
