// The acceptance tests for the fleet health engine.
//
// 1. A controlled, fully local world: an injected sustained FPS deficit
//    drives the server_min_fps rule through the complete lifecycle
//    (inactive -> pending -> firing -> resolved -> inactive), the alert
//    events stream through a real TelemetrySink into sealed segments,
//    every emitted transition reconciles 1:1 with the obs.health.*
//    metrics, a registered subscriber observes every transition in
//    order, and the firing window extracted from the STREAMED events
//    joins back to the qos_violation events and decision ids it
//    overlaps — the `trace_explorer alerts` pipeline end to end.
//
// 2. A real SimulateDynamicFleet run with the default rule pack armed:
//    lifecycle alert events in the global log reconcile exactly with
//    the engine summary and the global obs.health.* counter deltas, the
//    run report captures a v4 health section that round-trips, and the
//    demo drift-ack subscriber leaves ack events for PSI firings.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/stream.h"
#include "obs/switch.h"
#include "obs/timeseries.h"
#include "sched/dynamic.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using gaugur::testing::TestWorld;
namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("gaugur_health_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// All events of a finalized sink directory, seq-sorted.
std::vector<obs::Event> StreamedEvents(const std::string& dir) {
  obs::Manifest manifest;
  EXPECT_TRUE(obs::Manifest::Load(dir, &manifest));
  std::vector<obs::Event> events;
  const auto it = manifest.streams.find(obs::kEventsStream);
  if (it == manifest.streams.end()) return events;
  for (const obs::SegmentInfo& segment : it->second.segments) {
    std::vector<obs::Event> part;
    EXPECT_TRUE(obs::EventLog::ReadJsonl(dir + "/" + segment.file, &part));
    events.insert(events.end(), part.begin(), part.end());
  }
  std::sort(events.begin(), events.end(),
            [](const obs::Event& a, const obs::Event& b) {
              return a.seq < b.seq;
            });
  return events;
}

/// Lifecycle alert events (with a from/to edge; acks have neither).
std::vector<const obs::Event*> LifecycleAlerts(
    const std::vector<obs::Event>& events) {
  std::vector<const obs::Event*> alerts;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kAlert) continue;
    if (event.fields.count("to") == 0) continue;
    alerts.push_back(&event);
  }
  return alerts;
}

TEST(HealthPipelineTest, InjectedFpsDeficitFullLifecycleThroughSink) {
  obs::EnabledScope on(true);
  // Fully local world: the engine, its sources, and the sink share the
  // same injected instances, so nothing leaks into the process globals.
  obs::Registry registry;
  obs::FleetTimeSeries timeseries;
  obs::EventLog event_log({/*shard_capacity=*/512, /*num_shards=*/2});
  obs::HealthEngine engine{obs::HealthEngineConfig{
      /*eval_min_gap_ticks=*/0.0, &registry, /*monitor=*/nullptr,
      &timeseries, &event_log}};

  obs::AlertRule rule;
  rule.name = "server_fps_deficit";
  rule.severity = "warning";
  rule.signal.kind = obs::SignalKind::kServerMinFps;
  rule.condition = obs::ConditionKind::kThreshold;
  rule.comparison = obs::Comparison::kBelow;
  rule.threshold = 60.0;
  rule.for_ticks = 2;
  rule.resolve_ticks = 2;
  engine.AddRule(rule);

  std::vector<obs::AlertTransition> seen;
  obs::SubscriptionScope sub(engine,
                             [&seen](const obs::AlertTransition& t) {
                               seen.push_back(t);
                             });

  const std::string dir = TempDir("lifecycle");
  obs::SinkConfig sink_config;
  sink_config.directory = dir;
  sink_config.event_log = &event_log;
  sink_config.timeseries = &timeseries;
  sink_config.registry = &registry;
  obs::TelemetrySink sink(sink_config);

  auto record = [&timeseries](std::size_t server, double tick, double fps) {
    obs::ServerSample sample;
    sample.tick = tick;
    sample.slots.push_back({/*game_id=*/3, fps, {}});
    timeseries.Record(server, sample);
  };

  // The injected deficit: server 0 sustains 40 FPS against the 60 FPS
  // floor. t=1 -> pending, t=2 -> firing.
  record(0, 1.0, 40.0);
  engine.Evaluate(1.0);
  record(0, 2.0, 41.0);
  engine.Evaluate(2.0);

  // While the alert fires, the fleet also logs the violations the
  // window should later join to (decision 7 placed the victim).
  const std::uint64_t decision_id = 7;
  event_log.Append(obs::EventKind::kDecision, 2.5, decision_id,
                   {{"target_server", obs::JsonValue(0)}});
  event_log.Append(obs::EventKind::kQosViolation, 3.0, decision_id,
                   {{"server", obs::JsonValue(0)},
                    {"realized_fps", obs::JsonValue(40.0)}});
  event_log.Append(obs::EventKind::kQosViolation, 3.5, decision_id,
                   {{"server", obs::JsonValue(1)},
                    {"realized_fps", obs::JsonValue(55.0)}});
  record(0, 3.0, 40.0);
  engine.Evaluate(3.0);  // still firing, no transition

  // Recovery: two clean evaluations resolve, two more close the episode.
  record(0, 4.0, 75.0);
  engine.Evaluate(4.0);
  record(0, 5.0, 80.0);
  engine.Evaluate(5.0);  // -> resolved
  record(0, 6.0, 80.0);
  engine.Evaluate(6.0);
  record(0, 7.0, 80.0);
  engine.Evaluate(7.0);  // -> inactive

  sink.Stop();

  // The subscriber observed the complete lifecycle, in emission order.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].to, obs::AlertState::kPending);
  EXPECT_EQ(seen[1].to, obs::AlertState::kFiring);
  EXPECT_EQ(seen[2].to, obs::AlertState::kResolved);
  EXPECT_EQ(seen[3].to, obs::AlertState::kInactive);
  for (const obs::AlertTransition& t : seen) {
    EXPECT_EQ(t.rule, "server_fps_deficit");
    EXPECT_EQ(t.label, "0");
  }
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1].id, seen[i].id);
  }

  // The streamed segments carry the same four transitions — and they
  // reconcile 1:1 with the obs.health.* metrics the engine bumped.
  const std::vector<obs::Event> streamed = StreamedEvents(dir);
  const std::vector<const obs::Event*> alerts = LifecycleAlerts(streamed);
  ASSERT_EQ(alerts.size(), 4u);
  EXPECT_EQ(registry.GetCounter("obs.health.transitions").Value(), 4u);
  EXPECT_EQ(registry.GetCounter("obs.health.alerts_fired").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("obs.health.alerts_resolved").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("obs.health.flaps_suppressed").Value(), 0u);
  EXPECT_EQ(registry.GetGauge("obs.health.firing").Value(), 0);
  const obs::HealthSummary summary = engine.Summary();
  EXPECT_EQ(summary.transitions, 4u);
  EXPECT_EQ(summary.alerts_fired, 1u);
  EXPECT_EQ(summary.alerts_resolved, 1u);
  EXPECT_EQ(summary.firing, 0u);

  // The trace_explorer join, against the STREAMED events: the firing
  // window [2, 5] resolves to the server-0 violation and decision 7.
  const std::vector<obs::FiringWindow> windows =
      obs::ExtractFiringWindows(streamed);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].rule, "server_fps_deficit");
  EXPECT_EQ(windows[0].server, 0);
  EXPECT_TRUE(windows[0].resolved);
  EXPECT_DOUBLE_EQ(windows[0].fired_tick, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].resolved_tick, 5.0);

  const obs::FiringWindowJoin join =
      obs::JoinFiringWindow(windows[0], streamed);
  ASSERT_EQ(join.violation_seqs.size(), 1u);  // server 1's is excluded
  EXPECT_EQ(join.decision_ids,
            (std::vector<std::uint64_t>{decision_id}));

  fs::remove_all(dir);
}

TEST(HealthPipelineTest, DefaultPackOnFleetRunReconcilesWithEventStream) {
  obs::EnabledScope on(true);
  obs::EventLog& log = obs::EventLog::Global();
  obs::FleetTimeSeries& ts = obs::FleetTimeSeries::Global();
  obs::ModelMonitor& monitor = obs::ModelMonitor::Global();
  obs::HealthEngine& engine = obs::HealthEngine::Global();
  log.Clear();
  ts.Clear();
  monitor.Reset();
  engine.Reset();
  // Whatever happens below, later tests must not see an armed engine.
  struct EngineGuard {
    ~EngineGuard() { obs::HealthEngine::Global().Reset(); }
  } guard;

  engine.InstallDefaultRules(/*qos_fps=*/60.0);
  std::vector<std::uint64_t> observed_ids;
  obs::SubscriptionScope sub(
      engine, [&observed_ids](const obs::AlertTransition& t) {
        observed_ids.push_back(t.id);
      });
  const obs::Snapshot before = obs::Registry::Global().Snap();
  auto counter_delta = [&before](const obs::Snapshot& after,
                                 const std::string& name) {
    const auto now = after.counters.find(name);
    const auto then = before.counters.find(name);
    return (now != after.counters.end() ? now->second : 0) -
           (then != before.counters.end() ? then->second : 0);
  };

  const auto& world = TestWorld::Get();
  core::GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(200);
  const std::vector<double> qos_grid{60.0};
  predictor.TrainRm(slice);
  predictor.TrainCm(slice, qos_grid);

  // The same deliberately hot trace the provenance test chases: enough
  // sustained deficits for the default pack to fire.
  const auto setup = SelectStudyGames(world.lab(), 8, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 200.0, 0.6, 25.0, 23);
  const auto result = SimulateDynamicFleet(
      world.lab(), trace, MakeProvenancePolicy(predictor, 60.0));
  EXPECT_GT(result.sessions, 0u);

  const obs::HealthSummary summary = engine.Summary();
  EXPECT_GT(summary.evaluations, 0u);
  ASSERT_GT(summary.alerts_fired, 0u)
      << "hot trace produced no alerts; the default pack is inert";

  // Every emitted transition reached the subscriber, in order.
  EXPECT_EQ(observed_ids.size(), summary.transitions);
  for (std::size_t i = 1; i < observed_ids.size(); ++i) {
    EXPECT_LT(observed_ids[i - 1], observed_ids[i]);
  }

  // ...and the event stream: lifecycle alert events reconcile 1:1 with
  // the summary and with the global obs.health.* counter deltas.
  const std::vector<obs::Event> events = log.Snapshot();
  EXPECT_EQ(log.TotalDropped(), 0u);
  const std::vector<const obs::Event*> alerts = LifecycleAlerts(events);
  EXPECT_EQ(alerts.size(), summary.transitions);
  std::size_t fired = 0, resolved = 0, acks = 0;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kAlert) continue;
    if (event.fields.count("action")) {
      ++acks;
      continue;
    }
    const std::string to = event.fields.at("to").AsString();
    if (to == "firing") ++fired;
    if (to == "resolved") ++resolved;
  }
  EXPECT_EQ(fired, summary.alerts_fired);
  EXPECT_EQ(resolved, summary.alerts_resolved);
  const obs::Snapshot after = obs::Registry::Global().Snap();
  EXPECT_EQ(counter_delta(after, "obs.health.evaluations"),
            summary.evaluations);
  EXPECT_EQ(counter_delta(after, "obs.health.transitions"),
            summary.transitions);
  EXPECT_EQ(counter_delta(after, "obs.health.alerts_fired"),
            summary.alerts_fired);
  EXPECT_EQ(counter_delta(after, "obs.health.alerts_resolved"),
            summary.alerts_resolved);

  // The demo subscriber acknowledged PSI-drift firings into the log.
  std::size_t psi_firings = 0;
  for (const obs::Event* alert : alerts) {
    if (alert->fields.at("to").AsString() == "firing" &&
        alert->fields.at("signal").AsString() == "monitor_psi") {
      ++psi_firings;
    }
  }
  EXPECT_EQ(acks, psi_firings);

  // The offline join holds on the real run: every window's violations
  // lie inside the window, on the window's server when labeled, and
  // trace back to decisions that exist in the log.
  std::set<std::uint64_t> decision_ids;
  std::map<std::uint64_t, const obs::Event*> violations_by_seq;
  for (const obs::Event& event : events) {
    if (event.kind == obs::EventKind::kDecision) {
      decision_ids.insert(event.decision_id);
    } else if (event.kind == obs::EventKind::kQosViolation) {
      violations_by_seq[event.seq] = &event;
    }
  }
  const std::vector<obs::FiringWindow> windows =
      obs::ExtractFiringWindows(events);
  ASSERT_FALSE(windows.empty());
  std::size_t joined = 0;
  for (const obs::FiringWindow& window : windows) {
    const obs::FiringWindowJoin join = obs::JoinFiringWindow(window, events);
    joined += join.violation_seqs.size();
    for (const std::uint64_t seq : join.violation_seqs) {
      const auto it = violations_by_seq.find(seq);
      ASSERT_NE(it, violations_by_seq.end());
      EXPECT_GE(it->second->tick, window.fired_tick);
      EXPECT_LE(it->second->tick, window.resolved_tick);
      if (window.server >= 0) {
        EXPECT_EQ(static_cast<long long>(
                      it->second->fields.at("server").AsNumber()),
                  window.server);
      }
    }
    for (const std::uint64_t id : join.decision_ids) {
      EXPECT_TRUE(decision_ids.count(id)) << "joined decision " << id;
    }
  }
  EXPECT_GT(joined, 0u) << "no firing window overlapped any violation";

  // The run report carries the v4 health section and round-trips it.
  const obs::RunReport report = obs::RunReport::Capture("health-pipeline");
  ASSERT_TRUE(report.health().has_value());
  EXPECT_EQ(report.health()->alerts_fired, summary.alerts_fired);
  const obs::RunReport parsed =
      obs::RunReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(parsed.health().has_value());
  EXPECT_EQ(*parsed.health(), *report.health());

  log.Clear();
  ts.Clear();
  monitor.Reset();
}

}  // namespace
}  // namespace gaugur::sched
