#include "gaugur/predictor.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/pipeline/world.h"

namespace gaugur::core {
namespace {

using gaugur::testing::TestWorld;

/// One trained predictor shared by the tests in this file.
const GAugurPredictor& TrainedPredictor() {
  static const GAugurPredictor* predictor = [] {
    const auto& world = TestWorld::Get();
    auto* p = new GAugurPredictor(world.features());
    p->TrainRm(world.corpus());
    const std::vector<double> qos_grid{50.0, 60.0};
    p->TrainCm(world.corpus(), qos_grid);
    return p;
  }();
  return *predictor;
}

std::vector<SessionRequest> CorunnersOf(const MeasuredColocation& m,
                                        std::size_t victim) {
  std::vector<SessionRequest> corunners;
  for (std::size_t j = 0; j < m.sessions.size(); ++j) {
    if (j != victim) corunners.push_back(m.sessions[j]);
  }
  return corunners;
}

TEST(PredictorTest, UntrainedThrows) {
  const GAugurPredictor fresh(TestWorld::Get().features());
  EXPECT_FALSE(fresh.HasRm());
  const std::vector<SessionRequest> corunners{{1, resources::k1080p}};
  EXPECT_THROW(
      fresh.PredictDegradation({0, resources::k1080p}, corunners),
      std::logic_error);
}

TEST(PredictorTest, DegradationInUnitRange) {
  const auto& predictor = TrainedPredictor();
  const auto& test = TestWorld::Get().test_corpus();
  for (const auto& m : test) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const double d =
          predictor.PredictDegradation(m.sessions[v], CorunnersOf(m, v));
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(PredictorTest, HeldOutRegressionErrorIsSmall) {
  const auto& world = TestWorld::Get();
  const auto& predictor = TrainedPredictor();
  std::vector<double> predicted, actual;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      predicted.push_back(
          predictor.PredictDegradation(m.sessions[v], CorunnersOf(m, v)));
      actual.push_back(
          DegradationTarget(world.features(), m.sessions[v], m.fps[v]));
    }
  }
  // The paper reaches 7.9% with 1000 samples; our fixture's ~1700-sample
  // corpus lands near 10%, far below the ~20%+ the baselines produce.
  EXPECT_LT(ml::MeanRelativeError(predicted, actual), 0.13);
}

TEST(PredictorTest, HeldOutClassificationAccuracyIsHigh) {
  const auto& world = TestWorld::Get();
  const auto& predictor = TrainedPredictor();
  std::size_t correct = 0, total = 0;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const bool predicted =
          predictor.PredictQosOk(60.0, m.sessions[v], CorunnersOf(m, v));
      const bool truth = m.fps[v] >= 60.0;
      correct += predicted == truth ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.90);
}

TEST(PredictorTest, PredictFpsIsDegradationTimesSolo) {
  const auto& world = TestWorld::Get();
  const auto& predictor = TrainedPredictor();
  const auto& m = world.test_corpus()[0];
  const auto corunners = CorunnersOf(m, 0);
  const double degradation =
      predictor.PredictDegradation(m.sessions[0], corunners);
  const double solo = world.features()
                          .Profile(m.sessions[0].game_id)
                          .SoloFps(m.sessions[0].resolution);
  EXPECT_NEAR(predictor.PredictFps(m.sessions[0], corunners),
              degradation * solo, 1e-9);
}

TEST(PredictorTest, FeasibleImpliesEverySessionOk) {
  const auto& predictor = TrainedPredictor();
  for (const auto& m : TestWorld::Get().test_corpus()) {
    const bool feasible = predictor.PredictFeasible(60.0, m.sessions);
    bool all_ok = true;
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      all_ok = all_ok &&
               predictor.PredictQosOk(60.0, m.sessions[v], CorunnersOf(m, v));
    }
    EXPECT_EQ(feasible, all_ok);
  }
}

TEST(PredictorTest, MemoryOverflowIsInfeasible) {
  const auto& world = TestWorld::Get();
  const auto& predictor = TrainedPredictor();
  // Stack enough heavy-memory games to exceed the server's RAM.
  Colocation heavy;
  double cpu_mem = 0.0;
  for (std::size_t id = 0; id < world.features().NumGames() &&
                            heavy.size() < 4;
       ++id) {
    const auto& profile = world.features().Profile(static_cast<int>(id));
    if (profile.cpu_memory > 0.35) {
      heavy.push_back({static_cast<int>(id), resources::k1080p});
      cpu_mem += profile.cpu_memory;
    }
  }
  if (cpu_mem > 1.0) {
    EXPECT_FALSE(predictor.PredictFeasible(1.0, heavy));
  } else {
    GTEST_SKIP() << "catalog draw lacks enough memory-heavy games";
  }
}

TEST(PredictorTest, RmFallbackForUntrainedCmQos) {
  // The CM was trained for Q in {50, 60}; it still answers any Q because
  // Q is an input feature. Check consistency against the RM threshold at
  // a Q inside the trained range.
  const auto& world = TestWorld::Get();
  const auto& predictor = TrainedPredictor();
  std::size_t agree = 0, total = 0;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const auto corunners = CorunnersOf(m, v);
      const bool cm = predictor.PredictQosOk(55.0, m.sessions[v], corunners);
      const bool rm = predictor.PredictFps(m.sessions[v], corunners) >= 55.0;
      agree += cm == rm ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.8);
}

TEST(PredictorTest, AlternativeAlgorithmsTrainable) {
  const auto& world = TestWorld::Get();
  PredictorConfig config;
  config.rm_algorithm = "DTR";
  config.cm_algorithm = "DTC";
  GAugurPredictor predictor(world.features(), config);
  predictor.TrainRm(world.corpus());
  EXPECT_TRUE(predictor.HasRm());
  const auto& m = world.test_corpus()[0];
  const double d =
      predictor.PredictDegradation(m.sessions[0], CorunnersOf(m, 0));
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

}  // namespace
}  // namespace gaugur::core
