#include "gaugur/features.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/pipeline/world.h"

namespace gaugur::core {
namespace {

using gaugur::testing::TestWorld;
using resources::Resource;

SessionRequest At1080(int id) {
  return SessionRequest{id, resources::k1080p};
}

TEST(FeatureBuilderTest, DimensionsMatchPaperFormulas) {
  const auto& features = TestWorld::Get().features();
  // 7 curves x 11 points + 9 victim-side features + (1 + 2 * 7)
  // aggregate features.
  EXPECT_EQ(features.RmDim(), 7u * 11u + 9u + 15u);
  EXPECT_EQ(features.CmDim(), features.RmDim() + 2u);
  EXPECT_EQ(features.CurvePoints(), 11u);
}

TEST(FeatureBuilderTest, FeatureNamesMatchDims) {
  const auto& features = TestWorld::Get().features();
  EXPECT_EQ(features.RmFeatureNames().size(), features.RmDim());
  EXPECT_EQ(features.CmFeatureNames().size(), features.CmDim());
  EXPECT_EQ(features.CmFeatureNames()[0], "qos_fps");
  EXPECT_EQ(features.CmFeatureNames()[1], "solo_fps");
}

TEST(FeatureBuilderTest, RmFeaturesStartWithSensitivityCurves) {
  const auto& features = TestWorld::Get().features();
  const std::vector<SessionRequest> corunners{At1080(1)};
  const auto x = features.RmFeatures(At1080(0), corunners);
  ASSERT_EQ(x.size(), features.RmDim());
  const auto& profile = features.Profile(0);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_DOUBLE_EQ(x[i],
                     profile.Sensitivity(Resource::kCpuCore).degradation[i]);
  }
}

TEST(FeatureBuilderTest, CmFeaturesPrependQosAndSolo) {
  const auto& features = TestWorld::Get().features();
  const std::vector<SessionRequest> corunners{At1080(2)};
  const auto cm = features.CmFeatures(60.0, At1080(0), corunners);
  const auto rm = features.RmFeatures(At1080(0), corunners);
  ASSERT_EQ(cm.size(), rm.size() + 2);
  EXPECT_DOUBLE_EQ(cm[0], 60.0);
  EXPECT_DOUBLE_EQ(cm[1], features.Profile(0).SoloFps(resources::k1080p));
  for (std::size_t i = 0; i < rm.size(); ++i) {
    EXPECT_DOUBLE_EQ(cm[i + 2], rm[i]);
  }
}

TEST(AggregateIntensityTest, GroupSizeRecorded) {
  const auto& features = TestWorld::Get().features();
  for (std::size_t k = 0; k <= 3; ++k) {
    std::vector<SessionRequest> corunners;
    for (std::size_t i = 0; i < k; ++i) {
      corunners.push_back(At1080(static_cast<int>(i + 1)));
    }
    EXPECT_DOUBLE_EQ(features.Aggregate(corunners).group_size,
                     static_cast<double>(k));
  }
}

TEST(AggregateIntensityTest, SingleCorunnerMeanIsItsIntensity) {
  const auto& features = TestWorld::Get().features();
  const std::vector<SessionRequest> corunners{At1080(5)};
  const auto agg = features.Aggregate(corunners);
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(agg.mean[r],
                     features.Profile(5).IntensityAt(r, resources::k1080p));
    EXPECT_DOUBLE_EQ(agg.dispersion[r], 0.0);
  }
}

TEST(AggregateIntensityTest, PaperDispersionFormula) {
  // var_r = (1/|G|) * sqrt(sum of squared deviations) per Eq. 5.
  const auto& features = TestWorld::Get().features();
  const std::vector<SessionRequest> corunners{At1080(1), At1080(2)};
  const auto agg = features.Aggregate(corunners);
  for (Resource r : resources::kAllResources) {
    const double i1 = features.Profile(1).IntensityAt(r, resources::k1080p);
    const double i2 = features.Profile(2).IntensityAt(r, resources::k1080p);
    const double mean = (i1 + i2) / 2.0;
    const double expected =
        std::sqrt((i1 - mean) * (i1 - mean) + (i2 - mean) * (i2 - mean)) /
        2.0;
    EXPECT_NEAR(agg.dispersion[r], expected, 1e-12);
    EXPECT_NEAR(agg.mean[r], mean, 1e-12);
  }
}

TEST(AggregateIntensityTest, PermutationInvariant) {
  const auto& features = TestWorld::Get().features();
  const std::vector<SessionRequest> ab{At1080(1), At1080(2), At1080(3)};
  const std::vector<SessionRequest> ba{At1080(3), At1080(1), At1080(2)};
  const auto x = features.RmFeatures(At1080(0), ab);
  const auto y = features.RmFeatures(At1080(0), ba);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], y[i]) << i;
  }
}

TEST(AggregateIntensityTest, FixedSizeForAnyGroup) {
  // The whole point of the Eq. 5 transform: 2, 3 and 4 co-runners all map
  // to the same feature dimensionality.
  const auto& features = TestWorld::Get().features();
  for (std::size_t k : {1u, 2u, 3u}) {
    std::vector<SessionRequest> corunners;
    for (std::size_t i = 0; i < k; ++i) {
      corunners.push_back(At1080(static_cast<int>(i + 10)));
    }
    EXPECT_EQ(features.RmFeatures(At1080(0), corunners).size(),
              features.RmDim());
  }
}

TEST(AggregateIntensityTest, ResolutionAffectsCorunnerIntensity) {
  const auto& features = TestWorld::Get().features();
  // Pick a co-runner with meaningful GPU intensity.
  int heavy = -1;
  for (std::size_t id = 0; id < features.NumGames(); ++id) {
    if (features.Profile(static_cast<int>(id))
            .intensity_ref[Resource::kGpuCore] > 0.3) {
      heavy = static_cast<int>(id);
      break;
    }
  }
  ASSERT_GE(heavy, 0);
  const std::vector<SessionRequest> lo{{heavy, resources::k720p}};
  const std::vector<SessionRequest> hi{{heavy, resources::k1440p}};
  EXPECT_LT(features.Aggregate(lo).mean[Resource::kGpuCore],
            features.Aggregate(hi).mean[Resource::kGpuCore]);
}

TEST(FeatureBuilderTest, ProfileLookupValidatesIds) {
  const auto& features = TestWorld::Get().features();
  EXPECT_THROW(features.Profile(-1), std::logic_error);
  EXPECT_THROW(features.Profile(static_cast<int>(features.NumGames())),
               std::logic_error);
}

TEST(ColocationKeyTest, OrderInsensitive) {
  const Colocation a{At1080(1), At1080(2)};
  const Colocation b{At1080(2), At1080(1)};
  EXPECT_EQ(ColocationKey(a), ColocationKey(b));
}

TEST(ColocationKeyTest, ResolutionSensitive) {
  const Colocation a{{1, resources::k1080p}};
  const Colocation b{{1, resources::k720p}};
  EXPECT_NE(ColocationKey(a), ColocationKey(b));
}

TEST(ColocationKeyTest, MultisetsDistinguished) {
  const Colocation one{At1080(1)};
  const Colocation two{At1080(1), At1080(1)};
  EXPECT_NE(ColocationKey(one), ColocationKey(two));
}

}  // namespace
}  // namespace gaugur::core
