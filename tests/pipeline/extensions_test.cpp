// Tests for the §7/§8 extensions: profile persistence, the hardware
// encoder footprint, frame-time statistics, interaction-delay prediction,
// and heterogeneous-server behavior.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "gamesim/encoder.h"
#include "gaugur/delay.h"
#include "profiling/profile_io.h"
#include "tests/pipeline/world.h"

namespace gaugur {
namespace {

using core::SessionRequest;
using gaugur::testing::TestWorld;
using resources::Resource;

// ---- Profile persistence.

TEST(ProfileIoTest, SingleProfileRoundTrip) {
  const auto& world = TestWorld::Get();
  const auto& original = world.features().Profile(3);
  std::stringstream stream;
  profiling::SaveProfile(stream, original);
  const auto loaded = profiling::LoadProfile(stream);

  EXPECT_EQ(loaded.game_id, original.game_id);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_DOUBLE_EQ(loaded.solo_fps_ref, original.solo_fps_ref);
  EXPECT_EQ(loaded.solo_fps_points, original.solo_fps_points);
  for (Resource r : resources::kAllResources) {
    EXPECT_EQ(loaded.Sensitivity(r).degradation,
              original.Sensitivity(r).degradation);
    EXPECT_DOUBLE_EQ(loaded.intensity_ref[r], original.intensity_ref[r]);
    EXPECT_DOUBLE_EQ(loaded.intensity_model[r].slope,
                     original.intensity_model[r].slope);
    EXPECT_DOUBLE_EQ(loaded.solo_utilization[r],
                     original.solo_utilization[r]);
  }
  EXPECT_DOUBLE_EQ(loaded.cpu_memory, original.cpu_memory);
  EXPECT_DOUBLE_EQ(loaded.gpu_memory, original.gpu_memory);
}

TEST(ProfileIoTest, DerivedQuantitiesSurviveRoundTrip) {
  const auto& world = TestWorld::Get();
  const auto& original = world.features().Profile(10);
  std::stringstream stream;
  profiling::SaveProfile(stream, original);
  const auto loaded = profiling::LoadProfile(stream);
  for (const auto& res :
       {resources::k720p, resources::k900p, resources::k1440p}) {
    EXPECT_DOUBLE_EQ(loaded.SoloFps(res), original.SoloFps(res));
    EXPECT_DOUBLE_EQ(loaded.IntensityAt(Resource::kGpuCore, res),
                     original.IntensityAt(Resource::kGpuCore, res));
  }
}

TEST(ProfileIoTest, CatalogFileRoundTrip) {
  const auto& world = TestWorld::Get();
  std::vector<profiling::GameProfile> originals;
  for (int id = 0; id < 5; ++id) {
    originals.push_back(world.features().Profile(id));
  }
  const std::string path = "/tmp/gaugur_profiles_test.txt";
  ASSERT_TRUE(profiling::SaveProfilesToFile(path, originals));
  const auto loaded = profiling::LoadProfilesFromFile(path);
  ASSERT_EQ(loaded.size(), originals.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].name, originals[i].name);
    EXPECT_DOUBLE_EQ(loaded[i].solo_fps_ref, originals[i].solo_fps_ref);
  }
  std::remove(path.c_str());
}

TEST(ProfileIoTest, NamesWithSpacesSurvive) {
  const auto& world = TestWorld::Get();
  // "The Witcher 3 - Wild Hunt" has spaces and punctuation.
  const auto& original = world.features().Profile(
      world.catalog().ByName("The Witcher 3 - Wild Hunt").id);
  std::stringstream stream;
  profiling::SaveProfile(stream, original);
  EXPECT_EQ(profiling::LoadProfile(stream).name, original.name);
}

TEST(ProfileIoTest, CorruptStreamRejected) {
  std::stringstream garbage("nonsense 1 2 3\n");
  EXPECT_THROW(profiling::LoadProfile(garbage), std::logic_error);
}

// ---- Hardware encoder footprint.

TEST(EncoderTest, AddsExpectedOccupancies) {
  gamesim::WorkloadProfile w;
  const auto before = w.occupancy;
  gamesim::AttachHardwareEncoder(w, resources::k1080p);
  EXPECT_GT(w.occupancy[Resource::kGpuBw], before[Resource::kGpuBw]);
  EXPECT_GT(w.occupancy[Resource::kPcieBw], before[Resource::kPcieBw]);
  EXPECT_GT(w.occupancy[Resource::kCpuCore], before[Resource::kCpuCore]);
  // The encoder block does not consume shader compute.
  EXPECT_DOUBLE_EQ(w.occupancy[Resource::kGpuCore],
                   before[Resource::kGpuCore]);
}

TEST(EncoderTest, FootprintScalesWithPixels) {
  gamesim::WorkloadProfile lo, hi;
  gamesim::AttachHardwareEncoder(lo, resources::k720p);
  gamesim::AttachHardwareEncoder(hi, resources::k1440p);
  EXPECT_LT(lo.occupancy[Resource::kGpuBw], hi.occupancy[Resource::kGpuBw]);
}

TEST(EncoderTest, ImpactOnColocatedFpsIsInsignificant) {
  // Paper §7: hardware encoding "would generate insignificant impact on
  // game performance". Compare a colocation with and without encoders.
  const auto& world = TestWorld::Get();
  const core::ColocationLab plain(world.catalog(), world.server());
  core::LabOptions options;
  options.include_encoders = true;
  const core::ColocationLab encoding(world.catalog(), world.server(),
                                     options);
  const core::Colocation colocation = {
      {world.catalog().ByName("Far Cry 4").id, resources::k1080p},
      {world.catalog().ByName("Dota2").id, resources::k1080p},
      {world.catalog().ByName("World of Warcraft").id, resources::k1080p}};
  const auto without = plain.TrueFps(colocation);
  const auto with = encoding.TrueFps(colocation);
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_LE(with[i], without[i] + 1e-9);
    EXPECT_GT(with[i], without[i] * 0.95) << "encoder cost above 5%";
  }
}

// ---- Frame-time statistics.

TEST(FrameTimeTest, StatsAreOrdered) {
  const auto& world = TestWorld::Get();
  const core::Colocation colocation = {
      {0, resources::k1080p}, {20, resources::k1080p}};
  const auto stats = world.lab().MeasureFrameTimes(colocation, 5);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_GT(s.mean_ms, 0.0);
    EXPECT_GE(s.p95_ms, s.mean_ms * 0.9);
    EXPECT_GE(s.max_ms, s.p95_ms);
  }
}

TEST(FrameTimeTest, ColocationInflatesTailDelay) {
  const auto& world = TestWorld::Get();
  const SessionRequest heavy{
      world.catalog().ByName("Far Cry 4").id, resources::k1080p};
  const SessionRequest rival{
      world.catalog().ByName("ARK Survival Evolved").id, resources::k1080p};
  const auto solo = world.lab().MeasureFrameTimes({heavy}, 7);
  const auto paired = world.lab().MeasureFrameTimes({heavy, rival}, 7);
  EXPECT_GT(paired[0].p95_ms, solo[0].p95_ms);
}

TEST(FrameTimeTest, DeterministicInSeed) {
  const auto& world = TestWorld::Get();
  const core::Colocation colocation = {{3, resources::k1080p}};
  const auto a = world.lab().MeasureFrameTimes(colocation, 11);
  const auto b = world.lab().MeasureFrameTimes(colocation, 11);
  EXPECT_DOUBLE_EQ(a[0].p95_ms, b[0].p95_ms);
}

// ---- Interaction-delay prediction.

class DelayPredictorTest : public ::testing::Test {
 protected:
  static const core::DelayPredictor& Trained() {
    static const core::DelayPredictor* predictor = [] {
      const auto& world = TestWorld::Get();
      auto* p = new core::DelayPredictor(world.features());
      // Train on a slice of the corpus; delay measurement simulates 240
      // frames per colocation, so keep the slice moderate.
      const std::vector<core::MeasuredColocation> slice(
          world.corpus().begin(), world.corpus().begin() + 250);
      p->Train(world.lab(), slice);
      return p;
    }();
    return *predictor;
  }
};

TEST_F(DelayPredictorTest, UntrainedThrows) {
  const core::DelayPredictor fresh(TestWorld::Get().features());
  const std::vector<SessionRequest> corunners{{1, resources::k1080p}};
  EXPECT_THROW(
      fresh.PredictP95DelayMs({0, resources::k1080p}, corunners),
      std::logic_error);
}

TEST_F(DelayPredictorTest, HeldOutTailDelayError) {
  const auto& world = TestWorld::Get();
  const auto& predictor = Trained();
  double err_sum = 0.0;
  std::size_t n = 0;
  common::Rng rng(3);
  for (std::size_t c = 0; c < 40; ++c) {
    const auto& m = world.test_corpus()[c];
    const auto actual = world.lab().MeasureFrameTimes(m.sessions, rng.Next());
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      std::vector<SessionRequest> corunners;
      for (std::size_t j = 0; j < m.sessions.size(); ++j) {
        if (j != v) corunners.push_back(m.sessions[j]);
      }
      const double predicted =
          predictor.PredictP95DelayMs(m.sessions[v], corunners);
      err_sum += std::abs(predicted - actual[v].p95_ms) / actual[v].p95_ms;
      ++n;
    }
  }
  EXPECT_LT(err_sum / static_cast<double>(n), 0.25);
}

TEST_F(DelayPredictorTest, DelayBudgetThreshold) {
  const auto& predictor = Trained();
  const SessionRequest victim{0, resources::k1080p};
  const std::vector<SessionRequest> corunners{{1, resources::k1080p}};
  const double p95 = predictor.PredictP95DelayMs(victim, corunners);
  EXPECT_TRUE(predictor.PredictDelayOk(p95 + 1.0, victim, corunners));
  EXPECT_FALSE(predictor.PredictDelayOk(p95 - 1.0, victim, corunners));
}

// ---- Heterogeneous servers (paper future work).

TEST(HeterogeneousServerTest, BiggerGpuLessDegradation) {
  const auto& world = TestWorld::Get();
  resources::ServerSpec big = resources::ServerSpec::Default();
  big.capacity[Resource::kGpuCore] = 1.5;
  big.capacity[Resource::kGpuBw] = 1.5;
  big.capacity[Resource::kGpuL2] = 1.5;
  const gamesim::ServerSim big_server(big);
  const core::ColocationLab big_lab(world.catalog(), big_server);

  const core::Colocation colocation = {
      {world.catalog().ByName("Far Cry 4").id, resources::k1080p},
      {world.catalog().ByName("Rise of The Tomb Raider").id,
       resources::k1080p}};
  const auto small_fps = world.lab().TrueFps(colocation);
  const auto big_fps = big_lab.TrueFps(colocation);
  // Per-game FPS need not be monotone (a relieved rival presses harder on
  // the CPU side), but total delivered throughput must improve.
  EXPECT_GT(big_fps[0] + big_fps[1], (small_fps[0] + small_fps[1]) * 1.02);
}

}  // namespace
}  // namespace gaugur
