#include "profiling/profiler.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "tests/pipeline/world.h"

namespace gaugur::profiling {
namespace {

using gaugur::testing::TestWorld;
using resources::Resource;

const GameProfile& ProfileOf(const char* name) {
  const auto& world = TestWorld::Get();
  return world.features().Profile(world.catalog().ByName(name).id);
}

TEST(ProfilerTest, AllGamesProfiled) {
  const auto& world = TestWorld::Get();
  EXPECT_EQ(world.features().NumGames(), world.catalog().size());
}

TEST(ProfilerTest, SensitivityCurvesHaveGridSize) {
  const auto& profile = ProfileOf("Dota2");
  for (const auto& curve : profile.sensitivity) {
    EXPECT_EQ(curve.degradation.size(), 11u);  // k = 10
  }
}

TEST(ProfilerTest, SensitivityStartsNearOne) {
  // Zero benchmark pressure must leave the game essentially unharmed.
  const auto& world = TestWorld::Get();
  for (const auto& game : world.catalog().games()) {
    const auto& profile = world.features().Profile(game.id);
    for (Resource r : resources::kAllResources) {
      EXPECT_GT(profile.Sensitivity(r).degradation.front(), 0.93)
          << game.name << " " << resources::Name(r);
    }
  }
}

TEST(ProfilerTest, SensitivityBoundedAndRoughlyMonotone) {
  const auto& world = TestWorld::Get();
  for (const auto& game : world.catalog().games()) {
    const auto& profile = world.features().Profile(game.id);
    for (Resource r : resources::kAllResources) {
      const auto& curve = profile.Sensitivity(r).degradation;
      for (std::size_t i = 0; i < curve.size(); ++i) {
        EXPECT_GT(curve[i], 0.0);
        EXPECT_LE(curve[i], 1.0);
        // Measurement noise allows tiny upticks, nothing more.
        if (i > 0) {
          EXPECT_LT(curve[i], curve[i - 1] + 0.05)
              << game.name << " " << resources::Name(r) << " point " << i;
        }
      }
    }
  }
}

TEST(ProfilerTest, IntensityNonNegativeAndBounded) {
  const auto& world = TestWorld::Get();
  for (const auto& game : world.catalog().games()) {
    const auto& profile = world.features().Profile(game.id);
    for (Resource r : resources::kAllResources) {
      EXPECT_GE(profile.intensity_ref[r], 0.0) << game.name;
      EXPECT_LT(profile.intensity_ref[r], 2.0) << game.name;
    }
  }
}

TEST(ProfilerTest, SoloFpsModelInterpolatesThirdResolution) {
  // Eq. 2 fit from 1080p + 720p must predict 900p well for a GPU-bound
  // game (exactly linear in the simulator).
  const auto& world = TestWorld::Get();
  const auto& game = world.catalog().ByName("Far Cry 4");
  const auto& profile = world.features().Profile(game.id);
  const double predicted = profile.SoloFps(resources::k900p);
  const double actual = game.SoloFps(resources::k900p);
  EXPECT_NEAR(predicted, actual, actual * 0.05);
}

TEST(ProfilerTest, SoloFpsModelHasNegativeSlopeForGpuBound) {
  const auto& profile = ProfileOf("Far Cry 4");
  EXPECT_LT(profile.solo_fps_model.slope, 0.0);
}

TEST(ProfilerTest, Observation7CpuIntensityResolutionFlat) {
  const auto& world = TestWorld::Get();
  int checked = 0;
  for (const auto& game : world.catalog().games()) {
    const auto& profile = world.features().Profile(game.id);
    for (Resource r :
         {Resource::kCpuCore, Resource::kLlc, Resource::kMemBw}) {
      const double at_720 = profile.IntensityAt(r, resources::k720p);
      const double at_1440 = profile.IntensityAt(r, resources::k1440p);
      // CPU-side intensity barely moves with resolution.
      EXPECT_NEAR(at_720, at_1440, 0.15) << game.name;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ProfilerTest, Observation8GpuIntensityGrowsWithPixels) {
  const auto& world = TestWorld::Get();
  int grew = 0, total = 0;
  for (const auto& game : world.catalog().games()) {
    const auto& profile = world.features().Profile(game.id);
    for (Resource r : {Resource::kGpuCore, Resource::kGpuBw,
                       Resource::kGpuL2, Resource::kPcieBw}) {
      if (profile.intensity_ref[r] < 0.05) continue;  // too faint to judge
      ++total;
      if (profile.IntensityAt(r, resources::k1440p) >
          profile.IntensityAt(r, resources::k720p)) {
        ++grew;
      }
    }
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(grew) / total, 0.9);
}

TEST(ProfilerTest, Observation6SensitivityResolutionInvariant) {
  // Profile one game at a different primary resolution; curves should be
  // close to the reference-resolution curves.
  const auto& world = TestWorld::Get();
  const auto& game = world.catalog().ByName("Dota2");
  ProfilerOptions options;
  options.primary_res = resources::k900p;
  options.secondary_res = resources::k720p;
  const Profiler profiler(world.server(), options);
  const GameProfile at_1440 = profiler.ProfileGame(game);
  const auto& at_ref = world.features().Profile(game.id);
  double max_gap = 0.0;
  for (Resource r : resources::kAllResources) {
    for (std::size_t i = 0; i < 11; ++i) {
      max_gap = std::max(
          max_gap,
          std::abs(at_1440.Sensitivity(r).degradation[i] -
                   at_ref.Sensitivity(r).degradation[i]));
    }
  }
  // Invariance is approximate (bottleneck crossovers shift), but curves
  // must stay recognizably the same.
  EXPECT_LT(max_gap, 0.25);
}

TEST(ProfilerTest, DeterministicInSeed) {
  const auto& world = TestWorld::Get();
  const Profiler profiler(world.server());
  const auto a = profiler.ProfileGame(world.catalog()[3]);
  const auto b = profiler.ProfileGame(world.catalog()[3]);
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(a.intensity_ref[r], b.intensity_ref[r]);
    for (std::size_t i = 0; i < 11; ++i) {
      EXPECT_DOUBLE_EQ(a.Sensitivity(r).degradation[i],
                       b.Sensitivity(r).degradation[i]);
    }
  }
}

TEST(ProfilerTest, MeasurementsPerGameFormula) {
  const auto& world = TestWorld::Get();
  ProfilerOptions options;
  options.pressure_granularity = 10;
  const Profiler profiler(world.server(), options);
  // 3 solo + 7 resources * 11 pressures * 3 measurements each.
  EXPECT_EQ(profiler.MeasurementsPerGame(), 3u + 7u * 11u * 3u);
}

TEST(ProfilerTest, ParallelAndSerialProfilingAgree) {
  const auto& world = TestWorld::Get();
  const Profiler profiler(world.server());
  // Serial profile of one game must equal the fixture's parallel result.
  const GameProfile serial = profiler.ProfileGame(world.catalog()[7]);
  const auto& parallel = world.features().Profile(7);
  EXPECT_DOUBLE_EQ(serial.solo_fps_ref, parallel.solo_fps_ref);
  for (Resource r : resources::kAllResources) {
    EXPECT_DOUBLE_EQ(serial.intensity_ref[r], parallel.intensity_ref[r]);
  }
}

TEST(ProfilerTest, GranularityControlsCurveSize) {
  const auto& world = TestWorld::Get();
  ProfilerOptions options;
  options.pressure_granularity = 4;
  const Profiler profiler(world.server(), options);
  const GameProfile profile = profiler.ProfileGame(world.catalog()[0]);
  for (const auto& curve : profile.sensitivity) {
    EXPECT_EQ(curve.degradation.size(), 5u);
  }
}

TEST(ProfilerTest, RejectsDegenerateOptions) {
  const auto& world = TestWorld::Get();
  ProfilerOptions options;
  options.secondary_res = options.primary_res;
  EXPECT_THROW(Profiler(world.server(), options), std::logic_error);
}

TEST(GameProfileTest, SensitivityInterpolation) {
  SensitivityCurve curve;
  curve.degradation = {1.0, 0.8, 0.6};
  EXPECT_DOUBLE_EQ(curve.At(0.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.At(0.25), 0.9);
  EXPECT_DOUBLE_EQ(curve.At(1.0), 0.6);
  EXPECT_DOUBLE_EQ(curve.Score(), 0.6);
}

TEST(ProfilerTest, ShowcaseObservation2GranadoEspada) {
  // Sensitive to GPU-CE (deep curve) yet light GPU-CE intensity.
  const auto& profile = ProfileOf("Granado Espada");
  EXPECT_LT(profile.Sensitivity(Resource::kGpuCore).Score(), 0.5);
  EXPECT_LT(profile.intensity_ref[Resource::kGpuCore], 0.35);
}

TEST(ProfilerTest, ShowcaseObservation3SensitivityDiversity) {
  // Elder Scrolls 5 loses ~70% at max CPU-CE pressure; Far Cry 4 ~30%.
  const auto& tes = ProfileOf("The Elder Scrolls 5");
  const auto& fc = ProfileOf("Far Cry 4");
  EXPECT_LT(tes.Sensitivity(Resource::kCpuCore).Score(), 0.45);
  EXPECT_GT(fc.Sensitivity(Resource::kCpuCore).Score(), 0.55);
}

}  // namespace
}  // namespace gaugur::profiling
