#include "tests/pipeline/world.h"

#include "common/thread_pool.h"

namespace gaugur::testing {

TestWorld::TestWorld()
    : catalog_(gamesim::GameCatalog::MakeDefault(42)),
      server_(),
      lab_(catalog_, server_),
      features_([this] {
        const profiling::Profiler profiler(server_);
        return core::FeatureBuilder(
            profiler.ProfileCatalog(catalog_, &common::ThreadPool::Global()));
      }()) {
  core::CorpusOptions train_options;
  train_options.num_pairs = 500;
  train_options.num_triples = 100;
  train_options.num_quads = 100;
  train_options.seed = 99;
  corpus_ = core::GenerateCorpus(lab_, train_options);

  core::CorpusOptions test_options;
  test_options.num_pairs = 150;
  test_options.num_triples = 50;
  test_options.num_quads = 50;
  test_options.seed = 1234567;  // disjoint draw from the training corpus
  test_corpus_ = core::GenerateCorpus(lab_, test_options);
}

const TestWorld& TestWorld::Get() {
  static const TestWorld world;
  return world;
}

}  // namespace gaugur::testing
