// The acceptance test for decision provenance: run a seeded dynamic
// fleet under the provenance policy and verify that EVERY QoS violation
// is reachable from the event log — violation -> originating decision id
// -> the candidate scores and cache flags the predictor saw -> the
// per-resource interference attribution — and that the violation tally
// reconciles exactly with the model monitor's qos_violations_observed.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/switch.h"
#include "obs/timeseries.h"
#include "resources/resource.h"
#include "sched/dynamic.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using gaugur::testing::TestWorld;

bool IsResourceName(const std::string& name) {
  for (resources::Resource r : resources::kAllResources) {
    if (name == resources::Name(r)) return true;
  }
  return false;
}

TEST(ProvenanceTest, EveryViolationIsReachableFromTheEventLog) {
  obs::EnabledScope on(true);
  obs::EventLog& log = obs::EventLog::Global();
  obs::FleetTimeSeries& ts = obs::FleetTimeSeries::Global();
  obs::ModelMonitor& monitor = obs::ModelMonitor::Global();
  log.Clear();
  ts.Clear();
  monitor.Reset();

  const auto& world = TestWorld::Get();
  core::GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(200);
  const std::vector<double> qos_grid{60.0};
  predictor.TrainRm(slice);
  predictor.TrainCm(slice, qos_grid);

  // A deliberately optimistic load (small model slice, busy trace) so the
  // run produces real violations to chase.
  const auto setup = SelectStudyGames(world.lab(), 8, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 200.0, 0.6, 25.0, 23);
  const auto result = SimulateDynamicFleet(
      world.lab(), trace, MakeProvenancePolicy(predictor, 60.0));
  EXPECT_GT(result.sessions, 0u);

  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(log.TotalDropped(), 0u)
      << "ring overflow would break provenance on this run size";

  std::map<std::uint64_t, const obs::Event*> decisions;
  std::vector<const obs::Event*> violations;
  std::size_t arrivals = 0;
  for (const obs::Event& event : events) {
    if (event.kind == obs::EventKind::kDecision) {
      decisions[event.decision_id] = &event;
    } else if (event.kind == obs::EventKind::kQosViolation) {
      violations.push_back(&event);
    } else if (event.kind == obs::EventKind::kArrival) {
      ++arrivals;
    }
  }
  EXPECT_EQ(arrivals, result.sessions);
  EXPECT_EQ(decisions.size(), result.sessions);
  ASSERT_GT(violations.size(), 0u)
      << "trace produced no violations; nothing to chase";
  EXPECT_GT(result.violated_sessions, 0u);

  // The hard acceptance bound: the event log's violation tally reconciles
  // exactly with the monitor's.
  EXPECT_EQ(violations.size(), monitor.Summary().qos_violations_observed);

  for (const obs::Event* violation : violations) {
    SCOPED_TRACE("violation seq " + std::to_string(violation->seq));
    // 1. The violation carries its interference attribution.
    const obs::JsonValue* realized = violation->fields.count("realized_fps")
                                         ? &violation->fields.at("realized_fps")
                                         : nullptr;
    ASSERT_NE(realized, nullptr);
    EXPECT_LT(realized->AsNumber(), 60.0);
    ASSERT_TRUE(violation->fields.count("dominant_resource"));
    EXPECT_TRUE(IsResourceName(
        violation->fields.at("dominant_resource").AsString()));
    ASSERT_TRUE(violation->fields.count("offender_game"));
    ASSERT_TRUE(violation->fields.count("offender_fps_gain"));
    ASSERT_TRUE(violation->fields.count("victim_game"));

    // 2. It links back to the decision that formed the colocation...
    ASSERT_GT(violation->decision_id, 0u);
    const auto it = decisions.find(violation->decision_id);
    ASSERT_NE(it, decisions.end());
    const obs::Event& decision = *it->second;
    EXPECT_LE(decision.seq, violation->seq);

    // 3. ...which recorded what the predictor believed at the time:
    // per-candidate verdicts with cache flags and the chosen placement.
    ASSERT_TRUE(decision.fields.count("num_candidates"));
    ASSERT_TRUE(decision.fields.count("choice"));
    ASSERT_TRUE(decision.fields.count("target_server"));
    ASSERT_TRUE(decision.fields.count("candidates"));
    const obs::JsonArray& candidates =
        decision.fields.at("candidates").AsArray();
    ASSERT_FALSE(candidates.empty());
    for (const obs::JsonValue& candidate : candidates) {
      ASSERT_NE(candidate.Find("feasible"), nullptr);
      ASSERT_NE(candidate.Find("memory_ok"), nullptr);
      ASSERT_NE(candidate.Find("queries"), nullptr);
      ASSERT_NE(candidate.Find("cache_hits"), nullptr);
      ASSERT_NE(candidate.Find("min_margin"), nullptr);
    }
  }

  // The fleet time series sampled realized state alongside the events.
  const obs::FleetTimeSeries::Summary ts_summary = ts.Summarize();
  EXPECT_GT(ts_summary.servers, 0u);
  EXPECT_GT(ts_summary.samples_seen, 0u);

  // The captured /v3 run report carries the same story and round-trips.
  const obs::RunReport report = obs::RunReport::Capture("provenance-test");
  ASSERT_TRUE(report.forensics().has_value());
  EXPECT_EQ(report.forensics()->violations, violations.size());
  EXPECT_EQ(report.forensics()->violations_linked, violations.size());
  EXPECT_EQ(report.forensics()->decisions, decisions.size());
  const obs::RunReport parsed =
      obs::RunReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(parsed.forensics().has_value());
  EXPECT_EQ(*parsed.forensics(), *report.forensics());

  // The whole run produced its telemetry without a single failed write.
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("obs.sink.write_errors").Value(), 0u);

  log.Clear();
  ts.Clear();
  monitor.Reset();
}

TEST(ProvenanceTest, DisabledRunLeavesNoTrace) {
  obs::EnabledScope off(false);
  obs::EventLog& log = obs::EventLog::Global();
  obs::FleetTimeSeries& ts = obs::FleetTimeSeries::Global();
  log.Clear();
  ts.Clear();

  const auto& world = TestWorld::Get();
  core::GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(100);
  const std::vector<double> qos_grid{60.0};
  predictor.TrainRm(slice);
  predictor.TrainCm(slice, qos_grid);

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 80.0, 0.4, 20.0, 29);
  const auto result = SimulateDynamicFleet(
      world.lab(), trace, MakeProvenancePolicy(predictor, 60.0));
  EXPECT_GT(result.sessions, 0u);

  // The kill switch silences the whole provenance layer, yet placements
  // still happen (the policy itself must not depend on obs).
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(ts.Summarize().samples_seen, 0u);
}

}  // namespace
}  // namespace gaugur::sched
