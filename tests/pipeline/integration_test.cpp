// End-to-end integration tests reproducing the paper's headline claims in
// miniature: GAugur out-predicts Sigmoid and SMiTe, its feasibility
// judgements beat VBP, and interference-aware scheduling wins servers/FPS.
#include <gtest/gtest.h>

#include <array>

#include "baselines/sigmoid_model.h"
#include "common/stats.h"
#include "sched/packing.h"
#include "baselines/smite_model.h"
#include "baselines/vbp_model.h"
#include "gaugur/predictor.h"
#include "microbench/pressure_bench.h"
#include "ml/metrics.h"
#include "sched/assignment.h"
#include "sched/enumeration.h"
#include "sched/methodology.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur {
namespace {

using core::Colocation;
using core::SessionRequest;
using gaugur::testing::TestWorld;
using resources::Resource;

std::vector<SessionRequest> CorunnersOf(const core::MeasuredColocation& m,
                                        std::size_t victim) {
  std::vector<SessionRequest> corunners;
  for (std::size_t j = 0; j < m.sessions.size(); ++j) {
    if (j != victim) corunners.push_back(m.sessions[j]);
  }
  return corunners;
}

/// Everything trained once for the whole file.
struct TrainedStack {
  core::GAugurPredictor gaugur;
  baselines::SigmoidModel sigmoid;
  baselines::SmiteModel smite;
  baselines::VbpModel vbp;

  static const TrainedStack& Get() {
    static const TrainedStack* stack = [] {
      const auto& world = TestWorld::Get();
      auto* s = new TrainedStack{
          core::GAugurPredictor(world.features()),
          baselines::SigmoidModel(world.features()),
          baselines::SmiteModel(world.features()),
          baselines::VbpModel(world.features())};
      s->gaugur.TrainRm(world.corpus());
      const std::array<double, 2> qos_grid{50.0, 60.0};
      s->gaugur.TrainCm(world.corpus(), qos_grid);
      s->sigmoid.Train(world.corpus());
      s->smite.Train(world.corpus());
      return s;
    }();
    return *stack;
  }
};

TEST(IntegrationTest, GAugurRmBeatsBothBaselines) {
  const auto& world = TestWorld::Get();
  const auto& stack = TrainedStack::Get();
  std::vector<double> gaugur_pred, sigmoid_pred, smite_pred, actual;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const auto corunners = CorunnersOf(m, v);
      gaugur_pred.push_back(
          stack.gaugur.PredictDegradation(m.sessions[v], corunners));
      sigmoid_pred.push_back(
          stack.sigmoid.PredictDegradation(m.sessions[v], corunners.size()));
      smite_pred.push_back(
          stack.smite.PredictDegradation(m.sessions[v], corunners));
      actual.push_back(core::DegradationTarget(world.features(),
                                               m.sessions[v], m.fps[v]));
    }
  }
  const double gaugur_err = ml::MeanRelativeError(gaugur_pred, actual);
  const double sigmoid_err = ml::MeanRelativeError(sigmoid_pred, actual);
  const double smite_err = ml::MeanRelativeError(smite_pred, actual);
  // The paper's Fig. 7b ordering.
  EXPECT_LT(gaugur_err, sigmoid_err);
  EXPECT_LT(gaugur_err, smite_err);
  EXPECT_LT(gaugur_err, 0.13);
}

TEST(IntegrationTest, FeasibilityJudgementQuality) {
  // Miniature Fig. 9: GAugur(CM) should judge the 10-game colocation space
  // more accurately than VBP.
  const auto& world = TestWorld::Get();
  const auto& stack = TrainedStack::Get();
  const auto setup = sched::SelectStudyGames(world.lab(), 10, 60.0, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 3);

  const auto cm_method = sched::MakeGAugurCmMethod(stack.gaugur);
  const auto vbp_method = sched::MakeVbpMethod(world.features(), stack.vbp);

  std::vector<int> truth, cm_pred, vbp_pred;
  for (const auto& c : colocations) {
    truth.push_back(world.lab().TrulyFeasible(c, 60.0) ? 1 : 0);
    cm_pred.push_back(cm_method->Feasible(60.0, c) ? 1 : 0);
    vbp_pred.push_back(vbp_method->Feasible(60.0, c) ? 1 : 0);
  }
  const double cm_acc = ml::Accuracy(cm_pred, truth);
  const double vbp_acc = ml::Accuracy(vbp_pred, truth);
  EXPECT_GT(cm_acc, 0.8);
  EXPECT_GT(cm_acc, vbp_acc);
}

TEST(IntegrationTest, PredictedFpsAssignmentBeatsWorstFit) {
  // Miniature Fig. 10: GAugur(RM)-guided placement should deliver a higher
  // realized average FPS than VBP worst-fit on a tight fleet.
  const auto& world = TestWorld::Get();
  const auto& stack = TrainedStack::Get();
  const auto setup = sched::SelectStudyGames(world.lab(), 8, 60.0, 5);
  const auto counts = sched::GenerateRequestCounts(
      world.catalog().size(), setup.game_ids, 300, 7);
  const auto requests = sched::RequestStream(counts, 11);

  sched::AssignmentOptions options;
  options.num_servers = 120;  // ~2.5 sessions per server if spread evenly

  const auto rm_method = sched::MakeGAugurRmMethod(stack.gaugur);
  const auto rm_servers = sched::AssignByPredictedFps(
      *rm_method, world.features(), requests, options);
  const auto vbp_servers = sched::AssignWorstFit(
      stack.vbp, world.features(), requests, options);

  const auto rm_fps = sched::EvaluateAssignment(world.lab(), rm_servers);
  const auto vbp_fps = sched::EvaluateAssignment(world.lab(), vbp_servers);
  ASSERT_EQ(rm_fps.size(), requests.size());
  ASSERT_EQ(vbp_fps.size(), requests.size());
  EXPECT_GT(common::Mean(rm_fps), common::Mean(vbp_fps) * 0.98);
}

TEST(IntegrationTest, Observation5NonAdditiveIntensity) {
  // Fig. 6: colocate two games with each benchmark; the aggregate
  // slowdown differs from the sum of individual slowdowns — saturating
  // below on bandwidth, above on caches.
  const auto& world = TestWorld::Get();
  const auto& g1 = world.catalog().ByName("AirMech Strike");
  const auto& g2 = world.catalog().ByName("Hobo: Tough Life");

  auto intensity_of = [&](Resource r,
                          std::vector<gamesim::WorkloadProfile> games) {
    const auto bench = microbench::MakePressureBench(r, 0.5);
    const std::array<gamesim::WorkloadProfile, 1> solo = {bench};
    const double solo_rate = world.server().RunAnalytic(solo)[0].rate;
    games.push_back(bench);
    const auto res = world.server().RunAnalytic(games);
    return microbench::BenchSlowdown(solo_rate, res.back().rate) - 1.0;
  };

  const auto w1 = g1.AtResolution(resources::k1080p);
  const auto w2 = g2.AtResolution(resources::k1080p);
  int differs = 0;
  for (Resource r : resources::kAllResources) {
    const double i1 = intensity_of(r, {w1});
    const double i2 = intensity_of(r, {w2});
    const double holistic = intensity_of(r, {w1, w2});
    if (std::abs(holistic - (i1 + i2)) > 0.02) ++differs;
  }
  // Non-additivity must show on most resources.
  EXPECT_GE(differs, 4);
}

TEST(IntegrationTest, Observation5CacheAboveSumBandwidthBelow) {
  const auto& world = TestWorld::Get();
  // Use synthetic co-runners with fixed occupancy so directionality is
  // deterministic: occupancy 0.45 each.
  auto make_game = [&](double occ) {
    gamesim::WorkloadProfile w;
    w.name = "synthetic";
    w.t_cpu_ms = 5.0;
    w.t_gpu_render_ms = 5.0;
    w.t_xfer_ms = 0.5;
    w.throughput_coupling = 0.0;
    for (Resource r : resources::kAllResources) w.occupancy[r] = occ;
    return w;
  };
  auto intensity_of = [&](Resource r,
                          std::vector<gamesim::WorkloadProfile> games) {
    const auto bench = microbench::MakePressureBench(r, 0.5);
    const std::array<gamesim::WorkloadProfile, 1> solo = {bench};
    const double solo_rate = world.server().RunAnalytic(solo)[0].rate;
    games.push_back(bench);
    const auto res = world.server().RunAnalytic(games);
    return microbench::BenchSlowdown(solo_rate, res.back().rate) - 1.0;
  };
  const auto a = make_game(0.45);
  const auto b = make_game(0.45);
  // Cache: thrashing pushes the aggregate above the sum.
  const double llc_sum = intensity_of(Resource::kLlc, {a}) +
                         intensity_of(Resource::kLlc, {b});
  const double llc_holistic = intensity_of(Resource::kLlc, {a, b});
  EXPECT_GT(llc_holistic, llc_sum * 1.02);
  // Bandwidth: saturation keeps the aggregate below the sum.
  const double bw_sum = intensity_of(Resource::kMemBw, {a}) +
                        intensity_of(Resource::kMemBw, {b});
  const double bw_holistic = intensity_of(Resource::kMemBw, {a, b});
  EXPECT_LT(bw_holistic, bw_sum * 0.98);
}

TEST(IntegrationTest, Fig1ShowcasePairs) {
  // Ancestors Legacy + Borderland2 keep both above 60 FPS; Ancestors
  // Legacy + H1Z1 drags Ancestors Legacy well below its paired rate.
  const auto& world = TestWorld::Get();
  const int al = world.catalog().ByName("Ancestors Legacy").id;
  const int bl = world.catalog().ByName("Borderland2").id;
  const int h1 = world.catalog().ByName("H1Z1").id;

  const auto good = world.lab().TrueFps(
      {{al, resources::k1080p}, {bl, resources::k1080p}});
  EXPECT_GT(good[0], 60.0);
  EXPECT_GT(good[1], 60.0);

  const auto bad = world.lab().TrueFps(
      {{al, resources::k1080p}, {h1, resources::k1080p}});
  EXPECT_LT(bad[0], good[0] * 0.85);
}

TEST(IntegrationTest, CmBeatsThresholdedBaselinesOnClassification) {
  const auto& world = TestWorld::Get();
  const auto& stack = TrainedStack::Get();
  std::vector<int> truth, cm, sigmoid, smite;
  for (const auto& m : world.test_corpus()) {
    for (std::size_t v = 0; v < m.sessions.size(); ++v) {
      const auto corunners = CorunnersOf(m, v);
      truth.push_back(m.fps[v] >= 60.0 ? 1 : 0);
      cm.push_back(
          stack.gaugur.PredictQosOk(60.0, m.sessions[v], corunners) ? 1 : 0);
      sigmoid.push_back(
          stack.sigmoid.PredictFps(m.sessions[v], corunners.size()) >= 60.0
              ? 1
              : 0);
      smite.push_back(
          stack.smite.PredictFps(m.sessions[v], corunners) >= 60.0 ? 1 : 0);
    }
  }
  const double cm_acc = ml::Accuracy(cm, truth);
  EXPECT_GT(cm_acc, ml::Accuracy(sigmoid, truth) - 0.02);
  EXPECT_GT(cm_acc, ml::Accuracy(smite, truth) - 0.02);
  EXPECT_GT(cm_acc, 0.90);
}

TEST(IntegrationTest, PackingUsesFewerServersWithBetterJudgement) {
  // Miniature Fig. 9c: Algorithm 1 fed by GAugur(CM)'s true positives
  // should not use more servers than when fed by VBP's true positives.
  const auto& world = TestWorld::Get();
  const auto& stack = TrainedStack::Get();
  const auto setup = sched::SelectStudyGames(world.lab(), 8, 60.0, 5);
  const auto colocations = sched::EnumerateColocations(setup.pool, 4);

  auto true_positives = [&](const sched::Methodology& method) {
    std::vector<Colocation> tp;
    for (const auto& c : colocations) {
      const bool truly = world.lab().TrulyFeasible(c, 60.0);
      if (truly && (c.size() == 1 || method.Feasible(60.0, c))) {
        tp.push_back(c);
      }
    }
    return tp;
  };

  const auto counts = sched::GenerateRequestCounts(
      world.catalog().size(), setup.game_ids, 400, 3);
  const auto cm_method = sched::MakeGAugurCmMethod(stack.gaugur);
  const auto vbp_method = sched::MakeVbpMethod(world.features(), stack.vbp);
  const auto cm_servers =
      sched::PackRequests(true_positives(*cm_method), counts).servers_used;
  const auto vbp_servers =
      sched::PackRequests(true_positives(*vbp_method), counts).servers_used;
  EXPECT_LE(cm_servers, vbp_servers);
  // Colocation must beat one-request-per-server by a wide margin.
  EXPECT_LT(cm_servers, 400u);
}

}  // namespace
}  // namespace gaugur
