// Shared heavyweight fixture for the pipeline tests: one catalog, one
// server, one full profiling pass and one measured corpus, built lazily
// and reused by every test in the binary (profiling 100 games is the
// expensive part).
#pragma once

#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/features.h"
#include "gaugur/lab.h"
#include "profiling/profiler.h"

namespace gaugur::testing {

class TestWorld {
 public:
  static const TestWorld& Get();

  const gamesim::GameCatalog& catalog() const { return catalog_; }
  const gamesim::ServerSim& server() const { return server_; }
  const core::ColocationLab& lab() const { return lab_; }
  const core::FeatureBuilder& features() const { return features_; }
  const std::vector<core::MeasuredColocation>& corpus() const {
    return corpus_;
  }
  /// Held-out colocations never used for training.
  const std::vector<core::MeasuredColocation>& test_corpus() const {
    return test_corpus_;
  }

 private:
  TestWorld();

  gamesim::GameCatalog catalog_;
  gamesim::ServerSim server_;
  core::ColocationLab lab_;
  core::FeatureBuilder features_;
  std::vector<core::MeasuredColocation> corpus_;
  std::vector<core::MeasuredColocation> test_corpus_;
};

}  // namespace gaugur::testing
