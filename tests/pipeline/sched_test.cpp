// Enumeration, Algorithm 1 packing, assignment, and study-setup tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/assignment.h"
#include "sched/enumeration.h"
#include "sched/methodology.h"
#include "sched/packing.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using core::Colocation;
using core::SessionRequest;
using gaugur::testing::TestWorld;

std::vector<SessionRequest> MakePool(int n) {
  std::vector<SessionRequest> pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back({i, resources::k1080p});
  }
  return pool;
}

TEST(EnumerationTest, PaperCount385) {
  EXPECT_EQ(CountColocations(10, 4), 385u);
  const auto colocations = EnumerateColocations(MakePool(10), 4);
  EXPECT_EQ(colocations.size(), 385u);
}

TEST(EnumerationTest, SizesOrderedAndBounded) {
  const auto colocations = EnumerateColocations(MakePool(6), 3);
  EXPECT_EQ(colocations.size(), 6u + 15u + 20u);
  for (std::size_t i = 1; i < colocations.size(); ++i) {
    EXPECT_LE(colocations[i - 1].size(), colocations[i].size());
  }
  for (const auto& c : colocations) {
    EXPECT_GE(c.size(), 1u);
    EXPECT_LE(c.size(), 3u);
  }
}

TEST(EnumerationTest, NoDuplicateSubsets) {
  const auto colocations = EnumerateColocations(MakePool(8), 4);
  std::set<std::string> keys;
  for (const auto& c : colocations) keys.insert(core::ColocationKey(c));
  EXPECT_EQ(keys.size(), colocations.size());
}

TEST(EnumerationTest, GamesWithinSubsetDistinct) {
  for (const auto& c : EnumerateColocations(MakePool(5), 4)) {
    std::set<int> ids;
    for (const auto& s : c) ids.insert(s.game_id);
    EXPECT_EQ(ids.size(), c.size());
  }
}

TEST(PackingTest, SingletonOnlyUsesOneServerPerRequest) {
  const auto pool = MakePool(3);
  std::vector<Colocation> feasible;
  for (const auto& s : pool) feasible.push_back({s});
  const std::vector<int> requests{2, 3, 1};
  const auto result = PackRequests(feasible, requests);
  EXPECT_EQ(result.servers_used, 6u);
}

TEST(PackingTest, PairsHalveServerCount) {
  const auto pool = MakePool(2);
  std::vector<Colocation> feasible{{pool[0]}, {pool[1]},
                                   {pool[0], pool[1]}};
  const std::vector<int> requests{10, 10};
  const auto result = PackRequests(feasible, requests);
  // Algorithm 1 instantiates the pair 10 times.
  EXPECT_EQ(result.servers_used, 10u);
}

TEST(PackingTest, FallsBackToSingletonsForRemainder) {
  const auto pool = MakePool(2);
  std::vector<Colocation> feasible{{pool[0]}, {pool[1]},
                                   {pool[0], pool[1]}};
  const std::vector<int> requests{10, 4};
  const auto result = PackRequests(feasible, requests);
  // 4 pairs + 6 singles of game 0.
  EXPECT_EQ(result.servers_used, 10u);
}

TEST(PackingTest, PrefersLargerColocations) {
  const auto pool = MakePool(4);
  std::vector<Colocation> feasible;
  for (const auto& s : pool) feasible.push_back({s});
  feasible.push_back({pool[0], pool[1]});
  feasible.push_back({pool[0], pool[1], pool[2], pool[3]});
  const std::vector<int> requests{5, 5, 5, 5};
  const auto result = PackRequests(feasible, requests);
  // The quad handles everything in 5 servers.
  EXPECT_EQ(result.servers_used, 5u);
}

TEST(PackingTest, AllRequestsPlacedExactly) {
  const auto pool = MakePool(3);
  std::vector<Colocation> feasible;
  for (const auto& s : pool) feasible.push_back({s});
  feasible.push_back({pool[0], pool[2]});
  const std::vector<int> requests{7, 3, 5};
  const auto result = PackRequests(feasible, requests);
  std::vector<int> placed(3, 0);
  for (const auto& server : result.assignments) {
    for (const auto& s : server) {
      ++placed[static_cast<std::size_t>(s.game_id)];
    }
  }
  EXPECT_EQ(placed[0], 7);
  EXPECT_EQ(placed[1], 3);
  EXPECT_EQ(placed[2], 5);
}

TEST(PackingTest, MissingSingletonRejected) {
  const auto pool = MakePool(2);
  const std::vector<Colocation> feasible{{pool[0]}};
  const std::vector<int> requests{1, 1};
  EXPECT_THROW(PackRequests(feasible, requests), std::logic_error);
}

TEST(PackingTest, ZeroRequestsZeroServers) {
  const auto pool = MakePool(2);
  std::vector<Colocation> feasible{{pool[0]}, {pool[1]}};
  const std::vector<int> requests{0, 0};
  EXPECT_EQ(PackRequests(feasible, requests).servers_used, 0u);
}

TEST(StudyTest, SelectedGamesClearQosSolo) {
  const auto& world = TestWorld::Get();
  const auto setup = SelectStudyGames(world.lab(), 10, 60.0, 5);
  EXPECT_EQ(setup.game_ids.size(), 10u);
  for (const auto& s : setup.pool) {
    EXPECT_GE(world.lab().TrueSoloFps(s), 60.0);
  }
}

TEST(StudyTest, SelectionDeterministicInSeed) {
  const auto& world = TestWorld::Get();
  const auto a = SelectStudyGames(world.lab(), 10, 60.0, 5);
  const auto b = SelectStudyGames(world.lab(), 10, 60.0, 5);
  EXPECT_EQ(a.game_ids, b.game_ids);
  const auto c = SelectStudyGames(world.lab(), 10, 60.0, 6);
  EXPECT_NE(a.game_ids, c.game_ids);
}

TEST(StudyTest, RequestCountsSumToTotal) {
  const auto& world = TestWorld::Get();
  const auto setup = SelectStudyGames(world.lab(), 10, 60.0, 5);
  const auto counts =
      GenerateRequestCounts(world.catalog().size(), setup.game_ids, 5000, 7);
  int total = 0;
  for (std::size_t id = 0; id < counts.size(); ++id) {
    total += counts[id];
    if (std::find(setup.game_ids.begin(), setup.game_ids.end(),
                  static_cast<int>(id)) == setup.game_ids.end()) {
      EXPECT_EQ(counts[id], 0);
    }
  }
  EXPECT_EQ(total, 5000);
}

TEST(StudyTest, RequestStreamMatchesCounts) {
  const auto& world = TestWorld::Get();
  const auto setup = SelectStudyGames(world.lab(), 5, 60.0, 5);
  const auto counts =
      GenerateRequestCounts(world.catalog().size(), setup.game_ids, 200, 8);
  const auto stream = RequestStream(counts, 9);
  EXPECT_EQ(stream.size(), 200u);
  std::vector<int> recount(world.catalog().size(), 0);
  for (const auto& r : stream) {
    ++recount[static_cast<std::size_t>(r.game_id)];
  }
  EXPECT_EQ(recount, counts);
}

TEST(AssignmentTest, WorstFitSpreadsLoad) {
  const auto& world = TestWorld::Get();
  const baselines::VbpModel vbp(world.features());
  const auto setup = SelectStudyGames(world.lab(), 5, 60.0, 5);
  std::vector<SessionRequest> requests;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(setup.pool[static_cast<std::size_t>(i % 5)]);
  }
  AssignmentOptions options;
  options.num_servers = 20;
  const auto servers =
      AssignWorstFit(vbp, world.features(), requests, options);
  EXPECT_EQ(servers.size(), 20u);
  // Worst-fit with ample servers puts every request on its own box.
  for (const auto& s : servers) {
    EXPECT_LE(s.size(), 1u);
  }
}

TEST(AssignmentTest, CapacityRespected) {
  const auto& world = TestWorld::Get();
  const baselines::VbpModel vbp(world.features());
  const auto setup = SelectStudyGames(world.lab(), 5, 60.0, 5);
  std::vector<SessionRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back(setup.pool[static_cast<std::size_t>(i % 5)]);
  }
  AssignmentOptions options;
  options.num_servers = 10;
  const auto servers =
      AssignWorstFit(vbp, world.features(), requests, options);
  std::size_t assigned = 0;
  for (const auto& s : servers) {
    EXPECT_LE(s.size(), options.max_sessions_per_server);
    assigned += s.size();
  }
  EXPECT_EQ(assigned, 40u);
}

TEST(AssignmentTest, FleetTooSmallRejected) {
  const auto& world = TestWorld::Get();
  const baselines::VbpModel vbp(world.features());
  const std::vector<SessionRequest> requests(
      9, SessionRequest{0, resources::k1080p});
  AssignmentOptions options;
  options.num_servers = 2;
  EXPECT_THROW(AssignWorstFit(vbp, world.features(), requests, options),
               std::logic_error);
}

TEST(AssignmentTest, EvaluateAssignmentCountsSessions) {
  const auto& world = TestWorld::Get();
  const std::vector<Colocation> servers{
      {}, {{0, resources::k1080p}},
      {{1, resources::k1080p}, {2, resources::k1080p}}};
  const auto fps = EvaluateAssignment(world.lab(), servers);
  EXPECT_EQ(fps.size(), 3u);
  for (double f : fps) EXPECT_GT(f, 0.0);
}

TEST(MethodologyTest, ProfiledMemoryFitsMatchesSums) {
  const auto& world = TestWorld::Get();
  Colocation colocation;
  double cpu = 0.0;
  for (int id = 0; id < 4; ++id) {
    colocation.push_back({id, resources::k1080p});
    cpu += world.features().Profile(id).cpu_memory;
  }
  EXPECT_EQ(ProfiledMemoryFits(world.features(), colocation),
            cpu <= 1.0 && true);
}

TEST(MethodologyTest, VbpMethodHasNoFpsModel) {
  const auto& world = TestWorld::Get();
  const baselines::VbpModel vbp(world.features());
  const auto method = MakeVbpMethod(world.features(), vbp);
  EXPECT_FALSE(method->CanPredictFps());
  EXPECT_EQ(method->Name(), "VBP");
  const std::vector<SessionRequest> corunners;
  EXPECT_THROW(method->PredictFps({0, resources::k1080p}, corunners),
               std::logic_error);
}

}  // namespace
}  // namespace gaugur::sched
