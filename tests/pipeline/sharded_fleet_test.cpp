// Sharded fleet service on the full predictor stack: replica semantics,
// the single-shard bit-identity pin against the legacy simulator (the
// sharding acceptance contract), and the shared striped cache warming
// every shard's replica.

#include "sched/dynamic.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <stdexcept>

#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/switch.h"
#include "sched/study.h"
#include "tests/pipeline/world.h"

namespace gaugur::sched {
namespace {

using core::Colocation;
using gaugur::testing::TestWorld;

core::GAugurPredictor TrainedPredictor(const TestWorld& world) {
  core::GAugurPredictor predictor(world.features());
  const std::span<const core::MeasuredColocation> slice =
      std::span(world.corpus()).first(200);
  predictor.TrainRm(slice);
  const std::vector<double> qos_grid{60.0};
  predictor.TrainCm(slice, qos_grid);
  return predictor;
}

TEST(ShardedFleetPipelineTest, ReplicaSharesModelsAndCache) {
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor predictor = TrainedPredictor(world);

  core::GAugurPredictor replica = predictor.MakeReplica();
  EXPECT_TRUE(replica.IsReplica());
  EXPECT_FALSE(predictor.IsReplica());
  EXPECT_TRUE(replica.HasRm());
  EXPECT_TRUE(replica.HasCm());
  // One cache object behind the whole replica group.
  EXPECT_EQ(&replica.Cache(), &predictor.Cache());

  // Warm through the replica, then the parent's stats see the traffic
  // (same object) and a repeat query through the parent hits.
  const Colocation pair = {world.corpus()[0].sessions[0],
                           world.corpus()[0].sessions[1]};
  const std::vector<Colocation> candidates = {pair};
  (void)replica.ScoreCandidatesDetailed(60.0, candidates);
  const auto warmed = predictor.PredictionCacheStats();
  EXPECT_GT(predictor.PredictionCacheSize(), 0u);
  (void)predictor.ScoreCandidatesDetailed(60.0, candidates);
  EXPECT_GT(predictor.PredictionCacheStats().hits, warmed.hits);

  // Replicas are read-only handles: retraining one must throw.
  EXPECT_THROW(
      replica.TrainRm(std::span(world.corpus()).first(10)),
      std::logic_error);

  // The control arm: a private-cache replica starts cold and its traffic
  // never touches the parent's cache.
  const core::GAugurPredictor isolated =
      predictor.MakeReplica(/*share_cache=*/false);
  EXPECT_NE(&isolated.Cache(), &predictor.Cache());
  EXPECT_EQ(isolated.PredictionCacheSize(), 0u);
  const auto parent_before = predictor.PredictionCacheStats();
  (void)isolated.ScoreCandidatesDetailed(60.0, candidates);
  const auto parent_after = predictor.PredictionCacheStats();
  EXPECT_EQ(parent_after.hits, parent_before.hits);
  EXPECT_EQ(parent_after.misses, parent_before.misses);
  EXPECT_GT(isolated.PredictionCacheStats().misses, 0u);
}

TEST(ShardedFleetPipelineTest, ReplicaRequiresATrainedParent) {
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor untrained(world.features());
  EXPECT_THROW((void)untrained.MakeReplica(), std::logic_error);
}

TEST(ShardedFleetPipelineTest, SingleShardReproducesLegacyPlacements) {
  // The sharding acceptance pin: one shard driven through the sharded
  // service must place every request on exactly the server the legacy
  // single-threaded simulator picks.
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor predictor = TrainedPredictor(world);

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 150.0, 0.5, 25.0, 23);

  const auto legacy = SimulateDynamicFleet(
      world.lab(), trace, MakeProvenancePolicy(predictor, 60.0));

  ShardedFleetOptions options;
  options.num_shards = 1;
  const auto sharded = SimulateShardedFleet(
      world.lab(), trace, MakeReplicatedProvenanceFactory(predictor, 60.0),
      options);

  ASSERT_EQ(legacy.placements.size(), trace.size());
  EXPECT_EQ(legacy.placements, sharded.total.placements);
  EXPECT_EQ(legacy.violated_sessions, sharded.total.violated_sessions);
  EXPECT_EQ(legacy.peak_servers, sharded.total.peak_servers);
  EXPECT_DOUBLE_EQ(legacy.server_minutes, sharded.total.server_minutes);
}

TEST(ShardedFleetPipelineTest, MultiShardRunSharesOneCacheAcrossReplicas) {
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor predictor = TrainedPredictor(world);

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 200.0, 0.6, 25.0, 29);

  ShardedFleetOptions options;
  options.num_shards = 4;
  const auto before = predictor.PredictionCacheStats();
  const auto result = SimulateShardedFleet(
      world.lab(), trace, MakeReplicatedProvenanceFactory(predictor, 60.0),
      options);

  EXPECT_EQ(result.total.sessions, trace.size());
  for (const long long placed : result.total.placements) {
    EXPECT_GE(placed, 0);
  }
  // All four replicas funneled their queries through the parent's cache:
  // the shared stats moved, and cross-shard reuse produced hits (shards
  // see overlapping colocation contents from the same game pool).
  const auto after = predictor.PredictionCacheStats();
  EXPECT_GT(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
  // p99 decision latency was measured (collection defaults on).
  EXPECT_GT(result.decision_latency_p99_us, 0.0);
  EXPECT_GE(result.decision_latency_p99_us, result.decision_latency_p50_us);
}

TEST(ShardedFleetPipelineTest, PhaseTotalsReconcileWithDecisionLatency) {
  // The profiler's reconciliation contract (obs/latency_profiler.h): the
  // five in-decision phase totals — colocation_hash + feature_build +
  // cache_lookup + kernel_eval + policy_select, all exclusive time —
  // partition the span SchedMetrics times as sched.decision_us. The
  // remainder is timer/clock overhead and std::function dispatch, so the
  // sum must land just under the histogram total, never over.
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor predictor = TrainedPredictor(world);

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 200.0, 0.6, 25.0, 29);

  obs::LatencyProfiler& profiler = obs::LatencyProfiler::Global();
  profiler.Reset();
  const obs::Snapshot base = obs::Registry::Global().Snap();

  ShardedFleetOptions options;
  options.num_shards = 2;
  (void)SimulateShardedFleet(
      world.lab(), trace, MakeReplicatedProvenanceFactory(predictor, 60.0),
      options);

  const obs::Snapshot delta =
      obs::Registry::Global().Snap().DeltaSince(base);
  const obs::LatencyProfileSummary summary = profiler.Summary();
  ASSERT_GT(summary.decisions, 0u);
  ASSERT_EQ(delta.histograms.count("sched.decision_us"), 1u);
  const double decision_us = delta.histograms.at("sched.decision_us").sum;
  ASSERT_GT(decision_us, 0.0);

  double attributed_us = 0.0;
  for (const obs::Phase phase :
       {obs::Phase::kColocationHash, obs::Phase::kFeatureBuild,
        obs::Phase::kCacheLookup, obs::Phase::kKernelEval,
        obs::Phase::kPolicySelect}) {
    attributed_us +=
        summary.fleet[static_cast<std::size_t>(phase)].total_us;
  }
  // Pinned tolerance: 15% relative plus 500 µs absolute slack for clock
  // granularity on very fast decisions.
  EXPECT_LE(attributed_us, decision_us * 1.02 + 500.0);
  EXPECT_GE(attributed_us, decision_us * 0.85 - 500.0);
  // The provenance policy exercised the whole phase taxonomy: candidate
  // scoring hashes colocations, misses build features and run the tree
  // kernel, and lookups touch the shared cache.
  for (const obs::Phase phase :
       {obs::Phase::kColocationHash, obs::Phase::kCacheLookup,
        obs::Phase::kKernelEval, obs::Phase::kPolicySelect}) {
    EXPECT_GT(summary.fleet[static_cast<std::size_t>(phase)].count, 0u)
        << obs::PhaseName(phase);
  }
  // The shared striped cache saw traffic from both shards while armed.
  EXPECT_GT(summary.cache.acquisitions, 0u);
  profiler.Reset();
}

TEST(ShardedFleetPipelineTest, TailExemplarsJoinDecisionEventsOneToOne) {
  obs::EnabledScope on(true);
  const auto& world = TestWorld::Get();
  const core::GAugurPredictor predictor = TrainedPredictor(world);

  const auto setup = SelectStudyGames(world.lab(), 6, 60.0, 3);
  const auto trace =
      GenerateDynamicTrace(setup.game_ids, 150.0, 0.5, 25.0, 31);

  obs::LatencyProfiler& profiler = obs::LatencyProfiler::Global();
  profiler.Reset();
  obs::EventLog::Global().Clear();

  ShardedFleetOptions options;
  options.num_shards = 2;
  (void)SimulateShardedFleet(
      world.lab(), trace, MakeReplicatedProvenanceFactory(predictor, 60.0),
      options);

  const obs::LatencyProfileSummary summary = profiler.Summary();
  ASSERT_FALSE(summary.exemplars.empty());
  const std::vector<obs::Event> events = obs::EventLog::Global().Snapshot();
  std::set<std::uint64_t> seen_ids;
  for (const obs::TailExemplar& exemplar : summary.exemplars) {
    ASSERT_NE(exemplar.decision_id, 0u);
    // Distinct ring slots hold distinct decisions.
    EXPECT_TRUE(seen_ids.insert(exemplar.decision_id).second);
    std::size_t matches = 0;
    for (const obs::Event& event : events) {
      if (event.kind == obs::EventKind::kDecision &&
          event.decision_id == exemplar.decision_id) {
        ++matches;
        EXPECT_DOUBLE_EQ(event.tick, exemplar.tick);
      }
    }
    EXPECT_EQ(matches, 1u)
        << "exemplar decision " << exemplar.decision_id
        << " must join exactly one decision event";
  }
  obs::EventLog::Global().Clear();
  profiler.Reset();
}

}  // namespace
}  // namespace gaugur::sched
