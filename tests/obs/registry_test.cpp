#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/stream.h"
#include "obs/switch.h"

namespace gaugur::obs {
namespace {

TEST(SwitchTest, EnabledScopeRestoresPreviousState) {
  const bool before = Enabled();
  {
    EnabledScope off(false);
    EXPECT_FALSE(Enabled());
    {
      EnabledScope on(true);
      EXPECT_TRUE(Enabled());
    }
    EXPECT_FALSE(Enabled());
  }
  EXPECT_EQ(Enabled(), before);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  EnabledScope on(true);
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CounterTest, DisabledAddIsNoop) {
  Counter counter;
  {
    EnabledScope off(false);
    counter.Add(17);
  }
  EXPECT_EQ(counter.Value(), 0u);
  {
    EnabledScope on(true);
    counter.Add(17);
  }
  EXPECT_EQ(counter.Value(), 17u);
}

TEST(GaugeTest, ConcurrentAddSubNetsToZero) {
  EnabledScope on(true);
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 20000; ++i) {
        gauge.Add(3);
        gauge.Sub(3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Add(5);
  gauge.Sub(2);
  EXPECT_EQ(gauge.Value(), 3);
}

TEST(HistogramTest, PercentilesOnUniformDistribution) {
  EnabledScope on(true);
  // Bounds 100, 200, ..., 1000; values 1..1000 uniformly -> each bucket
  // holds exactly 100 samples and interpolation is exact.
  std::vector<double> bounds;
  for (int b = 100; b <= 1000; b += 100) bounds.push_back(b);
  Histogram hist(bounds);
  for (int v = 1; v <= 1000; ++v) hist.Record(v);

  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_NEAR(hist.Mean(), 500.5, 1e-9);
  EXPECT_NEAR(hist.Percentile(0.50), 500.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(0.95), 950.0, 1e-9);
  EXPECT_NEAR(hist.Percentile(0.99), 990.0, 1e-9);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  EnabledScope on(true);
  Histogram hist(Histogram::DefaultBounds());
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(static_cast<double>((t * 37 + i) % 1000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.Count(),
            static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
}

TEST(HistogramTest, OverflowBucketAndEmpty) {
  EnabledScope on(true);
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram hist(bounds);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  hist.Record(100.0);  // beyond the last finite bound
  const HistogramSnapshot snap = hist.Snap();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[2], 1u);
  // Overflow percentile reports the last finite edge, not a fabrication.
  EXPECT_EQ(hist.Percentile(0.99), 2.0);
}

TEST(RegistryTest, HandlesAreStableAndNamed) {
  EnabledScope on(true);
  Registry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(registry.Snap().counters.at("x.count"), 5u);
  registry.Reset();
  EXPECT_EQ(registry.Snap().counters.at("x.count"), 0u);
  EXPECT_EQ(&a, &registry.GetCounter("x.count"));  // still valid post-Reset
}

TEST(RegistryTest, ConcurrentGetAndIncrementFromManyThreads) {
  EnabledScope on(true);
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the same names itself (exercises the
      // create-on-first-use path under contention) then hammers them.
      Counter& counter = registry.GetCounter("shared.count");
      Gauge& gauge = registry.GetGauge("shared.level");
      Histogram& hist = registry.GetHistogram("shared.us");
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.Add(1);
        gauge.Add(1);
        gauge.Sub(1);
        hist.Record(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Snapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("shared.count"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(snap.gauges.at("shared.level"), 0);
  EXPECT_EQ(snap.histograms.at("shared.us").count,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null, )"
      R"("s": "quote \" slash \\ newline \n"})";
  const JsonValue doc = JsonValue::Parse(text);
  EXPECT_EQ(doc.Find("a")->AsArray()[2].AsNumber(), -300.0);
  EXPECT_TRUE(doc.Find("b")->Find("nested")->AsBool());
  EXPECT_TRUE(doc.Find("c")->IsNull());
  EXPECT_EQ(doc.Find("s")->AsString(), "quote \" slash \\ newline \n");
  // Round trip: dump -> parse -> equal document.
  EXPECT_EQ(JsonValue::Parse(doc.Dump()), doc);
  EXPECT_EQ(JsonValue::Parse(doc.Dump(2)), doc);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::Parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("[1,]"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("{\"a\": 1} trailing"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("tru"), JsonParseError);
}

TEST(RunReportTest, JsonRoundTripsSnapshotExactly) {
  EnabledScope on(true);
  Registry registry;
  registry.GetCounter("lab.measurements").Add(314);
  registry.GetGauge("pool.queue_depth").Add(7);
  registry.GetGauge("pool.queue_depth").Sub(7);
  Histogram& hist = registry.GetHistogram("lab.measure_us");
  for (int i = 0; i < 1000; ++i) hist.Record(0.37 * i);

  RunReport report("unit-test", registry.Snap());
  report.SetMeta("seed", "42");
  const std::string json = report.ToJsonString();

  // The document is valid JSON with the documented schema marker...
  const JsonValue doc = JsonValue::Parse(json);
  EXPECT_EQ(doc.Find("schema")->AsString(), kRunReportSchema);
  // v4 histogram summaries carry the derived tail quantile alongside the
  // coarser ones, monotone with them.
  const JsonValue* entry =
      doc.Find("histograms")->Find("lab.measure_us");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->Find("p999"), nullptr);
  EXPECT_GE(entry->Find("p999")->AsNumber(),
            entry->Find("p99")->AsNumber());
  // ...and parses back into the identical snapshot.
  const RunReport parsed = RunReport::FromJsonString(json);
  EXPECT_EQ(parsed.name(), "unit-test");
  EXPECT_EQ(parsed.meta().at("seed"), "42");
  EXPECT_TRUE(parsed.snapshot() == report.snapshot());
}

TEST(RunReportTest, RejectsWrongSchema) {
  EXPECT_THROW(RunReport::FromJsonString(R"({"schema": "bogus/v9"})"),
               std::logic_error);
  EXPECT_THROW(RunReport::FromJsonString("[]"), std::logic_error);
}

TEST(RunReportTest, TextTablesMentionEveryMetric) {
  EnabledScope on(true);
  Registry registry;
  registry.GetCounter("alpha.count").Add(1);
  registry.GetGauge("beta.level").Add(2);
  registry.GetHistogram("gamma.us").Record(5.0);
  const RunReport report("text", registry.Snap());
  const std::string text = report.ToText();
  EXPECT_NE(text.find("alpha.count"), std::string::npos);
  EXPECT_NE(text.find("beta.level"), std::string::npos);
  EXPECT_NE(text.find("gamma.us"), std::string::npos);
}

TEST(MetricsDeltaTest, UnchangedGaugeOmittedFromDeltaLine) {
  EnabledScope on(true);
  Registry registry;
  Gauge& steady = registry.GetGauge("steady.level");
  Gauge& moving = registry.GetGauge("moving.level");
  steady.Add(5);
  moving.Add(1);
  const Snapshot base = registry.Snap();
  moving.Add(2);
  const Snapshot delta = registry.Snap().DeltaSince(base);
  // Gauges report their current level, and only when it changed.
  EXPECT_EQ(delta.gauges.count("steady.level"), 0u);
  ASSERT_EQ(delta.gauges.count("moving.level"), 1u);
  EXPECT_EQ(delta.gauges.at("moving.level"), 3);
  const JsonValue line = MetricsDeltaToJson(delta, /*seq=*/1, /*tick=*/10.0);
  EXPECT_EQ(line.Find("schema")->AsString(), kMetricsDeltaSchema);
  EXPECT_EQ(line.Find("gauges")->Find("steady.level"), nullptr);
  EXPECT_EQ(line.Find("gauges")->Find("moving.level")->AsNumber(), 3.0);
}

TEST(MetricsDeltaTest, CounterIncrementsAcrossMultipleDrains) {
  EnabledScope on(true);
  Registry registry;
  Counter& counter = registry.GetCounter("drain.count");

  // Drain 1: the counter's whole value relative to an empty baseline.
  counter.Add(3);
  Snapshot baseline;
  Snapshot delta = registry.Snap().DeltaSince(baseline);
  EXPECT_EQ(delta.counters.at("drain.count"), 3u);
  baseline = registry.Snap();

  // Drain 2: only the increment since the previous drain.
  counter.Add(4);
  delta = registry.Snap().DeltaSince(baseline);
  EXPECT_EQ(delta.counters.at("drain.count"), 4u);
  JsonValue line = MetricsDeltaToJson(delta, /*seq=*/2, /*tick=*/20.0);
  EXPECT_EQ(line.Find("counters")->Find("drain.count")->AsNumber(), 4.0);
  baseline = registry.Snap();

  // Drain 3: idle interval -> the counter vanishes from the line.
  delta = registry.Snap().DeltaSince(baseline);
  EXPECT_EQ(delta.counters.count("drain.count"), 0u);
  line = MetricsDeltaToJson(delta, /*seq=*/3, /*tick=*/30.0);
  EXPECT_EQ(line.Find("counters")->Find("drain.count"), nullptr);
  EXPECT_TRUE(line.Find("counters")->AsObject().empty());
}

TEST(MetricsDeltaTest, HistogramBucketIncrementsStreamExactly) {
  EnabledScope on(true);
  Registry registry;
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  Histogram& hist = registry.GetHistogram("delta.us", bounds);
  hist.Record(0.5);
  hist.Record(5.0);
  const Snapshot base = registry.Snap();

  hist.Record(50.0);
  hist.Record(500.0);  // overflow bucket
  const Snapshot delta = registry.Snap().DeltaSince(base);
  const HistogramSnapshot& diff = delta.histograms.at("delta.us");
  // Only the two new records survive the subtraction, each in its bucket.
  EXPECT_EQ(diff.count, 2u);
  EXPECT_DOUBLE_EQ(diff.sum, 550.0);
  ASSERT_EQ(diff.counts.size(), 4u);
  EXPECT_EQ(diff.counts[0], 0u);  // <= 1: unchanged
  EXPECT_EQ(diff.counts[1], 0u);  // <= 10: unchanged
  EXPECT_EQ(diff.counts[2], 1u);  // <= 100: the 50.0
  EXPECT_EQ(diff.counts[3], 1u);  // overflow: the 500.0
  const JsonValue line = MetricsDeltaToJson(delta, /*seq=*/4, /*tick=*/40.0);
  const JsonValue* entry = line.Find("histograms")->Find("delta.us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("count")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(entry->Find("sum")->AsNumber(), 550.0);

  // An unchanged histogram is omitted entirely.
  const Snapshot idle = registry.Snap().DeltaSince(registry.Snap());
  EXPECT_TRUE(idle.histograms.empty());
  EXPECT_TRUE(MetricsDeltaToJson(idle, /*seq=*/5, /*tick=*/50.0)
                  .Find("histograms")
                  ->AsObject()
                  .empty());
}

}  // namespace
}  // namespace gaugur::obs
