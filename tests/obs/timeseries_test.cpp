// Fleet time-series unit tests: bounded memory under overflow (halving
// decimation), the min-gap thinning that follows it, newest-sample
// retention, and the disabled no-op path.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/switch.h"

namespace gaugur::obs {
namespace {

ServerSample Sample(double tick, double fps = 60.0) {
  ServerSample sample;
  sample.tick = tick;
  sample.slots.push_back({/*game_id=*/1, fps, {0.1, 0.2, 0.3, 0.4, 0.5,
                                               0.6, 0.7}});
  return sample;
}

TEST(FleetTimeSeries, RecordsAndReadsBack) {
  EnabledScope on(true);
  FleetTimeSeries ts({/*capacity_per_server=*/8});
  ts.Record(0, Sample(1.0, 58.5));
  ts.Record(0, Sample(2.0, 61.0));
  ts.Record(3, Sample(1.5));

  EXPECT_EQ(ts.NumServers(), 2u);
  const std::vector<ServerSample> series = ts.Series(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].tick, 1.0);
  EXPECT_EQ(series[0].slots[0].fps, 58.5);
  EXPECT_EQ(series[0].slots[0].pressure.size(), 7u);
  EXPECT_EQ(series[1].tick, 2.0);
  EXPECT_TRUE(ts.Series(99).empty());

  const FleetTimeSeries::Summary summary = ts.Summarize();
  EXPECT_EQ(summary.servers, 2u);
  EXPECT_EQ(summary.samples_seen, 3u);
  EXPECT_EQ(summary.samples_kept, 3u);
}

TEST(FleetTimeSeries, OverflowHalvesButKeepsNewestAndCoverage) {
  EnabledScope on(true);
  constexpr std::size_t kCapacity = 16;
  FleetTimeSeries ts({kCapacity});
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    ts.Record(0, Sample(static_cast<double>(i)));
  }
  const std::vector<ServerSample> series = ts.Series(0);
  ASSERT_FALSE(series.empty());
  EXPECT_LE(series.size(), kCapacity);

  // The retained series tracks the present: the last kept sample is
  // within one thinning gap of the newest recorded tick (a closer sample
  // would have been kept).
  EXPECT_GE(series.back().tick,
            static_cast<double>(kSamples - 1) - ts.Summarize().max_gap);
  // Ticks stay strictly increasing (decimation never reorders).
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series[i - 1].tick, series[i].tick);
  }
  // Coverage: the kept samples still span a large part of the horizon
  // instead of clustering at the end.
  EXPECT_LT(series.front().tick, kSamples / 2.0);

  const FleetTimeSeries::Summary summary = ts.Summarize();
  EXPECT_EQ(summary.samples_seen, static_cast<std::uint64_t>(kSamples));
  EXPECT_LE(summary.samples_kept, kCapacity);
  EXPECT_GT(summary.max_gap, 0.0);
}

TEST(FleetTimeSeries, MinGapThinsCloseSamples) {
  EnabledScope on(true);
  FleetTimeSeries ts({/*capacity_per_server=*/4});
  // Fill to capacity to trigger decimation and a non-zero min gap...
  for (int i = 0; i < 8; ++i) {
    ts.Record(0, Sample(static_cast<double>(i)));
  }
  const double gap = ts.Summarize().max_gap;
  ASSERT_GT(gap, 0.0);
  const std::size_t kept_before = ts.Series(0).size();
  // ...then a burst of samples inside one gap: all but (at most) the
  // first are dropped by thinning, so memory stays bounded.
  const double last = ts.Series(0).back().tick;
  for (int i = 1; i <= 100; ++i) {
    ts.Record(0, Sample(last + gap * 0.001 * i));
  }
  EXPECT_LE(ts.Series(0).size(), kept_before + 1);
}

TEST(FleetTimeSeries, IdenticalTicksStayBounded) {
  EnabledScope on(true);
  FleetTimeSeries ts({/*capacity_per_server=*/4});
  // Zero-span series (all samples at tick 0): the gap fallback still
  // thins, the ring never exceeds capacity.
  for (int i = 0; i < 1000; ++i) {
    ts.Record(0, Sample(0.0));
  }
  EXPECT_LE(ts.Series(0).size(), 4u);
}

TEST(FleetTimeSeries, DisabledRecordIsNoOp) {
  EnabledScope off(false);
  FleetTimeSeries ts;
  ts.Record(0, Sample(1.0));
  EXPECT_EQ(ts.NumServers(), 0u);
  EXPECT_EQ(ts.Summarize().samples_seen, 0u);
}

TEST(FleetTimeSeries, ConfigureEnforcesMinimumCapacityAndClears) {
  EnabledScope on(true);
  FleetTimeSeries ts({/*capacity_per_server=*/8});
  ts.Record(0, Sample(1.0));
  ts.Configure({/*capacity_per_server=*/2});
  EXPECT_EQ(ts.NumServers(), 0u);
  for (int i = 0; i < 50; ++i) {
    ts.Record(0, Sample(static_cast<double>(i)));
  }
  EXPECT_LE(ts.Series(0).size(), 2u);
}

}  // namespace
}  // namespace gaugur::obs
