#include "obs/latency_profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "obs/switch.h"

namespace gaugur::obs {
namespace {

/// Busy-wait so the elapsed time is guaranteed >= `us` (sleep_for may
/// oversleep arbitrarily, but never under-runs either; the busy wait
/// keeps the lower bound tight enough to assert on).
void SpinFor(std::chrono::microseconds us) {
  const auto end = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(LatencyProfilerTest, PhaseNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto phase = static_cast<Phase>(i);
    Phase parsed;
    ASSERT_TRUE(PhaseFromName(PhaseName(phase), &parsed))
        << PhaseName(phase);
    EXPECT_EQ(parsed, phase);
  }
  Phase unused;
  EXPECT_FALSE(PhaseFromName("no_such_phase", &unused));
  EXPECT_FALSE(PhaseFromName("", &unused));
}

TEST(LatencyProfilerTest, NestedTimersRecordExclusiveTime) {
  EnabledScope on(true);
  LatencyProfiler& profiler = LatencyProfiler::Global();
  profiler.Reset();

  const auto wall_start = std::chrono::steady_clock::now();
  profiler.BeginDecision(/*shard=*/3);
  {
    PhaseTimer outer(Phase::kPolicySelect);
    SpinFor(std::chrono::microseconds(2000));
    {
      PhaseTimer inner(Phase::kCacheLookup);
      SpinFor(std::chrono::microseconds(2000));
    }
  }
  profiler.EndDecision(/*decision_id=*/42, /*tick=*/1.5);
  const double wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  const LatencyProfileSummary summary = profiler.Summary();
  EXPECT_EQ(summary.decisions, 1u);
  ASSERT_EQ(summary.shards.size(), 1u);
  EXPECT_EQ(summary.shards[0].shard, 3u);
  EXPECT_EQ(summary.shards[0].decisions, 1u);

  const PhaseStats& policy =
      summary.fleet[static_cast<std::size_t>(Phase::kPolicySelect)];
  const PhaseStats& cache =
      summary.fleet[static_cast<std::size_t>(Phase::kCacheLookup)];
  EXPECT_EQ(policy.count, 1u);
  EXPECT_EQ(cache.count, 1u);
  // Each timer's own busy-wait is a hard lower bound on its exclusive
  // time.
  EXPECT_GE(policy.total_us, 1999.0);
  EXPECT_GE(cache.total_us, 1999.0);
  // The exclusivity contract: phase totals partition the decision, so
  // their sum cannot exceed the wall clock. (Double counting would make
  // policy_select ~4 ms and the sum ~6 ms against a ~4 ms wall.)
  EXPECT_LE(policy.total_us + cache.total_us, wall_us * 1.01);

  // The lone decision is also the slowest seen: one exemplar, joined by
  // the decision id we passed, with the same phase split.
  ASSERT_EQ(summary.exemplars.size(), 1u);
  const TailExemplar& exemplar = summary.exemplars[0];
  EXPECT_EQ(exemplar.decision_id, 42u);
  EXPECT_DOUBLE_EQ(exemplar.tick, 1.5);
  EXPECT_EQ(exemplar.shard, 3u);
  EXPECT_DOUBLE_EQ(exemplar.total_us, policy.total_us + cache.total_us);
  profiler.Reset();
}

TEST(LatencyProfilerTest, InactiveWhileDisarmedOrDisabled) {
  LatencyProfiler& profiler = LatencyProfiler::Global();
  profiler.Reset();
  {
    EnabledScope on(true);
    LatencyProfiler::ArmedScope disarmed(false);
    EXPECT_FALSE(profiler.Active());
    profiler.BeginDecision(0);
    {
      PhaseTimer timer(Phase::kPolicySelect);
      SpinFor(std::chrono::microseconds(100));
    }
    profiler.EndDecision(7, 0.0);
    profiler.RecordBarrierWait(0, 50.0);
    const double busy[2] = {10.0, 20.0};
    profiler.RecordWindow(busy);
  }
  {
    EnabledScope off(false);
    EXPECT_FALSE(profiler.Active());
    profiler.BeginDecision(0);
    {
      PhaseTimer timer(Phase::kPolicySelect);
      SpinFor(std::chrono::microseconds(100));
    }
    profiler.EndDecision(8, 0.0);
  }
  EXPECT_TRUE(profiler.Summary().Empty());
}

TEST(LatencyProfilerTest, ExemplarRingKeepsSlowestKSorted) {
  EnabledScope on(true);
  LatencyProfiler& profiler = LatencyProfiler::Global();
  profiler.Reset();
  constexpr std::size_t kDecisions = LatencyProfiler::kTailExemplars + 8;
  for (std::size_t i = 0; i < kDecisions; ++i) {
    profiler.BeginDecision(0);
    {
      PhaseTimer timer(Phase::kPolicySelect);
      SpinFor(std::chrono::microseconds(30));
    }
    profiler.EndDecision(/*decision_id=*/i + 1,
                         /*tick=*/static_cast<double>(i));
  }
  const LatencyProfileSummary summary = profiler.Summary();
  EXPECT_EQ(summary.decisions, kDecisions);
  ASSERT_EQ(summary.exemplars.size(), LatencyProfiler::kTailExemplars);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < summary.exemplars.size(); ++i) {
    const TailExemplar& exemplar = summary.exemplars[i];
    EXPECT_GE(exemplar.decision_id, 1u);
    EXPECT_LE(exemplar.decision_id, kDecisions);
    ids.insert(exemplar.decision_id);
    if (i > 0) {
      EXPECT_GE(summary.exemplars[i - 1].total_us, exemplar.total_us)
          << "exemplars not sorted slowest-first at " << i;
    }
  }
  // Each ring slot holds a distinct decision.
  EXPECT_EQ(ids.size(), summary.exemplars.size());
  profiler.Reset();
}

TEST(LatencyProfilerTest, ContentionAccountingAndReset) {
  EnabledScope on(true);
  LatencyProfiler& profiler = LatencyProfiler::Global();
  profiler.Reset();

  profiler.RecordBarrierWait(2, 12.5);
  profiler.RecordBarrierWait(2, 12.5);
  const double busy[3] = {10.0, 4.0, 7.0};
  profiler.RecordWindow(busy);
  profiler.RecordCacheAcquisition(0.0, /*contended=*/false);
  profiler.RecordCacheAcquisition(5.25, /*contended=*/true);

  const LatencyProfileSummary summary = profiler.Summary();
  EXPECT_EQ(summary.imbalance.windows, 1u);
  EXPECT_DOUBLE_EQ(summary.imbalance.spread_total_us, 6.0);
  EXPECT_DOUBLE_EQ(summary.imbalance.spread_max_us, 6.0);
  EXPECT_EQ(summary.cache.acquisitions, 2u);
  EXPECT_EQ(summary.cache.contended, 1u);
  EXPECT_DOUBLE_EQ(summary.cache.wait_us, 5.25);
  EXPECT_DOUBLE_EQ(summary.cache.wait_max_us, 5.25);
  const ShardProfile* shard2 = nullptr;
  for (const ShardProfile& shard : summary.shards) {
    if (shard.shard == 2) shard2 = &shard;
  }
  ASSERT_NE(shard2, nullptr);
  EXPECT_EQ(shard2->barrier_waits, 2u);
  EXPECT_DOUBLE_EQ(shard2->barrier_wait_us, 25.0);
  EXPECT_DOUBLE_EQ(shard2->window_busy_us, 7.0);

  profiler.Reset();
  const LatencyProfileSummary after = profiler.Summary();
  EXPECT_TRUE(after.Empty());
  EXPECT_EQ(after.cache.acquisitions, 0u);
  EXPECT_EQ(after.imbalance.windows, 0u);
}

TEST(LatencyProfilerTest, SummaryJsonRoundTripsExactly) {
  LatencyProfileSummary summary;
  summary.decisions = 12345;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    summary.fleet[i].count = 100 + i;
    summary.fleet[i].total_us = 0.1 + static_cast<double>(i) * 1e-7;
    summary.fleet[i].max_us = 1e9 / 3.0 + static_cast<double>(i);
  }
  ShardProfile shard;
  shard.shard = 7;
  shard.decisions = 99;
  shard.phases = summary.fleet;
  shard.barrier_waits = 41;
  shard.barrier_wait_us = 123.4567890123;
  shard.window_busy_us = 2.0 / 3.0;
  summary.shards.push_back(shard);
  summary.imbalance = {17, 1e-12, 98765.4321};
  summary.cache = {1000, 42, 3.14159265358979, 0.25};
  TailExemplar exemplar;
  exemplar.decision_id = 987654321;
  exemplar.tick = 120.5;
  exemplar.shard = 7;
  exemplar.total_us = 456.789;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    exemplar.phase_us[i] = static_cast<double>(i) / 7.0;
  }
  summary.exemplars.push_back(exemplar);

  const std::string text = summary.ToJson().Dump(2);
  const LatencyProfileSummary parsed =
      LatencyProfileSummary::FromJson(JsonValue::Parse(text));
  EXPECT_EQ(parsed, summary);
  // And a second trip through text is byte-stable.
  EXPECT_EQ(parsed.ToJson().Dump(2), text);
}

TEST(LatencyProfilerTest, EmptySummaryRoundTrips) {
  const LatencyProfileSummary empty;
  EXPECT_TRUE(empty.Empty());
  const LatencyProfileSummary parsed = LatencyProfileSummary::FromJson(
      JsonValue::Parse(empty.ToJson().Dump(0)));
  EXPECT_EQ(parsed, empty);
}

}  // namespace
}  // namespace gaugur::obs
