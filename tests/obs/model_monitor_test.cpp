#include "obs/model_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/switch.h"

namespace gaugur::obs {
namespace {

std::vector<double> Feat(double a, double b = 2.0) { return {a, b}; }

/// A synthetic uniform-over-[0,1) single-feature reference with 4 bins.
FeatureReference UniformReference() {
  FeatureReference reference;
  reference.names = {"f0"};
  reference.edges = {{0.25, 0.5, 0.75}};
  reference.probs = {{0.25, 0.25, 0.25, 0.25}};
  reference.samples = 1000;
  return reference;
}

TEST(FeatureDigestTest, DeterministicAndInputSensitive) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0000001};
  EXPECT_EQ(FeatureDigest(a), FeatureDigest(a));
  EXPECT_NE(FeatureDigest(a), FeatureDigest(b));
  EXPECT_NE(FeatureDigest(a), FeatureDigest({}));
}

TEST(PsiTest, IdenticalDistributionIsZero) {
  const std::vector<double> reference = {0.25, 0.25, 0.25, 0.25};
  const std::vector<std::uint64_t> online = {25, 25, 25, 25};
  EXPECT_NEAR(PopulationStabilityIndex(reference, online), 0.0, 1e-12);
}

TEST(PsiTest, ShiftedDistributionExceedsAlertThreshold) {
  const std::vector<double> reference = {0.25, 0.25, 0.25, 0.25};
  // All online mass collapsed into one bin: a drastic shift.
  const std::vector<std::uint64_t> online = {100, 0, 0, 0};
  const double psi = PopulationStabilityIndex(reference, online);
  EXPECT_GT(psi, 0.2);
  // PSI is finite despite the empty bins (proportion floor).
  EXPECT_TRUE(std::isfinite(psi));
}

TEST(PsiTest, EmptyOnlineStreamIsZero) {
  const std::vector<double> reference = {0.5, 0.5};
  const std::vector<std::uint64_t> online = {0, 0};
  EXPECT_EQ(PopulationStabilityIndex(reference, online), 0.0);
}

TEST(FeatureReferenceTest, BinUsesUpperBoundOverEdges) {
  FeatureReference reference;
  reference.names = {"x"};
  reference.edges = {{1.0, 2.0}};
  reference.probs = {{0.3, 0.3, 0.4}};
  EXPECT_EQ(reference.Bin(0, 0.5), 0u);
  EXPECT_EQ(reference.Bin(0, 1.0), 1u);  // values on an edge go right
  EXPECT_EQ(reference.Bin(0, 1.5), 1u);
  EXPECT_EQ(reference.Bin(0, 5.0), 2u);
}

TEST(FeatureReferenceTest, JsonRoundTripsExactly) {
  const FeatureReference reference = UniformReference();
  const FeatureReference parsed =
      FeatureReference::FromJson(JsonValue::Parse(reference.ToJson().Dump()));
  EXPECT_TRUE(parsed == reference);
}

TEST(ModelMonitorTest, JoinsPredictionWithOutcomeAndAttributesMisses) {
  EnabledScope on(true);
  ModelMonitor monitor;

  // CM said "feasible" (prob 0.9 >= 0.5) but the player landed at 50 FPS
  // against a 60 FPS QoS: a CM false positive.
  monitor.RecordPrediction(ModelKind::kCm, 1, Feat(1.0), 0.9, 0.5, true,
                           60.0);
  monitor.ObserveOutcome(1, 50.0, 60.0);

  // RM predicted 70 FPS, decision "feasible", realized 50: overestimate.
  monitor.RecordPrediction(ModelKind::kRm, 2, Feat(2.0), 70.0, 60.0, true,
                           60.0);
  monitor.ObserveOutcome(2, 50.0, 60.0);

  // A violated colocation with no prediction on file: capacity pressure.
  monitor.ObserveOutcome(99, 40.0, 60.0);

  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.cm_predictions, 1u);
  EXPECT_EQ(summary.rm_predictions, 1u);
  EXPECT_EQ(summary.outcomes_joined, 2u);
  EXPECT_EQ(summary.observations_unmatched, 1u);
  EXPECT_EQ(summary.cm_fp, 1u);
  EXPECT_EQ(summary.rm_outcomes, 1u);
  EXPECT_NEAR(summary.rm_mae_fps, 20.0, 1e-12);
  EXPECT_NEAR(summary.rm_bias_fps, 20.0, 1e-12);
  EXPECT_EQ(summary.attr_cm_false_positive, 1u);
  EXPECT_EQ(summary.attr_rm_overestimate, 1u);
  EXPECT_EQ(summary.attr_capacity_pressure, 1u);
}

TEST(ModelMonitorTest, OneObservationJoinsEveryPendingRecordUnderItsKey) {
  EnabledScope on(true);
  ModelMonitor monitor;
  // The scheduler typically asks both models about the same placement.
  monitor.RecordPrediction(ModelKind::kCm, 5, Feat(1.0), 0.8, 0.5, true,
                           60.0);
  monitor.RecordPrediction(ModelKind::kRm, 5, Feat(1.0), 65.0, 60.0, true,
                           60.0);
  monitor.ObserveOutcome(5, 66.0, 60.0);

  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.outcomes_joined, 2u);
  EXPECT_EQ(summary.cm_tp, 1u);
  EXPECT_EQ(summary.rm_outcomes, 1u);
  EXPECT_NEAR(summary.rm_mae_fps, 1.0, 1e-12);
  EXPECT_NEAR(summary.rm_bias_fps, -1.0, 1e-12);
  // A second observation of the same key finds nothing pending.
  monitor.ObserveOutcome(5, 66.0, 60.0);
  EXPECT_EQ(monitor.Summary().observations_unmatched, 1u);
}

TEST(ModelMonitorTest, ConfusionMatrixAndDerivedRatesOverWindow) {
  EnabledScope on(true);
  ModelMonitor monitor;
  const auto cm = [&](std::uint64_t key, double prob, bool decision,
                      double realized) {
    monitor.RecordPrediction(ModelKind::kCm, key, Feat(prob), prob, 0.5,
                             decision, 60.0);
    monitor.ObserveOutcome(key, realized, 60.0);
  };
  cm(1, 0.9, true, 70.0);   // tp
  cm(2, 0.8, true, 50.0);   // fp
  cm(3, 0.2, false, 50.0);  // tn
  cm(4, 0.3, false, 70.0);  // fn

  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.cm_tp, 1u);
  EXPECT_EQ(summary.cm_fp, 1u);
  EXPECT_EQ(summary.cm_tn, 1u);
  EXPECT_EQ(summary.cm_fn, 1u);
  EXPECT_NEAR(summary.cm_precision, 0.5, 1e-12);
  EXPECT_NEAR(summary.cm_recall, 0.5, 1e-12);
  EXPECT_NEAR(summary.cm_fpr, 0.5, 1e-12);
  EXPECT_NEAR(summary.cm_accuracy, 0.5, 1e-12);
}

TEST(ModelMonitorTest, CalibrationBinsReflectObservedRates) {
  EnabledScope on(true);
  ModelMonitorConfig config;
  config.calibration_bins = 10;
  ModelMonitor monitor(config);
  const auto cm = [&](std::uint64_t key, double prob, double realized) {
    monitor.RecordPrediction(ModelKind::kCm, key, Feat(prob), prob, 0.5,
                             prob >= 0.5, 60.0);
    monitor.ObserveOutcome(key, realized, 60.0);
  };
  cm(1, 0.95, 70.0);  // bin 9, positive
  cm(2, 0.95, 50.0);  // bin 9, negative
  cm(3, 0.05, 50.0);  // bin 0, negative

  const ModelMonitorSummary summary = monitor.Summary();
  ASSERT_EQ(summary.cm_calibration.size(), 10u);
  const CalibrationBin& top = summary.cm_calibration[9];
  EXPECT_EQ(top.count, 2u);
  EXPECT_NEAR(top.mean_predicted, 0.95, 1e-12);
  EXPECT_NEAR(top.observed_rate, 0.5, 1e-12);
  const CalibrationBin& bottom = summary.cm_calibration[0];
  EXPECT_EQ(bottom.count, 1u);
  EXPECT_NEAR(bottom.observed_rate, 0.0, 1e-12);
  EXPECT_NEAR(bottom.lo, 0.0, 1e-12);
  EXPECT_NEAR(bottom.hi, 0.1, 1e-12);
}

TEST(ModelMonitorTest, RollingWindowEvictsOldOutcomesFromAggregates) {
  EnabledScope on(true);
  ModelMonitorConfig config;
  config.window = 2;
  ModelMonitor monitor(config);
  const auto rm = [&](std::uint64_t key, double predicted, double realized) {
    monitor.RecordPrediction(ModelKind::kRm, key, Feat(predicted), predicted,
                             0.0, false, 0.0);
    monitor.ObserveOutcome(key, realized, 0.0);
  };
  rm(1, 60.0, 50.0);  // |err| 10 — evicted once the window fills
  rm(2, 60.0, 40.0);  // |err| 20
  rm(3, 60.0, 30.0);  // |err| 30

  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.window, 2u);
  EXPECT_EQ(summary.rm_outcomes, 2u);
  EXPECT_NEAR(summary.rm_mae_fps, 25.0, 1e-12);
  // Whole-run tallies are monotonic and unaffected by window eviction.
  EXPECT_EQ(summary.outcomes_joined, 3u);
  // p95 over the two windowed errors is the larger one (nearest rank).
  EXPECT_NEAR(summary.rm_p95_abs_error_fps, 30.0, 1e-12);
  ASSERT_EQ(monitor.RecentOutcomes().size(), 2u);
  EXPECT_EQ(monitor.RecentOutcomes()[0].prediction.join_key, 2u);
}

TEST(ModelMonitorTest, RingEvictsOldestPendingPredictionWhenFull) {
  EnabledScope on(true);
  ModelMonitorConfig config;
  config.ring_capacity = 2;
  ModelMonitor monitor(config);
  monitor.RecordPrediction(ModelKind::kCm, 1, Feat(1.0), 0.9, 0.5, true,
                           60.0);
  monitor.RecordPrediction(ModelKind::kCm, 2, Feat(2.0), 0.9, 0.5, true,
                           60.0);
  monitor.RecordPrediction(ModelKind::kCm, 3, Feat(3.0), 0.9, 0.5, true,
                           60.0);  // evicts key 1

  EXPECT_EQ(monitor.Summary().evicted_pending, 1u);
  monitor.ObserveOutcome(1, 70.0, 60.0);  // its prediction is gone
  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.observations_unmatched, 1u);
  EXPECT_EQ(summary.outcomes_joined, 0u);
  // The audit log holds the surviving (newest) records in id order.
  const auto log = monitor.AuditLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].join_key, 2u);
  EXPECT_EQ(log[1].join_key, 3u);
  EXPECT_LT(log[0].id, log[1].id);
}

TEST(ModelMonitorTest, DriftDetectedAgainstShiftedSyntheticDistribution) {
  EnabledScope on(true);
  ModelMonitorConfig config;
  config.drift_check_interval = 16;
  ModelMonitor monitor(config);
  monitor.SetReference(ModelKind::kRm, UniformReference());

  // Online stream collapsed into the top bin: drastic shift vs uniform.
  for (std::uint64_t i = 0; i < 64; ++i) {
    monitor.RecordPrediction(ModelKind::kRm, 1000 + i,
                             std::vector<double>{0.9}, 50.0, 0.0, false,
                             0.0);
  }
  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_TRUE(summary.rm_drift.has_reference);
  EXPECT_EQ(summary.rm_drift.reference_samples, 1000u);
  EXPECT_EQ(summary.rm_drift.online_samples, 64u);
  ASSERT_EQ(summary.rm_drift.features.size(), 1u);
  EXPECT_GT(summary.rm_drift.max_psi, 0.2);
  EXPECT_TRUE(summary.rm_drift.features[0].alert);
  EXPECT_EQ(summary.rm_drift.features_over_threshold, 1u);
  // The CM side has no reference installed.
  EXPECT_FALSE(summary.cm_drift.has_reference);

  // An on-distribution stream stays calm.
  ModelMonitor calm(config);
  calm.SetReference(ModelKind::kRm, UniformReference());
  for (std::uint64_t i = 0; i < 64; ++i) {
    const double value = (static_cast<double>(i % 16) + 0.5) / 16.0;
    calm.RecordPrediction(ModelKind::kRm, 2000 + i,
                          std::vector<double>{value}, 50.0, 0.0, false,
                          0.0);
  }
  const ModelMonitorSummary calm_summary = calm.Summary();
  EXPECT_LT(calm_summary.rm_drift.max_psi, 0.1);
  EXPECT_EQ(calm_summary.rm_drift.features_over_threshold, 0u);
}

TEST(ModelMonitorTest, MismatchedFeatureDimensionSkipsDriftAccounting) {
  EnabledScope on(true);
  ModelMonitor monitor;
  monitor.SetReference(ModelKind::kCm, UniformReference());  // 1 feature
  monitor.RecordPrediction(ModelKind::kCm, 1, Feat(0.5, 0.5), 0.9, 0.5,
                           true, 60.0);  // 2 features
  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.cm_drift.online_samples, 0u);
  EXPECT_EQ(summary.cm_predictions, 1u);  // the audit record still lands
}

TEST(ModelMonitorTest, DisabledMutatorsAreNoops) {
  ModelMonitor monitor;
  {
    EnabledScope off(false);
    monitor.RecordPrediction(ModelKind::kCm, 1, Feat(1.0), 0.9, 0.5, true,
                             60.0);
    monitor.ObserveOutcome(1, 50.0, 60.0);
  }
  EXPECT_FALSE(monitor.HasData());
  const ModelMonitorSummary summary = monitor.Summary();
  EXPECT_EQ(summary.cm_predictions + summary.rm_predictions, 0u);
  EXPECT_EQ(summary.observations_unmatched, 0u);
}

TEST(ModelMonitorTest, ResetClearsAllState) {
  EnabledScope on(true);
  ModelMonitor monitor;
  monitor.SetReference(ModelKind::kRm, UniformReference());
  monitor.RecordPrediction(ModelKind::kRm, 1, std::vector<double>{0.9},
                           50.0, 0.0, false, 0.0);
  ASSERT_TRUE(monitor.HasData());
  monitor.Reset();
  EXPECT_FALSE(monitor.HasData());
  EXPECT_TRUE(monitor.Reference(ModelKind::kRm).Empty());
  EXPECT_TRUE(monitor.AuditLog().empty());
}

TEST(ModelMonitorTest, SummaryJsonRoundTripsExactly) {
  EnabledScope on(true);
  ModelMonitor monitor;
  monitor.SetReference(ModelKind::kRm, UniformReference());
  monitor.RecordPrediction(ModelKind::kCm, 1, Feat(1.0), 0.62, 0.5, true,
                           60.0);
  monitor.ObserveOutcome(1, 58.31, 60.0);
  monitor.RecordPrediction(ModelKind::kRm, 2, std::vector<double>{0.77},
                           63.117, 60.0, true, 60.0);
  monitor.ObserveOutcome(2, 59.993, 60.0);
  monitor.ObserveOutcome(3, 41.5, 60.0);

  const ModelMonitorSummary summary = monitor.Summary();
  // Through the document model...
  EXPECT_TRUE(ModelMonitorSummary::FromJson(summary.ToJson()) == summary);
  // ...and through serialized text (shortest round-trippable numbers).
  const ModelMonitorSummary parsed =
      ModelMonitorSummary::FromJson(JsonValue::Parse(summary.ToJson().Dump(2)));
  EXPECT_TRUE(parsed == summary);
}

TEST(ModelMonitorTest, ConcurrentRecordObserveAndSummarize) {
  EnabledScope on(true);
  ModelMonitorConfig config;
  config.ring_capacity = 1 << 15;
  ModelMonitor monitor(config);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&monitor, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto key =
            static_cast<std::uint64_t>(t) * 100000 +
            static_cast<std::uint64_t>(i);
        const double prob = static_cast<double>(i % 100) / 100.0;
        monitor.RecordPrediction(t % 2 == 0 ? ModelKind::kCm
                                            : ModelKind::kRm,
                                 key, std::vector<double>{prob}, prob, 0.5,
                                 prob >= 0.5, 60.0);
        monitor.ObserveOutcome(key, 55.0 + static_cast<double>(i % 10),
                               60.0);
      }
    });
  }
  threads.emplace_back([&monitor] {
    for (int i = 0; i < 200; ++i) {
      (void)monitor.Summary();
      (void)monitor.AuditLog();
      (void)monitor.RecentOutcomes();
      (void)monitor.HasData();
    }
  });
  for (auto& thread : threads) thread.join();

  const ModelMonitorSummary summary = monitor.Summary();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(summary.cm_predictions + summary.rm_predictions, total);
  // Keys are unique, so every observation either joined its own record or
  // (if the ring wrapped first) went unmatched — never both.
  EXPECT_EQ(summary.outcomes_joined + summary.observations_unmatched, total);
}

TEST(RunReportV2Test, CaptureAttachesModelMonitorSectionAndRoundTrips) {
  EnabledScope on(true);
  ModelMonitor& monitor = ModelMonitor::Global();
  monitor.Reset();
  monitor.RecordPrediction(ModelKind::kCm, 7, Feat(1.0), 0.9, 0.5, true,
                           60.0);
  monitor.ObserveOutcome(7, 72.5, 60.0);

  obs::RunReport report = RunReport::Capture("monitor-roundtrip");
  ASSERT_TRUE(report.model_monitor().has_value());
  const std::string json = report.ToJsonString();
  const JsonValue doc = JsonValue::Parse(json);
  EXPECT_EQ(doc.Find("schema")->AsString(), kRunReportSchema);
  ASSERT_NE(doc.Find("model_monitor"), nullptr);

  const RunReport parsed = RunReport::FromJsonString(json);
  ASSERT_TRUE(parsed.model_monitor().has_value());
  EXPECT_TRUE(*parsed.model_monitor() == *report.model_monitor());
  EXPECT_TRUE(parsed.snapshot() == report.snapshot());
  // The text rendering mentions the monitor.
  EXPECT_NE(report.ToText().find("model monitor"), std::string::npos);
  monitor.Reset();
}

TEST(RunReportV2Test, V1DocumentsStillParseWithoutMonitorSection) {
  const RunReport parsed = RunReport::FromJsonString(
      R"({"schema": "gaugur.obs.run_report/v1", "name": "legacy",)"
      R"( "counters": {"lab.measurements": 3}})");
  EXPECT_EQ(parsed.name(), "legacy");
  EXPECT_FALSE(parsed.model_monitor().has_value());
  EXPECT_EQ(parsed.snapshot().counters.at("lab.measurements"), 3u);
}

TEST(RunReportV2Test, ReportWithoutMonitorDataOmitsSection) {
  EnabledScope on(true);
  ModelMonitor::Global().Reset();
  const RunReport report = RunReport::Capture("no-monitor");
  EXPECT_FALSE(report.model_monitor().has_value());
  EXPECT_EQ(report.ToJson().Find("model_monitor"), nullptr);
}

}  // namespace
}  // namespace gaugur::obs
