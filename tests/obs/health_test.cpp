// Health-engine unit tests: rule grammar JSON round-trips, the alert
// lifecycle state machine (pending -> firing hysteresis, resolve
// cooldown, pending cancellation, flap suppression), subscriber
// ordering, the three condition kinds against injected local sources,
// run-report v4 integration (v3 documents still parse), the offline
// firing-window extraction/join, and a concurrent evaluate-while-append
// loop the TSan CI job runs.

#include "obs/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/switch.h"
#include "obs/timeseries.h"

namespace gaugur::obs {
namespace {

/// A fully local engine: nothing leaks into (or reads from) the process
/// globals, so tests control every signal the rules see.
struct LocalWorld {
  Registry registry;
  FleetTimeSeries timeseries;
  EventLog event_log{{/*shard_capacity=*/256, /*num_shards=*/2}};
  HealthEngine engine{HealthEngineConfig{
      /*eval_min_gap_ticks=*/0.0, &registry, /*monitor=*/nullptr,
      &timeseries, &event_log}};
};

AlertRule GaugeRule(const std::string& name, double threshold,
                    int for_ticks, int resolve_ticks) {
  AlertRule rule;
  rule.name = name;
  rule.signal.kind = SignalKind::kGauge;
  rule.signal.name = "test.gauge";
  rule.condition = ConditionKind::kThreshold;
  rule.comparison = Comparison::kAbove;
  rule.threshold = threshold;
  rule.for_ticks = for_ticks;
  rule.resolve_ticks = resolve_ticks;
  return rule;
}

std::vector<std::pair<AlertState, AlertState>> Edges(
    const std::vector<AlertTransition>& transitions) {
  std::vector<std::pair<AlertState, AlertState>> edges;
  for (const AlertTransition& t : transitions) {
    edges.emplace_back(t.from, t.to);
  }
  return edges;
}

TEST(HealthNames, EnumRoundTripsAndRejectUnknown) {
  for (int i = 0; i < 4; ++i) {
    const auto state = static_cast<AlertState>(i);
    AlertState parsed;
    ASSERT_TRUE(AlertStateFromName(AlertStateName(state), &parsed));
    EXPECT_EQ(parsed, state);
  }
  for (int i = 0; i < 7; ++i) {
    const auto kind = static_cast<SignalKind>(i);
    SignalKind parsed;
    ASSERT_TRUE(SignalKindFromName(SignalKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  for (int i = 0; i < 3; ++i) {
    const auto kind = static_cast<ConditionKind>(i);
    ConditionKind parsed;
    ASSERT_TRUE(ConditionKindFromName(ConditionKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  AlertState state;
  EXPECT_FALSE(AlertStateFromName("paging", &state));
  SignalKind kind;
  EXPECT_FALSE(SignalKindFromName("", &kind));
}

TEST(HealthNames, MonitorFieldValueReadsKnownFields) {
  ModelMonitorSummary summary;
  summary.cm_precision = 0.75;
  summary.rm_mae_fps = 3.5;
  summary.cm_drift.max_psi = 1.25;
  summary.qos_violations_observed = 42;
  double value = 0.0;
  ASSERT_TRUE(MonitorFieldValue(summary, "cm_precision", &value));
  EXPECT_DOUBLE_EQ(value, 0.75);
  ASSERT_TRUE(MonitorFieldValue(summary, "rm_mae_fps", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  ASSERT_TRUE(MonitorFieldValue(summary, "cm_max_psi", &value));
  EXPECT_DOUBLE_EQ(value, 1.25);
  ASSERT_TRUE(MonitorFieldValue(summary, "qos_violations_observed", &value));
  EXPECT_DOUBLE_EQ(value, 42.0);
  EXPECT_FALSE(MonitorFieldValue(summary, "not_a_field", &value));
}

TEST(HealthRuleJson, RoundTripsEveryFieldExactly) {
  AlertRule rule;
  rule.name = "burny";
  rule.severity = "critical";
  rule.signal.kind = SignalKind::kCounterRatio;
  rule.signal.name = "bad";
  rule.signal.denominator = "good+bad";
  rule.signal.quantile = 0.5;
  rule.condition = ConditionKind::kBurnRate;
  rule.comparison = Comparison::kBelow;
  rule.threshold = 7.0;
  rule.window_ticks = 11.0;
  rule.fast_window_ticks = 3.0;
  rule.slow_window_ticks = 17.0;
  rule.slo = 0.875;
  rule.burn_threshold = 2.0;
  rule.for_ticks = 4;
  rule.resolve_ticks = 5;
  rule.max_flaps = 6;
  rule.flap_window_ticks = 99.0;

  const AlertRule parsed = AlertRule::FromJson(rule.ToJson());
  EXPECT_EQ(parsed, rule);
  // Sorted-key JsonObject makes re-serialization a fixed point.
  EXPECT_EQ(parsed.ToJson().Dump(), rule.ToJson().Dump());
}

TEST(HealthLifecycle, PendingToFiringHysteresisThenResolve) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", /*threshold=*/10.0, /*for_ticks=*/3,
                                 /*resolve_ticks=*/2));
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  Gauge& gauge = world.registry.GetGauge("test.gauge");
  gauge.Add(50);  // above threshold
  world.engine.Evaluate(1.0);  // true #1 -> pending
  world.engine.Evaluate(2.0);  // true #2 -> still pending, no transition
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].to, AlertState::kPending);
  world.engine.Evaluate(3.0);  // true #3 == for_ticks -> firing
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].from, AlertState::kPending);
  EXPECT_EQ(seen[1].to, AlertState::kFiring);
  EXPECT_EQ(seen[1].rule, "g");
  EXPECT_EQ(seen[1].label, "");
  EXPECT_DOUBLE_EQ(seen[1].value, 50.0);
  EXPECT_DOUBLE_EQ(seen[1].threshold, 10.0);

  gauge.Sub(50);  // back to 0, below threshold
  world.engine.Evaluate(4.0);  // false #1: firing holds
  ASSERT_EQ(seen.size(), 2u);
  world.engine.Evaluate(5.0);  // false #2 == resolve_ticks -> resolved
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2].to, AlertState::kResolved);
  world.engine.Evaluate(6.0);  // false #3
  world.engine.Evaluate(7.0);  // false #4 == 2*resolve_ticks -> inactive
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(Edges(seen),
            (std::vector<std::pair<AlertState, AlertState>>{
                {AlertState::kInactive, AlertState::kPending},
                {AlertState::kPending, AlertState::kFiring},
                {AlertState::kFiring, AlertState::kResolved},
                {AlertState::kResolved, AlertState::kInactive}}));

  const HealthSummary summary = world.engine.Summary();
  EXPECT_EQ(summary.evaluations, 7u);
  EXPECT_EQ(summary.transitions, 4u);
  EXPECT_EQ(summary.alerts_fired, 1u);
  EXPECT_EQ(summary.alerts_resolved, 1u);
  EXPECT_EQ(summary.flaps_suppressed, 0u);
  EXPECT_EQ(summary.firing, 0u);

  // Emitted transitions reconcile 1:1 with the obs.health.* metrics and
  // the alert events appended to the injected log.
  EXPECT_EQ(world.registry.GetCounter("obs.health.transitions").Value(), 4u);
  EXPECT_EQ(world.registry.GetCounter("obs.health.alerts_fired").Value(), 1u);
  EXPECT_EQ(world.registry.GetCounter("obs.health.alerts_resolved").Value(),
            1u);
  EXPECT_EQ(world.registry.GetGauge("obs.health.firing").Value(), 0);
  EXPECT_EQ(world.event_log.Snapshot().size(), 4u);
}

TEST(HealthLifecycle, PendingCancelsOnOneFalseEvaluation) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", 10.0, /*for_ticks=*/3,
                                 /*resolve_ticks=*/2));
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  Gauge& gauge = world.registry.GetGauge("test.gauge");
  gauge.Add(50);
  world.engine.Evaluate(1.0);  // pending
  gauge.Sub(50);
  world.engine.Evaluate(2.0);  // one false evaluation cancels pending
  EXPECT_EQ(Edges(seen),
            (std::vector<std::pair<AlertState, AlertState>>{
                {AlertState::kInactive, AlertState::kPending},
                {AlertState::kPending, AlertState::kInactive}}));
  EXPECT_EQ(world.engine.Summary().alerts_fired, 0u);
}

TEST(HealthLifecycle, ForTicksOneFiresWithoutPending) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", 10.0, /*for_ticks=*/1,
                                 /*resolve_ticks=*/1));
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });
  world.registry.GetGauge("test.gauge").Add(50);
  world.engine.Evaluate(1.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].from, AlertState::kInactive);
  EXPECT_EQ(seen[0].to, AlertState::kFiring);
}

TEST(HealthLifecycle, FlapSuppressionMutesUntilWindowDrains) {
  EnabledScope on(true);
  LocalWorld world;
  AlertRule rule = GaugeRule("flappy", 10.0, /*for_ticks=*/1,
                             /*resolve_ticks=*/1);
  rule.max_flaps = 2;
  rule.flap_window_ticks = 100.0;
  world.engine.AddRule(rule);
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  Gauge& gauge = world.registry.GetGauge("test.gauge");
  // Flap: fire at t=1, 3, 5; resolve+inactive between. The third firing
  // entry exceeds max_flaps=2 inside the 100-tick window and mutes the
  // instance.
  auto pulse = [&](double fire_tick) {
    gauge.Add(50);
    world.engine.Evaluate(fire_tick);  // -> firing
    gauge.Sub(50);
    world.engine.Evaluate(fire_tick + 1.0);  // -> resolved
    world.engine.Evaluate(fire_tick + 1.5);  // -> inactive (2*resolve)
  };
  pulse(1.0);
  pulse(3.0);
  const std::size_t emitted_before = seen.size();
  EXPECT_EQ(emitted_before, 6u);  // two full fire/resolve/inactive cycles
  pulse(5.0);  // entirely muted
  EXPECT_EQ(seen.size(), emitted_before);

  HealthSummary summary = world.engine.Summary();
  EXPECT_EQ(summary.alerts_fired, 2u);
  EXPECT_EQ(summary.flaps_suppressed, 3u);  // muted fire+resolve+inactive
  EXPECT_EQ(summary.firing, 0u);  // muted firings never bump the gauge
  ASSERT_EQ(summary.rules.size(), 1u);
  ASSERT_EQ(summary.rules[0].instances.size(), 1u);
  EXPECT_TRUE(summary.rules[0].instances[0].flap_suppressed);

  // The muted transitions never reached the log either: emitted events
  // still reconcile 1:1 with the counters.
  EXPECT_EQ(world.event_log.Snapshot().size(), emitted_before);
  EXPECT_EQ(world.registry.GetCounter("obs.health.transitions").Value(),
            emitted_before);
  EXPECT_EQ(world.registry.GetCounter("obs.health.flaps_suppressed").Value(),
            3u);

  // Quiet until the flap window drains past the last firing (t=5): the
  // instance may speak again.
  world.engine.Evaluate(110.0);
  gauge.Add(50);
  world.engine.Evaluate(111.0);
  ASSERT_EQ(seen.size(), emitted_before + 1);
  EXPECT_EQ(seen.back().to, AlertState::kFiring);
  summary = world.engine.Summary();
  EXPECT_EQ(summary.alerts_fired, 3u);
  EXPECT_EQ(summary.firing, 1u);
  EXPECT_FALSE(summary.rules[0].instances[0].flap_suppressed);
}

TEST(HealthLifecycle, SubscribersSeeEveryTransitionInOrder) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", 10.0, /*for_ticks=*/1,
                                 /*resolve_ticks=*/1));

  // `calls` interleaves both subscribers: for every transition, the
  // first-subscribed callback must run before the second.
  std::vector<std::pair<int, std::uint64_t>> calls;
  const std::uint64_t first =
      world.engine.Subscribe([&calls](const AlertTransition& t) {
        calls.emplace_back(1, t.id);
      });
  const std::uint64_t second =
      world.engine.Subscribe([&calls](const AlertTransition& t) {
        calls.emplace_back(2, t.id);
      });
  ASSERT_LT(first, second);

  Gauge& gauge = world.registry.GetGauge("test.gauge");
  gauge.Add(50);
  world.engine.Evaluate(1.0);  // firing
  gauge.Sub(50);
  world.engine.Evaluate(2.0);  // resolved
  ASSERT_EQ(calls.size(), 4u);
  for (std::size_t i = 0; i + 1 < calls.size(); i += 2) {
    EXPECT_EQ(calls[i].first, 1);
    EXPECT_EQ(calls[i + 1].first, 2);
    EXPECT_EQ(calls[i].second, calls[i + 1].second);  // same transition
  }
  EXPECT_LT(calls[0].second, calls[2].second);  // ids are emission-ordered

  world.engine.Unsubscribe(first);
  world.engine.Evaluate(3.0);  // inactive (2*resolve_ticks quiet)
  ASSERT_EQ(calls.size(), 5u);
  EXPECT_EQ(calls.back().first, 2);
  world.engine.Unsubscribe(second);
}

TEST(HealthConditions, RateOfChangeOverSlidingWindow) {
  EnabledScope on(true);
  LocalWorld world;
  AlertRule rule;
  rule.name = "rate";
  rule.signal.kind = SignalKind::kCounter;
  rule.signal.name = "test.counter";
  rule.condition = ConditionKind::kRateOfChange;
  rule.threshold = 5.0;  // per-tick
  rule.window_ticks = 10.0;
  rule.for_ticks = 1;
  rule.resolve_ticks = 1;
  world.engine.AddRule(rule);
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  Counter& counter = world.registry.GetCounter("test.counter");
  counter.Add(100);
  world.engine.Evaluate(0.0);  // single sample: no rate yet
  EXPECT_TRUE(seen.empty());
  counter.Add(100);
  world.engine.Evaluate(1.0);  // 100/tick >> 5 -> firing
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].to, AlertState::kFiring);
  EXPECT_GT(seen[0].value, 5.0);

  // The counter goes quiet; once the hot delta ages out of the window
  // the rate collapses and the alert resolves (and then closes).
  for (double tick = 2.0; tick <= 12.0; tick += 1.0) {
    world.engine.Evaluate(tick);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1].to, AlertState::kResolved);
  EXPECT_EQ(seen[2].to, AlertState::kInactive);
}

TEST(HealthConditions, BurnRateNeedsBothWindows) {
  EnabledScope on(true);
  LocalWorld world;
  AlertRule rule;
  rule.name = "burn";
  rule.severity = "critical";
  rule.signal.kind = SignalKind::kCounterRatio;
  rule.signal.name = "test.bad";
  rule.signal.denominator = "test.total";
  rule.condition = ConditionKind::kBurnRate;
  rule.slo = 0.9;  // error budget 0.1
  rule.burn_threshold = 1.0;
  rule.fast_window_ticks = 2.0;
  rule.slow_window_ticks = 6.0;
  rule.for_ticks = 1;
  rule.resolve_ticks = 1;
  world.engine.AddRule(rule);
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  Counter& bad = world.registry.GetCounter("test.bad");
  Counter& total = world.registry.GetCounter("test.total");
  // Ten clean ticks of history (10 requests/tick, none bad).
  for (double tick = 0.0; tick <= 10.0; tick += 1.0) {
    total.Add(10);
    world.engine.Evaluate(tick);
  }
  EXPECT_TRUE(seen.empty());

  // One bad blip: the fast window burns hot (0.25/0.1 = 2.5x) but the
  // slow window stays inside budget, so nobody is paged.
  bad.Add(5);
  total.Add(10);
  world.engine.Evaluate(11.0);
  EXPECT_TRUE(seen.empty());

  // Sustained badness pushes the slow window past budget too: page.
  for (double tick = 12.0; tick <= 14.0; tick += 1.0) {
    bad.Add(5);
    total.Add(10);
    world.engine.Evaluate(tick);
    if (!seen.empty()) break;
  }
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen[0].to, AlertState::kFiring);
  EXPECT_GT(seen[0].value, 1.0);  // fast-window burn multiple
  EXPECT_DOUBLE_EQ(seen[0].threshold, 1.0);
}

TEST(HealthConditions, ServerMinFpsLabelsPerServerAndDrains) {
  EnabledScope on(true);
  LocalWorld world;
  AlertRule rule;
  rule.name = "deficit";
  rule.signal.kind = SignalKind::kServerMinFps;
  rule.condition = ConditionKind::kThreshold;
  rule.comparison = Comparison::kBelow;
  rule.threshold = 60.0;
  rule.for_ticks = 2;
  rule.resolve_ticks = 1;
  world.engine.AddRule(rule);
  std::vector<AlertTransition> seen;
  SubscriptionScope sub(world.engine, [&seen](const AlertTransition& t) {
    seen.push_back(t);
  });

  auto record = [&world](std::size_t server, double tick, double fps) {
    ServerSample sample;
    sample.tick = tick;
    sample.slots.push_back({/*game_id=*/1, fps, {}});
    world.timeseries.Record(server, sample);
  };
  record(0, 1.0, 30.0);  // deficit
  record(1, 1.0, 80.0);  // healthy
  world.engine.Evaluate(1.0);
  record(0, 2.0, 32.0);
  world.engine.Evaluate(2.0);  // second bad eval -> firing on server 0 only
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].to, AlertState::kFiring);
  EXPECT_EQ(seen[1].label, "0");
  EXPECT_EQ(seen[1].signal, SignalKind::kServerMinFps);

  // The server drains (empty sample): its label vanishes from the
  // sample set and the instance steps false until it resolves.
  world.timeseries.Record(0, ServerSample{3.0, {}});
  world.engine.Evaluate(3.0);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2].to, AlertState::kResolved);
  EXPECT_EQ(seen[2].label, "0");
}

TEST(HealthEngineTest, EvalMinGapThrottlesPasses) {
  EnabledScope on(true);
  Registry registry;
  HealthEngine engine{HealthEngineConfig{
      /*eval_min_gap_ticks=*/5.0, &registry, nullptr, nullptr, nullptr}};
  engine.AddRule(GaugeRule("g", 10.0, 1, 1));
  engine.Evaluate(0.0);
  engine.Evaluate(2.0);  // within the gap: skipped
  engine.Evaluate(6.0);
  EXPECT_EQ(engine.Summary().evaluations, 2u);
}

TEST(HealthEngineTest, DisabledEvaluateIsNoop) {
  LocalWorld world;
  {
    EnabledScope on(true);
    world.engine.AddRule(GaugeRule("g", 10.0, 1, 1));
  }
  EnabledScope off(false);
  world.engine.Evaluate(1.0);
  EXPECT_EQ(world.engine.Summary().evaluations, 0u);
}

TEST(HealthSummaryJson, RoundTripsBitExactly) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", 10.0, /*for_ticks=*/2,
                                 /*resolve_ticks=*/2));
  Gauge& gauge = world.registry.GetGauge("test.gauge");
  gauge.Add(50);
  world.engine.Evaluate(1.0);
  world.engine.Evaluate(2.0);  // firing, still live at summary time

  const HealthSummary summary = world.engine.Summary();
  EXPECT_EQ(summary.firing, 1u);
  const HealthSummary parsed = HealthSummary::FromJson(summary.ToJson());
  EXPECT_EQ(parsed, summary);
  EXPECT_EQ(parsed.ToJson().Dump(), summary.ToJson().Dump());
}

TEST(HealthRunReport, CurrentSchemaRoundTripsWithHealthSectionExactly) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.InstallDefaultRules(/*qos_fps=*/60.0);
  EXPECT_TRUE(world.engine.Armed());
  EXPECT_EQ(world.engine.Rules().size(), 8u);
  world.registry.GetGauge("pool.queue_depth").Add(1000);  // over backlog
  world.engine.Evaluate(1.0);
  world.engine.Evaluate(2.0);  // pool_queue_backlog fires

  RunReport report("health-report", world.registry.Snap());
  report.SetHealth(world.engine.Summary());
  const std::string json = report.ToJsonString();
  EXPECT_NE(json.find("\"gaugur.obs.run_report/v5\""), std::string::npos);

  const RunReport parsed = RunReport::FromJsonString(json);
  ASSERT_TRUE(parsed.health().has_value());
  EXPECT_EQ(*parsed.health(), *report.health());
  EXPECT_TRUE(parsed.snapshot() == report.snapshot());
  // Exact round trip: re-serialization reproduces the document.
  EXPECT_EQ(parsed.ToJsonString(), json);
}

TEST(HealthRunReport, V3DocumentsStillParseWithoutHealth) {
  const RunReport v3 = RunReport::FromJsonString(
      R"({"schema": "gaugur.obs.run_report/v3", "name": "legacy",)"
      R"( "counters": {"a": 3}, "gauges": {}, "histograms": {}})");
  EXPECT_EQ(v3.name(), "legacy");
  EXPECT_FALSE(v3.health().has_value());
}

TEST(HealthRunReport, V4DocumentsStillParseWithoutProfile) {
  const RunReport v4 = RunReport::FromJsonString(
      R"({"schema": "gaugur.obs.run_report/v4", "name": "legacy",)"
      R"( "counters": {"a": 3}, "gauges": {}, "histograms": {}})");
  EXPECT_EQ(v4.name(), "legacy");
  EXPECT_FALSE(v4.health().has_value());
  EXPECT_FALSE(v4.profile().has_value());
}

TEST(HealthWindows, ExtractAndJoinFiringWindows) {
  std::vector<Event> events;
  auto add = [&events](std::uint64_t seq, EventKind kind, double tick,
                       std::uint64_t decision_id, JsonObject fields) {
    Event event;
    event.seq = seq;
    event.kind = kind;
    event.tick = tick;
    event.decision_id = decision_id;
    event.fields = std::move(fields);
    events.push_back(std::move(event));
  };
  add(1, EventKind::kAlert, 10.0, 0,
      {{"rule", JsonValue("deficit")},
       {"label", JsonValue("0")},
       {"severity", JsonValue("warning")},
       {"signal", JsonValue("server_min_fps")},
       {"from", JsonValue("pending")},
       {"to", JsonValue("firing")},
       {"value", JsonValue(42.0)},
       {"threshold", JsonValue(60.0)}});
  // An ack event (no from/to) must not open or close a window.
  add(2, EventKind::kAlert, 10.5, 0,
      {{"action", JsonValue("ack_drift")}, {"rule", JsonValue("deficit")}});
  add(3, EventKind::kQosViolation, 12.0, 5, {{"server", JsonValue(0)}});
  add(4, EventKind::kQosViolation, 13.0, 6, {{"server", JsonValue(1)}});
  add(5, EventKind::kQosViolation, 14.0, 5, {{"server", JsonValue(0)}});
  add(6, EventKind::kAlert, 20.0, 0,
      {{"rule", JsonValue("deficit")},
       {"label", JsonValue("0")},
       {"severity", JsonValue("warning")},
       {"signal", JsonValue("server_min_fps")},
       {"from", JsonValue("firing")},
       {"to", JsonValue("resolved")},
       {"value", JsonValue(61.0)},
       {"threshold", JsonValue(60.0)}});
  add(7, EventKind::kQosViolation, 25.0, 9,
      {{"server", JsonValue(0)}});  // after the window

  const std::vector<FiringWindow> windows = ExtractFiringWindows(events);
  ASSERT_EQ(windows.size(), 1u);
  const FiringWindow& window = windows[0];
  EXPECT_EQ(window.rule, "deficit");
  EXPECT_EQ(window.label, "0");
  EXPECT_EQ(window.server, 0);
  EXPECT_TRUE(window.resolved);
  EXPECT_DOUBLE_EQ(window.fired_tick, 10.0);
  EXPECT_DOUBLE_EQ(window.resolved_tick, 20.0);
  EXPECT_DOUBLE_EQ(window.value, 42.0);

  const FiringWindowJoin join = JoinFiringWindow(window, events);
  // Server-scoped: only the two server-0 violations inside the window,
  // and their decision id deduplicated.
  EXPECT_EQ(join.violation_seqs, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(join.decision_ids, (std::vector<std::uint64_t>{5}));
}

TEST(HealthWindows, UnresolvedWindowExtendsToLogEnd) {
  std::vector<Event> events;
  Event firing;
  firing.seq = 1;
  firing.kind = EventKind::kAlert;
  firing.tick = 10.0;
  firing.fields = {{"rule", JsonValue("r")},
                   {"label", JsonValue("")},
                   {"from", JsonValue("pending")},
                   {"to", JsonValue("firing")}};
  events.push_back(firing);
  Event later;
  later.seq = 2;
  later.kind = EventKind::kAlert;
  later.tick = 30.0;
  later.fields = {{"rule", JsonValue("other")},
                  {"label", JsonValue("")},
                  {"from", JsonValue("inactive")},
                  {"to", JsonValue("pending")}};
  events.push_back(later);

  const std::vector<FiringWindow> windows = ExtractFiringWindows(events);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_FALSE(windows[0].resolved);
  EXPECT_DOUBLE_EQ(windows[0].resolved_tick, 30.0);
}

// The TSan job runs this: Evaluate() racing source mutation, event-log
// appends, and Summary() snapshots must stay clean.
TEST(HealthEngineTest, ConcurrentEvaluateWhileAppendIsRaceFree) {
  EnabledScope on(true);
  LocalWorld world;
  world.engine.AddRule(GaugeRule("g", 100.0, 2, 2));
  AlertRule counter_rule;
  counter_rule.name = "c";
  counter_rule.signal.kind = SignalKind::kCounter;
  counter_rule.signal.name = "test.counter";
  counter_rule.condition = ConditionKind::kRateOfChange;
  counter_rule.threshold = 50.0;
  counter_rule.for_ticks = 2;
  counter_rule.resolve_ticks = 2;
  world.engine.AddRule(counter_rule);
  SubscriptionScope sub(world.engine, [&world](const AlertTransition& t) {
    world.event_log.Append(EventKind::kAlert, t.tick, 0,
                           {{"action", JsonValue("ack")},
                            {"rule", JsonValue(t.rule)}});
  });

  std::atomic<bool> stop{false};
  std::thread writer([&world, &stop] {
    double tick = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      tick += 1.0;
      world.registry.GetCounter("test.counter").Add(120);
      world.registry.GetGauge("test.gauge").Add(tick > 50.0 ? -1 : 3);
      ServerSample sample;
      sample.tick = tick;
      sample.slots.push_back({1, 45.0, {}});
      world.timeseries.Record(0, sample);
      world.event_log.Append(EventKind::kArrival, tick, 0,
                             {{"game_id", JsonValue(1)}});
    }
  });
  std::thread reader([&world, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)world.engine.Summary();
    }
  });
  for (double tick = 1.0; tick <= 400.0; tick += 1.0) {
    world.engine.Evaluate(tick);
  }
  stop.store(true);
  writer.join();
  reader.join();
  EXPECT_EQ(world.engine.Summary().evaluations, 400u);
}

}  // namespace
}  // namespace gaugur::obs
