// Event-log unit tests: JSONL exact round-trip, kind-name wire format,
// ring overflow (drop-oldest, drops counted), the disabled no-op path,
// and a multi-threaded append + concurrent-flush loop the TSan CI job
// runs to pin the sharded log race-free.

#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/switch.h"

namespace gaugur::obs {
namespace {

Event MakeEvent(EventKind kind, double tick, std::uint64_t decision_id,
                JsonObject fields) {
  Event event;
  event.kind = kind;
  event.tick = tick;
  event.decision_id = decision_id;
  event.fields = std::move(fields);
  return event;
}

TEST(EventKindNames, RoundTripAndRejectUnknown) {
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EventKind parsed;
    ASSERT_TRUE(EventKindFromName(EventKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed;
  EXPECT_FALSE(EventKindFromName("not_a_kind", &parsed));
  EXPECT_FALSE(EventKindFromName("", &parsed));
}

TEST(EventLog, AppendStampsMonotonicSequence) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/16, /*num_shards=*/2});
  for (int i = 0; i < 10; ++i) {
    log.Append(EventKind::kArrival, static_cast<double>(i), 0,
               {{"game_id", JsonValue(i)}});
  }
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(log.TotalAppended(), 10u);
  EXPECT_EQ(log.TotalDropped(), 0u);
}

TEST(EventLog, JsonlRoundTripIsExact) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/32, /*num_shards=*/1});
  // Awkward doubles (non-terminating binary fractions, negatives) and a
  // nested payload: the round trip must be bit-exact, not approximate.
  log.Append(EventKind::kDecision, 0.1 + 0.2, 1,
             {{"min_margin", JsonValue(-3.0000000000000004)},
              {"candidates",
               JsonValue(JsonArray{JsonValue(JsonObject{
                   {"feasible", JsonValue(true)},
                   {"queries", JsonValue(4)}})})}});
  log.Append(EventKind::kQosViolation, 17.25, 1,
             {{"dominant_resource", JsonValue("GPU-CE")},
              {"realized_fps", JsonValue(51.4999999999999)}});
  log.Append(EventKind::kRetrain, 0.0, 0, {{"model", JsonValue("rm")}});

  const std::vector<Event> snapshot = log.Snapshot();
  const std::vector<Event> parsed = EventLog::ParseJsonl(log.ToJsonl());
  EXPECT_EQ(parsed, snapshot);

  // And the serialization itself is byte-stable across dumps (sorted
  // keys, compact lines).
  EXPECT_EQ(log.ToJsonl(), log.ToJsonl());
}

TEST(EventLog, ParseJsonlRejectsWrongSchema) {
  EXPECT_THROW(
      EventLog::ParseJsonl(
          R"({"schema": "gaugur.obs.event/v999", "seq": 1, "tick": 0,)"
          R"( "kind": "arrival", "decision_id": 0, "fields": {}})"),
      std::logic_error);
}

TEST(EventLog, ParseJsonlSkipsBlankLines) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/8, /*num_shards=*/1});
  log.Append(EventKind::kPowerOn, 1.0, 0, {{"server", JsonValue(0)}});
  const std::string text = "\n" + log.ToJsonl() + "\n\n";
  EXPECT_EQ(EventLog::ParseJsonl(text).size(), 1u);
}

TEST(EventLog, RingOverflowDropsOldestAndCounts) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/4, /*num_shards=*/1});
  for (int i = 0; i < 10; ++i) {
    log.Append(EventKind::kArrival, static_cast<double>(i), 0,
               {{"game_id", JsonValue(i)}});
  }
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(log.TotalAppended(), 10u);
  EXPECT_EQ(log.TotalDropped(), 6u);
  // The survivors are the newest four, still in order.
  EXPECT_EQ(events.front().tick, 6.0);
  EXPECT_EQ(events.back().tick, 9.0);
}

TEST(EventLog, DisabledAppendIsNoOp) {
  EnabledScope off(false);
  EventLog log;
  log.Append(EventKind::kArrival, 1.0, 0, {{"game_id", JsonValue(3)}});
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.TotalAppended(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.ToJsonl(), "");
}

TEST(EventLog, DecisionIdsAreMonotonicAcrossClear) {
  EventLog log;
  const std::uint64_t a = log.NextDecisionId();
  const std::uint64_t b = log.NextDecisionId();
  EXPECT_GT(a, 0u);  // 0 is reserved for "no decision"
  EXPECT_GT(b, a);
  log.Clear();
  EXPECT_GT(log.NextDecisionId(), b);
}

TEST(EventLog, ClearResetsTallies) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/2, /*num_shards=*/1});
  for (int i = 0; i < 5; ++i) {
    log.Append(EventKind::kDeparture, 0.0, 0, {});
  }
  EXPECT_GT(log.TotalDropped(), 0u);
  log.Clear();
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.TotalDropped(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(EventLog, EventJsonRejectsMissingFields) {
  Event event = MakeEvent(EventKind::kDecision, 1.5, 7,
                          {{"choice", JsonValue(0)}});
  event.seq = 3;
  JsonValue doc = event.ToJson();
  EXPECT_EQ(Event::FromJson(doc), event);

  JsonObject broken = doc.AsObject();
  broken.erase("kind");
  EXPECT_THROW(Event::FromJson(JsonValue(broken)), std::logic_error);
}

TEST(EventLog, ConcurrentAppendAndFlushIsSafe) {
  EnabledScope on(true);
  EventLog log({/*shard_capacity=*/256, /*num_shards=*/4});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;

  std::atomic<bool> stop{false};
  // A reader flushing concurrently with the appenders: Snapshot and
  // ToJsonl must see internally consistent (seq-sorted, parseable) views.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<Event> events = log.Snapshot();
      for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].seq, events[i].seq);
      }
      // Every concurrent dump parses cleanly and stays seq-sorted.
      const std::vector<Event> parsed = EventLog::ParseJsonl(log.ToJsonl());
      for (std::size_t i = 1; i < parsed.size(); ++i) {
        EXPECT_LT(parsed[i - 1].seq, parsed[i].seq);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(EventKind::kArrival, static_cast<double>(i), 0,
                   {{"thread", JsonValue(t)}, {"i", JsonValue(i)}});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(log.TotalAppended(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const std::vector<Event> events = log.Snapshot();
  EXPECT_EQ(events.size() + log.TotalDropped(), log.TotalAppended());
  // Sequence numbers are unique across shards.
  std::set<std::uint64_t> seqs;
  for (const Event& event : events) seqs.insert(event.seq);
  EXPECT_EQ(seqs.size(), events.size());
}

}  // namespace
}  // namespace gaugur::obs
