// Forensics-summary tests: building the digest from an event-log
// snapshot (counts, decision linkage, bounded recap tail), its JSON
// round trip, and the run-report /v3 integration including backward
// compatibility with /v2 and /v1 documents.

#include "obs/forensics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/report.h"
#include "obs/switch.h"
#include "obs/timeseries.h"

namespace gaugur::obs {
namespace {

Event Decision(std::uint64_t seq, std::uint64_t decision_id) {
  Event event;
  event.seq = seq;
  event.tick = static_cast<double>(seq);
  event.kind = EventKind::kDecision;
  event.decision_id = decision_id;
  event.fields["target_server"] = JsonValue(0);
  return event;
}

Event Violation(std::uint64_t seq, std::uint64_t decision_id,
                double realized_fps) {
  Event event;
  event.seq = seq;
  event.tick = static_cast<double>(seq);
  event.kind = EventKind::kQosViolation;
  event.decision_id = decision_id;
  event.fields["server"] = JsonValue(2);
  event.fields["victim_game"] = JsonValue(7);
  event.fields["realized_fps"] = JsonValue(realized_fps);
  event.fields["qos_fps"] = JsonValue(60.0);
  event.fields["dominant_resource"] = JsonValue("GPU-CE");
  event.fields["offender_game"] = JsonValue(3);
  return event;
}

TEST(BuildForensics, CountsKindsAndLinksViolations) {
  std::vector<Event> events;
  events.push_back(Decision(1, 1));
  events.push_back(Violation(2, 1, 55.0));   // linked: decision 1 is present
  events.push_back(Violation(3, 0, 52.0));   // unlinked: no decision id
  events.push_back(Violation(4, 99, 50.0));  // unlinked: decision not in log
  Event arrival;
  arrival.seq = 5;
  arrival.kind = EventKind::kArrival;
  events.push_back(arrival);

  FleetTimeSeries::Summary ts;
  ts.servers = 3;
  ts.samples_seen = 100;
  ts.samples_kept = 40;

  const ForensicsSummary summary =
      BuildForensics(events, /*dropped=*/6, ts);
  EXPECT_EQ(summary.events, 5u);
  EXPECT_EQ(summary.events_dropped, 6u);
  EXPECT_EQ(summary.decisions, 1u);
  EXPECT_EQ(summary.violations, 3u);
  EXPECT_EQ(summary.violations_linked, 1u);
  EXPECT_EQ(summary.events_by_kind.at("decision"), 1u);
  EXPECT_EQ(summary.events_by_kind.at("qos_violation"), 3u);
  EXPECT_EQ(summary.events_by_kind.at("arrival"), 1u);
  EXPECT_EQ(summary.ts_servers, 3u);
  EXPECT_EQ(summary.ts_samples_kept, 40u);
  EXPECT_FALSE(summary.Empty());

  ASSERT_EQ(summary.recent_violations.size(), 3u);
  const ViolationRecap& recap = summary.recent_violations.front();
  EXPECT_EQ(recap.seq, 2u);
  EXPECT_EQ(recap.decision_id, 1u);
  EXPECT_EQ(recap.server, 2u);
  EXPECT_EQ(recap.victim_game, 7);
  EXPECT_EQ(recap.realized_fps, 55.0);
  EXPECT_EQ(recap.qos_fps, 60.0);
  EXPECT_EQ(recap.dominant_resource, "GPU-CE");
  EXPECT_EQ(recap.offender_game, 3);
}

TEST(BuildForensics, RecapTailIsBoundedNewestLast) {
  std::vector<Event> events;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    events.push_back(Violation(i, 0, 50.0 + static_cast<double>(i)));
  }
  const ForensicsSummary summary =
      BuildForensics(events, 0, {}, /*max_recaps=*/4);
  EXPECT_EQ(summary.violations, 10u);
  ASSERT_EQ(summary.recent_violations.size(), 4u);
  EXPECT_EQ(summary.recent_violations.front().seq, 7u);
  EXPECT_EQ(summary.recent_violations.back().seq, 10u);
}

TEST(ForensicsSummary, JsonRoundTripsExactly) {
  std::vector<Event> events;
  events.push_back(Decision(1, 1));
  events.push_back(Violation(2, 1, 51.333333333333336));
  FleetTimeSeries::Summary ts;
  ts.servers = 1;
  ts.samples_seen = 7;
  ts.samples_kept = 7;
  const ForensicsSummary summary = BuildForensics(events, 0, ts);

  const ForensicsSummary parsed =
      ForensicsSummary::FromJson(summary.ToJson());
  EXPECT_EQ(parsed, summary);
  // Byte-stable: sorted keys make re-serialization a fixed point.
  EXPECT_EQ(parsed.ToJson().Dump(), summary.ToJson().Dump());
}

TEST(RunReportForensics, CaptureEmitsCurrentSchemaWithForensicsSection) {
  EnabledScope on(true);
  EventLog& log = EventLog::Global();
  log.Clear();
  FleetTimeSeries::Global().Clear();

  const std::uint64_t id = log.NextDecisionId();
  log.Append(EventKind::kDecision, 1.0, id,
             {{"target_server", JsonValue(0)}});
  log.Append(EventKind::kQosViolation, 2.0, id,
             {{"server", JsonValue(0)},
              {"victim_game", JsonValue(4)},
              {"realized_fps", JsonValue(48.5)},
              {"qos_fps", JsonValue(60.0)},
              {"dominant_resource", JsonValue("MEM-BW")},
              {"offender_game", JsonValue(9)}});

  const RunReport report = RunReport::Capture("forensics-test");
  ASSERT_TRUE(report.forensics().has_value());
  EXPECT_EQ(report.forensics()->violations, 1u);
  EXPECT_EQ(report.forensics()->violations_linked, 1u);

  const JsonValue doc = JsonValue::Parse(report.ToJsonString());
  EXPECT_EQ(doc.Find("schema")->AsString(),
            std::string("gaugur.obs.run_report/v5"));
  ASSERT_NE(doc.Find("forensics"), nullptr);

  const RunReport parsed = RunReport::FromJsonString(report.ToJsonString());
  ASSERT_TRUE(parsed.forensics().has_value());
  EXPECT_EQ(*parsed.forensics(), *report.forensics());
  log.Clear();
  FleetTimeSeries::Global().Clear();
}

TEST(RunReportForensics, V2AndV1DocumentsStillParse) {
  const RunReport v2 = RunReport::FromJsonString(
      R"({"schema": "gaugur.obs.run_report/v2", "name": "legacy",)"
      R"( "counters": {"a": 3}, "gauges": {}, "histograms": {}})");
  EXPECT_EQ(v2.name(), "legacy");
  EXPECT_FALSE(v2.forensics().has_value());

  const RunReport v1 = RunReport::FromJsonString(
      R"({"schema": "gaugur.obs.run_report/v1", "name": "older"})");
  EXPECT_FALSE(v1.forensics().has_value());
}

}  // namespace
}  // namespace gaugur::obs
