// Edge-case coverage for the obs JSON document model: non-finite numbers,
// control-character escaping, deep nesting, and run-report /v2 dump
// stability (dump → parse → dump is a fixed point).

#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/switch.h"

namespace gaugur::obs {
namespace {

TEST(JsonEdgeTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).Dump(),
            "null");

  JsonArray mixed;
  mixed.emplace_back(1.5);
  mixed.emplace_back(std::nan(""));
  mixed.emplace_back(3.0);
  const std::string dumped = JsonValue(std::move(mixed)).Dump();
  EXPECT_EQ(dumped, "[1.5,null,3]");
  // The null parses back as JSON null, not as a number.
  const JsonValue parsed = JsonValue::Parse(dumped);
  EXPECT_TRUE(parsed.AsArray()[1].IsNull());
}

TEST(JsonEdgeTest, NumbersRoundTripExactly) {
  for (const double value :
       {0.0, -0.0, 1.0, -1.0, 0.1, 1e-300, 1e300, 3.141592653589793,
        2.2250738585072014e-308, 9007199254740991.0, 123456.789}) {
    const JsonValue parsed = JsonValue::Parse(JsonValue(value).Dump());
    EXPECT_EQ(parsed.AsNumber(), value) << "value=" << value;
  }
}

TEST(JsonEdgeTest, ControlCharactersEscapeAndRoundTrip) {
  std::string raw = "a";
  raw.push_back('\x01');
  raw += "b\tc\nd\"e\\f";
  raw.push_back('\x1f');

  const std::string escaped = JsonEscape(raw);
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
  EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
  EXPECT_NE(escaped.find("\\t"), std::string::npos);
  EXPECT_NE(escaped.find("\\n"), std::string::npos);
  EXPECT_NE(escaped.find("\\\""), std::string::npos);
  EXPECT_NE(escaped.find("\\\\"), std::string::npos);

  const JsonValue parsed = JsonValue::Parse(JsonValue(raw).Dump());
  EXPECT_EQ(parsed.AsString(), raw);

  // Control characters in object keys survive a full round trip too.
  JsonObject object;
  object[raw] = 7;
  const JsonValue reparsed =
      JsonValue::Parse(JsonValue(std::move(object)).Dump(2));
  ASSERT_NE(reparsed.Find(raw), nullptr);
  EXPECT_EQ(reparsed.Find(raw)->AsNumber(), 7.0);
}

TEST(JsonEdgeTest, DeeplyNestedArraysRoundTrip) {
  constexpr int kDepth = 200;
  JsonValue nested = JsonValue(std::string("leaf"));
  for (int i = 0; i < kDepth; ++i) {
    JsonArray wrapper;
    wrapper.push_back(std::move(nested));
    nested = JsonValue(std::move(wrapper));
  }
  const std::string dumped = nested.Dump();
  const JsonValue parsed = JsonValue::Parse(dumped);
  EXPECT_TRUE(parsed == nested);
  // Walk back down to the leaf to make sure depth was preserved.
  const JsonValue* cursor = &parsed;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(cursor->IsArray());
    ASSERT_EQ(cursor->AsArray().size(), 1u);
    cursor = &cursor->AsArray()[0];
  }
  EXPECT_EQ(cursor->AsString(), "leaf");
}

TEST(JsonEdgeTest, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::Parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("[1, 2,]"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), JsonParseError);
  EXPECT_THROW(JsonValue::Parse("nul"), JsonParseError);
}

TEST(JsonEdgeTest, RunReportDumpIsAFixedPoint) {
  EnabledScope on(true);
  ModelMonitor& monitor = ModelMonitor::Global();
  monitor.Reset();
  // Populate the monitor with awkward fractions so the stability check
  // exercises shortest-round-trip number formatting, not just integers.
  const std::vector<double> cm_features = {0.1, 0.2, 0.3};
  monitor.RecordPrediction(ModelKind::kCm, 11, cm_features, 0.6180339887,
                           0.5, true, 60.0);
  monitor.ObserveOutcome(11, 59.333333333333336, 60.0);
  const std::vector<double> rm_features = {1.0 / 3.0};
  monitor.RecordPrediction(ModelKind::kRm, 12, rm_features, 61.7, 60.0, true,
                           60.0);
  monitor.ObserveOutcome(12, 58.9, 60.0);

  const RunReport report = RunReport::Capture("fixed-point");
  ASSERT_TRUE(report.model_monitor().has_value());
  const std::string first = report.ToJsonString();
  const std::string second =
      RunReport::FromJsonString(first).ToJsonString();
  EXPECT_EQ(first, second);
  monitor.Reset();
}

}  // namespace
}  // namespace gaugur::obs
