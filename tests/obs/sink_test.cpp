// Streaming-pipeline tests: segment rotation exactness (a line never
// splits across segments), manifest round-trip, metrics-delta semantics,
// timeseries sealed handoff, the exact-replay invariant (concatenated
// segments == monolithic dump, byte for byte), drop_oldest accounting
// (manifest drops == obs.sink.dropped), concurrent append-while-draining
// (the TSan CI job runs this suite), exit-flush hook ordering, and the
// write-error counter. Everything uses local EventLog / FleetTimeSeries /
// Registry instances so sequence numbers start fresh per test.

#include "obs/sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/stream.h"
#include "obs/switch.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace gaugur::obs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("gaugur_sink_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Concatenates a stream's segments in manifest order.
std::string ConcatSegments(const std::string& dir, const Manifest& manifest,
                           const std::string& stream) {
  std::string all;
  const auto it = manifest.streams.find(stream);
  if (it == manifest.streams.end()) return all;
  for (const SegmentInfo& segment : it->second.segments) {
    all += ReadFile(dir + "/" + segment.file);
  }
  return all;
}

TEST(SegmentWriter, RotatesBeforeLineThatWouldOverflow) {
  const std::string dir = TempDir("rotate");
  SegmentWriter writer(dir, "events", /*max_segment_bytes=*/50);
  const std::string line(30, 'x');  // 31 bytes with newline

  EXPECT_TRUE(writer.Append(line, 1, 0.5));   // opens segment 1
  EXPECT_TRUE(writer.Append(line, 2, 1.5));   // 62 > 50 -> new segment
  EXPECT_FALSE(writer.Append(std::string(5, 'y'), 3, 2.5));  // fits
  writer.Close();

  const StreamManifest& summary = writer.Summary();
  ASSERT_EQ(summary.segments.size(), 2u);
  EXPECT_EQ(summary.segments[0].file, "events-00001.jsonl");
  EXPECT_EQ(summary.segments[1].file, "events-00002.jsonl");
  EXPECT_EQ(summary.segments[0].lines, 1u);
  EXPECT_EQ(summary.segments[1].lines, 2u);
  EXPECT_EQ(summary.lines_total, 3u);
  EXPECT_EQ(summary.segments[0].seq_min, 1u);
  EXPECT_EQ(summary.segments[0].seq_max, 1u);
  EXPECT_EQ(summary.segments[1].seq_min, 2u);
  EXPECT_EQ(summary.segments[1].seq_max, 3u);
  EXPECT_EQ(summary.segments[1].tick_min, 1.5);
  EXPECT_EQ(summary.segments[1].tick_max, 2.5);

  // No line was split: every segment ends in a newline and the contents
  // concatenate to exactly what was appended.
  EXPECT_EQ(ReadFile(dir + "/events-00001.jsonl"), line + "\n");
  EXPECT_EQ(ReadFile(dir + "/events-00002.jsonl"),
            line + "\n" + std::string(5, 'y') + "\n");

  // An oversized line still lands whole (its own segment, never split).
  SegmentWriter big(dir, "big", /*max_segment_bytes=*/10);
  const std::string huge(80, 'z');
  big.Append(huge, 1, 0.0);
  big.Append(huge, 2, 1.0);
  big.Close();
  EXPECT_EQ(big.Summary().segments.size(), 2u);
  EXPECT_EQ(ReadFile(dir + "/big-00001.jsonl"), huge + "\n");
  fs::remove_all(dir);
}

TEST(StreamManifest, RoundTripsThroughJsonAndDisk) {
  Manifest manifest;
  manifest.backpressure = "drop_oldest";
  manifest.finalized = true;
  StreamManifest events;
  SegmentInfo segment;
  segment.file = "events-00001.jsonl";
  segment.lines = 12;
  segment.bytes = 3456;
  segment.seq_min = 1;
  segment.seq_max = 12;
  segment.tick_min = 0.25;
  segment.tick_max = 17.75;
  events.segments.push_back(segment);
  events.lines_total = 12;
  events.dropped = 3;
  events.write_errors = 1;
  manifest.streams["events"] = events;
  manifest.streams["metrics_delta"] = StreamManifest{};

  EXPECT_EQ(Manifest::FromJson(manifest.ToJson()), manifest);

  const std::string dir = TempDir("manifest");
  ASSERT_TRUE(manifest.Write(dir));
  Manifest loaded;
  ASSERT_TRUE(Manifest::Load(dir, &loaded));
  EXPECT_EQ(loaded, manifest);
  // The write is atomic (tmp + rename): no tmp file left behind.
  EXPECT_FALSE(fs::exists(dir + "/manifest.json.tmp"));
  fs::remove_all(dir);
}

TEST(StreamManifest, SelectSegmentsByRangeOverlap) {
  StreamManifest stream;
  const auto add = [&](double tick_min, double tick_max, std::uint64_t s_min,
                       std::uint64_t s_max) {
    SegmentInfo segment;
    segment.lines = 1;
    segment.tick_min = tick_min;
    segment.tick_max = tick_max;
    segment.seq_min = s_min;
    segment.seq_max = s_max;
    stream.segments.push_back(segment);
  };
  add(0.0, 10.0, 1, 100);
  add(10.0, 20.0, 101, 200);
  add(30.0, 40.0, 201, 300);

  EXPECT_EQ(SelectSegmentsByTick(stream, 12.0, 15.0),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(SelectSegmentsByTick(stream, 9.0, 31.0),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(SelectSegmentsByTick(stream, 21.0, 29.0).empty());
  EXPECT_EQ(SelectSegmentsBySeq(stream, 150, 250),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(SelectSegmentsBySeq(stream, 301, 400).empty());
}

TEST(MetricsDelta, DeltaSinceReportsOnlyChanges) {
  EnabledScope on(true);
  Registry registry;
  Counter& hits = registry.GetCounter("hits");
  Gauge& depth = registry.GetGauge("depth");
  registry.GetCounter("idle");  // never incremented
  hits.Add(3);
  depth.Add(2);
  const Snapshot baseline = registry.Snap();

  hits.Add(2);
  const Snapshot delta = registry.Snap().DeltaSince(baseline);
  // Counters report the increment; untouched entries are omitted.
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters.at("hits"), 2u);
  EXPECT_TRUE(delta.gauges.empty());

  depth.Sub(1);
  const Snapshot delta2 = registry.Snap().DeltaSince(baseline);
  // Gauges report the level, not the increment.
  EXPECT_EQ(delta2.gauges.at("depth"), 1);

  // An idle interval produces an empty delta.
  const Snapshot current = registry.Snap();
  const Snapshot idle = current.DeltaSince(current);
  EXPECT_TRUE(idle.counters.empty());
  EXPECT_TRUE(idle.gauges.empty());
  EXPECT_TRUE(idle.histograms.empty());

  // The wire line round-trips structurally.
  const JsonValue line = MetricsDeltaToJson(delta, 7, 12.5);
  EXPECT_EQ(line.Find("schema")->AsString(), kMetricsDeltaSchema);
  EXPECT_EQ(line.Find("seq")->AsNumber(), 7.0);
  EXPECT_EQ(line.Find("counters")->Find("hits")->AsNumber(), 2.0);
}

TEST(TimeseriesStreaming, SealedSegmentsCarryFullFidelity) {
  EnabledScope on(true);
  FleetTimeSeries series({/*capacity_per_server=*/4});
  series.SetStreaming(true, /*seal_after=*/3);

  for (int i = 0; i < 7; ++i) {
    ServerSample sample;
    sample.tick = static_cast<double>(i);
    sample.slots.push_back({/*game_id=*/i, /*fps=*/60.0 + i, {0.1, 0.2}});
    series.Record(0, std::move(sample));
  }
  // The in-memory ring thinned (capacity 4) but the stream must not.
  EXPECT_LE(series.Series(0).size(), 4u);

  std::vector<SealedSeriesSegment> sealed = series.DrainSealed();
  ASSERT_EQ(sealed.size(), 2u);  // two full seals of 3; 1 still staged
  EXPECT_EQ(sealed[0].samples.size(), 3u);
  EXPECT_EQ(sealed[1].samples.size(), 3u);

  std::vector<SealedSeriesSegment> rest =
      series.DrainSealed(/*seal_partial=*/true);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].samples.size(), 1u);

  double expected_tick = 0.0;
  for (const auto* batch : {&sealed, &rest}) {
    for (const SealedSeriesSegment& segment : *batch) {
      EXPECT_EQ(segment.server, 0u);
      for (const ServerSample& sample : segment.samples) {
        EXPECT_EQ(sample.tick, expected_tick);
        expected_tick += 1.0;
      }
    }
  }
  EXPECT_EQ(expected_tick, 7.0);
  EXPECT_EQ(series.StreamDropped(), 0u);

  // The timeseries wire line parses back to the same sample.
  ServerSample sample;
  sample.tick = 3.25;
  sample.slots.push_back({/*game_id=*/5, /*fps=*/58.5, {0.5, 0.25, 0.125}});
  const std::string line =
      TimeseriesLineToJson(9, 2, sample).Dump(/*indent=*/-1);
  const std::vector<TimeseriesPoint> parsed = ParseTimeseriesJsonl(line);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 9u);
  EXPECT_EQ(parsed[0].server, 2u);
  EXPECT_EQ(parsed[0].sample, sample);
}

/// Appends a deterministic event mix to `log`.
void AppendWorkload(EventLog& log, int count) {
  for (int i = 0; i < count; ++i) {
    JsonObject fields;
    fields["i"] = JsonValue(i);
    fields["fps"] = JsonValue(60.0 - 0.1 * i);
    log.Append(i % 3 == 0 ? EventKind::kDecision : EventKind::kArrival,
               static_cast<double>(i) * 0.5,
               i % 3 == 0 ? static_cast<std::uint64_t>(i) : 0,
               std::move(fields));
  }
}

TEST(TelemetrySink, StreamedSegmentsReplayByteIdenticalToSnapshot) {
  EnabledScope on(true);
  const std::string dir = TempDir("replay");

  // Run A: streamed through a sink with a small segment cap so the run
  // rotates several times.
  EventLog streamed({/*shard_capacity=*/64, /*num_shards=*/4});
  FleetTimeSeries series;
  Registry registry;
  {
    SinkConfig config;
    config.directory = dir;
    config.max_segment_bytes = 2048;
    config.flush_interval_ms = 1;
    config.event_log = &streamed;
    config.timeseries = &series;
    config.registry = &registry;
    TelemetrySink sink(std::move(config));
    AppendWorkload(streamed, 300);
    sink.Stop();
    const TelemetrySink::Stats stats = sink.GetStats();
    EXPECT_EQ(stats.events_written, 300u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.write_errors, 0u);
    EXPECT_GT(stats.rotations, 0u);
  }
  // Drained entries were released as the run went.
  EXPECT_EQ(streamed.Residency(), 0u);
  EXPECT_EQ(streamed.TotalDropped(), 0u);

  // Run B: identical appends into a fresh log, dumped monolithically.
  EventLog monolithic({/*shard_capacity=*/1024, /*num_shards=*/4});
  AppendWorkload(monolithic, 300);

  Manifest manifest;
  ASSERT_TRUE(Manifest::Load(dir, &manifest));
  EXPECT_TRUE(manifest.finalized);
  const StreamManifest& events = manifest.streams.at(kEventsStream);
  EXPECT_GT(events.segments.size(), 1u);
  EXPECT_EQ(events.lines_total, 300u);
  EXPECT_EQ(events.dropped, 0u);
  EXPECT_EQ(events.write_errors, 0u);

  // The invariant that makes streaming trustworthy: concatenated
  // segments are byte-identical to the non-streaming snapshot dump, and
  // the manifest's per-segment line counts match the files.
  const std::string concat = ConcatSegments(dir, manifest, kEventsStream);
  EXPECT_EQ(concat, monolithic.ToJsonl());
  for (const SegmentInfo& segment : events.segments) {
    const std::string text = ReadFile(dir + "/" + segment.file);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  std::count(text.begin(), text.end(), '\n')),
              segment.lines);
    EXPECT_EQ(text.size(), segment.bytes);
  }
  const std::vector<Event> parsed = EventLog::ParseJsonl(concat);
  EXPECT_EQ(parsed, monolithic.Snapshot());
  fs::remove_all(dir);
}

TEST(TelemetrySink, ConcurrentAppendWhileDrainingIsLossless) {
  EnabledScope on(true);
  const std::string dir = TempDir("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;

  // Shard rings far smaller than the workload: with block backpressure
  // the writer MUST drain mid-run or the appenders would stall forever.
  EventLog log({/*shard_capacity=*/32, /*num_shards=*/4});
  FleetTimeSeries series;
  Registry registry;
  SinkConfig config;
  config.directory = dir;
  config.flush_interval_ms = 1;
  config.backpressure = OverflowPolicy::kBlock;
  config.event_log = &log;
  config.timeseries = &series;
  config.registry = &registry;
  TelemetrySink sink(std::move(config));

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(EventKind::kArrival, static_cast<double>(i), 0,
                   {{"thread", JsonValue(t)}, {"i", JsonValue(i)}});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  sink.Stop();

  EXPECT_EQ(log.TotalAppended(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.StreamDropped(), 0u);
  EXPECT_EQ(log.Residency(), 0u);

  Manifest manifest;
  ASSERT_TRUE(Manifest::Load(dir, &manifest));
  EXPECT_TRUE(manifest.finalized);
  EXPECT_EQ(manifest.backpressure, "block");
  const std::vector<Event> parsed =
      EventLog::ParseJsonl(ConcatSegments(dir, manifest, kEventsStream));
  ASSERT_EQ(parsed.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Gap-free: sequence numbers are exactly 1..N in order.
  std::set<std::uint64_t> seqs;
  for (const Event& event : parsed) seqs.insert(event.seq);
  EXPECT_EQ(seqs.size(), parsed.size());
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].seq, parsed[i - 1].seq + 1);
  }
  fs::remove_all(dir);
}

TEST(TelemetrySink, DropOldestAccountingMatchesManifestAndCounter) {
  EnabledScope on(true);
  const std::string dir = TempDir("drop");
  const std::uint64_t counter_before =
      Registry::Global().GetCounter("obs.sink.dropped").Value();

  EventLog log({/*shard_capacity=*/8, /*num_shards=*/1});
  FleetTimeSeries series;
  Registry registry;
  SinkConfig config;
  config.directory = dir;
  // A glacial flush interval: all appends land before the first drain,
  // so the tiny ring must overflow.
  config.flush_interval_ms = 10000;
  config.backpressure = OverflowPolicy::kDropOldest;
  config.event_log = &log;
  config.timeseries = &series;
  config.registry = &registry;
  TelemetrySink sink(std::move(config));

  AppendWorkload(log, 50);
  sink.Stop();

  EXPECT_EQ(log.StreamDropped(), 42u);  // 50 appended, ring holds 8
  const std::uint64_t counter_delta =
      Registry::Global().GetCounter("obs.sink.dropped").Value() -
      counter_before;
  Manifest manifest;
  ASSERT_TRUE(Manifest::Load(dir, &manifest));
  EXPECT_EQ(manifest.backpressure, "drop_oldest");
  const StreamManifest& events = manifest.streams.at(kEventsStream);
  // The loss is visible in all three places, and they agree.
  EXPECT_EQ(events.dropped, 42u);
  EXPECT_EQ(counter_delta, 42u);
  EXPECT_EQ(events.lines_total, 8u);
  // What did reach disk is the newest tail, in order.
  const std::vector<Event> parsed =
      EventLog::ParseJsonl(ConcatSegments(dir, manifest, kEventsStream));
  ASSERT_EQ(parsed.size(), 8u);
  EXPECT_EQ(parsed.front().seq, 43u);
  EXPECT_EQ(parsed.back().seq, 50u);
  fs::remove_all(dir);
}

TEST(EventLogStreaming, WriteJsonlFailureBumpsWriteErrorCounter) {
  EnabledScope on(true);
  const std::uint64_t before =
      Registry::Global().GetCounter("obs.sink.write_errors").Value();
  EventLog log({/*shard_capacity=*/8, /*num_shards=*/1});
  log.Append(EventKind::kArrival, 0.0, 0, {});
  EXPECT_FALSE(
      log.WriteJsonl("/nonexistent_gaugur_dir/deeper/events.jsonl"));
  EXPECT_GE(Registry::Global().GetCounter("obs.sink.write_errors").Value(),
            before + 1);
}

// Hook-order proof: FlushAll must run sink -> trace -> report no matter
// the registration order. The counters are trivially-destructible
// statics because registered hooks live for the process and run again
// at exit.
std::atomic<int> g_order_counter{0};
std::atomic<int> g_report_pos{-1};
std::atomic<int> g_sink_pos{-1};
std::atomic<int> g_trace_pos{-1};

TEST(FlushOrdering, FlushAllRunsSinkThenTraceThenReport) {
  // Deliberately registered in the WRONG order.
  RegisterFlushHook(kFlushPriorityReport,
                    [] { g_report_pos = g_order_counter.fetch_add(1); });
  RegisterFlushHook(kFlushPriorityTrace,
                    [] { g_trace_pos = g_order_counter.fetch_add(1); });
  RegisterFlushHook(kFlushPrioritySink,
                    [] { g_sink_pos = g_order_counter.fetch_add(1); });
  FlushAll();
  ASSERT_GE(g_sink_pos.load(), 0);
  ASSERT_GE(g_trace_pos.load(), 0);
  ASSERT_GE(g_report_pos.load(), 0);
  EXPECT_LT(g_sink_pos.load(), g_trace_pos.load());
  EXPECT_LT(g_trace_pos.load(), g_report_pos.load());
}

TEST(FlushOrdering, ExitFlushFinalizesManifestAndTraceInSubprocess) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string dir = TempDir("exitflush");
  const std::string trace_path = dir + "/exit_trace.json";

  // The child never calls Stop(): std::exit must drive the whole chain —
  // sink drain (priority 0) then the emergency trace (priority 10).
  EXPECT_EXIT(
      {
        SetEnabled(true);
        setenv("GAUGUR_TRACE_EXIT_PATH", trace_path.c_str(), 1);
        Tracer::Global().SetTracing(true);
        SinkConfig config;
        config.directory = dir;
        config.flush_interval_ms = 1000;  // exit arrives first
        auto* sink = new TelemetrySink(std::move(config));
        (void)sink;  // leaked: only the atexit hook may stop it
        {
          ScopedSpan span("exit-flush-test");
          AppendWorkload(EventLog::Global(), 25);
        }
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");

  Manifest manifest;
  ASSERT_TRUE(Manifest::Load(dir, &manifest));
  EXPECT_TRUE(manifest.finalized);
  const StreamManifest& events = manifest.streams.at(kEventsStream);
  EXPECT_EQ(events.lines_total, 25u);
  EXPECT_EQ(events.write_errors, 0u);
  const std::vector<Event> parsed =
      EventLog::ParseJsonl(ConcatSegments(dir, manifest, kEventsStream));
  EXPECT_EQ(parsed.size(), 25u);
  // The trace hook ran too (after the sink drain), so the span recorded
  // before exit made it to disk.
  const std::string trace = ReadFile(trace_path);
  EXPECT_NE(trace.find("exit-flush-test"), std::string::npos);
  fs::remove_all(dir);
}

TEST(TelemetrySink, FromEnvHonorsSinkDirSwitch) {
  EnabledScope on(true);
  unsetenv("GAUGUR_SINK_DIR");
  EXPECT_EQ(TelemetrySink::FromEnv(), nullptr);

  const std::string dir = TempDir("fromenv");
  setenv("GAUGUR_SINK_DIR", dir.c_str(), 1);
  {
    // The sink rides the obs master switch: no writer while obs is off.
    EnabledScope off(false);
    EXPECT_EQ(TelemetrySink::FromEnv(), nullptr);
  }
  setenv("GAUGUR_SINK_BACKPRESSURE", "drop_oldest", 1);
  setenv("GAUGUR_SINK_SEGMENT_BYTES", "4096", 1);
  {
    std::unique_ptr<TelemetrySink> sink = TelemetrySink::FromEnv();
    ASSERT_NE(sink, nullptr);
    EXPECT_EQ(sink->directory(), dir);
    EXPECT_EQ(TelemetrySink::Active(), sink.get());
    sink->Stop();
    EXPECT_EQ(TelemetrySink::Active(), nullptr);
    Manifest manifest;
    ASSERT_TRUE(Manifest::Load(dir, &manifest));
    EXPECT_EQ(manifest.backpressure, "drop_oldest");
  }
  unsetenv("GAUGUR_SINK_DIR");
  unsetenv("GAUGUR_SINK_BACKPRESSURE");
  unsetenv("GAUGUR_SINK_SEGMENT_BYTES");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gaugur::obs
