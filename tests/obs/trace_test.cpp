#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "obs/json.h"
#include "obs/switch.h"

namespace gaugur::obs {
namespace {

/// The tracer is a process-global; every test starts from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Clear(); }
  void TearDown() override {
    Tracer::Global().Clear();
    Tracer::Global().SetTracing(false);
  }
};

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  const auto it = std::find_if(
      events.begin(), events.end(),
      [&](const TraceEvent& e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  EnabledScope on(true);
  TracingScope tracing(true);
  {
    ScopedSpan outer("outer");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);

  const auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = FindEvent(events, "outer");
  const TraceEvent* inner = FindEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  // The inner interval nests inside the outer one (same thread).
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us,
            outer->ts_us + outer->dur_us + 1e-6);
}

TEST_F(TraceTest, InactiveWhenTracingOff) {
  EnabledScope on(true);
  TracingScope tracing(false);
  {
    ScopedSpan span("ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  }
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(TraceTest, InactiveWhenObsDisabled) {
  EnabledScope off(false);
  TracingScope tracing(true);
  { ScopedSpan span("ghost"); }
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(TraceTest, SpansFromMultipleThreadsAllLand) {
  EnabledScope on(true);
  TracingScope tracing(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("worker");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = Tracer::Global().Events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // Events are returned sorted by start time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  EnabledScope on(true);
  TracingScope tracing(true);
  {
    ScopedSpan outer("lab.Measure");
    ScopedSpan inner("sim.Solve");
  }
  const std::string json = Tracer::Global().ToChromeJson().Dump(2);

  // Must parse as JSON and follow the Chrome trace_event format.
  const JsonValue doc = JsonValue::Parse(json);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_EQ(events->AsArray().size(), 2u);
  for (const JsonValue& event : events->AsArray()) {
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_EQ(event.Find("cat")->AsString(), "gaugur");
    EXPECT_TRUE(event.Find("name")->IsString());
    EXPECT_TRUE(event.Find("ts")->IsNumber());
    EXPECT_TRUE(event.Find("dur")->IsNumber());
    EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
    EXPECT_TRUE(event.Find("args")->Find("depth")->IsNumber());
  }
}

TEST_F(TraceTest, ClearDropsEvents) {
  EnabledScope on(true);
  TracingScope tracing(true);
  { ScopedSpan span("once"); }
  EXPECT_EQ(Tracer::Global().Events().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

}  // namespace
}  // namespace gaugur::obs
