// Sharded fleet service tests on a cheap world (default catalog + server
// sim, no profiling pass): single-shard runs must reproduce the legacy
// simulator's placements exactly, multi-shard runs must reconcile event
// counts / monitor totals / sched.* metrics across shards, per-shard
// event streams must stay tick-monotonic, and the candidate cap must
// bound what policies see without breaking admission.
//
// This suite is its own binary (tests_sched) so the TSan CI job can build
// and run just it: the multi-shard tests genuinely race shard workers
// against the shared registry, event log, and fleet time series.

#include "sched/dynamic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/lab.h"
#include "obs/event_log.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/switch.h"

namespace gaugur::sched {
namespace {

using core::Colocation;

/// Shared cheap world: catalog + server sim + lab, no profiling.
const core::ColocationLab& Lab() {
  static const gamesim::GameCatalog catalog =
      gamesim::GameCatalog::MakeDefault(42);
  static const gamesim::ServerSim server;
  static const core::ColocationLab lab(catalog, server);
  return lab;
}

std::vector<DynamicRequest> Trace(std::size_t n, std::uint64_t seed,
                                  double horizon_min = 300.0) {
  const std::vector<int> ids{0, 1, 2, 3};
  auto trace = GenerateDynamicTrace(
      ids, horizon_min, static_cast<double>(n) / horizon_min, 25.0, seed);
  if (trace.size() > n) trace.resize(n);
  return trace;
}

PlacementPolicy AlwaysColocate() {
  return MakeFirstFeasiblePolicy([](const Colocation&) { return true; });
}

TEST(ShardedFleet, SingleShardMatchesLegacySimulatorBitIdentically) {
  const auto trace = Trace(250, 21);
  const auto legacy =
      SimulateDynamicFleet(Lab(), trace, AlwaysColocate());

  ShardedFleetOptions options;
  options.num_shards = 1;
  const auto sharded = SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);

  ASSERT_EQ(legacy.placements.size(), sharded.total.placements.size());
  EXPECT_EQ(legacy.placements, sharded.total.placements);
  EXPECT_EQ(legacy.sessions, sharded.total.sessions);
  EXPECT_EQ(legacy.peak_servers, sharded.total.peak_servers);
  EXPECT_EQ(legacy.powerons, sharded.total.powerons);
  EXPECT_EQ(legacy.violated_sessions, sharded.total.violated_sessions);
  EXPECT_DOUBLE_EQ(legacy.server_minutes, sharded.total.server_minutes);
}

TEST(ShardedFleet, EveryRequestIsPlacedOnItsOwnShard) {
  const std::size_t shards = 3;
  const auto trace = Trace(200, 33);
  ShardedFleetOptions options;
  options.num_shards = shards;
  const auto result = SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);

  // Arrivals route round-robin over the time-sorted order; recompute that
  // routing and check each placement's server id decodes to the routed
  // shard (the id scheme interleaves: local * num_shards + shard).
  std::vector<std::size_t> order(trace.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return trace[a].arrival_min < trace[b].arrival_min;
                   });
  ASSERT_EQ(result.total.placements.size(), trace.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const long long placed = result.total.placements[order[i]];
    ASSERT_GE(placed, 0) << "request " << order[i] << " never placed";
    EXPECT_EQ(ShardOfServer(static_cast<std::uint64_t>(placed), shards),
              i % shards);
  }
  // Per-shard results partition the workload exactly.
  std::size_t sessions = 0;
  for (const auto& shard : result.per_shard) sessions += shard.sessions;
  EXPECT_EQ(sessions, trace.size());
  EXPECT_EQ(result.total.sessions, trace.size());
}

TEST(ShardedFleet, MultiShardRunsReconcileEventsAndMetrics) {
  obs::EnabledScope on(true);
  obs::EventLog::Global().Clear();
  auto& registry = obs::Registry::Global();
  const obs::Snapshot before = registry.Snap();

  const std::size_t shards = 4;
  const auto trace = Trace(300, 55);
  ShardedFleetOptions options;
  options.num_shards = shards;
  const auto result = SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);

  const obs::Snapshot after = registry.Snap();
  const auto counter_delta = [&](const std::string& name) -> std::uint64_t {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    return after.counters.at(name) - base;
  };

  // sched.placements sums exactly across shards...
  EXPECT_EQ(counter_delta("sched.placements"), trace.size());
  // ...and the per-shard counters partition it.
  std::uint64_t per_shard_total = 0;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::uint64_t shard_count = counter_delta(
        "sched.shard." + std::to_string(k) + ".placements");
    EXPECT_GT(shard_count, 0u);
    per_shard_total += shard_count;
  }
  EXPECT_EQ(per_shard_total, trace.size());
  EXPECT_EQ(counter_delta("sched.powerons"), result.total.powerons);

  // The run's gauges returned to rest: no shards in flight, no backlog.
  EXPECT_EQ(after.gauges.at("sched.shards"),
            before.gauges.count("sched.shards")
                ? before.gauges.at("sched.shards")
                : 0);
  EXPECT_EQ(after.gauges.at("sched.shard_backlog"),
            before.gauges.count("sched.shard_backlog")
                ? before.gauges.at("sched.shard_backlog")
                : 0);

  // Event-log decision count reconciles with admissions, and every
  // sharded event carries its shard tag.
  std::size_t decisions = 0;
  for (const obs::Event& event : obs::EventLog::Global().Snapshot()) {
    if (event.kind == obs::EventKind::kDecision) {
      ++decisions;
      const auto shard_field = event.fields.find("shard");
      ASSERT_NE(shard_field, event.fields.end());
      const auto shard = static_cast<std::size_t>(
          shard_field->second.AsNumber());
      EXPECT_LT(shard, shards);
    }
  }
  EXPECT_EQ(decisions, trace.size());
  obs::EventLog::Global().Clear();
}

TEST(ShardedFleet, PerShardEventStreamsAreTickMonotonic) {
  obs::EnabledScope on(true);
  obs::EventLog::Global().Clear();

  ShardedFleetOptions options;
  options.num_shards = 3;
  const auto trace = Trace(200, 77);
  (void)SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);

  // Within one shard, events ordered by seq must have non-decreasing
  // ticks — the invariant that makes per-shard segments globally
  // mergeable by sorted merge (trace_explorer enforces the same check on
  // manifest reads).
  std::vector<obs::Event> events = obs::EventLog::Global().Snapshot();
  std::sort(events.begin(), events.end(),
            [](const obs::Event& a, const obs::Event& b) {
              return a.seq < b.seq;
            });
  std::map<std::size_t, double> last_tick;
  std::map<std::size_t, std::uint64_t> last_seq;
  for (const obs::Event& event : events) {
    const auto shard_field = event.fields.find("shard");
    if (shard_field == event.fields.end()) continue;
    const auto shard =
        static_cast<std::size_t>(shard_field->second.AsNumber());
    if (last_tick.count(shard)) {
      EXPECT_GE(event.tick, last_tick[shard])
          << "shard " << shard << " ticks regressed at seq " << event.seq;
      EXPECT_GT(event.seq, last_seq[shard]);
    }
    last_tick[shard] = event.tick;
    last_seq[shard] = event.seq;
  }
  EXPECT_GE(last_tick.size(), 2u) << "expected events from several shards";
  obs::EventLog::Global().Clear();
}

TEST(ShardedFleet, ArmedProfilerAttributesEveryShardAndWindow) {
  // Races the decision flight recorder's shared slabs, exemplar ring, and
  // window-imbalance accounting across four genuinely concurrent shard
  // workers — the TSan target for obs/latency_profiler.h.
  obs::EnabledScope on(true);
  obs::LatencyProfiler& profiler = obs::LatencyProfiler::Global();
  profiler.Reset();

  const std::size_t shards = 4;
  const auto trace = Trace(300, 63);
  ShardedFleetOptions options;
  options.num_shards = shards;
  const auto result = SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);

  const obs::LatencyProfileSummary summary = profiler.Summary();
  // Every arrival was attributed exactly once, spread over all shards.
  EXPECT_EQ(summary.decisions, trace.size());
  ASSERT_EQ(summary.shards.size(), shards);
  for (const obs::ShardProfile& shard : summary.shards) {
    EXPECT_LT(shard.shard, shards);
    EXPECT_GT(shard.decisions, 0u);
    // One barrier wait per tick window per shard.
    EXPECT_EQ(shard.barrier_waits, result.ticks);
    EXPECT_GE(shard.barrier_wait_us, 0.0);
  }
  // The policy invocation is timed once per decision; candidate
  // enumeration and event emission bracket it outside the policy span.
  EXPECT_EQ(
      summary.fleet[static_cast<std::size_t>(obs::Phase::kPolicySelect)]
          .count,
      trace.size());
  EXPECT_EQ(
      summary.fleet[static_cast<std::size_t>(obs::Phase::kCandidateEnum)]
          .count,
      trace.size());
  // One imbalance sample per tick window.
  EXPECT_EQ(summary.imbalance.windows, result.ticks);
  EXPECT_GE(summary.imbalance.spread_max_us,
            summary.imbalance.windows > 0
                ? summary.imbalance.spread_total_us /
                      static_cast<double>(summary.imbalance.windows)
                : 0.0);
  // The tail ring filled and sorted slowest-first.
  EXPECT_EQ(summary.exemplars.size(),
            obs::LatencyProfiler::kTailExemplars);
  profiler.Reset();
}

TEST(ShardedFleet, DeterministicAcrossRunsForFixedSeed) {
  const auto trace = Trace(150, 91);
  ShardedFleetOptions options;
  options.num_shards = 2;
  options.seed = 1234;
  options.dynamic.max_policy_candidates = 4;  // exercises the seeded sampler
  const auto factory = [](std::size_t) { return AlwaysColocate(); };
  const auto a = SimulateShardedFleet(Lab(), trace, factory, options);
  const auto b = SimulateShardedFleet(Lab(), trace, factory, options);
  EXPECT_EQ(a.total.placements, b.total.placements);
  EXPECT_EQ(a.total.powerons, b.total.powerons);
  EXPECT_DOUBLE_EQ(a.total.server_minutes, b.total.server_minutes);
}

TEST(ShardedFleet, CandidateCapBoundsWhatPoliciesSee) {
  // A policy that always declines makes every server a 1-session open
  // server, so the open set grows far past the cap — the simulator must
  // still never offer more than the cap.
  std::atomic<std::size_t> max_seen{0};
  std::atomic<std::size_t> calls{0};
  const auto counting = [&max_seen, &calls]() -> PlacementPolicy {
    return [&max_seen, &calls](std::span<const Colocation> open_servers,
                               const core::SessionRequest&) -> int {
      std::size_t prev = max_seen.load();
      while (open_servers.size() > prev &&
             !max_seen.compare_exchange_weak(prev, open_servers.size())) {
      }
      calls.fetch_add(1);
      return -1;
    };
  };

  std::vector<DynamicRequest> burst;
  for (int i = 0; i < 120; ++i) {
    burst.push_back({0.1 * i, 500.0, {0, resources::k1080p}});
  }
  ShardedFleetOptions options;
  options.num_shards = 1;
  options.dynamic.max_policy_candidates = 8;
  const auto result = SimulateShardedFleet(
      Lab(), burst, [&](std::size_t) { return counting(); }, options);
  EXPECT_EQ(calls.load(), burst.size());
  EXPECT_LE(max_seen.load(), 8u);
  EXPECT_EQ(result.total.sessions, burst.size());
  // Everyone declined, so the fleet is one server per session.
  EXPECT_EQ(result.total.peak_servers, burst.size());
}

TEST(ShardedFleet, UncappedSingleShardOffersEveryOpenServer) {
  std::atomic<std::size_t> max_seen{0};
  std::vector<DynamicRequest> burst;
  for (int i = 0; i < 40; ++i) {
    burst.push_back({0.1 * i, 500.0, {0, resources::k1080p}});
  }
  ShardedFleetOptions options;
  options.num_shards = 1;
  const auto result = SimulateShardedFleet(
      Lab(), burst,
      [&](std::size_t) -> PlacementPolicy {
        return [&max_seen](std::span<const Colocation> open_servers,
                           const core::SessionRequest&) -> int {
          std::size_t prev = max_seen.load();
          while (open_servers.size() > prev &&
                 !max_seen.compare_exchange_weak(prev,
                                                 open_servers.size())) {
          }
          return -1;
        };
      },
      options);
  EXPECT_EQ(result.total.sessions, burst.size());
  EXPECT_EQ(max_seen.load(), burst.size() - 1);  // all prior servers open
}

TEST(ShardedFleet, ShardOfServerInvertsTheIdScheme) {
  for (const std::size_t shards : {1u, 2u, 5u, 8u}) {
    for (std::uint64_t local = 0; local < 20; ++local) {
      for (std::size_t shard = 0; shard < shards; ++shard) {
        const std::uint64_t global = local * shards + shard;
        EXPECT_EQ(ShardOfServer(global, shards), shard);
      }
    }
  }
}

TEST(ShardedFleet, ZeroShardOptionClampsToOne) {
  const auto trace = Trace(40, 5);
  ShardedFleetOptions options;
  options.num_shards = 0;
  const auto result = SimulateShardedFleet(
      Lab(), trace, [](std::size_t) { return AlwaysColocate(); }, options);
  EXPECT_EQ(result.num_shards, 1u);
  EXPECT_EQ(result.total.sessions, trace.size());
}

TEST(ShardedFleet, PeakConcurrentSessionsSampledAtBarriers) {
  // A block of long overlapping sessions: at some barrier all of them are
  // live, so the sampled peak must reach the full count.
  std::vector<DynamicRequest> burst;
  for (int i = 0; i < 60; ++i) {
    burst.push_back({0.05 * i, 400.0, {0, resources::k1080p}});
  }
  ShardedFleetOptions options;
  options.num_shards = 2;
  options.tick_window_min = 10.0;
  const auto result = SimulateShardedFleet(
      Lab(), burst, [](std::size_t) { return AlwaysColocate(); }, options);
  EXPECT_EQ(result.peak_concurrent_sessions, burst.size());
  EXPECT_GT(result.ticks, 0u);
}

TEST(ShardedFleet, FleetShardsFromEnvParsesAndClamps) {
  // Not set in the test environment (CI never exports it for unit runs):
  // falls back to hardware concurrency, which is at least 1.
  EXPECT_GE(FleetShardsFromEnv(), 1u);
}

}  // namespace
}  // namespace gaugur::sched
