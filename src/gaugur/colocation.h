// Colocation primitives: a session request (game + player-chosen
// resolution), a colocation (the set of sessions sharing one server), and
// a measured colocation (the observed frame rates).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "resources/resolution.h"

namespace gaugur::core {

struct SessionRequest {
  int game_id = -1;
  resources::Resolution resolution = resources::kReferenceResolution;

  friend bool operator==(const SessionRequest&,
                         const SessionRequest&) = default;
};

using Colocation = std::vector<SessionRequest>;

struct MeasuredColocation {
  Colocation sessions;
  /// Measured frame rate of each session (paper: mean FPS over the test
  /// scene), parallel to `sessions`.
  std::vector<double> fps;
};

/// One per-victim prediction query: `corunners` excludes the victim and
/// must stay alive for the duration of the call. Shared by the GAugur
/// predictor and the baseline models' batch entry points.
struct QosQuery {
  SessionRequest victim;
  std::span<const SessionRequest> corunners;
};

/// Canonical string key for a colocation (sorted game ids + resolutions);
/// used for memoizing predictions and ground-truth measurements.
std::string ColocationKey(const Colocation& colocation);

/// 64-bit join key for one (victim, co-runner set) — order-insensitive in
/// the co-runners, victim-sensitive. The model monitor (obs) uses it to
/// join prediction audit records with the realized FPS the simulator
/// later measures for the same victim in the same colocation. Cheap
/// enough (~stack-only FNV) for every online prediction.
std::uint64_t ModelJoinKey(const SessionRequest& victim,
                           std::span<const SessionRequest> corunners);

}  // namespace gaugur::core
