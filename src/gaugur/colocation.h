// Colocation primitives: a session request (game + player-chosen
// resolution), a colocation (the set of sessions sharing one server), and
// a measured colocation (the observed frame rates).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "resources/resolution.h"

namespace gaugur::core {

struct SessionRequest {
  int game_id = -1;
  resources::Resolution resolution = resources::kReferenceResolution;

  friend bool operator==(const SessionRequest&,
                         const SessionRequest&) = default;
};

using Colocation = std::vector<SessionRequest>;

struct MeasuredColocation {
  Colocation sessions;
  /// Measured frame rate of each session (paper: mean FPS over the test
  /// scene), parallel to `sessions`.
  std::vector<double> fps;
};

/// One per-victim prediction query: `corunners` excludes the victim and
/// must stay alive for the duration of the call. Shared by the GAugur
/// predictor and the baseline models' batch entry points.
struct QosQuery {
  SessionRequest victim;
  std::span<const SessionRequest> corunners;
};

/// Canonical string key for a colocation (sorted game ids + resolutions);
/// used for memoizing predictions and ground-truth measurements.
std::string ColocationKey(const Colocation& colocation);

/// 64-bit join key for one (victim, co-runner set) — order-insensitive in
/// the co-runners, victim-sensitive. The model monitor (obs) uses it to
/// join prediction audit records with the realized FPS the simulator
/// later measures for the same victim in the same colocation. Derived
/// from per-session hashes (see SessionHash / JoinKeyFromHashes below),
/// so schedulers that maintain an IncrementalColocationHash per server
/// can form it in O(1) per candidate instead of rehashing the set.
std::uint64_t ModelJoinKey(const SessionRequest& victim,
                           std::span<const SessionRequest> corunners);

/// SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
/// Every incremental-hash primitive below funnels through it so that
/// structurally similar sessions (adjacent game ids, same resolution)
/// land far apart in key space.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-session Zobrist value. Unlike classic Zobrist tables this is
/// computed (not looked up), so any (game_id, resolution) pair — including
/// ones outside the profiled catalog — gets a stable 64-bit code without
/// a preallocated table.
inline std::uint64_t SessionHash(const SessionRequest& session) {
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(session.game_id))
       << 32) |
      static_cast<std::uint32_t>(session.resolution.NumPixels());
  return SplitMix64(packed);
}

/// Incrementally maintained hash of a colocation *multiset*.
///
/// Classic Zobrist hashing XORs piece codes, which is self-inverse — but
/// XOR cancels duplicates, and colocations are multisets (two copies of
/// the same game on one server are a real, distinct state). Working in
/// the group (Z/2^64, +) instead keeps the O(1) add/remove property
/// (subtraction is the inverse) while preserving multiplicity:
///
///   value = sum over sessions of SessionHash(session)   (mod 2^64)
///
/// Order-insensitive by commutativity; the empty colocation is 0.
class IncrementalColocationHash {
 public:
  IncrementalColocationHash() = default;

  void Add(const SessionRequest& session) { value_ += SessionHash(session); }
  void Remove(const SessionRequest& session) {
    value_ -= SessionHash(session);
  }
  std::uint64_t Value() const { return value_; }
  void Reset() { value_ = 0; }

  static std::uint64_t FromScratch(std::span<const SessionRequest> sessions) {
    std::uint64_t sum = 0;
    for (const auto& s : sessions) sum += SessionHash(s);
    return sum;
  }

 private:
  std::uint64_t value_ = 0;
};

/// Forms the ModelJoinKey from precomputed hashes: the victim's own
/// SessionHash and the additive hash of the co-runner multiset. A
/// scheduler holding a per-server IncrementalColocationHash `H` evaluates
/// candidate "place `victim` on this server" as
/// JoinKeyFromHashes(SessionHash(victim), H.Value()) — no set traversal.
/// The final mix makes the key victim-sensitive (swapping victim and a
/// co-runner changes the key even though the total multiset is equal).
inline std::uint64_t JoinKeyFromHashes(std::uint64_t victim_hash,
                                       std::uint64_t corunner_sum) {
  return SplitMix64(victim_hash ^ SplitMix64(corunner_sum + 0x51ed270b0f4aULL));
}

}  // namespace gaugur::core
