// Training-corpus generation (paper §4): a set of real game colocations is
// measured once, offline, to supply training samples for both models. The
// paper measures 500 colocations of two games, 100 of three and 100 of
// four, each game at a randomly selected resolution.
#pragma once

#include <cstdint>
#include <vector>

#include "gaugur/lab.h"

namespace gaugur::core {

struct CorpusOptions {
  int num_pairs = 500;
  int num_triples = 100;
  int num_quads = 100;
  /// Draw each session's resolution uniformly from the player resolutions;
  /// otherwise everything runs at the reference resolution.
  bool random_resolutions = true;
  /// FPS measurement noise for the corpus measurements.
  double noise_sigma = 0.015;
  std::uint64_t seed = 99;
};

/// Draws random distinct-game colocations (re-drawing any whose memory
/// demands don't fit the server — those cannot be launched at all) and
/// measures each one. Deterministic in options.seed.
std::vector<MeasuredColocation> GenerateCorpus(const ColocationLab& lab,
                                               const CorpusOptions& options);

}  // namespace gaugur::core
