// ColocationLab: the "machine room" — the only place where colocations
// are actually run on the simulated server. Corpus generation, ground
// truth for the feasibility study (Fig. 9), and the final scheduler
// evaluations (Fig. 9c, 10) all measure through the lab; prediction
// methodologies never touch it.
#pragma once

#include <cstdint>
#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/colocation.h"

namespace gaugur::core {

struct LabOptions {
  /// Attach a hardware-encoder footprint to every session (paper §7:
  /// servers also encode and stream the rendered frames).
  bool include_encoders = false;
  /// Frames simulated per MeasureFrameTimes call.
  int delay_frames = 240;
};

class ColocationLab {
 public:
  ColocationLab(const gamesim::GameCatalog& catalog,
                const gamesim::ServerSim& server, LabOptions options = {});

  const gamesim::GameCatalog& catalog() const { return *catalog_; }
  const gamesim::ServerSim& server() const { return *server_; }

  /// Runs the colocation and records noisy frame-rate measurements
  /// (deterministic in `seed`).
  MeasuredColocation Measure(const Colocation& colocation,
                             std::uint64_t seed,
                             double noise_sigma = 0.015) const;

  /// Noise-free equilibrium frame rates (evaluation ground truth).
  std::vector<double> TrueFps(const Colocation& colocation) const;

  /// Noise-free solo frame rate of one session.
  double TrueSoloFps(const SessionRequest& session) const;

  /// Frame-time distribution of each session over a simulated scene —
  /// the processing-delay observable of the §7 extension.
  std::vector<gamesim::FrameTimeStats> MeasureFrameTimes(
      const Colocation& colocation, std::uint64_t seed) const;

  /// Whether the colocation's memory demands fit the server; a colocation
  /// that does not fit cannot run at all (and is never QoS-feasible).
  bool FitsMemory(const Colocation& colocation) const;

  /// Ground-truth QoS feasibility: memory fits and every session's true
  /// frame rate meets `qos_fps`.
  bool TrulyFeasible(const Colocation& colocation, double qos_fps) const;

 private:
  std::vector<gamesim::WorkloadProfile> ToWorkloads(
      const Colocation& colocation) const;

  const gamesim::GameCatalog* catalog_;
  const gamesim::ServerSim* server_;
  LabOptions options_;
};

}  // namespace gaugur::core
