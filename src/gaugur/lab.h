// ColocationLab: the "machine room" — the only place where colocations
// are actually run on the simulated server. Corpus generation, ground
// truth for the feasibility study (Fig. 9), and the final scheduler
// evaluations (Fig. 9c, 10) all measure through the lab; prediction
// methodologies never touch it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/colocation.h"
#include "resources/resource.h"

namespace gaugur::core {

/// Ground-truth forensic attribution of one victim's interference: the
/// equilibrium pressure the colocation puts on each shared resource, the
/// per-resource stage slowdown the victim's inflation responses translate
/// that pressure into (the contention-model walk), and the dominant
/// resource / colocated offender. The offender is found by leave-one-out
/// re-solves: the co-runner whose removal raises the victim's true FPS
/// the most.
struct InterferenceAttribution {
  static constexpr std::size_t kNoOffender = static_cast<std::size_t>(-1);

  resources::PerResource<double> pressure{};
  /// response[r].SlowdownFactor(pressure[r]) - 1 for the victim.
  resources::PerResource<double> damage{};
  resources::Resource dominant_resource = resources::Resource::kCpuCore;
  double dominant_damage = 0.0;
  /// Index into the colocation of the dominant offender (kNoOffender when
  /// the victim runs alone).
  std::size_t dominant_offender = kNoOffender;
  int offender_game_id = -1;
  /// True-FPS gain the victim would see if the dominant offender left.
  double offender_fps_gain = 0.0;
};

struct LabOptions {
  /// Attach a hardware-encoder footprint to every session (paper §7:
  /// servers also encode and stream the rendered frames).
  bool include_encoders = false;
  /// Frames simulated per MeasureFrameTimes call.
  int delay_frames = 240;
};

class ColocationLab {
 public:
  ColocationLab(const gamesim::GameCatalog& catalog,
                const gamesim::ServerSim& server, LabOptions options = {});

  const gamesim::GameCatalog& catalog() const { return *catalog_; }
  const gamesim::ServerSim& server() const { return *server_; }

  /// Runs the colocation and records noisy frame-rate measurements
  /// (deterministic in `seed`).
  MeasuredColocation Measure(const Colocation& colocation,
                             std::uint64_t seed,
                             double noise_sigma = 0.015) const;

  /// Noise-free equilibrium frame rates (evaluation ground truth).
  std::vector<double> TrueFps(const Colocation& colocation) const;

  /// Noise-free solo frame rate of one session.
  double TrueSoloFps(const SessionRequest& session) const;

  /// Frame-time distribution of each session over a simulated scene —
  /// the processing-delay observable of the §7 extension.
  std::vector<gamesim::FrameTimeStats> MeasureFrameTimes(
      const Colocation& colocation, std::uint64_t seed) const;

  /// Whether the colocation's memory demands fit the server; a colocation
  /// that does not fit cannot run at all (and is never QoS-feasible).
  bool FitsMemory(const Colocation& colocation) const;

  /// Ground-truth QoS feasibility: memory fits and every session's true
  /// frame rate meets `qos_fps`.
  bool TrulyFeasible(const Colocation& colocation, double qos_fps) const;

  /// Equilibrium pressure on each shared resource as seen by each session
  /// (parallel to `colocation`); the fleet time series samples this.
  std::vector<resources::PerResource<double>> TruePressures(
      const Colocation& colocation) const;

  /// Forensic walk of the contention model for one victim: per-resource
  /// pressure and damage, dominant resource, and the dominant colocated
  /// offender via leave-one-out re-solves. Costs O(colocation) analytic
  /// solves — intended for the (rare) QoS-violation path, not per tick.
  InterferenceAttribution AttributeInterference(const Colocation& colocation,
                                                std::size_t victim) const;

 private:
  std::vector<gamesim::WorkloadProfile> ToWorkloads(
      const Colocation& colocation) const;

  const gamesim::GameCatalog* catalog_;
  const gamesim::ServerSim* server_;
  LabOptions options_;
};

}  // namespace gaugur::core
