#include "gaugur/delay.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "ml/factory.h"

namespace gaugur::core {

DelayPredictor::DelayPredictor(const FeatureBuilder& features,
                               DelayPredictorConfig config)
    : features_(&features),
      config_(std::move(config)),
      model_(ml::MakeRegressor(config_.algorithm, config_.seed)) {}

void DelayPredictor::Train(const ColocationLab& lab,
                           std::span<const MeasuredColocation> corpus) {
  GAUGUR_CHECK(!corpus.empty());
  ml::Dataset dataset(features_->RmDim(), features_->RmFeatureNames());
  common::Rng rng(config_.seed);

  std::vector<SessionRequest> corunners;
  for (const auto& measured : corpus) {
    const auto frame_stats =
        lab.MeasureFrameTimes(measured.sessions, rng.Next());
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      corunners.clear();
      for (std::size_t j = 0; j < measured.sessions.size(); ++j) {
        if (j != v) corunners.push_back(measured.sessions[j]);
      }
      // Log-space target: delay spans ~3ms..100ms and the relevant error
      // is relative.
      dataset.Add(features_->RmFeatures(measured.sessions[v], corunners),
                  std::log(std::max(0.1, frame_stats[v].p95_ms)));
    }
  }
  model_->Fit(dataset);
  trained_ = true;
}

double DelayPredictor::PredictP95DelayMs(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  GAUGUR_CHECK_MSG(trained_, "DelayPredictor not trained");
  const auto x = features_->RmFeatures(victim, corunners);
  return std::clamp(std::exp(model_->Predict(x)), 0.1, 10000.0);
}

bool DelayPredictor::PredictDelayOk(
    double budget_ms, const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  return PredictP95DelayMs(victim, corunners) <= budget_ms;
}

}  // namespace gaugur::core
