#include "gaugur/lab.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "gamesim/encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaugur::core {

namespace {

/// Lab telemetry: the paper's measurement budget ("a few hundred
/// colocations", §3.6) made observable — every trip to the machine room
/// is counted and timed.
struct LabMetrics {
  obs::Counter& measurements =
      obs::Registry::Global().GetCounter("lab.measurements");
  obs::Counter& true_fps_calls =
      obs::Registry::Global().GetCounter("lab.true_fps_calls");
  obs::Counter& frame_time_calls =
      obs::Registry::Global().GetCounter("lab.frame_time_calls");
  obs::Counter& attributions =
      obs::Registry::Global().GetCounter("lab.attributions");
  obs::Histogram& measure_us =
      obs::Registry::Global().GetHistogram("lab.measure_us");

  static LabMetrics& Get() {
    static LabMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::string ColocationKey(const Colocation& colocation) {
  std::vector<std::pair<int, long long>> parts;
  parts.reserve(colocation.size());
  for (const auto& s : colocation) {
    parts.emplace_back(s.game_id, static_cast<long long>(
                                      s.resolution.NumPixels()));
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream os;
  for (const auto& [id, pixels] : parts) {
    os << id << '@' << pixels << ';';
  }
  return os.str();
}

std::uint64_t ModelJoinKey(const SessionRequest& victim,
                           std::span<const SessionRequest> corunners) {
  // Additive-Zobrist form: the co-runner multiset reduces to a commutative
  // sum of per-session hashes (no sort, no allocation), then the victim is
  // mixed in asymmetrically. Defined exactly as JoinKeyFromHashes over
  // SessionHash/IncrementalColocationHash so schedulers holding a
  // per-server incremental hash derive the identical key in O(1).
  return JoinKeyFromHashes(SessionHash(victim),
                           IncrementalColocationHash::FromScratch(corunners));
}

ColocationLab::ColocationLab(const gamesim::GameCatalog& catalog,
                             const gamesim::ServerSim& server,
                             LabOptions options)
    : catalog_(&catalog), server_(&server), options_(options) {}

std::vector<gamesim::WorkloadProfile> ColocationLab::ToWorkloads(
    const Colocation& colocation) const {
  std::vector<gamesim::WorkloadProfile> workloads;
  workloads.reserve(colocation.size());
  for (const auto& session : colocation) {
    GAUGUR_CHECK(session.game_id >= 0 &&
                 static_cast<std::size_t>(session.game_id) <
                     catalog_->size());
    workloads.push_back(
        (*catalog_)[static_cast<std::size_t>(session.game_id)].AtResolution(
            session.resolution));
    if (options_.include_encoders) {
      gamesim::AttachHardwareEncoder(workloads.back(), session.resolution);
    }
  }
  return workloads;
}

MeasuredColocation ColocationLab::Measure(const Colocation& colocation,
                                          std::uint64_t seed,
                                          double noise_sigma) const {
  LabMetrics::Get().measurements.Add(1);
  obs::ScopedTimer timer(LabMetrics::Get().measure_us);
  obs::ScopedSpan span("lab.Measure");
  const auto workloads = ToWorkloads(colocation);
  const auto results = server_->Measure(workloads, seed, noise_sigma);
  MeasuredColocation measured;
  measured.sessions = colocation;
  measured.fps.reserve(results.size());
  for (const auto& r : results) measured.fps.push_back(r.rate);
  return measured;
}

std::vector<double> ColocationLab::TrueFps(
    const Colocation& colocation) const {
  LabMetrics::Get().true_fps_calls.Add(1);
  const auto workloads = ToWorkloads(colocation);
  const auto results = server_->RunAnalytic(workloads);
  std::vector<double> fps;
  fps.reserve(results.size());
  for (const auto& r : results) fps.push_back(r.rate);
  return fps;
}

double ColocationLab::TrueSoloFps(const SessionRequest& session) const {
  return TrueFps({session})[0];
}

std::vector<gamesim::FrameTimeStats> ColocationLab::MeasureFrameTimes(
    const Colocation& colocation, std::uint64_t seed) const {
  LabMetrics::Get().frame_time_calls.Add(1);
  obs::ScopedSpan span("lab.MeasureFrameTimes");
  return server_->SimulateFrameTimes(ToWorkloads(colocation),
                                     options_.delay_frames, seed);
}

bool ColocationLab::FitsMemory(const Colocation& colocation) const {
  return server_->FitsMemory(ToWorkloads(colocation));
}

bool ColocationLab::TrulyFeasible(const Colocation& colocation,
                                  double qos_fps) const {
  if (!FitsMemory(colocation)) return false;
  for (double fps : TrueFps(colocation)) {
    if (fps < qos_fps) return false;
  }
  return true;
}

std::vector<resources::PerResource<double>> ColocationLab::TruePressures(
    const Colocation& colocation) const {
  const auto workloads = ToWorkloads(colocation);
  std::vector<resources::PerResource<double>> pressures;
  pressures.reserve(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    pressures.push_back(server_->EquilibriumPressureOn(workloads, i));
  }
  return pressures;
}

InterferenceAttribution ColocationLab::AttributeInterference(
    const Colocation& colocation, std::size_t victim) const {
  GAUGUR_CHECK(victim < colocation.size());
  LabMetrics::Get().attributions.Add(1);
  obs::ScopedSpan span("lab.AttributeInterference");

  const auto workloads = ToWorkloads(colocation);
  InterferenceAttribution attribution;
  attribution.pressure = server_->EquilibriumPressureOn(workloads, victim);

  // Contention-model walk: translate the pressure each resource is under
  // into the stage slowdown the victim's inflation response assigns it.
  const gamesim::WorkloadProfile& profile = workloads[victim];
  for (resources::Resource r : resources::kAllResources) {
    attribution.damage[r] =
        profile.response[r].SlowdownFactor(attribution.pressure[r]) - 1.0;
    if (attribution.damage[r] > attribution.dominant_damage) {
      attribution.dominant_damage = attribution.damage[r];
      attribution.dominant_resource = r;
    }
  }

  // Dominant offender by leave-one-out: whose departure helps most?
  if (colocation.size() > 1) {
    const double base_fps = TrueFps(colocation)[victim];
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j == victim) continue;
      Colocation reduced;
      reduced.reserve(colocation.size() - 1);
      std::size_t victim_index = victim;
      for (std::size_t k = 0; k < colocation.size(); ++k) {
        if (k == j) continue;
        if (k == victim) victim_index = reduced.size();
        reduced.push_back(colocation[k]);
      }
      const double gain = TrueFps(reduced)[victim_index] - base_fps;
      if (attribution.dominant_offender ==
              InterferenceAttribution::kNoOffender ||
          gain > attribution.offender_fps_gain) {
        attribution.dominant_offender = j;
        attribution.offender_game_id = colocation[j].game_id;
        attribution.offender_fps_gain = gain;
      }
    }
  }
  return attribution;
}

}  // namespace gaugur::core
