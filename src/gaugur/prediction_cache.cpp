#include "gaugur/prediction_cache.h"

namespace gaugur::core {

void PredictionCache::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
}

std::uint64_t PredictionCache::Epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::shared_ptr<const CachedPrediction> PredictionCache::Lookup(
    const PredictionCacheKey& key) const {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (max_age_epochs_ > 0 &&
      epoch_ - it->second.inserted_epoch >= max_age_epochs_) {
    // Lazy reuse-window expiry: the answer is from a fit that is still
    // valid (retrains Clear() outright) but older than the configured
    // arrival window — treat as a miss so the caller recomputes.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++stats_.expired;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void PredictionCache::Insert(const PredictionCacheKey& key,
                             CachedPrediction entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value =
        std::make_shared<const CachedPrediction>(std::move(entry));
    it->second.inserted_epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_[key] = {lru_.begin(),
                   std::make_shared<const CachedPrediction>(std::move(entry)),
                   epoch_};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PredictionCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

std::size_t PredictionCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PredictionCache::Stats PredictionCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gaugur::core
