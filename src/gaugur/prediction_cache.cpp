#include "gaugur/prediction_cache.h"

namespace gaugur::core {

std::shared_ptr<const CachedPrediction> PredictionCache::Lookup(
    const PredictionCacheKey& key) const {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void PredictionCache::Insert(const PredictionCacheKey& key,
                             CachedPrediction entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value =
        std::make_shared<const CachedPrediction>(std::move(entry));
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_[key] = {lru_.begin(),
                   std::make_shared<const CachedPrediction>(std::move(entry))};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PredictionCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

std::size_t PredictionCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PredictionCache::Stats PredictionCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gaugur::core
