#include "gaugur/prediction_cache.h"

#include <algorithm>
#include <chrono>

#include "obs/latency_profiler.h"

namespace gaugur::core {

std::unique_lock<std::mutex> PredictionCache::LockStripe(Stripe& stripe) {
  auto& profiler = obs::LatencyProfiler::Global();
  if (!profiler.Active()) return std::unique_lock<std::mutex>(stripe.mutex);
  std::unique_lock<std::mutex> lock(stripe.mutex, std::try_to_lock);
  if (lock.owns_lock()) {
    // Uncontended fast path: no clock read, just the tallies (we hold
    // the stripe lock, so writing its stats is race-free).
    ++stripe.stats.lock_acquisitions;
    profiler.RecordCacheAcquisition(0.0, /*contended=*/false);
    return lock;
  }
  const auto start = std::chrono::steady_clock::now();
  lock.lock();
  const double wait_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  ++stripe.stats.lock_acquisitions;
  ++stripe.stats.lock_contended;
  stripe.stats.lock_wait_us += wait_us;
  profiler.RecordCacheAcquisition(wait_us, /*contended=*/true);
  return lock;
}

PredictionCache::PredictionCache(std::size_t capacity,
                                 std::size_t max_age_epochs,
                                 std::size_t stripes)
    : capacity_(capacity),
      stripe_capacity_((capacity + std::max<std::size_t>(stripes, 1) - 1) /
                       std::max<std::size_t>(stripes, 1)),
      max_age_epochs_(max_age_epochs),
      stripes_(std::max<std::size_t>(stripes, 1)) {}

std::shared_ptr<const CachedPrediction> PredictionCache::Lookup(
    const PredictionCacheKey& key, CacheLookupOutcome* outcome) const {
  if (outcome != nullptr) *outcome = CacheLookupOutcome::kMiss;
  if (capacity_ == 0) return nullptr;
  Stripe& stripe = StripeFor(key);
  const auto lock = LockStripe(stripe);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    ++stripe.stats.misses;
    return nullptr;
  }
  if (max_age_epochs_ > 0 &&
      Epoch() - it->second.inserted_epoch >= max_age_epochs_) {
    // Lazy reuse-window expiry: the answer is from a fit that is still
    // valid (retrains Clear() outright) but older than the configured
    // arrival window — treat as a miss so the caller recomputes.
    stripe.lru.erase(it->second.lru_it);
    stripe.entries.erase(it);
    ++stripe.stats.expired;
    ++stripe.stats.misses;
    if (outcome != nullptr) *outcome = CacheLookupOutcome::kExpired;
    return nullptr;
  }
  ++stripe.stats.hits;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  if (outcome != nullptr) *outcome = CacheLookupOutcome::kHit;
  return it->second.value;
}

std::size_t PredictionCache::Insert(const PredictionCacheKey& key,
                                    CachedPrediction entry) {
  if (capacity_ == 0) return 0;
  Stripe& stripe = StripeFor(key);
  const auto lock = LockStripe(stripe);
  auto it = stripe.entries.find(key);
  if (it != stripe.entries.end()) {
    it->second.value =
        std::make_shared<const CachedPrediction>(std::move(entry));
    it->second.inserted_epoch = Epoch();
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
    return 0;
  }
  stripe.lru.push_front(key);
  stripe.entries[key] = {
      stripe.lru.begin(),
      std::make_shared<const CachedPrediction>(std::move(entry)), Epoch()};
  std::size_t evicted = 0;
  while (stripe.entries.size() > stripe_capacity_) {
    stripe.entries.erase(stripe.lru.back());
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
    ++evicted;
  }
  return evicted;
}

void PredictionCache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.entries.clear();
    stripe.lru.clear();
  }
}

std::size_t PredictionCache::Size() const {
  std::size_t total = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.entries.size();
  }
  return total;
}

PredictionCache::Stats PredictionCache::GetStats() const {
  Stats folded;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    folded.hits += stripe.stats.hits;
    folded.misses += stripe.stats.misses;
    folded.evictions += stripe.stats.evictions;
    folded.expired += stripe.stats.expired;
    folded.lock_acquisitions += stripe.stats.lock_acquisitions;
    folded.lock_contended += stripe.stats.lock_contended;
    folded.lock_wait_us += stripe.stats.lock_wait_us;
  }
  return folded;
}

PredictionCache::Stats PredictionCache::StripeStats(std::size_t stripe) const {
  Stripe& s = stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.stats;
}

}  // namespace gaugur::core
