#include "gaugur/corpus.h"

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaugur::core {

namespace {

/// Corpus-generation telemetry: how many colocations the offline budget
/// spent and the realized FPS distribution the models will train on.
struct CorpusMetrics {
  obs::Counter& colocations =
      obs::Registry::Global().GetCounter("corpus.colocations");
  obs::Counter& sessions =
      obs::Registry::Global().GetCounter("corpus.sessions");
  obs::Histogram& measured_fps =
      obs::Registry::Global().GetHistogram("corpus.measured_fps");

  static CorpusMetrics& Get() {
    static CorpusMetrics metrics;
    return metrics;
  }
};

Colocation DrawColocation(const ColocationLab& lab, std::size_t size,
                          bool random_resolutions, common::Rng& rng) {
  const std::size_t num_games = lab.catalog().size();
  GAUGUR_CHECK(size <= num_games);
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const auto ids = rng.SampleWithoutReplacement(num_games, size);
    Colocation colocation;
    colocation.reserve(size);
    for (std::size_t id : ids) {
      SessionRequest session;
      session.game_id = static_cast<int>(id);
      session.resolution =
          random_resolutions
              ? resources::kPlayerResolutions[rng.UniformInt(
                    static_cast<std::uint64_t>(
                        resources::kNumPlayerResolutions))]
              : resources::kReferenceResolution;
      colocation.push_back(session);
    }
    if (lab.FitsMemory(colocation)) return colocation;
  }
  GAUGUR_CHECK_MSG(false, "could not draw a memory-feasible colocation of "
                              << size << " games");
}

}  // namespace

std::vector<MeasuredColocation> GenerateCorpus(const ColocationLab& lab,
                                               const CorpusOptions& options) {
  common::Rng rng(options.seed);
  std::vector<MeasuredColocation> corpus;
  corpus.reserve(static_cast<std::size_t>(
      options.num_pairs + options.num_triples + options.num_quads));

  obs::ScopedSpan span("core.GenerateCorpus");
  auto generate = [&](int count, std::size_t size) {
    for (int i = 0; i < count; ++i) {
      const Colocation colocation =
          DrawColocation(lab, size, options.random_resolutions, rng);
      corpus.push_back(
          lab.Measure(colocation, rng.Next(), options.noise_sigma));
      CorpusMetrics::Get().colocations.Add(1);
      CorpusMetrics::Get().sessions.Add(corpus.back().fps.size());
      for (double fps : corpus.back().fps) {
        CorpusMetrics::Get().measured_fps.Record(fps);
      }
    }
  };
  generate(options.num_pairs, 2);
  generate(options.num_triples, 3);
  generate(options.num_quads, 4);
  return corpus;
}

}  // namespace gaugur::core
