// Interaction-delay prediction — the paper's §7/§8 extension. Cloud
// gaming cares about processing delay (the server-side time to turn a
// player's input into an encoded frame), which is dominated by frame
// time. The paper states the processing delay of colocated games "can be
// predicted in a similar way using our methodology"; this module does so:
// a regression model over the same contention features as the RM, with
// the tail frame time (p95 over a play scene) as the target, trained in
// log space because delay spans more than an order of magnitude.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "gaugur/features.h"
#include "gaugur/lab.h"
#include "ml/model.h"

namespace gaugur::core {

struct DelayPredictorConfig {
  std::string algorithm = "GBRT";
  /// Frames simulated per delay measurement during training.
  int frames_per_measurement = 240;
  std::uint64_t seed = 47;
};

class DelayPredictor {
 public:
  explicit DelayPredictor(const FeatureBuilder& features,
                          DelayPredictorConfig config = {});

  /// Measures the p95 frame time of every session of every training
  /// colocation (offline, like the FPS corpus measurements) and fits the
  /// regressor. Deterministic in config.seed.
  void Train(const ColocationLab& lab,
             std::span<const MeasuredColocation> corpus);

  bool IsTrained() const { return trained_; }

  /// Predicted p95 processing delay (ms) of `victim` among `corunners`.
  double PredictP95DelayMs(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const;

  /// QoS view: does the predicted tail delay stay under `budget_ms`?
  bool PredictDelayOk(double budget_ms, const SessionRequest& victim,
                      std::span<const SessionRequest> corunners) const;

 private:
  const FeatureBuilder* features_;
  DelayPredictorConfig config_;
  std::unique_ptr<ml::Regressor> model_;
  bool trained_ = false;
};

}  // namespace gaugur::core
