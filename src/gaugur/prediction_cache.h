// Bounded memoization for the online prediction service.
//
// The schedulers re-ask the predictor about the same (victim, co-runner
// set) many times — every arrival in the dynamic fleet re-scores the open
// servers, and packing/assignment sweeps revisit candidate colocations —
// so the predictor front-ends its models with this LRU cache. Keys are
// core::ModelJoinKey (order-insensitive over the co-runner set) combined
// with the query kind and, for CM queries, the QoS bit pattern; entries
// carry the model's raw output *and* the feature vector it was computed
// from, so a cache hit can still emit the exact audit record
// (obs::ModelMonitor) an uncached query would have — memoization is
// invisible to the monitoring pipeline.
//
// Invalidation: GAugurPredictor::TrainRm/TrainCm call Clear() — a cache
// must never outlive the model that filled it. Orthogonally, an optional
// max-age knob bounds how long an entry may be reused across scheduler
// arrivals: AdvanceEpoch() ticks once per arrival (the predictor calls
// it from ScoreCandidates), and a Lookup that finds an entry older than
// `max_age_epochs` lazily expires it (counted separately from LRU
// evictions). 0 = no age bound, the PR-3 behavior.
//
// Thread-safe: a single mutex guards the map and LRU list (lookups mutate
// recency). Hit/miss/eviction counts are kept internally (always on, for
// tests) and mirrored into obs counters by the predictor.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace gaugur::core {

/// Identifies one logical predictor query.
struct PredictionCacheKey {
  std::uint64_t join_key = 0;  // core::ModelJoinKey(victim, corunners)
  std::uint64_t qos_bits = 0;  // bit pattern of the QoS; 0 for RM queries
  std::uint8_t kind = 0;       // 0 = RM degradation, 1 = CM probability

  friend bool operator==(const PredictionCacheKey&,
                         const PredictionCacheKey&) = default;
};

struct PredictionCacheKeyHash {
  std::size_t operator()(const PredictionCacheKey& key) const {
    std::uint64_t h = key.join_key;
    h ^= key.qos_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= key.kind + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One memoized model answer: the raw output (clamped RM degradation or
/// CM probability) plus the features it was computed from, kept so cache
/// hits replay bit-identical audit records.
struct CachedPrediction {
  std::vector<double> features;
  double value = 0.0;
};

class PredictionCache {
 public:
  /// `capacity` == 0 disables the cache (every Lookup misses, Insert is
  /// a no-op). `max_age_epochs` == 0 means entries never age out; with a
  /// positive value, an entry inserted at epoch E expires once the epoch
  /// reaches E + max_age_epochs.
  explicit PredictionCache(std::size_t capacity,
                           std::size_t max_age_epochs = 0)
      : capacity_(capacity), max_age_epochs_(max_age_epochs) {}

  /// Advances the reuse-window clock (one tick per scheduler arrival).
  void AdvanceEpoch();
  std::uint64_t Epoch() const;

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const CachedPrediction> Lookup(
      const PredictionCacheKey& key) const;

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries beyond the capacity bound.
  void Insert(const PredictionCacheKey& key, CachedPrediction entry);

  /// Drops every entry (retrain invalidation). Stats are kept.
  void Clear();

  std::size_t Size() const;
  std::size_t Capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Entries dropped by the max-age reuse window (each also counts as
    /// a miss for the lookup that found it stale).
    std::uint64_t expired = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::list<PredictionCacheKey>::iterator lru_it;
    std::shared_ptr<const CachedPrediction> value;
    std::uint64_t inserted_epoch = 0;
  };

  const std::size_t capacity_;
  const std::size_t max_age_epochs_;
  mutable std::uint64_t epoch_ = 0;
  mutable std::mutex mutex_;
  /// Most recently used at the front.
  mutable std::list<PredictionCacheKey> lru_;
  mutable std::unordered_map<PredictionCacheKey, Entry,
                             PredictionCacheKeyHash>
      entries_;
  mutable Stats stats_;
};

}  // namespace gaugur::core
