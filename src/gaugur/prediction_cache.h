// Bounded memoization for the online prediction service.
//
// The schedulers re-ask the predictor about the same (victim, co-runner
// set) many times — every arrival in the dynamic fleet re-scores the open
// servers, and packing/assignment sweeps revisit candidate colocations —
// so the predictor front-ends its models with this LRU cache. Keys are
// core::ModelJoinKey (order-insensitive over the co-runner set) combined
// with the query kind and, for CM queries, the QoS bit pattern; entries
// carry the model's raw output *and* the feature vector it was computed
// from, so a cache hit can still emit the exact audit record
// (obs::ModelMonitor) an uncached query would have — memoization is
// invisible to the monitoring pipeline.
//
// Sharing: one PredictionCache instance is shared by every predictor
// replica in the sharded fleet service (one shard's miss warms every
// shard), so the structure is striped — the key space is partitioned
// into `stripes` independent (mutex, map, LRU list, stats) units and a
// lookup touches exactly one stripe's lock. Capacity and LRU recency are
// per stripe (capacity_/stripes each); with stripes == 1 the cache is
// exactly the former single-lock global-LRU structure, which tests that
// pin exact eviction order rely on.
//
// Invalidation: GAugurPredictor::TrainRm/TrainCm call Clear() — a cache
// must never outlive the model that filled it. Orthogonally, an optional
// max-age knob bounds how long an entry may be reused across scheduler
// arrivals: AdvanceEpoch() ticks once per arrival (the predictor calls
// it from ScoreCandidates; the counter is a single atomic shared by all
// stripes), and a Lookup that finds an entry older than `max_age_epochs`
// lazily expires it (counted separately from LRU evictions). 0 = no age
// bound, the PR-3 behavior.
//
// Thread-safe. Hit/miss/eviction tallies are kept per stripe under that
// stripe's lock — never a data race no matter how many workers share the
// cache — and folded on GetStats(). Callers that mirror outcomes into
// obs counters must not diff GetStats() snapshots (another thread's
// traffic lands in the delta); Lookup/Insert report their own outcome
// exactly via LookupOutcome / the eviction count instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace gaugur::core {

/// Identifies one logical predictor query.
struct PredictionCacheKey {
  std::uint64_t join_key = 0;  // core::ModelJoinKey(victim, corunners)
  std::uint64_t qos_bits = 0;  // bit pattern of the QoS; 0 for RM queries
  std::uint8_t kind = 0;       // 0 = RM degradation, 1 = CM probability

  friend bool operator==(const PredictionCacheKey&,
                         const PredictionCacheKey&) = default;
};

struct PredictionCacheKeyHash {
  std::size_t operator()(const PredictionCacheKey& key) const {
    std::uint64_t h = key.join_key;
    h ^= key.qos_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= key.kind + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One memoized model answer: the raw output (clamped RM degradation or
/// CM probability) plus the features it was computed from, kept so cache
/// hits replay bit-identical audit records.
struct CachedPrediction {
  std::vector<double> features;
  double value = 0.0;
};

/// Exact per-call outcome of a Lookup, for callers that mirror cache
/// activity into obs counters (snapshot diffs are racy once the cache is
/// shared).
enum class CacheLookupOutcome : std::uint8_t {
  kHit,
  kMiss,
  /// Found but older than the max-age reuse window; dropped. Counts as a
  /// miss for the caller (it must recompute) *and* as an expiry.
  kExpired,
};

class PredictionCache {
 public:
  static constexpr std::size_t kDefaultStripes = 8;

  /// `capacity` == 0 disables the cache (every Lookup misses, Insert is
  /// a no-op). `max_age_epochs` == 0 means entries never age out; with a
  /// positive value, an entry inserted at epoch E expires once the epoch
  /// reaches E + max_age_epochs. `stripes` partitions the key space into
  /// independent lock domains; 1 reproduces the former single-lock
  /// global-LRU behavior exactly.
  explicit PredictionCache(std::size_t capacity,
                           std::size_t max_age_epochs = 0,
                           std::size_t stripes = kDefaultStripes);

  /// Advances the reuse-window clock (one tick per scheduler arrival).
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t Epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Returns the entry and refreshes its recency, or nullptr on miss.
  /// When `outcome` is non-null it receives the exact disposition of
  /// this call (kExpired implies a nullptr return).
  std::shared_ptr<const CachedPrediction> Lookup(
      const PredictionCacheKey& key,
      CacheLookupOutcome* outcome = nullptr) const;

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries of the key's stripe beyond its capacity share. Returns the
  /// number of entries evicted by this call.
  std::size_t Insert(const PredictionCacheKey& key, CachedPrediction entry);

  /// Drops every entry (retrain invalidation). Stats are kept.
  void Clear();

  std::size_t Size() const;
  std::size_t Capacity() const { return capacity_; }
  std::size_t NumStripes() const { return stripes_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Entries dropped by the max-age reuse window (each also counts as
    /// a miss for the lookup that found it stale).
    std::uint64_t expired = 0;
    /// Stripe-lock acquisition accounting, kept only while the latency
    /// profiler is active (obs::LatencyProfiler): how many Lookup/Insert
    /// calls took this stripe's lock, how many of those found it held,
    /// and the total time they spent blocked. The uncontended fast path
    /// (try_lock succeeds) costs no clock read; with the profiler
    /// inactive the plain lock is taken and nothing is tallied.
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t lock_contended = 0;
    double lock_wait_us = 0.0;
  };
  /// Folded view over every stripe.
  Stats GetStats() const;
  /// One stripe's tally (for tests asserting the fold is consistent).
  Stats StripeStats(std::size_t stripe) const;

 private:
  struct Entry {
    std::list<PredictionCacheKey>::iterator lru_it;
    std::shared_ptr<const CachedPrediction> value;
    std::uint64_t inserted_epoch = 0;
  };

  /// One lock domain: its own map, recency list, and tallies. Stats are
  /// only ever written under `mutex`, so sharing the cache across
  /// workers cannot race the counters.
  struct Stripe {
    mutable std::mutex mutex;
    /// Most recently used at the front.
    std::list<PredictionCacheKey> lru;
    std::unordered_map<PredictionCacheKey, Entry, PredictionCacheKeyHash>
        entries;
    Stats stats;
  };

  Stripe& StripeFor(const PredictionCacheKey& key) const {
    return stripes_[PredictionCacheKeyHash{}(key) % stripes_.size()];
  }

  /// Takes `stripe.mutex`, tallying acquisition waits into the stripe
  /// stats and the global latency profiler while it is active.
  static std::unique_lock<std::mutex> LockStripe(Stripe& stripe);

  const std::size_t capacity_;
  /// Per-stripe LRU bound: ceil(capacity_ / stripes).
  const std::size_t stripe_capacity_;
  const std::size_t max_age_epochs_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::vector<Stripe> stripes_;
};

}  // namespace gaugur::core
