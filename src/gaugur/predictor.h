// GAugurPredictor: the online prediction service (paper §3.5). Wraps the
// trained classification model (CM) and regression model (RM) behind the
// queries the schedulers need, answering from profiled features only —
// never from the simulator's hidden state.
//
// When observability is on, every public CM/RM query appends one audit
// record to obs::ModelMonitor::Global() (keyed by core::ModelJoinKey) and
// each Train*OnDataset call installs the training set's feature
// distribution as that model's drift reference.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gaugur/features.h"
#include "gaugur/training.h"
#include "ml/model.h"

namespace gaugur::core {

struct PredictorConfig {
  /// Algorithm names per ml::factory; the paper's winners by default.
  std::string rm_algorithm = "GBRT";
  std::string cm_algorithm = "GBDT";
  /// CM decision threshold on the positive-class probability. 0.5 is the
  /// plain max-accuracy rule; scheduling deployments raise it because a
  /// false "feasible" verdict (QoS violation for a paying player) costs
  /// more than a missed colocation opportunity.
  double cm_decision_threshold = 0.5;
  std::uint64_t seed = 31;
};

class GAugurPredictor {
 public:
  /// `features` must outlive the predictor.
  explicit GAugurPredictor(const FeatureBuilder& features,
                           PredictorConfig config = {});

  /// Trains the RM on the corpus (k samples per colocation of k games).
  void TrainRm(std::span<const MeasuredColocation> corpus);
  /// Trains the RM on a pre-built dataset (for sample-count sweeps).
  void TrainRmOnDataset(const ml::Dataset& dataset);

  /// Trains a Q-aware CM by replicating the corpus across `qos_grid`.
  void TrainCm(std::span<const MeasuredColocation> corpus,
               std::span<const double> qos_grid);
  void TrainCmOnDataset(const ml::Dataset& dataset);

  bool HasRm() const { return rm_trained_; }
  bool HasCm() const { return cm_trained_; }

  /// RM: predicted degradation of `victim` among `corunners`.
  double PredictDegradation(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const;

  /// RM: predicted absolute FPS (degradation x profiled solo FPS).
  double PredictFps(const SessionRequest& victim,
                    std::span<const SessionRequest> corunners) const;

  /// CM when trained, else RM-thresholding: does `victim` meet `qos_fps`?
  bool PredictQosOk(double qos_fps, const SessionRequest& victim,
                    std::span<const SessionRequest> corunners) const;

  /// All sessions meet QoS and the profiled memory demands fit.
  bool PredictFeasible(double qos_fps, const Colocation& colocation) const;

  const FeatureBuilder& Features() const { return *features_; }

 private:
  /// Shared RM inference: builds the feature vector into `x` and returns
  /// the clamped degradation. Each public entry point audits exactly one
  /// prediction record, so this raw path never records.
  double RmDegradation(const SessionRequest& victim,
                       std::span<const SessionRequest> corunners,
                       std::vector<double>& x) const;

  /// Appends one RM audit record to the global model monitor (no-op while
  /// obs is disabled). `qos_fps` is 0 for raw FPS queries.
  void AuditRm(const SessionRequest& victim,
               std::span<const SessionRequest> corunners,
               std::span<const double> x, double predicted_fps,
               double qos_fps, bool decision) const;

  const FeatureBuilder* features_;
  PredictorConfig config_;
  std::unique_ptr<ml::Regressor> rm_;
  std::unique_ptr<ml::Classifier> cm_;
  bool rm_trained_ = false;
  bool cm_trained_ = false;
};

}  // namespace gaugur::core
