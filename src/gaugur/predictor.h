// GAugurPredictor: the online prediction service (paper §3.5). Wraps the
// trained classification model (CM) and regression model (RM) behind the
// queries the schedulers need, answering from profiled features only —
// never from the simulator's hidden state.
//
// The service is batched end to end: the schedulers hand over every
// candidate of a decision at once (PredictQosOkBatch / ScoreCandidates),
// features for the whole batch are appended into one row-major matrix
// (no per-query allocation), and a single virtual PredictBatch /
// PredictProbBatch call runs the flattened tree kernels over it. A
// bounded LRU PredictionCache keyed by core::ModelJoinKey (+ QoS for CM
// queries) memoizes raw model outputs across decisions and is
// invalidated by TrainRm/TrainCm. The scalar entry points are
// batches of one.
//
// When observability is on, every public CM/RM query — cache hit or miss
// — appends exactly one audit record to obs::ModelMonitor::Global()
// (keyed by core::ModelJoinKey) and each Train*OnDataset call installs
// the training set's feature distribution as that model's drift
// reference. Cached entries keep their feature vector so a hit replays a
// bit-identical record.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gaugur/features.h"
#include "gaugur/prediction_cache.h"
#include "gaugur/training.h"
#include "ml/model.h"

namespace gaugur::core {

struct PredictorConfig {
  /// Algorithm names per ml::factory; the paper's winners by default.
  std::string rm_algorithm = "GBRT";
  std::string cm_algorithm = "GBDT";
  /// CM decision threshold on the positive-class probability. 0.5 is the
  /// plain max-accuracy rule; scheduling deployments raise it because a
  /// false "feasible" verdict (QoS violation for a paying player) costs
  /// more than a missed colocation opportunity.
  double cm_decision_threshold = 0.5;
  std::uint64_t seed = 31;
  /// Entries held by the memoizing PredictionCache; 0 disables caching
  /// (every query runs the model).
  std::size_t prediction_cache_capacity = 4096;
  /// Reuse window for cached predictions, measured in scheduler arrivals
  /// (ScoreCandidates calls): an entry older than this many arrivals
  /// expires on lookup. 0 = entries live until the next retrain.
  std::size_t prediction_cache_max_age_arrivals = 0;
  /// Lock stripes of the PredictionCache. The sharded fleet service
  /// shares one cache across every predictor replica, so contention
  /// scales with stripe count; 1 reproduces the single-lock global-LRU
  /// eviction order exactly (tests pinning eviction order use 1).
  std::size_t prediction_cache_stripes = PredictionCache::kDefaultStripes;
};

/// Per-candidate provenance of one ScoreCandidatesDetailed call: how the
/// verdict was reached, for the decision event log.
struct CandidateScore {
  bool feasible = false;
  /// Profiled memory screen result; false means no model queries ran.
  bool memory_ok = false;
  /// Model queries spent on this candidate (one per victim).
  std::uint32_t queries = 0;
  /// How many of those were answered from the PredictionCache.
  std::uint32_t cache_hits = 0;
  /// Worst per-victim margin: CM probability minus the decision
  /// threshold, or (RM fallback) predicted FPS minus QoS. Negative means
  /// the binding victim failed. 0 when no queries ran.
  double min_margin = 0.0;
};

class GAugurPredictor {
 public:
  /// `features` must outlive the predictor.
  explicit GAugurPredictor(const FeatureBuilder& features,
                           PredictorConfig config = {});

  /// Trains the RM on the corpus (k samples per colocation of k games).
  void TrainRm(std::span<const MeasuredColocation> corpus);
  /// Trains the RM on a pre-built dataset (for sample-count sweeps).
  void TrainRmOnDataset(const ml::Dataset& dataset);

  /// Trains a Q-aware CM by replicating the corpus across `qos_grid`.
  void TrainCm(std::span<const MeasuredColocation> corpus,
               std::span<const double> qos_grid);
  void TrainCmOnDataset(const ml::Dataset& dataset);

  bool HasRm() const { return rm_trained_; }
  bool HasCm() const { return cm_trained_; }

  /// RM: predicted degradation of `victim` among `corunners`.
  double PredictDegradation(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const;

  /// RM: predicted absolute FPS (degradation x profiled solo FPS).
  double PredictFps(const SessionRequest& victim,
                    std::span<const SessionRequest> corunners) const;

  /// RM: predicted FPS for every query of the batch.
  std::vector<double> PredictFpsBatch(
      std::span<const QosQuery> queries) const;

  /// CM when trained, else RM-thresholding: does `victim` meet `qos_fps`?
  bool PredictQosOk(double qos_fps, const SessionRequest& victim,
                    std::span<const SessionRequest> corunners) const;

  /// One verdict per query, from a single batched model evaluation of
  /// the cache misses.
  std::vector<char> PredictQosOkBatch(
      double qos_fps, std::span<const QosQuery> queries) const;

  /// All sessions meet QoS and the profiled memory demands fit.
  bool PredictFeasible(double qos_fps, const Colocation& colocation) const;

  /// PredictFeasible over a span of candidate colocations with one
  /// batched model evaluation: the scheduler-facing scoring entry point.
  /// Advances the prediction-cache reuse window by one arrival.
  std::vector<char> ScoreCandidates(
      double qos_fps, std::span<const Colocation> candidates) const;

  /// ScoreCandidates with full per-candidate provenance (memory screen,
  /// query count, cache hit count, worst margin) for the decision event
  /// log. Verdicts are bit-identical to ScoreCandidates — the plain call
  /// delegates here.
  std::vector<CandidateScore> ScoreCandidatesDetailed(
      double qos_fps, std::span<const Colocation> candidates) const;

  /// ScoreCandidatesDetailed with caller-supplied additive colocation
  /// hashes: `set_hashes[c]` must equal
  /// IncrementalColocationHash::FromScratch(candidates[c]) (typically
  /// maintained incrementally by the scheduler, O(1) per
  /// arrival/departure). Every per-victim cache/audit key is then derived
  /// in O(1) by subtracting the victim's SessionHash — bit-identical to
  /// the keys the plain overload computes by traversal. An empty span
  /// falls back to hashing each candidate once.
  std::vector<CandidateScore> ScoreCandidatesDetailed(
      double qos_fps, std::span<const Colocation> candidates,
      std::span<const std::uint64_t> set_hashes) const;

  /// A shard-local handle onto this predictor for concurrent scoring:
  /// shares the trained models (immutable between retrains), the feature
  /// builder, and — deliberately — the striped PredictionCache, so one
  /// replica's miss warms every replica. Replicas are cheap (a few
  /// shared_ptr copies), must not be retrained (Train* CHECK-fails), and
  /// are safe to use from one thread each while no thread retrains the
  /// parent. `share_cache = false` gives the replica a private cache of
  /// the same geometry instead — the control arm bench_fleet_scale uses
  /// to measure what cross-shard warming is worth.
  GAugurPredictor MakeReplica(bool share_cache = true) const;
  bool IsReplica() const { return is_replica_; }

  /// Ticks the prediction-cache reuse window (one scheduler arrival).
  /// ScoreCandidates does this itself; custom drivers that only use
  /// PredictQosOkBatch call it once per arrival.
  void AdvanceArrivalEpoch() const { cache_->AdvanceEpoch(); }

  const FeatureBuilder& Features() const { return *features_; }

  /// Cache introspection (tests and run reports). The cache object is
  /// shared across MakeReplica() copies, so stats/size reflect the whole
  /// replica group.
  std::size_t PredictionCacheSize() const { return cache_->Size(); }
  PredictionCache::Stats PredictionCacheStats() const {
    return cache_->GetStats();
  }
  const PredictionCache& Cache() const { return *cache_; }

 private:
  /// One memoized batch model evaluation. `values[i]` is the raw model
  /// output (clamped RM degradation or CM probability), `keys[i]` the
  /// audit join key, and `x[i]` the feature row backing query i — owned
  /// by `hits[i]` (cache hit) or `matrix` (miss), both kept alive here.
  struct BatchEval {
    std::vector<double> values;
    std::vector<std::uint64_t> keys;
    std::vector<std::span<const double>> x;
    std::vector<std::shared_ptr<const CachedPrediction>> hits;
    std::vector<double> matrix;
  };
  /// `precomputed_keys`, when non-empty, supplies ModelJoinKey per query
  /// (callers with incremental colocation hashes derive them in O(1));
  /// empty means compute from the query itself. Either way the keys are
  /// identical by construction.
  BatchEval EvalRmBatch(std::span<const QosQuery> queries,
                        std::span<const std::uint64_t> precomputed_keys = {})
      const;
  BatchEval EvalCmBatch(double qos_fps, std::span<const QosQuery> queries,
                        std::span<const std::uint64_t> precomputed_keys = {})
      const;

  /// PredictQosOkBatch plus optional per-query provenance: when non-null,
  /// `cache_hit[i]` is whether query i was served from the cache and
  /// `margin[i]` its feasibility margin (see CandidateScore::min_margin).
  std::vector<char> QosOkBatchDetailed(
      double qos_fps, std::span<const QosQuery> queries,
      std::vector<char>* cache_hit, std::vector<double>* margin,
      std::span<const std::uint64_t> precomputed_keys = {}) const;

  /// Appends one RM audit record to the global model monitor (no-op while
  /// obs is disabled). `qos_fps` is 0 for raw FPS queries.
  void AuditRm(std::uint64_t join_key, std::span<const double> x,
               double predicted_fps, double qos_fps, bool decision) const;

  double SoloFps(const SessionRequest& victim) const {
    return features_->Profile(victim.game_id).SoloFps(victim.resolution);
  }

  const FeatureBuilder* features_;
  PredictorConfig config_;
  /// Shared with MakeReplica() copies; a model is immutable once trained
  /// (retrains swap behavior in place, which is why replicas may not
  /// retrain — see the CHECK in Train*OnDataset).
  std::shared_ptr<ml::Regressor> rm_;
  std::shared_ptr<ml::Classifier> cm_;
  bool rm_trained_ = false;
  bool cm_trained_ = false;
  bool is_replica_ = false;
  /// Shared across the replica group: one striped cache, so any
  /// replica's miss is every replica's hit.
  std::shared_ptr<PredictionCache> cache_;
};

}  // namespace gaugur::core
