#include "gaugur/predictor.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "ml/factory.h"
#include "obs/event_log.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/switch.h"

namespace gaugur::core {

namespace {

constexpr std::uint8_t kRmKind = 0;
constexpr std::uint8_t kCmKind = 1;

/// Handles into the global metric registry, resolved once. The mutators
/// are no-ops while obs is disabled.
struct PredictorMetrics {
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  obs::Counter& cache_expired;
  obs::Histogram& batch_size;

  static PredictorMetrics& Get() {
    static PredictorMetrics metrics{
        obs::Registry::Global().GetCounter("gaugur.predictor.cache_hits"),
        obs::Registry::Global().GetCounter("gaugur.predictor.cache_misses"),
        obs::Registry::Global().GetCounter(
            "gaugur.predictor.cache_evictions"),
        obs::Registry::Global().GetCounter("gaugur.predictor.cache_expired"),
        obs::Registry::Global().GetHistogram(
            "gaugur.predictor.batch_size",
            obs::Histogram::ExponentialBounds(1.0, 2.0, 14)),
    };
    return metrics;
  }
};

}  // namespace

GAugurPredictor::GAugurPredictor(const FeatureBuilder& features,
                                 PredictorConfig config)
    : features_(&features),
      config_(std::move(config)),
      rm_(ml::MakeRegressor(config_.rm_algorithm, config_.seed)),
      cm_(ml::MakeClassifier(config_.cm_algorithm, config_.seed + 1)),
      cache_(std::make_shared<PredictionCache>(
          config_.prediction_cache_capacity,
          config_.prediction_cache_max_age_arrivals,
          config_.prediction_cache_stripes)) {}

GAugurPredictor GAugurPredictor::MakeReplica(bool share_cache) const {
  GAUGUR_CHECK_MSG(rm_trained_ || cm_trained_,
                   "replicate after training: replicas cannot retrain");
  GAugurPredictor replica(*this);  // shares models + cache (shared_ptr)
  replica.is_replica_ = true;
  if (!share_cache) {
    // Control arm: same cache geometry, but cold and private to this
    // replica (no cross-shard warming).
    replica.cache_ = std::make_shared<PredictionCache>(
        config_.prediction_cache_capacity,
        config_.prediction_cache_max_age_arrivals,
        config_.prediction_cache_stripes);
  }
  return replica;
}

void GAugurPredictor::TrainRm(std::span<const MeasuredColocation> corpus) {
  TrainRmOnDataset(BuildRmDataset(*features_, corpus));
}

void GAugurPredictor::TrainRmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK_MSG(!is_replica_,
                   "replicas share the parent's models; retrain the parent");
  GAUGUR_CHECK(dataset.NumFeatures() == features_->RmDim());
  rm_->Fit(dataset);
  rm_trained_ = true;
  cache_->Clear();  // memoized outputs belong to the previous model
  if (obs::Enabled()) {
    obs::ModelMonitor::Global().SetReference(obs::ModelKind::kRm,
                                             BuildFeatureReference(dataset));
    obs::EventLog::Global().Append(
        obs::EventKind::kRetrain, /*tick=*/0.0, /*decision_id=*/0,
        {{"model", obs::JsonValue("rm")},
         {"rows",
          obs::JsonValue(static_cast<unsigned long long>(dataset.NumRows()))},
         {"algorithm", obs::JsonValue(config_.rm_algorithm)}});
  }
}

void GAugurPredictor::TrainCm(std::span<const MeasuredColocation> corpus,
                              std::span<const double> qos_grid) {
  TrainCmOnDataset(BuildCmDatasetMultiQos(*features_, corpus, qos_grid));
}

void GAugurPredictor::TrainCmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK_MSG(!is_replica_,
                   "replicas share the parent's models; retrain the parent");
  GAUGUR_CHECK(dataset.NumFeatures() == features_->CmDim());
  cm_->Fit(dataset);
  cm_trained_ = true;
  cache_->Clear();
  if (obs::Enabled()) {
    obs::ModelMonitor::Global().SetReference(obs::ModelKind::kCm,
                                             BuildFeatureReference(dataset));
    obs::EventLog::Global().Append(
        obs::EventKind::kRetrain, /*tick=*/0.0, /*decision_id=*/0,
        {{"model", obs::JsonValue("cm")},
         {"rows",
          obs::JsonValue(static_cast<unsigned long long>(dataset.NumRows()))},
         {"algorithm", obs::JsonValue(config_.cm_algorithm)}});
  }
}

GAugurPredictor::BatchEval GAugurPredictor::EvalRmBatch(
    std::span<const QosQuery> queries,
    std::span<const std::uint64_t> precomputed_keys) const {
  GAUGUR_CHECK_MSG(rm_trained_, "RM not trained");
  const bool obs_on = obs::Enabled();
  const std::size_t n = queries.size();
  GAUGUR_CHECK(precomputed_keys.empty() || precomputed_keys.size() == n);
  BatchEval ev;
  ev.values.resize(n);
  ev.keys.resize(n);
  ev.x.resize(n);
  ev.hits.resize(n);

  // Per-call cache tallies: the cache is shared across replicas, so
  // snapshot diffs would absorb other threads' traffic — every outcome
  // is reported exactly by Lookup/Insert instead.
  std::uint64_t expired = 0, evicted = 0;
  std::vector<std::size_t> miss;
  miss.reserve(n);
  {
    obs::PhaseTimer phase(obs::Phase::kCacheLookup);
    for (std::size_t i = 0; i < n; ++i) {
      ev.keys[i] = precomputed_keys.empty()
                       ? ModelJoinKey(queries[i].victim, queries[i].corunners)
                       : precomputed_keys[i];
      CacheLookupOutcome outcome;
      if (auto hit = cache_->Lookup({ev.keys[i], 0, kRmKind}, &outcome)) {
        ev.values[i] = hit->value;
        ev.x[i] = hit->features;
        ev.hits[i] = std::move(hit);
      } else {
        if (outcome == CacheLookupOutcome::kExpired) ++expired;
        miss.push_back(i);
      }
    }
  }

  // Misses: one row-major matrix, one batched model call.
  const std::size_t dim = features_->RmDim();
  ev.matrix.reserve(miss.size() * dim);
  {
    obs::PhaseTimer phase(obs::Phase::kFeatureBuild);
    for (std::size_t i : miss) {
      features_->AppendRmFeatures(queries[i].victim, queries[i].corunners,
                                  ev.matrix);
    }
  }
  std::vector<double> out(miss.size());
  if (!miss.empty()) {
    obs::PhaseTimer phase(obs::Phase::kKernelEval);
    rm_->PredictBatch(ml::MatrixView{ev.matrix.data(), miss.size(), dim},
                      out);
  }
  {
    obs::PhaseTimer phase(obs::Phase::kCacheLookup);
    for (std::size_t j = 0; j < miss.size(); ++j) {
      const std::size_t i = miss[j];
      const double degradation = std::clamp(out[j], 0.01, 1.0);
      ev.values[i] = degradation;
      const std::span<const double> row{ev.matrix.data() + j * dim, dim};
      ev.x[i] = row;
      evicted += cache_->Insert(
          {ev.keys[i], 0, kRmKind},
          {std::vector<double>(row.begin(), row.end()), degradation});
    }
  }

  if (obs_on) {
    auto& metrics = PredictorMetrics::Get();
    metrics.batch_size.Record(static_cast<double>(n));
    metrics.cache_hits.Add(n - miss.size());
    metrics.cache_misses.Add(miss.size());
    metrics.cache_evictions.Add(evicted);
    metrics.cache_expired.Add(expired);
  }
  return ev;
}

GAugurPredictor::BatchEval GAugurPredictor::EvalCmBatch(
    double qos_fps, std::span<const QosQuery> queries,
    std::span<const std::uint64_t> precomputed_keys) const {
  GAUGUR_CHECK_MSG(cm_trained_, "CM not trained");
  const bool obs_on = obs::Enabled();
  const std::uint64_t qos_bits = std::bit_cast<std::uint64_t>(qos_fps);
  const std::size_t n = queries.size();
  GAUGUR_CHECK(precomputed_keys.empty() || precomputed_keys.size() == n);
  BatchEval ev;
  ev.values.resize(n);
  ev.keys.resize(n);
  ev.x.resize(n);
  ev.hits.resize(n);

  std::uint64_t expired = 0, evicted = 0;
  std::vector<std::size_t> miss;
  miss.reserve(n);
  {
    obs::PhaseTimer phase(obs::Phase::kCacheLookup);
    for (std::size_t i = 0; i < n; ++i) {
      ev.keys[i] = precomputed_keys.empty()
                       ? ModelJoinKey(queries[i].victim, queries[i].corunners)
                       : precomputed_keys[i];
      CacheLookupOutcome outcome;
      if (auto hit =
              cache_->Lookup({ev.keys[i], qos_bits, kCmKind}, &outcome)) {
        ev.values[i] = hit->value;
        ev.x[i] = hit->features;
        ev.hits[i] = std::move(hit);
      } else {
        if (outcome == CacheLookupOutcome::kExpired) ++expired;
        miss.push_back(i);
      }
    }
  }

  const std::size_t dim = features_->CmDim();
  ev.matrix.reserve(miss.size() * dim);
  {
    obs::PhaseTimer phase(obs::Phase::kFeatureBuild);
    for (std::size_t i : miss) {
      features_->AppendCmFeatures(qos_fps, queries[i].victim,
                                  queries[i].corunners, ev.matrix);
    }
  }
  std::vector<double> out(miss.size());
  if (!miss.empty()) {
    obs::PhaseTimer phase(obs::Phase::kKernelEval);
    cm_->PredictProbBatch(
        ml::MatrixView{ev.matrix.data(), miss.size(), dim}, out);
  }
  {
    obs::PhaseTimer phase(obs::Phase::kCacheLookup);
    for (std::size_t j = 0; j < miss.size(); ++j) {
      const std::size_t i = miss[j];
      ev.values[i] = out[j];
      const std::span<const double> row{ev.matrix.data() + j * dim, dim};
      ev.x[i] = row;
      evicted += cache_->Insert(
          {ev.keys[i], qos_bits, kCmKind},
          {std::vector<double>(row.begin(), row.end()), out[j]});
    }
  }

  if (obs_on) {
    auto& metrics = PredictorMetrics::Get();
    metrics.batch_size.Record(static_cast<double>(n));
    metrics.cache_hits.Add(n - miss.size());
    metrics.cache_misses.Add(miss.size());
    metrics.cache_evictions.Add(evicted);
    metrics.cache_expired.Add(expired);
  }
  return ev;
}

void GAugurPredictor::AuditRm(std::uint64_t join_key,
                              std::span<const double> x, double predicted_fps,
                              double qos_fps, bool decision) const {
  if (!obs::Enabled()) return;
  obs::ModelMonitor::Global().RecordPrediction(obs::ModelKind::kRm, join_key,
                                               x, predicted_fps,
                                               /*threshold=*/qos_fps,
                                               decision, qos_fps);
}

double GAugurPredictor::PredictDegradation(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  const QosQuery query{victim, corunners};
  const BatchEval ev = EvalRmBatch({&query, 1});
  // Audited in FPS units (degradation x profiled solo FPS) so the record
  // joins against realized FPS like every other RM entry.
  AuditRm(ev.keys[0], ev.x[0], ev.values[0] * SoloFps(victim),
          /*qos_fps=*/0.0, /*decision=*/false);
  return ev.values[0];
}

double GAugurPredictor::PredictFps(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  const QosQuery query{victim, corunners};
  const BatchEval ev = EvalRmBatch({&query, 1});
  const double fps = ev.values[0] * SoloFps(victim);
  AuditRm(ev.keys[0], ev.x[0], fps, /*qos_fps=*/0.0, /*decision=*/false);
  return fps;
}

std::vector<double> GAugurPredictor::PredictFpsBatch(
    std::span<const QosQuery> queries) const {
  const BatchEval ev = EvalRmBatch(queries);
  std::vector<double> fps(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    fps[i] = ev.values[i] * SoloFps(queries[i].victim);
    AuditRm(ev.keys[i], ev.x[i], fps[i], /*qos_fps=*/0.0,
            /*decision=*/false);
  }
  return fps;
}

bool GAugurPredictor::PredictQosOk(
    double qos_fps, const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  const QosQuery query{victim, corunners};
  return PredictQosOkBatch(qos_fps, {&query, 1})[0] != 0;
}

std::vector<char> GAugurPredictor::PredictQosOkBatch(
    double qos_fps, std::span<const QosQuery> queries) const {
  return QosOkBatchDetailed(qos_fps, queries, nullptr, nullptr);
}

std::vector<char> GAugurPredictor::QosOkBatchDetailed(
    double qos_fps, std::span<const QosQuery> queries,
    std::vector<char>* cache_hit, std::vector<double>* margin,
    std::span<const std::uint64_t> precomputed_keys) const {
  std::vector<char> ok(queries.size());
  if (cache_hit != nullptr) cache_hit->assign(queries.size(), 0);
  if (margin != nullptr) margin->assign(queries.size(), 0.0);
  if (cm_trained_) {
    const BatchEval ev = EvalCmBatch(qos_fps, queries, precomputed_keys);
    const bool obs_on = obs::Enabled();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const bool feasible = ev.values[i] >= config_.cm_decision_threshold;
      ok[i] = feasible ? 1 : 0;
      if (cache_hit != nullptr && ev.hits[i] != nullptr) {
        (*cache_hit)[i] = 1;
      }
      if (margin != nullptr) {
        (*margin)[i] = ev.values[i] - config_.cm_decision_threshold;
      }
      if (obs_on) {
        obs::ModelMonitor::Global().RecordPrediction(
            obs::ModelKind::kCm, ev.keys[i], ev.x[i], ev.values[i],
            config_.cm_decision_threshold, feasible, qos_fps);
      }
    }
    return ok;
  }
  // RM fallback: threshold the predicted absolute FPS against QoS.
  const BatchEval ev = EvalRmBatch(queries, precomputed_keys);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double fps = ev.values[i] * SoloFps(queries[i].victim);
    const bool feasible = fps >= qos_fps;
    ok[i] = feasible ? 1 : 0;
    if (cache_hit != nullptr && ev.hits[i] != nullptr) (*cache_hit)[i] = 1;
    if (margin != nullptr) (*margin)[i] = fps - qos_fps;
    AuditRm(ev.keys[i], ev.x[i], fps, qos_fps, feasible);
  }
  return ok;
}

bool GAugurPredictor::PredictFeasible(double qos_fps,
                                      const Colocation& colocation) const {
  return ScoreCandidates(qos_fps, {&colocation, 1})[0] != 0;
}

std::vector<char> GAugurPredictor::ScoreCandidates(
    double qos_fps, std::span<const Colocation> candidates) const {
  const std::vector<CandidateScore> scores =
      ScoreCandidatesDetailed(qos_fps, candidates);
  std::vector<char> feasible(candidates.size(), 0);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    feasible[c] = scores[c].feasible ? 1 : 0;
  }
  return feasible;
}

std::vector<CandidateScore> GAugurPredictor::ScoreCandidatesDetailed(
    double qos_fps, std::span<const Colocation> candidates) const {
  return ScoreCandidatesDetailed(qos_fps, candidates, {});
}

std::vector<CandidateScore> GAugurPredictor::ScoreCandidatesDetailed(
    double qos_fps, std::span<const Colocation> candidates,
    std::span<const std::uint64_t> set_hashes) const {
  // One scheduler arrival = one tick of the cache's reuse window.
  cache_->AdvanceEpoch();
  GAUGUR_CHECK(set_hashes.empty() || set_hashes.size() == candidates.size());

  std::vector<CandidateScore> scores(candidates.size());

  // Memory screen first; only memory-fitting candidates spend model
  // queries.
  std::size_t num_queries = 0;
  std::size_t pool_slots = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    double cpu_mem = 0.0, gpu_mem = 0.0;
    for (const auto& session : candidates[c]) {
      const auto& profile = features_->Profile(session.game_id);
      cpu_mem += profile.cpu_memory;
      gpu_mem += profile.gpu_memory;
    }
    if (cpu_mem <= 1.0 && gpu_mem <= 1.0) {
      scores[c].memory_ok = true;
      scores[c].feasible = true;
      num_queries += candidates[c].size();
      pool_slots += candidates[c].size() * (candidates[c].size() - 1);
    }
  }
  if (num_queries == 0) return scores;

  // One query per (victim, candidate). Co-runner sets live in one flat
  // pool, reserved up front so the spans stay valid while the batch runs.
  std::vector<SessionRequest> pool;
  pool.reserve(pool_slots);
  std::vector<QosQuery> queries;
  queries.reserve(num_queries);
  std::vector<std::size_t> query_candidate;
  query_candidate.reserve(num_queries);
  std::vector<std::uint64_t> query_keys;
  query_keys.reserve(num_queries);
  {
    obs::PhaseTimer phase(obs::Phase::kColocationHash);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!scores[c].memory_ok) continue;
      const Colocation& colocation = candidates[c];
      // Additive colocation hash: supplied by an incremental-hash-keeping
      // scheduler, else one O(k) sum here. Each victim's join key is then
      // derived in O(1) — the co-runner sum is the total minus the victim.
      const std::uint64_t total_hash =
          set_hashes.empty()
              ? IncrementalColocationHash::FromScratch(colocation)
              : set_hashes[c];
      for (std::size_t v = 0; v < colocation.size(); ++v) {
        const std::size_t begin = pool.size();
        for (std::size_t j = 0; j < colocation.size(); ++j) {
          if (j != v) pool.push_back(colocation[j]);
        }
        queries.push_back(
            {colocation[v],
             std::span<const SessionRequest>(pool.data() + begin,
                                             pool.size() - begin)});
        query_candidate.push_back(c);
        const std::uint64_t victim_hash = SessionHash(colocation[v]);
        query_keys.push_back(
            JoinKeyFromHashes(victim_hash, total_hash - victim_hash));
      }
    }
  }

  std::vector<char> hit;
  std::vector<double> margin;
  const std::vector<char> ok =
      QosOkBatchDetailed(qos_fps, queries, &hit, &margin, query_keys);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    CandidateScore& score = scores[query_candidate[q]];
    if (ok[q] == 0) score.feasible = false;
    if (score.queries == 0 || margin[q] < score.min_margin) {
      score.min_margin = margin[q];
    }
    ++score.queries;
    score.cache_hits += hit[q] != 0 ? 1 : 0;
  }
  return scores;
}

}  // namespace gaugur::core
