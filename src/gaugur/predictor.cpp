#include "gaugur/predictor.h"

#include <algorithm>

#include "common/check.h"
#include "ml/factory.h"

namespace gaugur::core {

GAugurPredictor::GAugurPredictor(const FeatureBuilder& features,
                                 PredictorConfig config)
    : features_(&features),
      config_(std::move(config)),
      rm_(ml::MakeRegressor(config_.rm_algorithm, config_.seed)),
      cm_(ml::MakeClassifier(config_.cm_algorithm, config_.seed + 1)) {}

void GAugurPredictor::TrainRm(std::span<const MeasuredColocation> corpus) {
  TrainRmOnDataset(BuildRmDataset(*features_, corpus));
}

void GAugurPredictor::TrainRmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK(dataset.NumFeatures() == features_->RmDim());
  rm_->Fit(dataset);
  rm_trained_ = true;
}

void GAugurPredictor::TrainCm(std::span<const MeasuredColocation> corpus,
                              std::span<const double> qos_grid) {
  TrainCmOnDataset(BuildCmDatasetMultiQos(*features_, corpus, qos_grid));
}

void GAugurPredictor::TrainCmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK(dataset.NumFeatures() == features_->CmDim());
  cm_->Fit(dataset);
  cm_trained_ = true;
}

double GAugurPredictor::PredictDegradation(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  GAUGUR_CHECK_MSG(rm_trained_, "RM not trained");
  const auto x = features_->RmFeatures(victim, corunners);
  return std::clamp(rm_->Predict(x), 0.01, 1.0);
}

double GAugurPredictor::PredictFps(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  return PredictDegradation(victim, corunners) *
         features_->Profile(victim.game_id).SoloFps(victim.resolution);
}

bool GAugurPredictor::PredictQosOk(
    double qos_fps, const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  if (cm_trained_) {
    const auto x = features_->CmFeatures(qos_fps, victim, corunners);
    return cm_->PredictProb(x) >= config_.cm_decision_threshold;
  }
  return PredictFps(victim, corunners) >= qos_fps;
}

bool GAugurPredictor::PredictFeasible(double qos_fps,
                                      const Colocation& colocation) const {
  double cpu_mem = 0.0, gpu_mem = 0.0;
  for (const auto& session : colocation) {
    const auto& profile = features_->Profile(session.game_id);
    cpu_mem += profile.cpu_memory;
    gpu_mem += profile.gpu_memory;
  }
  if (cpu_mem > 1.0 || gpu_mem > 1.0) return false;

  std::vector<SessionRequest> corunners;
  corunners.reserve(colocation.size() - 1);
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    corunners.clear();
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    if (!PredictQosOk(qos_fps, colocation[v], corunners)) return false;
  }
  return true;
}

}  // namespace gaugur::core
