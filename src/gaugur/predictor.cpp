#include "gaugur/predictor.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "ml/factory.h"
#include "obs/model_monitor.h"
#include "obs/switch.h"

namespace gaugur::core {

GAugurPredictor::GAugurPredictor(const FeatureBuilder& features,
                                 PredictorConfig config)
    : features_(&features),
      config_(std::move(config)),
      rm_(ml::MakeRegressor(config_.rm_algorithm, config_.seed)),
      cm_(ml::MakeClassifier(config_.cm_algorithm, config_.seed + 1)) {}

void GAugurPredictor::TrainRm(std::span<const MeasuredColocation> corpus) {
  TrainRmOnDataset(BuildRmDataset(*features_, corpus));
}

void GAugurPredictor::TrainRmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK(dataset.NumFeatures() == features_->RmDim());
  rm_->Fit(dataset);
  rm_trained_ = true;
  if (obs::Enabled()) {
    obs::ModelMonitor::Global().SetReference(obs::ModelKind::kRm,
                                             BuildFeatureReference(dataset));
  }
}

void GAugurPredictor::TrainCm(std::span<const MeasuredColocation> corpus,
                              std::span<const double> qos_grid) {
  TrainCmOnDataset(BuildCmDatasetMultiQos(*features_, corpus, qos_grid));
}

void GAugurPredictor::TrainCmOnDataset(const ml::Dataset& dataset) {
  GAUGUR_CHECK(dataset.NumFeatures() == features_->CmDim());
  cm_->Fit(dataset);
  cm_trained_ = true;
  if (obs::Enabled()) {
    obs::ModelMonitor::Global().SetReference(obs::ModelKind::kCm,
                                             BuildFeatureReference(dataset));
  }
}

double GAugurPredictor::RmDegradation(
    const SessionRequest& victim, std::span<const SessionRequest> corunners,
    std::vector<double>& x) const {
  GAUGUR_CHECK_MSG(rm_trained_, "RM not trained");
  x = features_->RmFeatures(victim, corunners);
  return std::clamp(rm_->Predict(x), 0.01, 1.0);
}

void GAugurPredictor::AuditRm(const SessionRequest& victim,
                              std::span<const SessionRequest> corunners,
                              std::span<const double> x, double predicted_fps,
                              double qos_fps, bool decision) const {
  if (!obs::Enabled()) return;
  obs::ModelMonitor::Global().RecordPrediction(
      obs::ModelKind::kRm, ModelJoinKey(victim, corunners), x, predicted_fps,
      /*threshold=*/qos_fps, decision, qos_fps);
}

double GAugurPredictor::PredictDegradation(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  std::vector<double> x;
  const double degradation = RmDegradation(victim, corunners, x);
  // Audited in FPS units (degradation x profiled solo FPS) so the record
  // joins against realized FPS like every other RM entry.
  AuditRm(victim, corunners, x,
          degradation *
              features_->Profile(victim.game_id).SoloFps(victim.resolution),
          /*qos_fps=*/0.0, /*decision=*/false);
  return degradation;
}

double GAugurPredictor::PredictFps(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  std::vector<double> x;
  const double fps =
      RmDegradation(victim, corunners, x) *
      features_->Profile(victim.game_id).SoloFps(victim.resolution);
  AuditRm(victim, corunners, x, fps, /*qos_fps=*/0.0, /*decision=*/false);
  return fps;
}

bool GAugurPredictor::PredictQosOk(
    double qos_fps, const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  if (cm_trained_) {
    const auto x = features_->CmFeatures(qos_fps, victim, corunners);
    const double prob = cm_->PredictProb(x);
    const bool feasible = prob >= config_.cm_decision_threshold;
    if (obs::Enabled()) {
      obs::ModelMonitor::Global().RecordPrediction(
          obs::ModelKind::kCm, ModelJoinKey(victim, corunners), x, prob,
          config_.cm_decision_threshold, feasible, qos_fps);
    }
    return feasible;
  }
  std::vector<double> x;
  const double fps =
      RmDegradation(victim, corunners, x) *
      features_->Profile(victim.game_id).SoloFps(victim.resolution);
  const bool feasible = fps >= qos_fps;
  AuditRm(victim, corunners, x, fps, qos_fps, feasible);
  return feasible;
}

bool GAugurPredictor::PredictFeasible(double qos_fps,
                                      const Colocation& colocation) const {
  double cpu_mem = 0.0, gpu_mem = 0.0;
  for (const auto& session : colocation) {
    const auto& profile = features_->Profile(session.game_id);
    cpu_mem += profile.cpu_memory;
    gpu_mem += profile.gpu_memory;
  }
  if (cpu_mem > 1.0 || gpu_mem > 1.0) return false;

  std::vector<SessionRequest> corunners;
  corunners.reserve(colocation.size() - 1);
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    corunners.clear();
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    if (!PredictQosOk(qos_fps, colocation[v], corunners)) return false;
  }
  return true;
}

}  // namespace gaugur::core
