#include "gaugur/features.h"

#include <cmath>

#include "common/check.h"

namespace gaugur::core {

using resources::Resource;

void AggregateIntensity::AppendTo(std::vector<double>& out) const {
  out.push_back(group_size);
  for (Resource r : resources::kAllResources) {
    out.push_back(mean[r]);
    out.push_back(dispersion[r]);
  }
}

FeatureBuilder::FeatureBuilder(std::vector<profiling::GameProfile> profiles)
    : profiles_(std::move(profiles)) {
  GAUGUR_CHECK(!profiles_.empty());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    GAUGUR_CHECK_MSG(profiles_[i].game_id == static_cast<int>(i),
                     "profiles must be indexed by game id");
  }
  curve_points_ = profiles_[0].sensitivity[0].degradation.size();
  GAUGUR_CHECK(curve_points_ >= 2);
}

const profiling::GameProfile& FeatureBuilder::Profile(int game_id) const {
  GAUGUR_CHECK(game_id >= 0 &&
               static_cast<std::size_t>(game_id) < profiles_.size());
  return profiles_[static_cast<std::size_t>(game_id)];
}

AggregateIntensity FeatureBuilder::Aggregate(
    std::span<const SessionRequest> corunners) const {
  AggregateIntensity agg;
  agg.group_size = static_cast<double>(corunners.size());
  if (corunners.empty()) return agg;

  for (Resource r : resources::kAllResources) {
    double sum = 0.0;
    for (const auto& c : corunners) {
      sum += Profile(c.game_id).IntensityAt(r, c.resolution);
    }
    agg.mean[r] = sum / agg.group_size;
  }
  for (Resource r : resources::kAllResources) {
    double sq = 0.0;
    for (const auto& c : corunners) {
      const double d =
          Profile(c.game_id).IntensityAt(r, c.resolution) - agg.mean[r];
      sq += d * d;
    }
    // The paper's dispersion term: (1/|G|) * sqrt(sum of squared devs).
    agg.dispersion[r] = std::sqrt(sq) / agg.group_size;
  }
  return agg;
}

void FeatureBuilder::AppendRmFeatures(
    const SessionRequest& victim, std::span<const SessionRequest> corunners,
    std::vector<double>& out) const {
  const auto& profile = Profile(victim.game_id);
  for (const auto& curve : profile.sensitivity) {
    GAUGUR_CHECK(curve.degradation.size() == curve_points_);
    out.insert(out.end(), curve.degradation.begin(),
               curve.degradation.end());
  }
  // Victim-side extension block (see header).
  out.push_back(victim.resolution.Megapixels());
  out.push_back(profile.SoloFps(victim.resolution));
  for (Resource r : resources::kAllResources) {
    out.push_back(profile.IntensityAt(r, victim.resolution));
  }
  Aggregate(corunners).AppendTo(out);
}

void FeatureBuilder::AppendCmFeatures(
    double qos_fps, const SessionRequest& victim,
    std::span<const SessionRequest> corunners,
    std::vector<double>& out) const {
  out.push_back(qos_fps);
  out.push_back(Profile(victim.game_id).SoloFps(victim.resolution));
  AppendRmFeatures(victim, corunners, out);
}

std::vector<double> FeatureBuilder::RmFeatures(
    const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  std::vector<double> features;
  features.reserve(RmDim());
  AppendRmFeatures(victim, corunners, features);
  return features;
}

std::vector<double> FeatureBuilder::CmFeatures(
    double qos_fps, const SessionRequest& victim,
    std::span<const SessionRequest> corunners) const {
  std::vector<double> features;
  features.reserve(CmDim());
  AppendCmFeatures(qos_fps, victim, corunners, features);
  return features;
}

std::size_t FeatureBuilder::RmDim() const {
  return resources::kNumResources * curve_points_ + kVictimDim +
         AggregateIntensity::kDim;
}

std::vector<std::string> FeatureBuilder::RmFeatureNames() const {
  std::vector<std::string> names;
  names.reserve(RmDim());
  for (Resource r : resources::kAllResources) {
    for (std::size_t p = 0; p < curve_points_; ++p) {
      names.push_back("S." + std::string(resources::Name(r)) + "." +
                      std::to_string(p));
    }
  }
  names.emplace_back("V.megapixels");
  names.emplace_back("V.solo_fps");
  for (Resource r : resources::kAllResources) {
    names.push_back("V.intensity." + std::string(resources::Name(r)));
  }
  names.push_back("I.group_size");
  for (Resource r : resources::kAllResources) {
    names.push_back("I.mean." + std::string(resources::Name(r)));
    names.push_back("I.disp." + std::string(resources::Name(r)));
  }
  return names;
}

std::vector<std::string> FeatureBuilder::CmFeatureNames() const {
  std::vector<std::string> names;
  names.reserve(CmDim());
  names.emplace_back("qos_fps");
  names.emplace_back("solo_fps");
  const auto rm = RmFeatureNames();
  names.insert(names.end(), rm.begin(), rm.end());
  return names;
}

}  // namespace gaugur::core
