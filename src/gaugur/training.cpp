#include "gaugur/training.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"

namespace gaugur::core {

namespace {

/// Visits each (colocation, victim) pair, handing the callback the victim
/// session, its co-runners, and its measured FPS.
template <typename Fn>
void ForEachVictim(std::span<const MeasuredColocation> corpus, Fn&& fn) {
  std::vector<SessionRequest> corunners;
  for (const auto& measured : corpus) {
    GAUGUR_CHECK(measured.fps.size() == measured.sessions.size());
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      corunners.clear();
      for (std::size_t j = 0; j < measured.sessions.size(); ++j) {
        if (j != v) corunners.push_back(measured.sessions[j]);
      }
      fn(measured.sessions[v], std::span<const SessionRequest>(corunners),
         measured.fps[v]);
    }
  }
}

}  // namespace

double DegradationTarget(const FeatureBuilder& features,
                         const SessionRequest& victim, double measured_fps) {
  const double solo = features.Profile(victim.game_id).SoloFps(
      victim.resolution);
  GAUGUR_CHECK(solo > 0.0);
  return std::clamp(measured_fps / solo, 0.01, 1.0);
}

ml::Dataset BuildRmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus) {
  ml::Dataset dataset(features.RmDim(), features.RmFeatureNames());
  ForEachVictim(corpus, [&](const SessionRequest& victim,
                            std::span<const SessionRequest> corunners,
                            double fps) {
    dataset.Add(features.RmFeatures(victim, corunners),
                DegradationTarget(features, victim, fps));
  });
  return dataset;
}

ml::Dataset BuildCmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus,
                           double qos_fps) {
  ml::Dataset dataset(features.CmDim(), features.CmFeatureNames());
  ForEachVictim(corpus, [&](const SessionRequest& victim,
                            std::span<const SessionRequest> corunners,
                            double fps) {
    dataset.Add(features.CmFeatures(qos_fps, victim, corunners),
                fps >= qos_fps ? 1.0 : 0.0);
  });
  return dataset;
}

ml::Dataset BuildCmDatasetMultiQos(const FeatureBuilder& features,
                                   std::span<const MeasuredColocation> corpus,
                                   std::span<const double> qos_grid) {
  GAUGUR_CHECK(!qos_grid.empty());
  ml::Dataset dataset(features.CmDim(), features.CmFeatureNames());
  for (double qos : qos_grid) {
    const ml::Dataset at_qos = BuildCmDataset(features, corpus, qos);
    dataset.Append(at_qos);
  }
  return dataset;
}

obs::FeatureReference BuildFeatureReference(const ml::Dataset& dataset,
                                            std::size_t bins) {
  GAUGUR_CHECK(bins >= 2);
  obs::FeatureReference reference;
  const std::size_t rows = dataset.NumRows();
  reference.samples = rows;
  for (std::size_t f = 0; f < dataset.NumFeatures(); ++f) {
    reference.names.push_back(f < dataset.FeatureNames().size()
                                  ? dataset.FeatureNames()[f]
                                  : "f" + std::to_string(f));

    std::vector<double> column;
    column.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) column.push_back(dataset.Row(i)[f]);
    std::sort(column.begin(), column.end());

    // Interior quantile edges; deduplicated, so a near-constant column
    // collapses to one wide bin instead of many empty ones.
    std::vector<double> edges;
    for (std::size_t b = 1; b < bins && rows > 0; ++b) {
      const std::size_t index =
          std::min(rows - 1, static_cast<std::size_t>(
                                 static_cast<double>(b) *
                                 static_cast<double>(rows) /
                                 static_cast<double>(bins)));
      const double edge = column[index];
      // An edge must strictly split the column: above the minimum and above
      // the previous edge, else it would only mint empty bins.
      const double floor = edges.empty() ? column.front() : edges.back();
      if (edge > floor) edges.push_back(edge);
    }
    reference.edges.push_back(edges);
    reference.probs.emplace_back(edges.size() + 1, 0.0);
  }
  // Bin the training rows with the exact Bin() the monitor uses online, so
  // reference proportions and online counts share the layout by
  // construction.
  for (std::size_t i = 0; i < rows; ++i) {
    const auto row = dataset.Row(i);
    for (std::size_t f = 0; f < dataset.NumFeatures(); ++f) {
      reference.probs[f][reference.Bin(f, row[f])] += 1.0;
    }
  }
  if (rows > 0) {
    for (auto& probs : reference.probs) {
      for (double& p : probs) p /= static_cast<double>(rows);
    }
  }
  return reference;
}

}  // namespace gaugur::core
