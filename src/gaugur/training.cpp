#include "gaugur/training.h"

#include <algorithm>

#include "common/check.h"

namespace gaugur::core {

namespace {

/// Visits each (colocation, victim) pair, handing the callback the victim
/// session, its co-runners, and its measured FPS.
template <typename Fn>
void ForEachVictim(std::span<const MeasuredColocation> corpus, Fn&& fn) {
  std::vector<SessionRequest> corunners;
  for (const auto& measured : corpus) {
    GAUGUR_CHECK(measured.fps.size() == measured.sessions.size());
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      corunners.clear();
      for (std::size_t j = 0; j < measured.sessions.size(); ++j) {
        if (j != v) corunners.push_back(measured.sessions[j]);
      }
      fn(measured.sessions[v], std::span<const SessionRequest>(corunners),
         measured.fps[v]);
    }
  }
}

}  // namespace

double DegradationTarget(const FeatureBuilder& features,
                         const SessionRequest& victim, double measured_fps) {
  const double solo = features.Profile(victim.game_id).SoloFps(
      victim.resolution);
  GAUGUR_CHECK(solo > 0.0);
  return std::clamp(measured_fps / solo, 0.01, 1.0);
}

ml::Dataset BuildRmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus) {
  ml::Dataset dataset(features.RmDim(), features.RmFeatureNames());
  ForEachVictim(corpus, [&](const SessionRequest& victim,
                            std::span<const SessionRequest> corunners,
                            double fps) {
    dataset.Add(features.RmFeatures(victim, corunners),
                DegradationTarget(features, victim, fps));
  });
  return dataset;
}

ml::Dataset BuildCmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus,
                           double qos_fps) {
  ml::Dataset dataset(features.CmDim(), features.CmFeatureNames());
  ForEachVictim(corpus, [&](const SessionRequest& victim,
                            std::span<const SessionRequest> corunners,
                            double fps) {
    dataset.Add(features.CmFeatures(qos_fps, victim, corunners),
                fps >= qos_fps ? 1.0 : 0.0);
  });
  return dataset;
}

ml::Dataset BuildCmDatasetMultiQos(const FeatureBuilder& features,
                                   std::span<const MeasuredColocation> corpus,
                                   std::span<const double> qos_grid) {
  GAUGUR_CHECK(!qos_grid.empty());
  ml::Dataset dataset(features.CmDim(), features.CmFeatureNames());
  for (double qos : qos_grid) {
    const ml::Dataset at_qos = BuildCmDataset(features, corpus, qos);
    dataset.Append(at_qos);
  }
  return dataset;
}

}  // namespace gaugur::core
