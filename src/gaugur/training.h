// Training-sample generation (paper §3.5): a measured colocation of k
// games yields k samples per model — one with each game as the victim.
//
//   RM sample:  [ S^A | I^G ]            ->  delta = fps_coloc / fps_solo
//   CM sample:  [ Q, F_solo | S^A | I^G ] -> 1{fps_coloc >= Q}
//
// fps_solo is the *profiled* solo rate at the victim's resolution (the
// Eq. 2 linear model) — predictors only ever see profiled quantities.
#pragma once

#include <cstddef>
#include <span>

#include "gaugur/features.h"
#include "ml/dataset.h"
#include "obs/model_monitor.h"

namespace gaugur::core {

/// Regression dataset over every (colocation, victim) pair.
ml::Dataset BuildRmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus);

/// Classification dataset at a fixed QoS requirement.
ml::Dataset BuildCmDataset(const FeatureBuilder& features,
                           std::span<const MeasuredColocation> corpus,
                           double qos_fps);

/// Classification dataset replicated across several QoS levels, for a CM
/// that must serve arbitrary Q at prediction time (Q is an input feature
/// per Eq. 3).
ml::Dataset BuildCmDatasetMultiQos(const FeatureBuilder& features,
                                   std::span<const MeasuredColocation> corpus,
                                   std::span<const double> qos_grid);

/// The per-sample degradation target used by BuildRmDataset, exposed for
/// evaluation code: measured colocated FPS over profiled solo FPS,
/// clamped into (0, 1].
double DegradationTarget(const FeatureBuilder& features,
                         const SessionRequest& victim, double measured_fps);

/// Fit-time feature-distribution snapshot for the model monitor's PSI
/// drift detection: per-feature quantile bin edges over the training
/// columns plus the reference proportion of training rows in each bin.
/// Columns with few distinct values get fewer (deduplicated) edges.
obs::FeatureReference BuildFeatureReference(const ml::Dataset& dataset,
                                            std::size_t bins = 10);

}  // namespace gaugur::core
