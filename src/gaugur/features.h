// Feature construction for the GAugur models (paper §3.4).
//
// RM input (Eq. 4, extended):  [ S^A | V^A | I^G ]
// CM input (Eq. 3):            [ Q, F_solo^A | S^A | V^A | I^G ]
//
// where S^A is the victim's 7 sensitivity curves sampled at the k+1 grid
// pressures (7 * 11 = 77 values for k = 10) and I^G is the aggregate
// intensity of the co-runner set G under the paper's fixed-size transform
// (Eq. 5).
//
// V^A is our extension of the paper's feature set: the victim's rendered
// megapixels, its profiled solo FPS at that resolution, and its own 7
// intensities at that resolution (9 values). The paper profiles
// sensitivity once and relies on Observation 6 (resolution invariance);
// in practice invariance is approximate — the victim's resolution shifts
// its CPU/GPU bottleneck balance, and the victim's own pressure feeds
// back into how hard its co-runners push. Making these profiled
// quantities visible to the models cuts the RM's relative error by about
// a third in our evaluation (see DESIGN.md), using only §3.3's linear
// resolution models — no extra profiling cost.
//
// Aggregate-intensity transform (Eq. 5):
//
//   I^G = [ |G|, (mean_1, var_1), ..., (mean_R, var_R) ]    (2R+1 values)
//
// with mean_r the average of the co-runners' intensities on resource r and
// var_r the paper's dispersion term (1/|G|) * sqrt(sum of squared
// deviations). Intensities are evaluated at each co-runner's own
// resolution through the Observation 7/8 linear models, and F_solo at the
// victim's resolution through the Eq. 2 model — profiling happened at the
// reference resolutions only.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gaugur/colocation.h"
#include "profiling/game_profile.h"

namespace gaugur::core {

/// The paper's aggregate-intensity transform (Eq. 5). Exposed separately
/// so the ablation bench can compare it against naive alternatives.
struct AggregateIntensity {
  double group_size = 0.0;
  resources::PerResource<double> mean{};
  resources::PerResource<double> dispersion{};

  static constexpr std::size_t kDim = 1 + 2 * resources::kNumResources;

  void AppendTo(std::vector<double>& out) const;
};

class FeatureBuilder {
 public:
  /// `profiles` must be indexed so that profiles[game_id].game_id ==
  /// game_id (the profiler preserves catalog order).
  explicit FeatureBuilder(std::vector<profiling::GameProfile> profiles);

  const profiling::GameProfile& Profile(int game_id) const;
  std::size_t NumGames() const { return profiles_.size(); }

  AggregateIntensity Aggregate(
      std::span<const SessionRequest> corunners) const;

  /// RM feature vector for `victim` colocated with `corunners` (victim
  /// excluded from corunners by the caller).
  std::vector<double> RmFeatures(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const;

  /// CM feature vector; prepends [Q, F_solo at victim's resolution].
  std::vector<double> CmFeatures(
      double qos_fps, const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const;

  /// Appends the RM feature vector (RmDim() values) to `out` without a
  /// fresh allocation — the matrix-building primitive behind the batch
  /// prediction path: callers append many rows into one row-major buffer.
  void AppendRmFeatures(const SessionRequest& victim,
                        std::span<const SessionRequest> corunners,
                        std::vector<double>& out) const;

  /// Appends the CM feature vector (CmDim() values) to `out`.
  void AppendCmFeatures(double qos_fps, const SessionRequest& victim,
                        std::span<const SessionRequest> corunners,
                        std::vector<double>& out) const;

  /// Victim-side extension features (see header comment): megapixels,
  /// solo FPS, and the 7 own-intensities.
  static constexpr std::size_t kVictimDim = 2 + resources::kNumResources;

  std::size_t RmDim() const;
  std::size_t CmDim() const { return RmDim() + 2; }

  std::vector<std::string> RmFeatureNames() const;
  std::vector<std::string> CmFeatureNames() const;

  /// Grid resolution of the profiled sensitivity curves (k+1 points).
  std::size_t CurvePoints() const { return curve_points_; }

 private:
  std::vector<profiling::GameProfile> profiles_;
  std::size_t curve_points_ = 0;
};

}  // namespace gaugur::core
