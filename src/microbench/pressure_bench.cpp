#include "microbench/pressure_bench.h"

#include <string>

#include "common/check.h"
#include "common/mathutil.h"
#include "gamesim/inflation_shape.h"

namespace gaugur::microbench {

using gamesim::InflationResponse;
using gamesim::InflationShape;
using gamesim::WorkloadProfile;
using resources::Resource;

namespace {

/// Residual occupancy a benchmark leaks onto non-target resources, as a
/// fraction of its dialed pressure.
constexpr double kResidualLeak = 0.03;

/// GPU-BW benchmark's unavoidable GPU-L2 footprint (see header).
constexpr double kGpuBwCacheLeak = 0.35;

/// Linear contention response of the benchmark's own kernel on its target
/// resource; small residual responses elsewhere keep the observable from
/// being perfectly separable (real benchmarks are not).
constexpr double kSelfAmplitude = 1.0;
constexpr double kResidualAmplitude = 0.06;

}  // namespace

WorkloadProfile MakePressureBench(Resource r, double x) {
  GAUGUR_CHECK_MSG(x >= 0.0 && x <= 1.0, "pressure must be in [0,1]");
  WorkloadProfile w;
  w.name = "bench/" + std::string(resources::Name(r));
  w.fps_cap = 1e6;
  w.throughput_coupling = 0.0;  // pressure pinned by sleep re-tuning
  w.cpu_memory = 0.02;
  w.gpu_memory = resources::IsCpuSide(r) ? 0.0 : 0.05;

  // The kernel runs on the side of the chip its resource lives on; its
  // iteration time is what the slowdown observable measures.
  if (resources::IsCpuSide(r)) {
    w.t_cpu_ms = 10.0;
    w.t_gpu_render_ms = 0.01;
    w.t_xfer_ms = 0.01;
  } else if (resources::IsGpuSide(r)) {
    w.t_cpu_ms = 0.01;
    w.t_gpu_render_ms = 10.0;
    w.t_xfer_ms = 0.01;
  } else {  // PCIe: a host<->device copy loop
    w.t_cpu_ms = 0.01;
    w.t_gpu_render_ms = 0.01;
    w.t_xfer_ms = 10.0;
  }

  for (Resource other : resources::kAllResources) {
    w.occupancy[other] = (other == r) ? x : kResidualLeak * x;
    w.response[other] = InflationResponse{
        other == r ? kSelfAmplitude : kResidualAmplitude,
        InflationShape::Linear()};
  }
  if (r == Resource::kGpuBw) {
    w.occupancy[Resource::kGpuL2] = kGpuBwCacheLeak * x;
  }
  return w;
}

std::vector<double> PressureGrid(int k) {
  GAUGUR_CHECK(k >= 1);
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(k) + 1);
  for (int i = 0; i <= k; ++i) {
    grid.push_back(static_cast<double>(i) / static_cast<double>(k));
  }
  return grid;
}

}  // namespace gaugur::microbench
