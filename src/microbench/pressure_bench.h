// Tunable pressure micro-benchmarks, one per shared resource (paper §3.2).
//
// Each benchmark follows the two design principles the paper inherits from
// iBench/Bubble-Up and extends to the GPU side:
//   1. it can dial its pressure on the target resource continuously from 0
//      to the maximum (here: occupancy x in [0, 1], the paper's "tune the
//      sleep time so utilization is exactly x");
//   2. it causes minimal contention on the other resources (a small
//      residual remains, as in real benchmarks — with one deliberate
//      exception below).
//
// Exception, straight from the paper: the GPU-BW benchmark cannot bypass
// the GPU cache (no streaming-store instruction on GPUs), so it also
// pressures GPU-L2. We model that with a proportional GPU-L2 occupancy.
//
// A benchmark is also an *observable*: profiling records its slowdown
// (runtime to finish a fixed iteration count vs. running alone) while
// colocated with a game — that slowdown is the game's intensity. To make
// the observable well-behaved, benchmarks hold their pressure constant
// regardless of their own slowdown (throughput_coupling = 0; the paper's
// benchmarks re-tune sleep times to pin utilization) and respond linearly
// to contention (they are simple streaming kernels), which is also what
// makes Observation 8's linearity hold in profiled intensities.
#pragma once

#include <vector>

#include "gamesim/workload.h"
#include "resources/resource.h"

namespace gaugur::microbench {

/// The benchmark for resource `r` dialed to pressure `x` in [0, 1].
gamesim::WorkloadProfile MakePressureBench(resources::Resource r, double x);

/// The paper's sampling grid {0, 1/k, 2/k, ..., 1}.
std::vector<double> PressureGrid(int k);

/// Slowdown of a benchmark given its solo rate and measured colocated
/// rate: the ratio of runtimes to complete a fixed iteration count.
inline double BenchSlowdown(double solo_rate, double colocated_rate) {
  return solo_rate / colocated_rate;
}

}  // namespace gaugur::microbench
