#include "baselines/smite_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/linalg.h"

namespace gaugur::baselines {

using resources::Resource;

SmiteModel::SmiteModel(const core::FeatureBuilder& features)
    : features_(&features) {}

std::vector<double> SmiteModel::SampleFeatures(
    const core::SessionRequest& victim,
    std::span<const core::SessionRequest> corunners) const {
  const auto& profile = features_->Profile(victim.game_id);
  std::vector<double> x;
  x.reserve(resources::kNumResources + 1);
  for (Resource r : resources::kAllResources) {
    double intensity_sum = 0.0;
    for (const auto& c : corunners) {
      intensity_sum +=
          features_->Profile(c.game_id).IntensityAt(r, c.resolution);
    }
    // Sensitivity score: degradation at max pressure. SMiTe's linear term
    // uses "how much A suffers" — we use (1 - score), the degradation
    // *amount*, so a fully insensitive resource (score 1.0) contributes 0.
    x.push_back((1.0 - profile.Sensitivity(r).Score()) * intensity_sum);
  }
  x.push_back(1.0);  // intercept
  return x;
}

void SmiteModel::Train(std::span<const core::MeasuredColocation> corpus) {
  const std::size_t cols = resources::kNumResources + 1;
  std::vector<double> design;
  std::vector<double> targets;
  for (const auto& measured : corpus) {
    std::vector<core::SessionRequest> corunners;
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      corunners.clear();
      for (std::size_t j = 0; j < measured.sessions.size(); ++j) {
        if (j != v) corunners.push_back(measured.sessions[j]);
      }
      const auto x = SampleFeatures(measured.sessions[v], corunners);
      design.insert(design.end(), x.begin(), x.end());
      targets.push_back(core::DegradationTarget(
          *features_, measured.sessions[v], measured.fps[v]));
    }
  }
  GAUGUR_CHECK_MSG(targets.size() >= cols,
                   "too few samples to fit SMiTe coefficients");
  coef_ = common::LeastSquares(design, targets.size(), cols, targets);
  trained_ = true;
}

double SmiteModel::PredictDegradation(
    const core::SessionRequest& victim,
    std::span<const core::SessionRequest> corunners) const {
  GAUGUR_CHECK_MSG(trained_, "SMiTe model not trained");
  const auto x = SampleFeatures(victim, corunners);
  double value = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) value += coef_[i] * x[i];
  return std::clamp(value, 0.01, 1.0);
}

double SmiteModel::PredictFps(
    const core::SessionRequest& victim,
    std::span<const core::SessionRequest> corunners) const {
  return PredictDegradation(victim, corunners) *
         features_->Profile(victim.game_id).SoloFps(victim.resolution);
}

std::vector<double> SmiteModel::BuildFeatureMatrix(
    std::span<const core::QosQuery> queries) const {
  const std::size_t cols = resources::kNumResources + 1;
  std::vector<double> matrix;
  matrix.reserve(queries.size() * cols);
  for (const auto& query : queries) {
    const auto x = SampleFeatures(query.victim, query.corunners);
    matrix.insert(matrix.end(), x.begin(), x.end());
  }
  return matrix;
}

void SmiteModel::PredictDegradationBatch(const ml::MatrixView& x,
                                         std::span<double> out) const {
  GAUGUR_CHECK_MSG(trained_, "SMiTe model not trained");
  GAUGUR_CHECK(x.cols == coef_.size());
  GAUGUR_CHECK(out.size() == x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    const std::span<const double> row = x.Row(i);
    double value = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) value += coef_[j] * row[j];
    out[i] = std::clamp(value, 0.01, 1.0);
  }
}

std::vector<double> SmiteModel::PredictFpsBatch(
    std::span<const core::QosQuery> queries) const {
  GAUGUR_CHECK_MSG(trained_, "SMiTe model not trained");
  const std::vector<double> matrix = BuildFeatureMatrix(queries);
  const std::size_t cols = resources::kNumResources + 1;
  std::vector<double> out(queries.size());
  PredictDegradationBatch({matrix.data(), queries.size(), cols}, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] *= features_->Profile(queries[i].victim.game_id)
                  .SoloFps(queries[i].victim.resolution);
  }
  return out;
}

}  // namespace gaugur::baselines
