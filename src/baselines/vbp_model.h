// The Vector Bin Packing baseline (paper §2.2, §5): each game is a demand
// vector of its solo resource utilizations; a colocation is feasible when
// the per-dimension sums stay within server capacity. Cache-capacity
// resources (LLC, GPU-L2) are excluded — caches are not characterized by
// utilization (paper §5.1) — while memories are included as capacity
// dimensions. VBP ignores interference entirely, which is exactly the
// failure mode the paper's §2.2 example (Dragon's Dogma + Little Witch
// Academia) demonstrates.
#pragma once

#include <span>
#include <vector>

#include "gaugur/features.h"

namespace gaugur::baselines {

class VbpModel {
 public:
  explicit VbpModel(const core::FeatureBuilder& features);

  /// Per-dimension demand of one session (contention dims minus the two
  /// caches, then CPU memory, then GPU memory).
  std::vector<double> Demand(const core::SessionRequest& session) const;

  static constexpr std::size_t kNumDims =
      resources::kNumResources - 2 + 2;  // minus caches, plus 2 memories

  /// Feasible iff the summed demand fits 1.0 in every dimension.
  bool Feasible(const core::Colocation& colocation) const;

  /// Total remaining capacity across dimensions after hosting
  /// `colocation` — the worst-fit score used in §5.2 (higher = emptier).
  double RemainingCapacity(const core::Colocation& colocation) const;

 private:
  const core::FeatureBuilder* features_;
};

}  // namespace gaugur::baselines
