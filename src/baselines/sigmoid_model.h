// The Sigmoid baseline (paper §4.1, after [6, 21]): assumes a game's
// degradation depends only on HOW MANY games it is colocated with, not
// which ones. Per game A the model is
//
//     delta_A(n) = alpha_1 / (1 + exp(-alpha_2 * n + alpha_3))
//
// with n the number of co-runners, fit by least squares on the training
// colocations that contain A (plus the solo anchor n = 0). We fit the
// degradation ratio rather than raw FPS so the baseline handles mixed
// resolutions as charitably as possible; predicted FPS is the ratio times
// the profiled solo FPS at the victim's resolution.
#pragma once

#include <span>
#include <vector>

#include "gaugur/colocation.h"
#include "gaugur/features.h"
#include "gaugur/training.h"
#include "ml/dataset.h"

namespace gaugur::baselines {

struct SigmoidParams {
  double alpha1 = 1.0;
  double alpha2 = 0.0;
  double alpha3 = 0.0;

  double Eval(double n) const;
};

class SigmoidModel {
 public:
  explicit SigmoidModel(const core::FeatureBuilder& features);

  void Train(std::span<const core::MeasuredColocation> corpus);
  bool IsTrained() const { return trained_; }

  /// Predicted degradation of `victim` among `num_corunners` others.
  double PredictDegradation(const core::SessionRequest& victim,
                            std::size_t num_corunners) const;

  double PredictFps(const core::SessionRequest& victim,
                    std::size_t num_corunners) const;

  /// Batched PredictDegradation over a row-major matrix with columns
  /// [game_id, num_corunners] (one query per row). Bit-identical to the
  /// scalar call on each row.
  void PredictDegradationBatch(const ml::MatrixView& x,
                               std::span<double> out) const;

  /// One predicted FPS per query, via one PredictDegradationBatch call.
  std::vector<double> PredictFpsBatch(
      std::span<const core::QosQuery> queries) const;

  const SigmoidParams& Params(int game_id) const;

 private:
  const core::FeatureBuilder* features_;
  std::vector<SigmoidParams> params_;  // indexed by game id
  bool trained_ = false;
};

/// Least-squares sigmoid fit on (n, degradation) points: closed-form
/// alpha_1 given (alpha_2, alpha_3) over a coarse grid, then coordinate
/// refinement. Exposed for unit testing.
SigmoidParams FitSigmoid(std::span<const double> n,
                         std::span<const double> degradation);

}  // namespace gaugur::baselines
