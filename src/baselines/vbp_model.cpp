#include "baselines/vbp_model.h"

#include <algorithm>

#include "common/check.h"

namespace gaugur::baselines {

using resources::Resource;

VbpModel::VbpModel(const core::FeatureBuilder& features)
    : features_(&features) {}

std::vector<double> VbpModel::Demand(
    const core::SessionRequest& session) const {
  const auto& profile = features_->Profile(session.game_id);
  // Utilizations were measured at the reference resolution; scale the
  // pixel-dependent dimensions by the pixel ratio (an operator without
  // GAugur's two-point intensity fits would do exactly this).
  const double pixel_ratio =
      std::clamp(session.resolution.Megapixels() /
                     resources::kReferenceResolution.Megapixels(),
                 0.4, 1.6);
  std::vector<double> demand;
  demand.reserve(kNumDims);
  for (Resource r : resources::kAllResources) {
    if (resources::IsCacheCapacity(r)) continue;
    const double scale = resources::ScalesWithPixels(r) ? pixel_ratio : 1.0;
    demand.push_back(profile.solo_utilization[r] * scale);
  }
  demand.push_back(profile.cpu_memory);
  demand.push_back(profile.gpu_memory);
  GAUGUR_CHECK(demand.size() == kNumDims);
  return demand;
}

bool VbpModel::Feasible(const core::Colocation& colocation) const {
  std::vector<double> total(kNumDims, 0.0);
  for (const auto& session : colocation) {
    const auto demand = Demand(session);
    for (std::size_t d = 0; d < kNumDims; ++d) total[d] += demand[d];
  }
  return std::all_of(total.begin(), total.end(),
                     [](double t) { return t <= 1.0; });
}

double VbpModel::RemainingCapacity(const core::Colocation& colocation) const {
  std::vector<double> total(kNumDims, 0.0);
  for (const auto& session : colocation) {
    const auto demand = Demand(session);
    for (std::size_t d = 0; d < kNumDims; ++d) total[d] += demand[d];
  }
  double remaining = 0.0;
  for (double t : total) remaining += std::max(0.0, 1.0 - t);
  return remaining;
}

}  // namespace gaugur::baselines
