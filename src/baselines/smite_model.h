// The SMiTe baseline (paper §4.1, after Zhang et al. [39], extended to
// >2 co-runners with Paragon's additive-intensity assumption [13]):
//
//   delta_A|{B,C,...} = sum_r c_r * delta_A_r(1) * (I_B_r + I_C_r + ...)
//                       + c_0                                     (Eq. 9)
//
// delta_A_r(1) is A's sensitivity *score* (degradation at maximum
// pressure) and the co-runner intensities are summed per resource — the
// two simplifications (linearity, additivity) GAugur's Observations 4-5
// show to be wrong for games. Coefficients come from ridge-regularized
// least squares on the training samples.
#pragma once

#include <span>
#include <vector>

#include "gaugur/colocation.h"
#include "gaugur/features.h"
#include "gaugur/training.h"
#include "ml/dataset.h"

namespace gaugur::baselines {

class SmiteModel {
 public:
  explicit SmiteModel(const core::FeatureBuilder& features);

  void Train(std::span<const core::MeasuredColocation> corpus);
  bool IsTrained() const { return trained_; }

  double PredictDegradation(
      const core::SessionRequest& victim,
      std::span<const core::SessionRequest> corunners) const;

  double PredictFps(const core::SessionRequest& victim,
                    std::span<const core::SessionRequest> corunners) const;

  /// Row-major feature matrix (kNumResources + 1 columns, one row per
  /// query) matching the per-sample layout the scalar path uses.
  std::vector<double> BuildFeatureMatrix(
      std::span<const core::QosQuery> queries) const;

  /// Pure linear kernel over a pre-built feature matrix: one clamped
  /// degradation per row, bit-identical to the scalar call.
  void PredictDegradationBatch(const ml::MatrixView& x,
                               std::span<double> out) const;

  /// One predicted FPS per query, via one PredictDegradationBatch call.
  std::vector<double> PredictFpsBatch(
      std::span<const core::QosQuery> queries) const;

  /// [c_1..c_R, c_0] after training.
  const std::vector<double>& Coefficients() const { return coef_; }

 private:
  std::vector<double> SampleFeatures(
      const core::SessionRequest& victim,
      std::span<const core::SessionRequest> corunners) const;

  const core::FeatureBuilder* features_;
  std::vector<double> coef_;
  bool trained_ = false;
};

}  // namespace gaugur::baselines
