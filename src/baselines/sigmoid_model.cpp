#include "baselines/sigmoid_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"

namespace gaugur::baselines {

double SigmoidParams::Eval(double n) const {
  return alpha1 * common::Sigmoid(alpha2 * n - alpha3);
}

namespace {

double SseFor(std::span<const double> n, std::span<const double> y,
              const SigmoidParams& p) {
  double sse = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double r = y[i] - p.Eval(n[i]);
    sse += r * r;
  }
  return sse;
}

/// Optimal alpha_1 for fixed (alpha_2, alpha_3): linear least squares.
double BestAlpha1(std::span<const double> n, std::span<const double> y,
                  double a2, double a3) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double s = common::Sigmoid(a2 * n[i] - a3);
    num += y[i] * s;
    den += s * s;
  }
  if (den < 1e-12) return 1.0;
  return num / den;
}

}  // namespace

SigmoidParams FitSigmoid(std::span<const double> n,
                         std::span<const double> y) {
  GAUGUR_CHECK(n.size() == y.size());
  GAUGUR_CHECK(!n.empty());

  SigmoidParams best{1.0, 0.0, 0.0};
  double best_sse = std::numeric_limits<double>::infinity();

  // Coarse grid; note alpha_2 < 0 gives the decreasing-in-n shapes the
  // data actually follows (the paper's alpha_2 sign convention is free).
  for (double a2 = -3.0; a2 <= 3.0; a2 += 0.25) {
    for (double a3 = -6.0; a3 <= 6.0; a3 += 0.5) {
      SigmoidParams p{BestAlpha1(n, y, a2, a3), a2, a3};
      const double sse = SseFor(n, y, p);
      if (sse < best_sse) {
        best_sse = sse;
        best = p;
      }
    }
  }
  // Coordinate refinement around the grid winner.
  double step2 = 0.125, step3 = 0.25;
  for (int round = 0; round < 40; ++round) {
    bool improved = false;
    for (const double da2 : {-step2, 0.0, step2}) {
      for (const double da3 : {-step3, 0.0, step3}) {
        if (da2 == 0.0 && da3 == 0.0) continue;
        SigmoidParams p{0.0, best.alpha2 + da2, best.alpha3 + da3};
        p.alpha1 = BestAlpha1(n, y, p.alpha2, p.alpha3);
        const double sse = SseFor(n, y, p);
        if (sse + 1e-12 < best_sse) {
          best_sse = sse;
          best = p;
          improved = true;
        }
      }
    }
    if (!improved) {
      step2 *= 0.5;
      step3 *= 0.5;
      if (step2 < 1e-4) break;
    }
  }
  return best;
}

SigmoidModel::SigmoidModel(const core::FeatureBuilder& features)
    : features_(&features), params_(features.NumGames()) {}

void SigmoidModel::Train(std::span<const core::MeasuredColocation> corpus) {
  const std::size_t num_games = features_->NumGames();
  std::vector<std::vector<double>> ns(num_games), ys(num_games);

  // Solo anchor: degradation 1.0 at n = 0 (known from profiling).
  for (std::size_t g = 0; g < num_games; ++g) {
    ns[g].push_back(0.0);
    ys[g].push_back(1.0);
  }
  for (const auto& measured : corpus) {
    for (std::size_t v = 0; v < measured.sessions.size(); ++v) {
      const auto& victim = measured.sessions[v];
      const auto g = static_cast<std::size_t>(victim.game_id);
      ns[g].push_back(
          static_cast<double>(measured.sessions.size() - 1));
      ys[g].push_back(
          core::DegradationTarget(*features_, victim, measured.fps[v]));
    }
  }
  for (std::size_t g = 0; g < num_games; ++g) {
    params_[g] = FitSigmoid(ns[g], ys[g]);
  }
  trained_ = true;
}

double SigmoidModel::PredictDegradation(const core::SessionRequest& victim,
                                        std::size_t num_corunners) const {
  GAUGUR_CHECK_MSG(trained_, "Sigmoid model not trained");
  const auto& p = Params(victim.game_id);
  return std::clamp(p.Eval(static_cast<double>(num_corunners)), 0.01, 1.0);
}

double SigmoidModel::PredictFps(const core::SessionRequest& victim,
                                std::size_t num_corunners) const {
  return PredictDegradation(victim, num_corunners) *
         features_->Profile(victim.game_id).SoloFps(victim.resolution);
}

void SigmoidModel::PredictDegradationBatch(const ml::MatrixView& x,
                                           std::span<double> out) const {
  GAUGUR_CHECK_MSG(trained_, "Sigmoid model not trained");
  GAUGUR_CHECK(x.cols == 2);
  GAUGUR_CHECK(out.size() == x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    const std::span<const double> row = x.Row(i);
    const auto& p = Params(static_cast<int>(row[0]));
    out[i] = std::clamp(p.Eval(row[1]), 0.01, 1.0);
  }
}

std::vector<double> SigmoidModel::PredictFpsBatch(
    std::span<const core::QosQuery> queries) const {
  GAUGUR_CHECK_MSG(trained_, "Sigmoid model not trained");
  std::vector<double> matrix;
  matrix.reserve(queries.size() * 2);
  for (const auto& query : queries) {
    matrix.push_back(static_cast<double>(query.victim.game_id));
    matrix.push_back(static_cast<double>(query.corunners.size()));
  }
  std::vector<double> out(queries.size());
  PredictDegradationBatch({matrix.data(), queries.size(), 2}, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] *= features_->Profile(queries[i].victim.game_id)
                  .SoloFps(queries[i].victim.resolution);
  }
  return out;
}

const SigmoidParams& SigmoidModel::Params(int game_id) const {
  GAUGUR_CHECK(game_id >= 0 &&
               static_cast<std::size_t>(game_id) < params_.size());
  return params_[static_cast<std::size_t>(game_id)];
}

}  // namespace gaugur::baselines
