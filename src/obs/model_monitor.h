// Online model-quality monitor: the feedback loop that tells us whether
// the CM/RM predictors are still trustworthy *in production*, not just at
// train time (FECBench / uPredict both stress this; PAPER.md §4-5 is the
// accuracy the fleet depends on).
//
// Data flow:
//   1. Every GAugurPredictor CM/RM call appends a PredictionRecord
//      (feature digest, predicted probability/FPS, threshold, decision)
//      to a bounded audit ring, keyed by a 64-bit join key derived from
//      (victim, co-runner set).
//   2. When the fleet simulator actually runs a colocation it reports the
//      realized per-session FPS through ObserveOutcome with the same key;
//      pending predictions join into OutcomeRecords.
//   3. On that stream the monitor keeps a rolling outcome window and
//      computes CM calibration (reliability bins, precision/recall/FPR),
//      RM error (MAE, p95 absolute error, bias), per-feature PSI drift
//      against a FeatureReference snapshot persisted at fit time, and a
//      QoS-violation attribution (CM false positive / RM overestimate /
//      capacity pressure).
//
// Everything is exported two ways: live obs counters/gauges/histograms in
// the global registry (model_monitor.*), and a ModelMonitorSummary that
// serializes into the "model_monitor" section of the
// gaugur.obs.run_report/v3 schema with an exact JSON round-trip (the /v3
// forensic fields — qos_violations_observed, per-resource and
// per-offender violation tallies — are optional, so /v2 documents still
// parse).
//
// All mutators are no-ops while obs::Enabled() is false; the disabled
// path is the usual relaxed-load + branch and stays inside the <2%
// bench_overhead budget.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "obs/switch.h"

namespace gaugur::obs {

enum class ModelKind : std::uint8_t { kCm = 0, kRm = 1 };

inline const char* ModelKindName(ModelKind kind) {
  return kind == ModelKind::kCm ? "cm" : "rm";
}

/// FNV-1a digest of a feature vector's bit patterns — identifies the
/// exact input of a prediction without storing the (77+)-dim vector.
std::uint64_t FeatureDigest(std::span<const double> features);

/// One audited model call. `predicted` is the CM positive-class
/// probability or the RM predicted FPS; `decision` is the thresholded
/// verdict the scheduler acted on. `qos_fps` is 0 when the call carried
/// no QoS context (raw PredictFps audit entries).
struct PredictionRecord {
  std::uint64_t id = 0;           // monotonic sequence number
  ModelKind kind = ModelKind::kCm;
  std::uint64_t join_key = 0;     // core::ModelJoinKey(victim, corunners)
  std::uint64_t feature_digest = 0;
  double predicted = 0.0;
  double threshold = 0.0;
  bool decision = false;
  double qos_fps = 0.0;

  friend bool operator==(const PredictionRecord&,
                         const PredictionRecord&) = default;
};

/// Forensic context attached to an observed outcome: which shared
/// resource the contention model blames for the FPS dip, and which
/// colocated game relieves it most when removed. Filled by the fleet
/// simulator from lab::AttributeInterference; defaults mean "unknown".
struct OutcomeContext {
  /// resources::Name() of the dominant contended resource, or "" when
  /// no attribution was computed.
  std::string dominant_resource;
  /// Game id of the dominant colocated offender, or -1 when the victim
  /// ran alone / attribution was not computed.
  int offender_game_id = -1;

  bool Empty() const {
    return dominant_resource.empty() && offender_game_id < 0;
  }

  friend bool operator==(const OutcomeContext&,
                         const OutcomeContext&) = default;
};

/// A prediction joined with the realized FPS the simulator later measured
/// for the same (victim, co-runner set).
struct OutcomeRecord {
  PredictionRecord prediction;
  double realized_fps = 0.0;
  /// realized_fps < prediction.qos_fps (always false when qos_fps == 0).
  bool violated = false;

  friend bool operator==(const OutcomeRecord&, const OutcomeRecord&) = default;
};

/// Per-feature reference distribution snapshot, persisted at model-fit
/// time (core::BuildFeatureReference) and compared against the online
/// feature stream via PSI. `edges[f]` are the interior bin edges of
/// feature f (ascending, possibly fewer than requested when the training
/// column has few distinct values); `probs[f]` has edges[f].size() + 1
/// reference proportions.
struct FeatureReference {
  std::vector<std::string> names;
  std::vector<std::vector<double>> edges;
  std::vector<std::vector<double>> probs;
  std::uint64_t samples = 0;

  std::size_t NumFeatures() const { return names.size(); }
  bool Empty() const { return names.empty(); }

  /// Bin index of `value` for feature `f` (upper_bound over the edges).
  std::size_t Bin(std::size_t f, double value) const;

  JsonValue ToJson() const;
  static FeatureReference FromJson(const JsonValue& doc);

  friend bool operator==(const FeatureReference&,
                         const FeatureReference&) = default;
};

/// One reliability bin of the CM calibration curve over the rolling
/// window: predictions with probability in [lo, hi).
struct CalibrationBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  double mean_predicted = 0.0;  // average predicted probability in the bin
  double observed_rate = 0.0;   // fraction of realized positives

  friend bool operator==(const CalibrationBin&,
                         const CalibrationBin&) = default;
};

struct PsiEntry {
  std::string feature;
  double psi = 0.0;
  bool alert = false;  // psi > config.psi_alert_threshold

  friend bool operator==(const PsiEntry&, const PsiEntry&) = default;
};

/// Drift state of one model's online feature stream vs its reference.
struct DriftSummary {
  bool has_reference = false;
  std::uint64_t reference_samples = 0;
  std::uint64_t online_samples = 0;
  double max_psi = 0.0;
  std::uint64_t features_over_threshold = 0;
  std::vector<PsiEntry> features;

  friend bool operator==(const DriftSummary&, const DriftSummary&) = default;
};

/// The full monitor read-out; serializes as the "model_monitor" section
/// of the run-report /v2 schema. All derived doubles (precision, MAE,
/// PSI, ...) are stored, not recomputed, so a written summary parses back
/// bit-exactly.
struct ModelMonitorSummary {
  // Stream volumes (whole run, monotonic).
  std::uint64_t cm_predictions = 0;
  std::uint64_t rm_predictions = 0;
  std::uint64_t outcomes_joined = 0;
  std::uint64_t observations_unmatched = 0;
  std::uint64_t evicted_pending = 0;

  // Rolling window actually populated (<= config.window).
  std::uint64_t window = 0;

  // CM confusion over the window ("positive" = predicted/realized
  // feasible at the record's QoS).
  std::uint64_t cm_tp = 0, cm_fp = 0, cm_tn = 0, cm_fn = 0;
  double cm_precision = 0.0;
  double cm_recall = 0.0;
  double cm_fpr = 0.0;
  double cm_accuracy = 0.0;
  std::vector<CalibrationBin> cm_calibration;

  // RM error over the window (FPS units).
  std::uint64_t rm_outcomes = 0;
  double rm_mae_fps = 0.0;
  double rm_p95_abs_error_fps = 0.0;
  double rm_bias_fps = 0.0;  // mean(predicted - realized); >0 = optimistic

  // Feature drift per model.
  DriftSummary cm_drift;
  DriftSummary rm_drift;

  // QoS-violation attribution (whole run, monotonic): a violated joined
  // outcome whose prediction said "feasible" is a model miss; a violated
  // observation with no prediction on file (while the monitor has seen
  // predictions at all) is capacity pressure — the fleet ran a colocation
  // the models never approved.
  std::uint64_t attr_cm_false_positive = 0;
  std::uint64_t attr_rm_overestimate = 0;
  std::uint64_t attr_capacity_pressure = 0;

  // Resource/offender forensics (whole run, monotonic; /v3 additions,
  // absent in /v2 documents and then left at their defaults).
  /// Violated observations seen by ObserveOutcome — one per (victim,
  /// colocation) realization, matched or not. This is the total the
  /// event log's qos_violation events reconcile against.
  std::uint64_t qos_violations_observed = 0;
  /// Violations by dominant contended resource (resources::Name keys).
  std::map<std::string, std::uint64_t> attr_by_resource;
  /// Violations by dominant colocated offender (stringified game id).
  std::map<std::string, std::uint64_t> attr_offenders;

  JsonValue ToJson() const;
  static ModelMonitorSummary FromJson(const JsonValue& doc);

  friend bool operator==(const ModelMonitorSummary&,
                         const ModelMonitorSummary&) = default;
};

struct ModelMonitorConfig {
  /// Audit ring capacity; the oldest unresolved prediction is evicted
  /// when full.
  std::size_t ring_capacity = 4096;
  /// Rolling outcome window for calibration / error stats.
  std::size_t window = 512;
  /// Reliability bins over [0, 1] for the CM calibration curve.
  std::size_t calibration_bins = 10;
  /// Classic PSI rule of thumb: < 0.1 stable, 0.1-0.2 moderate shift,
  /// > 0.2 action required.
  double psi_alert_threshold = 0.2;
  /// Re-evaluate drift alerts every this many recorded predictions (the
  /// full PSI pass is O(features x bins)).
  std::size_t drift_check_interval = 64;
};

/// Thread-safe (single mutex) online monitor. Use Global() for the
/// process-wide instance the predictor and fleet simulator share; tests
/// construct their own.
class ModelMonitor {
 public:
  explicit ModelMonitor(ModelMonitorConfig config = {});

  static ModelMonitor& Global();

  /// Drops all state (ring, window, drift accumulators, references) and
  /// optionally re-configures — test isolation and start-of-run resets.
  void Reset();
  void Configure(ModelMonitorConfig config);

  const ModelMonitorConfig& config() const { return config_; }

  /// Appends one audit record. No-op while obs::Enabled() is false.
  void RecordPrediction(ModelKind kind, std::uint64_t join_key,
                        std::span<const double> features, double predicted,
                        double threshold, bool decision, double qos_fps);

  /// Reports the realized FPS of one (victim, co-runner set). Joins every
  /// pending prediction under `join_key`; with none pending, counts an
  /// unmatched observation (and, if violated while predictions exist at
  /// all, capacity pressure). No-op while obs::Enabled() is false.
  void ObserveOutcome(std::uint64_t join_key, double realized_fps,
                      double qos_fps) {
    ObserveOutcome(join_key, realized_fps, qos_fps, OutcomeContext{});
  }

  /// Same, with forensic context: when the outcome violated QoS, the
  /// dominant resource / offender tallies are deepened so the classic
  /// cm_false_positive / rm_overestimate / capacity_pressure attribution
  /// also answers *what* caused the dip.
  void ObserveOutcome(std::uint64_t join_key, double realized_fps,
                      double qos_fps, const OutcomeContext& context);

  /// Installs the fit-time feature-distribution snapshot drift is
  /// measured against. Resets that model's online drift accumulators.
  void SetReference(ModelKind kind, FeatureReference reference);
  /// Copy of the installed snapshot (empty when none was set).
  FeatureReference Reference(ModelKind kind) const;

  /// Whether any prediction has been recorded since the last Reset —
  /// RunReport::Capture attaches a summary only when true.
  bool HasData() const;

  ModelMonitorSummary Summary() const;

  /// Snapshot of the live audit ring, oldest first (tests/tooling).
  std::vector<PredictionRecord> AuditLog() const;
  /// Snapshot of the rolling outcome window, oldest first.
  std::vector<OutcomeRecord> RecentOutcomes() const;

 private:
  struct Slot {
    bool used = false;
    bool pending = false;
    PredictionRecord record;
  };

  struct DriftState {
    FeatureReference reference;
    std::vector<std::vector<std::uint64_t>> counts;  // per feature, per bin
    std::vector<bool> alerted;                       // per feature
    std::uint64_t samples = 0;

    void ResetOnline();
  };

  void JoinLocked(std::size_t slot_index, double realized_fps);
  void EvictLocked(std::size_t slot_index);
  void PushOutcomeLocked(OutcomeRecord outcome);
  void EvaluateDriftLocked(DriftState& state);
  DriftSummary SummarizeDriftLocked(const DriftState& state) const;
  void UpdateQualityGaugesLocked();

  ModelMonitorConfig config_;

  mutable std::mutex mutex_;
  std::vector<Slot> ring_;
  std::size_t ring_head_ = 0;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> pending_;

  std::deque<OutcomeRecord> window_;
  // Incremental window aggregates (added on push, removed on evict).
  std::uint64_t cm_tp_ = 0, cm_fp_ = 0, cm_tn_ = 0, cm_fn_ = 0;
  std::uint64_t rm_outcomes_ = 0;
  double rm_sum_abs_err_ = 0.0;
  double rm_sum_signed_err_ = 0.0;

  DriftState drift_[2];  // indexed by ModelKind

  // Whole-run monotonic tallies (mirrored as model_monitor.* counters).
  std::uint64_t cm_predictions_ = 0;
  std::uint64_t rm_predictions_ = 0;
  std::uint64_t outcomes_joined_ = 0;
  std::uint64_t observations_unmatched_ = 0;
  std::uint64_t evicted_pending_ = 0;
  std::uint64_t attr_cm_false_positive_ = 0;
  std::uint64_t attr_rm_overestimate_ = 0;
  std::uint64_t attr_capacity_pressure_ = 0;
  std::uint64_t drift_alert_events_ = 0;
  std::uint64_t qos_violations_observed_ = 0;
  std::map<std::string, std::uint64_t> attr_by_resource_;
  std::map<std::string, std::uint64_t> attr_offenders_;
};

/// Population Stability Index between a reference distribution and online
/// bin counts (with proportion flooring so empty bins stay finite).
/// Exposed for tests.
double PopulationStabilityIndex(std::span<const double> reference_probs,
                                std::span<const std::uint64_t> online_counts);

}  // namespace gaugur::obs
