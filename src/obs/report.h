// Structured run reports: a Registry snapshot serialized to JSON (for
// machines) and aligned text tables (for eyeballs), following the
// bench_results/ convention of one artifact per run.
//
// Documented schema, version "gaugur.obs.run_report/v1":
//
//   {
//     "schema": "gaugur.obs.run_report/v1",
//     "name": "<run name>",
//     "meta": {"<key>": "<string value>", ...},
//     "counters": {"<name>": <uint>, ...},
//     "gauges": {"<name>": <int>, ...},
//     "histograms": {
//       "<name>": {
//         "count": <uint>, "sum": <double>, "mean": <double>,
//         "p50": <double>, "p95": <double>, "p99": <double>,
//         "buckets": [{"le": <double>, "count": <uint>}, ...,
//                     {"le": null, "count": <uint>}]   // overflow last
//       }, ...
//     }
//   }
//
// mean/p50/p95/p99 are derived conveniences; ParseSnapshot reconstructs
// the snapshot from buckets + sum alone, so a written report round-trips
// exactly (tests/obs/registry_test.cpp proves it).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace gaugur::obs {

inline constexpr const char* kRunReportSchema = "gaugur.obs.run_report/v1";

class RunReport {
 public:
  RunReport(std::string name, Snapshot snapshot)
      : name_(std::move(name)), snapshot_(std::move(snapshot)) {}

  /// Captures the global registry as of now.
  static RunReport Capture(std::string name) {
    return RunReport(std::move(name), Registry::Global().Snap());
  }

  const std::string& name() const { return name_; }
  const Snapshot& snapshot() const { return snapshot_; }

  /// Free-form string metadata (git sha, seed, workload label, ...).
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }
  const std::map<std::string, std::string>& meta() const { return meta_; }

  JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;

  /// Aligned text tables (via common::Table): one for counters + gauges,
  /// one for histograms with count/mean/p50/p95/p99 columns.
  std::string ToText() const;
  void Print(std::ostream& os) const;

  /// Writes ToJsonString() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Inverse of ToJson(). Throws std::logic_error (GAUGUR_CHECK) when the
  /// document does not match the v1 schema.
  static RunReport FromJson(const JsonValue& doc);
  static RunReport FromJsonString(const std::string& text) {
    return FromJson(JsonValue::Parse(text));
  }

 private:
  std::string name_;
  Snapshot snapshot_;
  std::map<std::string, std::string> meta_;
};

}  // namespace gaugur::obs
