// Structured run reports: a Registry snapshot serialized to JSON (for
// machines) and aligned text tables (for eyeballs), following the
// bench_results/ convention of one artifact per run.
//
// Documented schema, version "gaugur.obs.run_report/v2":
//
//   {
//     "schema": "gaugur.obs.run_report/v2",
//     "name": "<run name>",
//     "meta": {"<key>": "<string value>", ...},
//     "counters": {"<name>": <uint>, ...},
//     "gauges": {"<name>": <int>, ...},
//     "histograms": {
//       "<name>": {
//         "count": <uint>, "sum": <double>, "mean": <double>,
//         "p50": <double>, "p95": <double>, "p99": <double>,
//         "buckets": [{"le": <double>, "count": <uint>}, ...,
//                     {"le": null, "count": <uint>}]   // overflow last
//       }, ...
//     },
//     "model_monitor": { ... }   // optional; obs/model_monitor.h schema
//   }
//
// v2 adds the optional "model_monitor" section (online CM/RM quality:
// rolling calibration, RM error, per-feature PSI drift, QoS-violation
// attribution). v1 documents (no section) still parse. mean/p50/p95/p99
// are derived conveniences; ParseSnapshot reconstructs the snapshot from
// buckets + sum alone, so a written report round-trips exactly
// (tests/obs/registry_test.cpp and tests/obs/model_monitor_test.cpp
// prove it).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"

namespace gaugur::obs {

inline constexpr const char* kRunReportSchema = "gaugur.obs.run_report/v2";
/// Prior version, still accepted by FromJson (it simply lacks the
/// model_monitor section).
inline constexpr const char* kRunReportSchemaV1 =
    "gaugur.obs.run_report/v1";

class RunReport {
 public:
  RunReport(std::string name, Snapshot snapshot)
      : name_(std::move(name)), snapshot_(std::move(snapshot)) {}

  /// Captures the global registry as of now; when the global ModelMonitor
  /// has recorded predictions, its summary is attached as the
  /// model_monitor section.
  static RunReport Capture(std::string name) {
    RunReport report(std::move(name), Registry::Global().Snap());
    if (ModelMonitor::Global().HasData()) {
      report.SetModelMonitor(ModelMonitor::Global().Summary());
    }
    return report;
  }

  const std::string& name() const { return name_; }
  const Snapshot& snapshot() const { return snapshot_; }

  /// Free-form string metadata (git sha, seed, workload label, ...).
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }
  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Optional model-quality section (v2).
  void SetModelMonitor(ModelMonitorSummary summary) {
    model_monitor_ = std::move(summary);
  }
  const std::optional<ModelMonitorSummary>& model_monitor() const {
    return model_monitor_;
  }

  JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;

  /// Aligned text tables (via common::Table): one for counters + gauges,
  /// one for histograms with count/mean/p50/p95/p99 columns.
  std::string ToText() const;
  void Print(std::ostream& os) const;

  /// Writes ToJsonString() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Inverse of ToJson(). Accepts both the current /v2 schema and legacy
  /// /v1 documents (which simply lack the model_monitor section); throws
  /// std::logic_error (GAUGUR_CHECK) on anything else.
  static RunReport FromJson(const JsonValue& doc);
  static RunReport FromJsonString(const std::string& text) {
    return FromJson(JsonValue::Parse(text));
  }

 private:
  std::string name_;
  Snapshot snapshot_;
  std::map<std::string, std::string> meta_;
  std::optional<ModelMonitorSummary> model_monitor_;
};

}  // namespace gaugur::obs
