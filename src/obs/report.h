// Structured run reports: a Registry snapshot serialized to JSON (for
// machines) and aligned text tables (for eyeballs), following the
// bench_results/ convention of one artifact per run.
//
// Documented schema, version "gaugur.obs.run_report/v5":
//
//   {
//     "schema": "gaugur.obs.run_report/v5",
//     "name": "<run name>",
//     "meta": {"<key>": "<string value>", ...},
//     "counters": {"<name>": <uint>, ...},
//     "gauges": {"<name>": <int>, ...},
//     "histograms": {
//       "<name>": {
//         "count": <uint>, "sum": <double>, "mean": <double>,
//         "p50": <double>, "p95": <double>, "p99": <double>,
//         "p999": <double>,
//         "buckets": [{"le": <double>, "count": <uint>}, ...,
//                     {"le": null, "count": <uint>}]   // overflow last
//       }, ...
//     },
//     "model_monitor": { ... },  // optional; obs/model_monitor.h schema
//     "forensics": { ... },      // optional; obs/forensics.h schema
//     "health": { ... },         // optional; obs/health.h HealthSummary
//     "profile": { ... }         // optional; obs/latency_profiler.h
//                                //   LatencyProfileSummary
//   }
//
// v5 adds the optional "profile" section (decision latency attribution:
// per-shard phase breakdowns, barrier / window-imbalance / cache-lock
// contention, and slowest-K tail exemplars keyed by decision_id). v4
// added the optional "health" section (alert rules, labeled lifecycle
// instance states, and the obs.health.* tallies they reconcile with) and
// the derived "p999" histogram quantile. v3 added the optional
// "forensics" section (event-log volumes, decision / violation linkage,
// recent-violation recaps with resource + offender attribution, fleet
// time-series volumes) plus the optional forensic fields inside
// model_monitor.attribution. v2 added the optional "model_monitor"
// section (online CM/RM quality: rolling calibration, RM error,
// per-feature PSI drift, QoS-violation attribution). v1-v4 documents
// still parse. mean/p50/p95/p99/p999 are derived conveniences;
// ParseSnapshot reconstructs the snapshot from buckets + sum alone, so a
// written report round-trips exactly (tests/obs/registry_test.cpp and
// tests/obs/model_monitor_test.cpp prove it). All sections serialize
// through JsonObject (std::map), so keys are sorted and the emitted JSON
// is byte-stable across runs and platforms.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "obs/forensics.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"

namespace gaugur::obs {

inline constexpr const char* kRunReportSchema = "gaugur.obs.run_report/v5";
/// Prior versions, still accepted by FromJson (v4 lacks the profile
/// section, v3 additionally lacks health, v2 also lacks forensics, v1
/// also lacks model_monitor).
inline constexpr const char* kRunReportSchemaV4 =
    "gaugur.obs.run_report/v4";
inline constexpr const char* kRunReportSchemaV3 =
    "gaugur.obs.run_report/v3";
inline constexpr const char* kRunReportSchemaV2 =
    "gaugur.obs.run_report/v2";
inline constexpr const char* kRunReportSchemaV1 =
    "gaugur.obs.run_report/v1";

class RunReport {
 public:
  RunReport(std::string name, Snapshot snapshot)
      : name_(std::move(name)), snapshot_(std::move(snapshot)) {}

  /// Captures the global registry as of now; when the global ModelMonitor
  /// has recorded predictions, its summary is attached as the
  /// model_monitor section, when the global EventLog holds events a
  /// forensics section is built from it and the global FleetTimeSeries,
  /// and when the global HealthEngine is armed its summary becomes the
  /// health section.
  static RunReport Capture(std::string name) {
    RunReport report(std::move(name), Registry::Global().Snap());
    if (ModelMonitor::Global().HasData()) {
      report.SetModelMonitor(ModelMonitor::Global().Summary());
    }
    if (!EventLog::Global().Empty()) {
      const std::vector<Event> events = EventLog::Global().Snapshot();
      report.SetForensics(BuildForensics(
          events, EventLog::Global().TotalDropped(),
          FleetTimeSeries::Global().Summarize()));
    }
    if (HealthEngine::Global().Armed()) {
      report.SetHealth(HealthEngine::Global().Summary());
    }
    const LatencyProfileSummary profile =
        LatencyProfiler::Global().Summary();
    if (!profile.Empty()) {
      report.SetProfile(profile);
    }
    return report;
  }

  const std::string& name() const { return name_; }
  const Snapshot& snapshot() const { return snapshot_; }

  /// Free-form string metadata (git sha, seed, workload label, ...).
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }
  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Optional model-quality section (v2).
  void SetModelMonitor(ModelMonitorSummary summary) {
    model_monitor_ = std::move(summary);
  }
  const std::optional<ModelMonitorSummary>& model_monitor() const {
    return model_monitor_;
  }

  /// Optional decision-provenance section (v3).
  void SetForensics(ForensicsSummary summary) {
    forensics_ = std::move(summary);
  }
  const std::optional<ForensicsSummary>& forensics() const {
    return forensics_;
  }

  /// Optional fleet-health / alerting section (v4).
  void SetHealth(HealthSummary summary) { health_ = std::move(summary); }
  const std::optional<HealthSummary>& health() const { return health_; }

  /// Optional decision-latency-attribution section (v5).
  void SetProfile(LatencyProfileSummary summary) {
    profile_ = std::move(summary);
  }
  const std::optional<LatencyProfileSummary>& profile() const {
    return profile_;
  }

  JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;

  /// Aligned text tables (via common::Table): one for counters + gauges,
  /// one for histograms with count/mean/p50/p95/p99/p99.9 columns.
  std::string ToText() const;
  void Print(std::ostream& os) const;

  /// Writes ToJsonString() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Inverse of ToJson(). Accepts the current /v5 schema and legacy
  /// /v4 / /v3 / /v2 / /v1 documents (which simply lack the newer
  /// sections); throws std::logic_error (GAUGUR_CHECK) on anything else.
  static RunReport FromJson(const JsonValue& doc);
  static RunReport FromJsonString(const std::string& text) {
    return FromJson(JsonValue::Parse(text));
  }

 private:
  std::string name_;
  Snapshot snapshot_;
  std::map<std::string, std::string> meta_;
  std::optional<ModelMonitorSummary> model_monitor_;
  std::optional<ForensicsSummary> forensics_;
  std::optional<HealthSummary> health_;
  std::optional<LatencyProfileSummary> profile_;
};

}  // namespace gaugur::obs
