#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gaugur::obs {

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue(ParseString());
      case 't':
        if (!Consume("true")) Fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!Consume("false")) Fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!Consume("null")) Fail("bad literal");
        return JsonValue(nullptr);
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      object[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue(std::move(array));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the telemetry layer only emits ASCII names).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("malformed number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void DumpNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integers (the common case: counters, bucket counts) print exactly;
  // everything else uses round-trippable shortest-ish formatting.
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char trial[40];
    std::snprintf(trial, sizeof(trial), "%.*g", precision, d);
    if (std::strtod(trial, nullptr) == d) {
      out += trial;
      return;
    }
  }
  out += buf;
}

void DumpValue(std::string& out, const JsonValue& value, int indent,
               int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (value.IsNull()) {
    out += "null";
  } else if (value.IsBool()) {
    out += value.AsBool() ? "true" : "false";
  } else if (value.IsNumber()) {
    DumpNumber(out, value.AsNumber());
  } else if (value.IsString()) {
    out.push_back('"');
    out += JsonEscape(value.AsString());
    out.push_back('"');
  } else if (value.IsArray()) {
    const JsonArray& array = value.AsArray();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      DumpValue(out, array[i], indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const JsonObject& object = value.AsObject();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      out.push_back('"');
      out += JsonEscape(key);
      out += indent < 0 ? "\":" : "\": ";
      DumpValue(out, member, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  const JsonObject& object = AsObject();
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpValue(out, *this, indent, 0);
  return out;
}

JsonValue JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace gaugur::obs
