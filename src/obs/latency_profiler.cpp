#include "obs/latency_profiler.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace gaugur::obs {

namespace {

constexpr std::array<std::string_view, kNumPhases> kPhaseNames = {
    "candidate_enum", "colocation_hash", "feature_build", "cache_lookup",
    "kernel_eval",    "policy_select",   "event_emit",
};

/// Fleet-level phase histograms, registered once in the global Registry
/// so phase summaries stream through the TelemetrySink metrics-delta
/// mechanism like every other metric. Same grid as sched.decision_us.
struct PhaseHistograms {
  std::array<Histogram*, kNumPhases> phase;
  Histogram* barrier_wait;
  Histogram* cache_lock_wait;

  static PhaseHistograms& Get() {
    static PhaseHistograms instance = [] {
      PhaseHistograms h{};
      auto& registry = Registry::Global();
      const auto bounds = Histogram::ExponentialBounds(1.0, 2.0, 16);
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        h.phase[i] = &registry.GetHistogram(
            "sched.phase." + std::string(kPhaseNames[i]) + "_us", bounds);
      }
      h.barrier_wait =
          &registry.GetHistogram("sched.barrier_wait_us", bounds);
      h.cache_lock_wait =
          &registry.GetHistogram("gaugur.cache.lock_wait_us", bounds);
      return h;
    }();
    return instance;
  }
};

void AtomicMaxDouble(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

double GetNum(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  GAUGUR_CHECK_MSG(value != nullptr && value->IsNumber(),
                   "profile section: missing number field");
  return value->AsNumber();
}

std::uint64_t GetU64(const JsonValue& object, std::string_view key) {
  return static_cast<std::uint64_t>(GetNum(object, key));
}

/// Phase maps serialize as {"<phase_name>": <value-or-object>, ...} so
/// the JSON is self-describing; parsing goes through PhaseFromName.
template <typename PerPhase>
JsonObject PhaseMapToJson(const std::array<PerPhase, kNumPhases>& phases,
                          JsonValue (*to_json)(const PerPhase&)) {
  JsonObject object;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    object[std::string(kPhaseNames[i])] = to_json(phases[i]);
  }
  return object;
}

template <typename PerPhase>
std::array<PerPhase, kNumPhases> PhaseMapFromJson(
    const JsonValue& value, PerPhase (*from_json)(const JsonValue&)) {
  GAUGUR_CHECK_MSG(value.IsObject(), "profile section: phases not an object");
  std::array<PerPhase, kNumPhases> phases{};
  for (const auto& [name, entry] : value.AsObject()) {
    Phase phase;
    GAUGUR_CHECK_MSG(PhaseFromName(name, &phase),
                     "profile section: unknown phase name");
    phases[static_cast<std::size_t>(phase)] = from_json(entry);
  }
  return phases;
}

}  // namespace

std::string_view PhaseName(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

bool PhaseFromName(std::string_view name, Phase* out) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (kPhaseNames[i] == name) {
      *out = static_cast<Phase>(i);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Summary serialization

JsonValue PhaseStats::ToJson() const {
  JsonObject object;
  object["count"] = static_cast<unsigned long long>(count);
  object["total_us"] = total_us;
  object["max_us"] = max_us;
  return JsonValue(std::move(object));
}

PhaseStats PhaseStats::FromJson(const JsonValue& value) {
  PhaseStats stats;
  stats.count = GetU64(value, "count");
  stats.total_us = GetNum(value, "total_us");
  stats.max_us = GetNum(value, "max_us");
  return stats;
}

JsonValue ShardProfile::ToJson() const {
  JsonObject object;
  object["shard"] = static_cast<unsigned long long>(shard);
  object["decisions"] = static_cast<unsigned long long>(decisions);
  object["phases"] = JsonValue(PhaseMapToJson<PhaseStats>(
      phases, [](const PhaseStats& stats) { return stats.ToJson(); }));
  object["barrier_waits"] = static_cast<unsigned long long>(barrier_waits);
  object["barrier_wait_us"] = barrier_wait_us;
  object["window_busy_us"] = window_busy_us;
  return JsonValue(std::move(object));
}

ShardProfile ShardProfile::FromJson(const JsonValue& value) {
  ShardProfile profile;
  profile.shard = GetU64(value, "shard");
  profile.decisions = GetU64(value, "decisions");
  const JsonValue* phases = value.Find("phases");
  GAUGUR_CHECK_MSG(phases != nullptr, "profile shard: missing phases");
  profile.phases = PhaseMapFromJson<PhaseStats>(*phases, &PhaseStats::FromJson);
  profile.barrier_waits = GetU64(value, "barrier_waits");
  profile.barrier_wait_us = GetNum(value, "barrier_wait_us");
  profile.window_busy_us = GetNum(value, "window_busy_us");
  return profile;
}

JsonValue WindowImbalance::ToJson() const {
  JsonObject object;
  object["windows"] = static_cast<unsigned long long>(windows);
  object["spread_total_us"] = spread_total_us;
  object["spread_max_us"] = spread_max_us;
  return JsonValue(std::move(object));
}

WindowImbalance WindowImbalance::FromJson(const JsonValue& value) {
  WindowImbalance imbalance;
  imbalance.windows = GetU64(value, "windows");
  imbalance.spread_total_us = GetNum(value, "spread_total_us");
  imbalance.spread_max_us = GetNum(value, "spread_max_us");
  return imbalance;
}

JsonValue CacheContention::ToJson() const {
  JsonObject object;
  object["acquisitions"] = static_cast<unsigned long long>(acquisitions);
  object["contended"] = static_cast<unsigned long long>(contended);
  object["wait_us"] = wait_us;
  object["wait_max_us"] = wait_max_us;
  return JsonValue(std::move(object));
}

CacheContention CacheContention::FromJson(const JsonValue& value) {
  CacheContention contention;
  contention.acquisitions = GetU64(value, "acquisitions");
  contention.contended = GetU64(value, "contended");
  contention.wait_us = GetNum(value, "wait_us");
  contention.wait_max_us = GetNum(value, "wait_max_us");
  return contention;
}

JsonValue TailExemplar::ToJson() const {
  JsonObject object;
  object["decision_id"] = static_cast<unsigned long long>(decision_id);
  object["tick"] = tick;
  object["shard"] = static_cast<unsigned long long>(shard);
  object["total_us"] = total_us;
  object["phase_us"] = JsonValue(PhaseMapToJson<double>(
      phase_us, [](const double& us) { return JsonValue(us); }));
  return JsonValue(std::move(object));
}

TailExemplar TailExemplar::FromJson(const JsonValue& value) {
  TailExemplar exemplar;
  exemplar.decision_id = GetU64(value, "decision_id");
  exemplar.tick = GetNum(value, "tick");
  exemplar.shard = GetU64(value, "shard");
  exemplar.total_us = GetNum(value, "total_us");
  const JsonValue* phases = value.Find("phase_us");
  GAUGUR_CHECK_MSG(phases != nullptr, "profile exemplar: missing phase_us");
  exemplar.phase_us = PhaseMapFromJson<double>(
      *phases, [](const JsonValue& us) {
        GAUGUR_CHECK_MSG(us.IsNumber(), "profile exemplar: phase not number");
        return us.AsNumber();
      });
  return exemplar;
}

JsonValue LatencyProfileSummary::ToJson() const {
  JsonObject object;
  object["decisions"] = static_cast<unsigned long long>(decisions);
  object["fleet"] = JsonValue(PhaseMapToJson<PhaseStats>(
      fleet, [](const PhaseStats& stats) { return stats.ToJson(); }));
  JsonArray shard_array;
  shard_array.reserve(shards.size());
  for (const auto& shard : shards) shard_array.push_back(shard.ToJson());
  object["shards"] = JsonValue(std::move(shard_array));
  object["imbalance"] = imbalance.ToJson();
  object["cache"] = cache.ToJson();
  JsonArray exemplar_array;
  exemplar_array.reserve(exemplars.size());
  for (const auto& exemplar : exemplars) {
    exemplar_array.push_back(exemplar.ToJson());
  }
  object["exemplars"] = JsonValue(std::move(exemplar_array));
  return JsonValue(std::move(object));
}

LatencyProfileSummary LatencyProfileSummary::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "profile section: not an object");
  LatencyProfileSummary summary;
  summary.decisions = GetU64(value, "decisions");
  const JsonValue* fleet = value.Find("fleet");
  GAUGUR_CHECK_MSG(fleet != nullptr, "profile section: missing fleet");
  summary.fleet = PhaseMapFromJson<PhaseStats>(*fleet, &PhaseStats::FromJson);
  const JsonValue* shards = value.Find("shards");
  GAUGUR_CHECK_MSG(shards != nullptr && shards->IsArray(),
                   "profile section: missing shards");
  for (const auto& shard : shards->AsArray()) {
    summary.shards.push_back(ShardProfile::FromJson(shard));
  }
  const JsonValue* imbalance = value.Find("imbalance");
  GAUGUR_CHECK_MSG(imbalance != nullptr, "profile section: missing imbalance");
  summary.imbalance = WindowImbalance::FromJson(*imbalance);
  const JsonValue* cache = value.Find("cache");
  GAUGUR_CHECK_MSG(cache != nullptr, "profile section: missing cache");
  summary.cache = CacheContention::FromJson(*cache);
  const JsonValue* exemplars = value.Find("exemplars");
  GAUGUR_CHECK_MSG(exemplars != nullptr && exemplars->IsArray(),
                   "profile section: missing exemplars");
  for (const auto& exemplar : exemplars->AsArray()) {
    summary.exemplars.push_back(TailExemplar::FromJson(exemplar));
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Recorder

namespace detail {

DecisionScratch& TlsScratch() {
  thread_local DecisionScratch scratch;
  return scratch;
}

}  // namespace detail

LatencyProfiler::LatencyProfiler() {
  exemplars_.reserve(kTailExemplars);
}

LatencyProfiler& LatencyProfiler::Global() {
  static LatencyProfiler instance;
  return instance;
}

void LatencyProfiler::BeginDecision(std::size_t shard) {
  if (!Active()) return;
  auto& scratch = detail::TlsScratch();
  scratch.active = true;
  scratch.shard_slot = static_cast<std::uint32_t>(shard % kMaxShardSlots);
  scratch.depth = 0;
  scratch.exclusive_us.fill(0.0);
  scratch.activations.fill(0);
}

void LatencyProfiler::EndDecision(std::uint64_t decision_id, double tick) {
  auto& scratch = detail::TlsScratch();
  if (!scratch.active) return;
  scratch.active = false;

  ShardSlab& slab = slabs_[scratch.shard_slot];
  slab.decisions.fetch_add(1, std::memory_order_relaxed);
  auto& histograms = PhaseHistograms::Get();
  double total_us = 0.0;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (scratch.activations[i] == 0) continue;
    const double us = scratch.exclusive_us[i];
    total_us += us;
    slab.phase_count[i].fetch_add(scratch.activations[i],
                                  std::memory_order_relaxed);
    slab.phase_total_us[i].fetch_add(us, std::memory_order_relaxed);
    AtomicMaxDouble(slab.phase_max_us[i], us);
    histograms.phase[i]->Record(us);
  }

  if (total_us > exemplar_floor_.load(std::memory_order_relaxed)) {
    TailExemplar exemplar;
    exemplar.decision_id = decision_id;
    exemplar.tick = tick;
    exemplar.shard = scratch.shard_slot;
    exemplar.total_us = total_us;
    exemplar.phase_us = scratch.exclusive_us;
    ConsiderExemplar(exemplar);
  }
}

void LatencyProfiler::ConsiderExemplar(const TailExemplar& exemplar) {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_.size() < kTailExemplars) {
    exemplars_.push_back(exemplar);
  } else {
    auto slowest_min = std::min_element(
        exemplars_.begin(), exemplars_.end(),
        [](const TailExemplar& a, const TailExemplar& b) {
          return a.total_us < b.total_us;
        });
    if (exemplar.total_us <= slowest_min->total_us) return;
    *slowest_min = exemplar;
  }
  if (exemplars_.size() == kTailExemplars) {
    double floor = exemplars_.front().total_us;
    for (const auto& kept : exemplars_) {
      floor = std::min(floor, kept.total_us);
    }
    exemplar_floor_.store(floor, std::memory_order_relaxed);
  }
}

void LatencyProfiler::RecordBarrierWait(std::size_t shard, double wait_us) {
  if (!Active()) return;
  ShardSlab& slab = slabs_[shard % kMaxShardSlots];
  slab.barrier_waits.fetch_add(1, std::memory_order_relaxed);
  slab.barrier_wait_us.fetch_add(wait_us, std::memory_order_relaxed);
  PhaseHistograms::Get().barrier_wait->Record(wait_us);
}

void LatencyProfiler::RecordWindow(std::span<const double> shard_busy_us) {
  if (!Active() || shard_busy_us.empty()) return;
  double min_us = shard_busy_us[0];
  double max_us = shard_busy_us[0];
  for (std::size_t shard = 0; shard < shard_busy_us.size(); ++shard) {
    const double busy = shard_busy_us[shard];
    min_us = std::min(min_us, busy);
    max_us = std::max(max_us, busy);
    slabs_[shard % kMaxShardSlots].window_busy_us.fetch_add(
        busy, std::memory_order_relaxed);
  }
  const double spread = max_us - min_us;
  std::lock_guard<std::mutex> lock(window_mutex_);
  imbalance_.windows += 1;
  imbalance_.spread_total_us += spread;
  imbalance_.spread_max_us = std::max(imbalance_.spread_max_us, spread);
}

void LatencyProfiler::RecordCacheAcquisition(double wait_us, bool contended) {
  cache_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!contended) return;
  cache_contended_.fetch_add(1, std::memory_order_relaxed);
  cache_wait_us_.fetch_add(wait_us, std::memory_order_relaxed);
  AtomicMaxDouble(cache_wait_max_us_, wait_us);
  PhaseHistograms::Get().cache_lock_wait->Record(wait_us);
}

void LatencyProfiler::Reset() {
  for (auto& slab : slabs_) {
    slab.decisions.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      slab.phase_count[i].store(0, std::memory_order_relaxed);
      slab.phase_total_us[i].store(0.0, std::memory_order_relaxed);
      slab.phase_max_us[i].store(0.0, std::memory_order_relaxed);
    }
    slab.barrier_waits.store(0, std::memory_order_relaxed);
    slab.barrier_wait_us.store(0.0, std::memory_order_relaxed);
    slab.window_busy_us.store(0.0, std::memory_order_relaxed);
  }
  cache_acquisitions_.store(0, std::memory_order_relaxed);
  cache_contended_.store(0, std::memory_order_relaxed);
  cache_wait_us_.store(0.0, std::memory_order_relaxed);
  cache_wait_max_us_.store(0.0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    imbalance_ = WindowImbalance{};
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    exemplars_.clear();
    exemplar_floor_.store(-1.0, std::memory_order_relaxed);
  }
}

LatencyProfileSummary LatencyProfiler::Summary() const {
  LatencyProfileSummary summary;
  for (std::size_t slot = 0; slot < kMaxShardSlots; ++slot) {
    const ShardSlab& slab = slabs_[slot];
    ShardProfile profile;
    profile.shard = slot;
    profile.decisions = slab.decisions.load(std::memory_order_relaxed);
    profile.barrier_waits = slab.barrier_waits.load(std::memory_order_relaxed);
    profile.barrier_wait_us =
        slab.barrier_wait_us.load(std::memory_order_relaxed);
    profile.window_busy_us =
        slab.window_busy_us.load(std::memory_order_relaxed);
    bool any_phase = false;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      PhaseStats& stats = profile.phases[i];
      stats.count = slab.phase_count[i].load(std::memory_order_relaxed);
      stats.total_us = slab.phase_total_us[i].load(std::memory_order_relaxed);
      stats.max_us = slab.phase_max_us[i].load(std::memory_order_relaxed);
      any_phase |= stats.count > 0;
    }
    if (profile.decisions == 0 && profile.barrier_waits == 0 && !any_phase &&
        profile.window_busy_us == 0.0) {
      continue;
    }
    summary.decisions += profile.decisions;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      const PhaseStats& stats = profile.phases[i];
      summary.fleet[i].count += stats.count;
      summary.fleet[i].total_us += stats.total_us;
      summary.fleet[i].max_us =
          std::max(summary.fleet[i].max_us, stats.max_us);
    }
    summary.shards.push_back(std::move(profile));
  }
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    summary.imbalance = imbalance_;
  }
  summary.cache.acquisitions =
      cache_acquisitions_.load(std::memory_order_relaxed);
  summary.cache.contended = cache_contended_.load(std::memory_order_relaxed);
  summary.cache.wait_us = cache_wait_us_.load(std::memory_order_relaxed);
  summary.cache.wait_max_us =
      cache_wait_max_us_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    summary.exemplars = exemplars_;
  }
  std::sort(summary.exemplars.begin(), summary.exemplars.end(),
            [](const TailExemplar& a, const TailExemplar& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.decision_id < b.decision_id;
            });
  return summary;
}

}  // namespace gaugur::obs
