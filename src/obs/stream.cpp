#include "obs/stream.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace gaugur::obs {

namespace {

struct FlushHookEntry {
  int priority = 0;
  std::size_t order = 0;  // registration order, the tie-breaker
  std::function<void()> hook;
};

std::mutex& HooksMutex() {
  static std::mutex mutex;
  return mutex;
}

// Leaked on purpose: FlushAll may run from a terminate handler during
// static teardown.
std::vector<FlushHookEntry>& Hooks() {
  static auto* hooks = new std::vector<FlushHookEntry>();
  return *hooks;
}

std::terminate_handler previous_terminate = nullptr;

[[noreturn]] void FlushOnTerminate() {
  FlushAll();
  if (previous_terminate != nullptr) previous_terminate();
  std::abort();
}

}  // namespace

void RegisterFlushHook(int priority, std::function<void()> hook) {
  std::lock_guard lock(HooksMutex());
  Hooks().push_back({priority, Hooks().size(), std::move(hook)});
}

void FlushAll() {
  // A hook that dies (std::terminate during atexit) re-enters FlushAll
  // through the terminate handler; the nested call must not re-run hooks.
  static std::atomic<bool> running{false};
  bool expected = false;
  if (!running.compare_exchange_strong(expected, true)) return;
  std::vector<FlushHookEntry> hooks;
  {
    std::lock_guard lock(HooksMutex());
    hooks = Hooks();
  }
  std::stable_sort(hooks.begin(), hooks.end(),
                   [](const FlushHookEntry& a, const FlushHookEntry& b) {
                     return a.priority != b.priority ? a.priority < b.priority
                                                    : a.order < b.order;
                   });
  for (const FlushHookEntry& entry : hooks) entry.hook();
  running.store(false);
}

void InstallExitFlush() {
  static const bool installed = [] {
    // Function-local statics and atexit handlers share one LIFO teardown
    // list. Force the telemetry globals into existence BEFORE the flush
    // handler registers, so at exit the flush runs first — while every
    // global it drains (and the sink's writer thread reads) is alive.
    // Without this, a sink created after the first SetTracing(true) races
    // ~Registry against its own writer thread during std::exit.
    Registry::Global();
    EventLog::Global();
    FleetTimeSeries::Global();
    Tracer::Global();
    std::atexit([] { FlushAll(); });
    previous_terminate = std::set_terminate(FlushOnTerminate);
    return true;
  }();
  (void)installed;
}

void NoteWriteError(std::string_view what, const std::string& path) {
  // The counter handle is cached: write errors can fire from exit hooks
  // where registry mutation is still safe but repeated map lookups are
  // pointless.
  static Counter& errors =
      Registry::Global().GetCounter("obs.sink.write_errors");
  errors.Add(1);
  std::fprintf(stderr, "[obs] write error: cannot write %.*s to %s: %s\n",
               static_cast<int>(what.size()), what.data(), path.c_str(),
               std::strerror(errno));
}

// ---------------------------------------------------------------------------
// Manifest.

JsonValue SegmentInfo::ToJson() const {
  JsonObject object;
  object["file"] = file;
  object["lines"] = static_cast<unsigned long long>(lines);
  object["bytes"] = static_cast<unsigned long long>(bytes);
  object["seq_min"] = static_cast<unsigned long long>(seq_min);
  object["seq_max"] = static_cast<unsigned long long>(seq_max);
  object["tick_min"] = tick_min;
  object["tick_max"] = tick_max;
  return JsonValue(std::move(object));
}

SegmentInfo SegmentInfo::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "segment must be a JSON object");
  SegmentInfo info;
  const JsonValue* file = value.Find("file");
  GAUGUR_CHECK_MSG(file != nullptr && file->IsString(),
                   "segment missing 'file'");
  info.file = file->AsString();
  const auto num = [&](const char* key) {
    const JsonValue* v = value.Find(key);
    GAUGUR_CHECK_MSG(v != nullptr && v->IsNumber(),
                     "segment missing numeric field");
    return v->AsNumber();
  };
  info.lines = static_cast<std::uint64_t>(num("lines"));
  info.bytes = static_cast<std::uint64_t>(num("bytes"));
  info.seq_min = static_cast<std::uint64_t>(num("seq_min"));
  info.seq_max = static_cast<std::uint64_t>(num("seq_max"));
  info.tick_min = num("tick_min");
  info.tick_max = num("tick_max");
  return info;
}

JsonValue StreamManifest::ToJson() const {
  JsonObject object;
  JsonArray segment_array;
  segment_array.reserve(segments.size());
  for (const SegmentInfo& segment : segments) {
    segment_array.push_back(segment.ToJson());
  }
  object["segments"] = JsonValue(std::move(segment_array));
  object["lines_total"] = static_cast<unsigned long long>(lines_total);
  object["dropped"] = static_cast<unsigned long long>(dropped);
  object["write_errors"] = static_cast<unsigned long long>(write_errors);
  return JsonValue(std::move(object));
}

StreamManifest StreamManifest::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "stream manifest must be an object");
  StreamManifest stream;
  const JsonValue* segments = value.Find("segments");
  GAUGUR_CHECK_MSG(segments != nullptr && segments->IsArray(),
                   "stream manifest missing 'segments'");
  for (const JsonValue& segment : segments->AsArray()) {
    stream.segments.push_back(SegmentInfo::FromJson(segment));
  }
  const auto num = [&](const char* key) {
    const JsonValue* v = value.Find(key);
    GAUGUR_CHECK_MSG(v != nullptr && v->IsNumber(),
                     "stream manifest missing numeric field");
    return static_cast<std::uint64_t>(v->AsNumber());
  };
  stream.lines_total = num("lines_total");
  stream.dropped = num("dropped");
  stream.write_errors = num("write_errors");
  return stream;
}

JsonValue Manifest::ToJson() const {
  JsonObject object;
  object["schema"] = kManifestSchema;
  object["backpressure"] = backpressure;
  object["finalized"] = finalized;
  JsonObject stream_map;
  for (const auto& [name, stream] : streams) {
    stream_map[name] = stream.ToJson();
  }
  object["streams"] = JsonValue(std::move(stream_map));
  return JsonValue(std::move(object));
}

Manifest Manifest::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "manifest must be a JSON object");
  const JsonValue* schema = value.Find("schema");
  GAUGUR_CHECK_MSG(schema != nullptr && schema->IsString() &&
                       schema->AsString() == kManifestSchema,
                   "unknown manifest schema");
  Manifest manifest;
  const JsonValue* backpressure = value.Find("backpressure");
  GAUGUR_CHECK_MSG(backpressure != nullptr && backpressure->IsString(),
                   "manifest missing 'backpressure'");
  manifest.backpressure = backpressure->AsString();
  const JsonValue* finalized = value.Find("finalized");
  GAUGUR_CHECK_MSG(finalized != nullptr && finalized->IsBool(),
                   "manifest missing 'finalized'");
  manifest.finalized = finalized->AsBool();
  const JsonValue* streams = value.Find("streams");
  GAUGUR_CHECK_MSG(streams != nullptr && streams->IsObject(),
                   "manifest missing 'streams'");
  for (const auto& [name, stream] : streams->AsObject()) {
    manifest.streams[name] = StreamManifest::FromJson(stream);
  }
  return manifest;
}

bool Manifest::Write(const std::string& dir) const {
  const std::string path = dir + "/" + kManifestFileName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      NoteWriteError("manifest", tmp);
      return false;
    }
    out << ToJson().Dump(2) << '\n';
    out.flush();
    if (!out) {
      NoteWriteError("manifest", tmp);
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    NoteWriteError("manifest", path);
    return false;
  }
  return true;
}

bool Manifest::Load(const std::string& dir, Manifest* out) {
  const std::string path = dir + "/" + kManifestFileName;
  std::ifstream in(path);
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in && !in.eof()) return false;
  *out = FromJson(JsonValue::Parse(text));
  return true;
}

std::vector<std::size_t> SelectSegmentsByTick(const StreamManifest& stream,
                                              double lo, double hi) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < stream.segments.size(); ++i) {
    const SegmentInfo& segment = stream.segments[i];
    if (segment.lines == 0) continue;
    if (segment.tick_max < lo || segment.tick_min > hi) continue;
    selected.push_back(i);
  }
  return selected;
}

std::vector<std::size_t> SelectSegmentsBySeq(const StreamManifest& stream,
                                             std::uint64_t lo,
                                             std::uint64_t hi) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < stream.segments.size(); ++i) {
    const SegmentInfo& segment = stream.segments[i];
    if (segment.lines == 0) continue;
    if (segment.seq_max < lo || segment.seq_min > hi) continue;
    selected.push_back(i);
  }
  return selected;
}

// ---------------------------------------------------------------------------
// SegmentWriter.

SegmentWriter::SegmentWriter(std::string dir, std::string prefix,
                             std::size_t max_segment_bytes)
    : dir_(std::move(dir)),
      prefix_(std::move(prefix)),
      max_bytes_(max_segment_bytes) {
  GAUGUR_CHECK_MSG(max_bytes_ > 0, "segment byte cap must be nonzero");
}

void SegmentWriter::OpenNextSegment() {
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%05zu.jsonl", prefix_.c_str(),
                next_index_++);
  const std::string path = dir_ + "/" + name;
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    NoteWriteError(prefix_, path);
    ++summary_.write_errors;
  }
  SegmentInfo segment;
  segment.file = name;
  summary_.segments.push_back(std::move(segment));
}

bool SegmentWriter::Append(std::string_view line, std::uint64_t seq,
                           double tick) {
  const std::uint64_t needed = line.size() + 1;  // trailing newline
  bool rotated = false;
  if (summary_.segments.empty() || !out_.is_open()) {
    OpenNextSegment();
    rotated = true;
  } else if (summary_.segments.back().bytes > 0 &&
             summary_.segments.back().bytes + needed > max_bytes_) {
    // Rotate BEFORE the line that would overflow: a line never spans two
    // segments, so concatenating segments reproduces the monolithic dump.
    out_.close();
    OpenNextSegment();
    rotated = true;
  }
  out_ << line << '\n';
  if (!out_) {
    NoteWriteError(prefix_, dir_ + "/" + summary_.segments.back().file);
    ++summary_.write_errors;
    out_.clear();  // keep the stream usable; the error is tallied
  }
  SegmentInfo& segment = summary_.segments.back();
  if (segment.lines == 0) {
    segment.seq_min = seq;
    segment.tick_min = tick;
    segment.tick_max = tick;
  }
  segment.seq_max = seq;
  segment.tick_min = std::min(segment.tick_min, tick);
  segment.tick_max = std::max(segment.tick_max, tick);
  ++segment.lines;
  segment.bytes += needed;
  ++summary_.lines_total;
  return rotated;
}

void SegmentWriter::Flush() {
  if (out_.is_open()) out_.flush();
}

void SegmentWriter::Close() {
  if (out_.is_open()) out_.close();
}

// ---------------------------------------------------------------------------
// Wire helpers.

JsonValue MetricsDeltaToJson(const Snapshot& delta, std::uint64_t seq,
                             double tick) {
  JsonObject object;
  object["schema"] = kMetricsDeltaSchema;
  object["seq"] = static_cast<unsigned long long>(seq);
  object["tick"] = tick;
  JsonObject counters;
  for (const auto& [name, value] : delta.counters) {
    counters[name] = static_cast<unsigned long long>(value);
  }
  object["counters"] = JsonValue(std::move(counters));
  JsonObject gauges;
  for (const auto& [name, value] : delta.gauges) {
    gauges[name] = static_cast<long long>(value);
  }
  object["gauges"] = JsonValue(std::move(gauges));
  JsonObject histograms;
  for (const auto& [name, hist] : delta.histograms) {
    JsonObject entry;
    entry["count"] = static_cast<unsigned long long>(hist.count);
    entry["sum"] = hist.sum;
    histograms[name] = JsonValue(std::move(entry));
  }
  object["histograms"] = JsonValue(std::move(histograms));
  return JsonValue(std::move(object));
}

JsonValue TimeseriesLineToJson(std::uint64_t seq, std::size_t server,
                               const ServerSample& sample) {
  JsonObject object;
  object["schema"] = kTimeseriesSchema;
  object["seq"] = static_cast<unsigned long long>(seq);
  object["server"] = static_cast<unsigned long long>(server);
  object["tick"] = sample.tick;
  object["slots"] = SlotSamplesToJson(sample.slots);
  return JsonValue(std::move(object));
}

std::vector<TimeseriesPoint> ParseTimeseriesJsonl(std::string_view text) {
  std::vector<TimeseriesPoint> points;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const JsonValue value = JsonValue::Parse(line);
    GAUGUR_CHECK_MSG(value.IsObject(), "timeseries line must be an object");
    const JsonValue* schema = value.Find("schema");
    GAUGUR_CHECK_MSG(schema != nullptr && schema->IsString() &&
                         schema->AsString() == kTimeseriesSchema,
                     "unknown timeseries schema");
    TimeseriesPoint point;
    const JsonValue* seq = value.Find("seq");
    GAUGUR_CHECK_MSG(seq != nullptr && seq->IsNumber(),
                     "timeseries line missing 'seq'");
    point.seq = static_cast<std::uint64_t>(seq->AsNumber());
    const JsonValue* server = value.Find("server");
    GAUGUR_CHECK_MSG(server != nullptr && server->IsNumber(),
                     "timeseries line missing 'server'");
    point.server = static_cast<std::size_t>(server->AsNumber());
    const JsonValue* tick = value.Find("tick");
    GAUGUR_CHECK_MSG(tick != nullptr && tick->IsNumber(),
                     "timeseries line missing 'tick'");
    point.sample.tick = tick->AsNumber();
    const JsonValue* slots = value.Find("slots");
    GAUGUR_CHECK_MSG(slots != nullptr && slots->IsArray(),
                     "timeseries line missing 'slots'");
    point.sample.slots = SlotSamplesFromJson(*slots);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gaugur::obs
