// Fleet health engine: rule-driven SLO alerting over the live telemetry.
//
// The passive layers (metrics registry, model monitor, fleet time series,
// streaming sinks) record what happened; nothing watched them until now.
// HealthEngine evaluates a set of AlertRules on the simulation-tick
// cadence (SimulateDynamicFleet calls Evaluate(now) per event, behind
// GAUGUR_OBS_ENABLED) against four live sources:
//
//   * Registry counters / gauges / histogram quantiles (levels, windowed
//     deltas, and windowed counter ratios such as cache hit rate),
//   * ModelMonitor (per-feature PSI drift, rolling CM precision/recall,
//     RM MAE, ... — see MonitorFieldValue for the field names),
//   * FleetTimeSeries latest per-server samples (min realized FPS vs the
//     QoS floor — the per-server deficit signal),
//   * sink health (obs.sink.dropped / obs.sink.write_errors, which are
//     ordinary registry counters).
//
// Conditions come in three kinds:
//
//   * threshold   — compare the signal's current value (for counter
//     ratios: the windowed fraction over `window_ticks`),
//   * rate_of_change — per-tick rate over `window_ticks`,
//   * burn_rate   — classic multi-window SLO burn: with error budget
//     b = 1 - slo, the rule is true when the bad fraction over BOTH the
//     fast and the slow window exceeds `burn_threshold * b`. The fast
//     window catches the spike, the slow window keeps one-tick blips
//     from paging anyone.
//
// Labeled signals (per-server FPS, per-feature PSI) fan out into one
// lifecycle state machine per label:
//
//   inactive -> pending (condition true) -> firing (true for `for_ticks`
//   consecutive evaluations) -> resolved (false for `resolve_ticks`) ->
//   inactive (false for another `resolve_ticks`)
//
// Every emitted transition appends a structured `alert` event to the
// EventLog (so it streams through TelemetrySink like any other event),
// bumps the obs.health.* metrics, and fans out to Subscribe() callbacks
// in subscription order — the hook the future drift -> retrain loop
// consumes. An instance that re-fires more than `max_flaps` times within
// `flap_window_ticks` is flap-suppressed: its state machine keeps
// stepping, but transitions are tallied in obs.health.flaps_suppressed
// instead of being emitted, until it settles back to inactive and the
// flap window drains. Emitted alert events therefore reconcile 1:1 with
// the obs.health.* counters (pinned in tests/pipeline).
//
// The engine state serializes as the `health` section of the
// gaugur.obs.run_report/v4 schema with an exact JSON round-trip.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_log.h"
#include "obs/json.h"

namespace gaugur::obs {

class Registry;
class ModelMonitor;
class FleetTimeSeries;
struct ModelMonitorSummary;

// ---------------------------------------------------------------------------
// Rule grammar

enum class AlertState : std::uint8_t {
  kInactive = 0,
  kPending,
  kFiring,
  kResolved,
};

const char* AlertStateName(AlertState state);
bool AlertStateFromName(std::string_view name, AlertState* out);

enum class SignalKind : std::uint8_t {
  /// Registry counter level (monotonic; threshold on "ever happened"
  /// signals like obs.sink.write_errors, rate_of_change for volume).
  kCounter = 0,
  /// Registry gauge level (queue depth, live servers, ...).
  kGauge,
  /// One quantile of a registry histogram (e.g. sched.decision_us p99.9).
  kHistogramQuantile,
  /// Windowed ratio of two counters: delta(name) / delta(denominator)
  /// over the condition's window. `denominator` may sum several counters
  /// with '+' ("cache_hits+cache_misses"). This is the bad-fraction
  /// signal burn_rate rules consume.
  kCounterRatio,
  /// Scalar field of the live ModelMonitorSummary by name (see
  /// MonitorFieldValue).
  kMonitorField,
  /// Labeled: per-feature PSI of both models; labels are
  /// "cm:<feature>" / "rm:<feature>".
  kMonitorPsi,
  /// Labeled: per-server minimum realized FPS from the latest
  /// FleetTimeSeries sample; labels are the decimal server id. Servers
  /// whose latest sample has no occupied slots drop out of the label set
  /// (a drained server carries no deficit).
  kServerMinFps,
};

const char* SignalKindName(SignalKind kind);
bool SignalKindFromName(std::string_view name, SignalKind* out);

enum class ConditionKind : std::uint8_t {
  kThreshold = 0,
  kRateOfChange,
  kBurnRate,
};

const char* ConditionKindName(ConditionKind kind);
bool ConditionKindFromName(std::string_view name, ConditionKind* out);

enum class Comparison : std::uint8_t { kAbove = 0, kBelow };

const char* ComparisonName(Comparison cmp);
bool ComparisonFromName(std::string_view name, Comparison* out);

struct SignalSpec {
  SignalKind kind = SignalKind::kCounter;
  /// Metric / monitor-field name (unused for kMonitorPsi, kServerMinFps).
  std::string name;
  /// kCounterRatio only: denominator counter(s), '+'-joined.
  std::string denominator;
  /// kHistogramQuantile only: quantile in [0, 1].
  double quantile = 0.99;

  JsonValue ToJson() const;
  static SignalSpec FromJson(const JsonValue& value);

  friend bool operator==(const SignalSpec&, const SignalSpec&) = default;
};

struct AlertRule {
  std::string name;
  std::string severity = "warning";  // "info" | "warning" | "critical"
  SignalSpec signal;
  ConditionKind condition = ConditionKind::kThreshold;
  /// Direction for threshold / rate_of_change (burn_rate is always
  /// "too much burn").
  Comparison comparison = Comparison::kAbove;
  double threshold = 0.0;
  /// Sliding window (sim ticks) for rate_of_change and for the windowed
  /// fraction of kCounterRatio threshold rules.
  double window_ticks = 30.0;
  /// burn_rate only: the fast/slow window pair.
  double fast_window_ticks = 10.0;
  double slow_window_ticks = 60.0;
  /// burn_rate only: objective on the good fraction; error budget is
  /// 1 - slo.
  double slo = 0.99;
  /// burn_rate only: fires when bad_fraction > burn_threshold * budget
  /// in both windows.
  double burn_threshold = 1.0;
  /// Consecutive true evaluations before pending becomes firing
  /// (<= 1 fires immediately).
  int for_ticks = 2;
  /// Consecutive false evaluations before firing resolves (and again
  /// before resolved returns to inactive).
  int resolve_ticks = 2;
  /// Flap suppression: more than this many firings within
  /// `flap_window_ticks` mutes the instance's emissions.
  int max_flaps = 3;
  double flap_window_ticks = 120.0;

  JsonValue ToJson() const;
  static AlertRule FromJson(const JsonValue& value);

  friend bool operator==(const AlertRule&, const AlertRule&) = default;
};

// ---------------------------------------------------------------------------
// Transitions & summaries

/// One emitted lifecycle transition, as delivered to subscribers and
/// mirrored into the EventLog as an `alert` event.
struct AlertTransition {
  /// Engine-wide monotonic emission id (subscribers can assert total
  /// order on it).
  std::uint64_t id = 0;
  double tick = 0.0;
  std::string rule;
  std::string label;  // "" for scalar signals
  std::string severity;
  SignalKind signal = SignalKind::kCounter;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  /// Signal value at the transition and the rule threshold (for
  /// burn_rate: the fast-window burn multiple and `burn_threshold`).
  double value = 0.0;
  double threshold = 0.0;

  friend bool operator==(const AlertTransition&,
                         const AlertTransition&) = default;
};

/// Serialized state of one labeled state machine (health report section).
struct AlertInstanceStatus {
  std::string label;
  AlertState state = AlertState::kInactive;
  double last_value = 0.0;
  double last_eval_tick = 0.0;
  /// Tick of the last emitted or suppressed transition (-1 = never).
  double last_change_tick = -1.0;
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  std::uint64_t suppressed = 0;
  bool flap_suppressed = false;
  /// Mean / max of every value this instance evaluated (common::RunningStats).
  double value_mean = 0.0;
  double value_max = 0.0;

  JsonValue ToJson() const;
  static AlertInstanceStatus FromJson(const JsonValue& value);

  friend bool operator==(const AlertInstanceStatus&,
                         const AlertInstanceStatus&) = default;
};

struct AlertRuleStatus {
  AlertRule rule;
  std::uint64_t evaluations = 0;
  std::vector<AlertInstanceStatus> instances;  // sorted by label

  JsonValue ToJson() const;
  static AlertRuleStatus FromJson(const JsonValue& value);

  friend bool operator==(const AlertRuleStatus&,
                         const AlertRuleStatus&) = default;
};

/// The `health` section of gaugur.obs.run_report/v4. All tallies are
/// stored, not recomputed — a written summary parses back bit-exactly.
struct HealthSummary {
  std::uint64_t evaluations = 0;       // Evaluate() passes that ran
  std::uint64_t transitions = 0;       // emitted transitions (all kinds)
  std::uint64_t alerts_fired = 0;      // emitted to=firing
  std::uint64_t alerts_resolved = 0;   // emitted to=resolved
  std::uint64_t flaps_suppressed = 0;  // muted transitions
  std::uint64_t firing = 0;            // instances currently firing (emitted)
  std::vector<AlertRuleStatus> rules;

  bool Empty() const { return rules.empty(); }

  JsonValue ToJson() const;
  static HealthSummary FromJson(const JsonValue& value);

  friend bool operator==(const HealthSummary&, const HealthSummary&) = default;
};

/// Scalar read-out of a ModelMonitorSummary field by name. Known names:
/// cm_precision, cm_recall, cm_fpr, cm_accuracy, rm_mae_fps,
/// rm_p95_abs_error_fps, rm_bias_fps, cm_max_psi, rm_max_psi,
/// outcomes_joined, qos_violations_observed. Returns false on an unknown
/// name.
bool MonitorFieldValue(const ModelMonitorSummary& summary,
                       std::string_view field, double* out);

// ---------------------------------------------------------------------------
// Engine

struct HealthEngineConfig {
  /// Minimum tick gap between evaluation passes (0 = every call).
  double eval_min_gap_ticks = 0.0;
  /// Source / destination injection for tests; null means the process
  /// globals. `registry` serves both signal reads and the obs.health.*
  /// metrics the engine writes.
  Registry* registry = nullptr;
  ModelMonitor* monitor = nullptr;
  FleetTimeSeries* timeseries = nullptr;
  EventLog* event_log = nullptr;
  /// Monitor-sourced signals (monitor_field, monitor_psi) read
  /// ModelMonitor::Summary() — a full rolling-window + per-feature PSI
  /// scan, far too heavy for every tick — and model quality / drift are
  /// slow-moving aggregates anyway. Monitor rules therefore evaluate
  /// only on passes at least this many ticks after the previous monitor
  /// refresh (first pass always refreshes; 0 = every pass); between
  /// refreshes they are skipped entirely, so a monitor rule's
  /// for_ticks / resolve_ticks hysteresis counts refresh passes. All
  /// other signal kinds evaluate every pass.
  double monitor_refresh_ticks = 10.0;
};

class HealthEngine {
 public:
  explicit HealthEngine(HealthEngineConfig config = {});
  ~HealthEngine();

  /// Process-wide instance the fleet simulator evaluates.
  static HealthEngine& Global();

  /// Replaces the configuration and drops all rules, instance state,
  /// tallies, and subscribers.
  void Configure(HealthEngineConfig config);
  /// Drops rules, instance state, tallies, and subscribers (config kept).
  void Reset();

  void AddRule(AlertRule rule);

  /// Installs the default rule pack against the stock metric names:
  /// fleet QoS-violation burn rate, sustained per-server FPS deficit
  /// (vs `qos_fps`), PSI drift, prediction-cache hit-rate collapse,
  /// sink drops / write errors, and thread-pool queue backlog.
  void InstallDefaultRules(double qos_fps = 60.0);

  /// True when at least one rule is installed.
  bool Armed() const;
  std::vector<AlertRule> Rules() const;

  /// Called on every emitted transition, in subscription order, from
  /// inside Evaluate(). Callbacks may append events / bump metrics but
  /// must not call back into this engine.
  using Subscriber = std::function<void(const AlertTransition&)>;
  std::uint64_t Subscribe(Subscriber fn);
  void Unsubscribe(std::uint64_t id);

  /// Runs one evaluation pass at sim tick `tick`. No-op while
  /// obs::Enabled() is false, no rules are installed, or the last pass
  /// was less than eval_min_gap_ticks ago.
  void Evaluate(double tick);

  HealthSummary Summary() const;

 private:
  struct Instance;
  struct RuleState;
  struct Sample;

  /// `monitor` is the pass-shared ModelMonitorSummary, or null on passes
  /// that skip the monitor refresh (monitor-sourced rules then no-op).
  void EvaluateRuleLocked(RuleState& rs, double tick,
                          const ModelMonitorSummary* monitor);
  void StepInstanceLocked(RuleState& rs, Instance& inst,
                          const std::string& label, double tick,
                          bool condition_true, double value);
  void EmitLocked(RuleState& rs, Instance& inst, const std::string& label,
                  double tick, AlertState from, AlertState to, double value);
  Registry& Reg() const;
  EventLog& Log() const;

  HealthEngineConfig config_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<RuleState>> rules_;
  std::vector<std::pair<std::uint64_t, Subscriber>> subscribers_;
  std::uint64_t next_subscriber_id_ = 0;
  std::uint64_t next_transition_id_ = 0;
  bool evaluated_once_ = false;
  double last_eval_tick_ = 0.0;
  bool monitor_refreshed_once_ = false;
  double monitor_last_refresh_tick_ = 0.0;

  // Whole-run tallies (mirrored as obs.health.* metrics).
  std::uint64_t evaluations_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t alerts_fired_ = 0;
  std::uint64_t alerts_resolved_ = 0;
  std::uint64_t flaps_suppressed_ = 0;
  std::int64_t firing_ = 0;
};

/// RAII subscription on an engine (the fleet simulator's demo drift-ack
/// subscriber uses this; unsubscribes on scope exit).
class SubscriptionScope {
 public:
  SubscriptionScope(HealthEngine& engine, HealthEngine::Subscriber fn)
      : engine_(&engine), id_(engine.Subscribe(std::move(fn))) {}
  ~SubscriptionScope() { engine_->Unsubscribe(id_); }
  SubscriptionScope(const SubscriptionScope&) = delete;
  SubscriptionScope& operator=(const SubscriptionScope&) = delete;

 private:
  HealthEngine* engine_;
  std::uint64_t id_;
};

// ---------------------------------------------------------------------------
// Offline alert-timeline analysis (trace_explorer + tests)

/// One [fired, resolved] episode of a rule instance, reconstructed from
/// `alert` events. An episode still firing at the end of the log has
/// `resolved == false` and `resolved_tick` = the last event tick seen.
struct FiringWindow {
  std::string rule;
  std::string label;
  std::string severity;
  /// Parsed from the label when the signal is server_min_fps; -1 else.
  long long server = -1;
  std::uint64_t fired_seq = 0;
  std::uint64_t resolved_seq = 0;  // 0 while unresolved
  double fired_tick = 0.0;
  double resolved_tick = 0.0;
  bool resolved = false;
  /// Signal value at the firing transition and the rule threshold.
  double value = 0.0;
  double threshold = 0.0;

  friend bool operator==(const FiringWindow&, const FiringWindow&) = default;
};

/// Scans events (any order) for alert transitions and reconstructs the
/// firing episodes, ordered by fired_seq.
std::vector<FiringWindow> ExtractFiringWindows(std::span<const Event> events);

/// qos_violation events overlapping one firing window, with the decision
/// ids they trace back to (deduplicated, ascending). A window with a
/// server label only matches violations on that server.
struct FiringWindowJoin {
  std::vector<std::uint64_t> violation_seqs;
  std::vector<std::uint64_t> decision_ids;
};
FiringWindowJoin JoinFiringWindow(const FiringWindow& window,
                                  std::span<const Event> events);

}  // namespace gaugur::obs
