// TelemetrySink: the asynchronous streaming writer.
//
// One background thread drains the process's telemetry sources — the
// event log (via EventLog::DrainSince cursors), the metrics registry
// (periodic delta snapshots), and the fleet time series (sealed
// full-fidelity segments) — into rotating JSONL segment files in a sink
// directory, described by a manifest.json (see obs/stream.h for the
// on-disk format). While a sink is attached, drained event-ring entries
// are released, so a multi-hour run holds only one drain interval of
// telemetry in memory instead of the whole history.
//
// Backpressure between the simulation and the writer is the event log's
// OverflowPolicy: kBlock (lossless; appenders wait when a shard ring
// fills faster than the writer drains) or kDropOldest (never stalls the
// simulation; losses are tallied in the manifest and the
// `obs.sink.dropped` counter).
//
// Crash safety: the constructor registers one FlushAll() hook at
// kFlushPrioritySink (and arms InstallExitFlush), so process exit —
// clean, std::exit, or std::terminate — performs a final drain, seals
// the segments, and rewrites the manifest with finalized=true. The
// manifest is also rewritten on every rotation, so a kill -9 leaves at
// most the open segment undescribed.
//
// The whole pipeline honors the GAUGUR_OBS_ENABLED kill switch: with
// obs disabled the sources record nothing, so the sink writes empty
// streams. FromEnv() is the runtime switch: it returns a live sink iff
// GAUGUR_SINK_DIR is set.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/timeseries.h"

namespace gaugur::obs {

/// Stable wire name for a policy ("block" / "drop_oldest").
const char* BackpressureName(OverflowPolicy policy);
/// Inverse of BackpressureName; returns std::nullopt on unknown names.
std::optional<OverflowPolicy> BackpressureFromName(std::string_view name);

struct SinkConfig {
  /// Directory the segments + manifest are written into (created if
  /// missing). Required.
  std::string directory;
  /// Rotate a stream's segment before a line would push it past this.
  std::size_t max_segment_bytes = std::size_t{1} << 20;
  /// Writer-thread drain cadence.
  int flush_interval_ms = 20;
  /// What Append() does when an event shard fills between drains.
  OverflowPolicy backpressure = OverflowPolicy::kBlock;
  /// A metrics-delta line is emitted every this many drain cycles (and
  /// always on explicit Flush/Stop).
  std::size_t metrics_every = 8;
  /// Stream the fleet time series too (full fidelity, pre-thinning).
  bool stream_timeseries = true;
  std::size_t timeseries_seal_after = 256;
  /// Sources; null means the process-wide Global() instances. Tests
  /// point these at local instances for isolation.
  EventLog* event_log = nullptr;
  FleetTimeSeries* timeseries = nullptr;
  Registry* registry = nullptr;
};

class TelemetrySink {
 public:
  /// Attaches to the sources, creates the directory, writes an initial
  /// manifest, and starts the writer thread. At most one sink may be
  /// live per process (GAUGUR_CHECK).
  explicit TelemetrySink(SinkConfig config);
  /// Equivalent to Stop().
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Synchronous drain: returns after the writer completed one full
  /// cycle (events + sealed series + a metrics delta) and flushed the
  /// segment streams.
  void Flush();

  /// Final drain + manifest finalization + writer join + source detach.
  /// Idempotent; called by the destructor and the exit-flush hook.
  void Stop();

  /// Advances the tick the metrics-delta lines are stamped with (the
  /// sink has no other view of simulation time).
  void NoteTick(double tick);

  struct Stats {
    std::uint64_t events_written = 0;
    std::uint64_t metrics_lines = 0;
    std::uint64_t timeseries_lines = 0;
    /// Source-side losses (ring/sealed-queue overflow) while attached.
    std::uint64_t dropped = 0;
    std::uint64_t write_errors = 0;
    std::uint64_t rotations = 0;
    /// Largest single event drain batch — the peak number of events
    /// that were resident in the rings at a drain cut, i.e. the ring
    /// high-water mark the streaming run actually reached.
    std::uint64_t max_drain_batch = 0;
  };
  Stats GetStats() const;

  /// The manifest as it would be written right now.
  Manifest CurrentManifest() const;

  const std::string& directory() const { return config_.directory; }

  /// The process's live sink, or null. Set by the constructor, cleared
  /// by Stop().
  static TelemetrySink* Active();

  /// Builds a sink from the environment: returns null unless
  /// GAUGUR_SINK_DIR is set. GAUGUR_SINK_SEGMENT_BYTES,
  /// GAUGUR_SINK_BACKPRESSURE (block|drop_oldest) and
  /// GAUGUR_SINK_FLUSH_MS override the corresponding defaults.
  static std::unique_ptr<TelemetrySink> FromEnv();

 private:
  void WriterLoop();
  /// One drain cycle; `final_cycle` forces a metrics delta and a
  /// partial-seal timeseries drain. Caller holds mutex_.
  void DrainCycleLocked(bool final_cycle);
  Manifest BuildManifestLocked(bool finalized) const;
  void WriteManifestLocked(bool finalized);

  SinkConfig config_;
  EventLog* log_;
  FleetTimeSeries* timeseries_;
  Registry* registry_;

  mutable std::mutex mutex_;
  SegmentWriter events_writer_;
  SegmentWriter metrics_writer_;
  SegmentWriter timeseries_writer_;
  std::uint64_t event_cursor_ = 0;
  std::uint64_t metrics_seq_ = 0;
  std::uint64_t timeseries_seq_ = 0;
  std::size_t cycles_ = 0;
  Snapshot metrics_baseline_;
  Stats stats_;

  std::atomic<double> last_tick_{0.0};
  std::condition_variable wake_writer_;
  std::condition_variable cycle_done_;
  std::uint64_t flush_requested_ = 0;
  std::uint64_t flush_completed_ = 0;
  bool stop_requested_ = false;
  bool writer_exited_ = false;
  std::atomic<bool> stop_started_{false};
  std::thread writer_;
};

}  // namespace gaugur::obs
