// Metrics core: counters, gauges, and fixed-bucket histograms behind a
// process-wide named registry.
//
// Deliberately header-only so the lowest layers (common::ThreadPool lives
// in gaugur_common, *below* the gaugur_obs library) can record metrics
// without a dependency cycle. The heavier pieces — tracing, JSON reports —
// live in gaugur_obs and link the usual way.
//
// Concurrency model: every write-side operation is a relaxed atomic on a
// cache-line-aligned shard picked per thread (round-robin at first touch),
// so ThreadPool workers hammering the same counter never bounce a line
// between cores. Reads (Value / Snap) sum the shards; they are O(shards)
// and intended for end-of-run reporting, not hot loops. All mutators are
// no-ops while obs::Enabled() is false; that disabled path is a single
// relaxed load + branch.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/switch.h"

namespace gaugur::obs {

inline constexpr std::size_t kNumShards = 16;

namespace detail {

inline std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

struct alignas(64) U64Cell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) I64Cell {
  std::atomic<std::int64_t> value{0};
};

}  // namespace detail

/// Monotonic event count (tasks executed, measurements taken, ...).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[detail::ThreadShard()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  detail::U64Cell shards_[kNumShards];
};

/// Instantaneous level (queue depth, live servers, ...). Delta-based so
/// concurrent Add/Sub from different threads stay contention-free; Value
/// is the sum of all per-shard deltas.
class Gauge {
 public:
  void Add(std::int64_t delta = 1) {
    if (!Enabled()) return;
    shards_[detail::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta = 1) { Add(-delta); }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  detail::I64Cell shards_[kNumShards];
};

/// Percentile estimate from fixed histogram buckets: linear interpolation
/// inside the bucket containing the q-quantile rank. `bounds` are the
/// ascending finite upper bounds; `counts` has one extra overflow bucket.
inline double PercentileFromBuckets(std::span<const double> bounds,
                                    std::span<const std::uint64_t> counts,
                                    double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target || i + 1 == counts.size()) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no finite upper edge; report its lower one.
      const double hi = i < bounds.size() ? bounds[i] : lo;
      const double in_bucket = static_cast<double>(counts[i]);
      const double fraction =
          in_bucket > 0.0 ? std::clamp((target - cumulative) / in_bucket,
                                       0.0, 1.0)
                          : 0.0;
      return lo + fraction * (hi - lo);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

/// Read-side copy of one histogram, detached from the atomics.
struct HistogramSnapshot {
  std::vector<double> bounds;          // finite upper bucket edges
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (overflow last)
  double sum = 0.0;
  std::uint64_t count = 0;

  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  double Percentile(double q) const {
    return PercentileFromBuckets(bounds, counts, q);
  }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-bucket histogram (value distribution; typically microseconds).
/// Bucket layout is fixed at construction; recording is two relaxed
/// atomics (bucket count + shard sum).
class Histogram {
 public:
  /// Default 1-2-5 log grid from 1 to 1e7 — sized for microsecond
  /// latencies from sub-µs predictions up to 10 s offline passes.
  static std::span<const double> DefaultBounds() {
    static const std::vector<double> bounds = {
        1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3, 2e3,
        5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6, 1e7};
    return bounds;
  }

  /// Log-scale (exponential) bucket layout: `count` bounds starting at
  /// `start`, each `factor` times the previous. The fixed linear grids
  /// clip the long tail of e.g. scheduler decision latency; a geometric
  /// grid keeps relative resolution constant across decades.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               std::size_t count) {
    std::vector<double> bounds;
    bounds.reserve(count);
    double edge = start;
    for (std::size_t i = 0; i < count; ++i) {
      bounds.push_back(edge);
      edge *= factor;
    }
    return bounds;
  }

  explicit Histogram(std::span<const double> bounds)
      : bounds_(bounds.begin(), bounds.end()) {
    for (auto& shard : shards_) {
      shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(
          bounds_.size() + 1);
      for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  void Record(double value) {
    if (!Enabled()) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    Shard& shard = shards_[detail::ThreadShard()];
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snap() const {
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
      snap.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (std::uint64_t c : snap.counts) snap.count += c;
    return snap;
  }

  std::uint64_t Count() const { return Snap().count; }
  double Mean() const { return Snap().Mean(); }
  double Percentile(double q) const { return Snap().Percentile(q); }

  void Reset() {
    for (auto& shard : shards_) {
      for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  Shard shards_[kNumShards];
};

/// RAII wall-clock timer feeding a histogram in microseconds. When obs is
/// disabled at construction the destructor does nothing (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(Enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Full read-side copy of a registry. Round-trips through the run-report
/// JSON schema (obs/report.h).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;

  /// Changed entries of `this` relative to `baseline` — the payload of one
  /// metrics-delta stream line. Counters and histograms are reported as
  /// increments (new minus old), gauges as their current level; entries
  /// identical to the baseline are omitted, so an idle interval produces
  /// an empty delta. Counter resets between snapshots would make the
  /// increment negative; those are clamped to re-reporting the full value.
  Snapshot DeltaSince(const Snapshot& baseline) const {
    Snapshot delta;
    for (const auto& [name, value] : counters) {
      const auto it = baseline.counters.find(name);
      const std::uint64_t base = it == baseline.counters.end() ? 0 : it->second;
      if (value == base) continue;
      delta.counters[name] = value >= base ? value - base : value;
    }
    for (const auto& [name, value] : gauges) {
      const auto it = baseline.gauges.find(name);
      if (it != baseline.gauges.end() && it->second == value) continue;
      delta.gauges[name] = value;
    }
    for (const auto& [name, hist] : histograms) {
      const auto it = baseline.histograms.find(name);
      if (it != baseline.histograms.end() && it->second.count == hist.count &&
          it->second.sum == hist.sum) {
        continue;
      }
      HistogramSnapshot diff;
      diff.bounds = hist.bounds;
      diff.counts = hist.counts;
      diff.sum = hist.sum;
      diff.count = hist.count;
      if (it != baseline.histograms.end() &&
          it->second.count <= hist.count &&
          it->second.counts.size() == hist.counts.size()) {
        for (std::size_t i = 0; i < diff.counts.size(); ++i) {
          diff.counts[i] -= it->second.counts[i];
        }
        diff.sum -= it->second.sum;
        diff.count -= it->second.count;
      }
      delta.histograms[name] = std::move(diff);
    }
    return delta;
  }
};

/// Named metric registry. Get* lazily creates on first use and returns a
/// reference that stays valid for the registry's lifetime, so call sites
/// can cache it in a function-local static. First caller of GetHistogram
/// fixes the bucket layout for that name.
class Registry {
 public:
  Counter& GetCounter(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& GetGauge(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }

  Histogram& GetHistogram(const std::string& name,
                          std::span<const double> bounds = {}) {
    std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Histogram>(
          bounds.empty() ? Histogram::DefaultBounds() : bounds);
    }
    return *slot;
  }

  Snapshot Snap() const {
    std::lock_guard lock(mutex_);
    Snapshot snap;
    for (const auto& [name, counter] : counters_) {
      snap.counters[name] = counter->Value();
    }
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges[name] = gauge->Value();
    }
    for (const auto& [name, hist] : histograms_) {
      snap.histograms[name] = hist->Snap();
    }
    return snap;
  }

  /// Zeroes every metric in place (handles stay valid) — test isolation
  /// and start-of-run baselines.
  void Reset() {
    std::lock_guard lock(mutex_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, hist] : histograms_) hist->Reset();
  }

  static Registry& Global() {
    static Registry registry;
    return registry;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gaugur::obs
