#include "obs/event_log.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/switch.h"

namespace gaugur::obs {

namespace {

constexpr const char* kKindNames[kNumEventKinds] = {
    "decision", "arrival",       "departure", "power_on",
    "power_off", "qos_violation", "retrain",   "alert",
};

struct EventLogMetrics {
  Counter& appended = Registry::Global().GetCounter("obs.events_appended");
  Counter& dropped = Registry::Global().GetCounter("obs.events_dropped");
  Counter& sink_dropped = Registry::Global().GetCounter("obs.sink.dropped");

  static EventLogMetrics& Get() {
    static EventLogMetrics metrics;
    return metrics;
  }
};

}  // namespace

const char* EventKindName(EventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  GAUGUR_CHECK_MSG(index < kNumEventKinds, "unknown EventKind");
  return kKindNames[index];
}

bool EventKindFromName(std::string_view name, EventKind* out) {
  for (std::size_t i = 0; i < kNumEventKinds; ++i) {
    if (name == kKindNames[i]) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

JsonValue Event::ToJson() const {
  JsonObject object;
  object["schema"] = kEventSchema;
  object["seq"] = static_cast<unsigned long long>(seq);
  object["tick"] = tick;
  object["kind"] = EventKindName(kind);
  object["decision_id"] = static_cast<unsigned long long>(decision_id);
  object["fields"] = JsonValue(fields);
  return JsonValue(std::move(object));
}

Event Event::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "event must be a JSON object");
  const JsonValue* schema = value.Find("schema");
  GAUGUR_CHECK_MSG(schema != nullptr && schema->IsString() &&
                       schema->AsString() == kEventSchema,
                   "unknown event schema");
  Event event;
  const JsonValue* seq = value.Find("seq");
  GAUGUR_CHECK_MSG(seq != nullptr && seq->IsNumber(),
                   "event missing numeric 'seq'");
  event.seq = static_cast<std::uint64_t>(seq->AsNumber());
  const JsonValue* tick = value.Find("tick");
  GAUGUR_CHECK_MSG(tick != nullptr && tick->IsNumber(),
                   "event missing numeric 'tick'");
  event.tick = tick->AsNumber();
  const JsonValue* kind = value.Find("kind");
  GAUGUR_CHECK_MSG(kind != nullptr && kind->IsString(),
                   "event missing 'kind'");
  GAUGUR_CHECK_MSG(EventKindFromName(kind->AsString(), &event.kind),
                   "unknown event kind name");
  const JsonValue* decision = value.Find("decision_id");
  GAUGUR_CHECK_MSG(decision != nullptr && decision->IsNumber(),
                   "event missing numeric 'decision_id'");
  event.decision_id = static_cast<std::uint64_t>(decision->AsNumber());
  const JsonValue* fields = value.Find("fields");
  GAUGUR_CHECK_MSG(fields != nullptr && fields->IsObject(),
                   "event missing 'fields' object");
  event.fields = fields->AsObject();
  return event;
}

EventLog::EventLog(EventLogConfig config) { Configure(config); }

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Configure(EventLogConfig config) {
  GAUGUR_CHECK_MSG(config.shard_capacity > 0 && config.num_shards > 0,
                   "event log needs nonzero capacity and shards");
  config_ = config;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }
  shards_ = std::move(shards);
  appended_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void EventLog::Clear() {
  for (const auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->ring.clear();
    }
    shard->space_freed.notify_all();
  }
  appended_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  stream_dropped_.store(0, std::memory_order_relaxed);
}

void EventLog::SetStreaming(bool streaming, OverflowPolicy policy) {
  // Flip the flags while holding every shard lock: an appender blocked
  // in the kBlock wait re-checks its predicate under its shard lock, so
  // publishing the detach under those locks (then notifying) cannot
  // miss a waiter that was between its predicate check and its sleep.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    streaming_.store(streaming, std::memory_order_relaxed);
    policy_.store(policy, std::memory_order_relaxed);
  }
  for (const auto& shard : shards_) shard->space_freed.notify_all();
}

void EventLog::Append(EventKind kind, double tick,
                      std::uint64_t decision_id, JsonObject fields) {
  if (!Enabled()) return;
  Event event;
  event.tick = tick;
  event.kind = kind;
  event.decision_id = decision_id;
  event.fields = std::move(fields);
  Shard& shard = *shards_[detail::ThreadShard() % shards_.size()];
  bool dropped_one = false;
  bool streaming_drop = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.ring.size() >= config_.shard_capacity &&
        streaming_.load(std::memory_order_relaxed) &&
        policy_.load(std::memory_order_relaxed) == OverflowPolicy::kBlock) {
      shard.space_freed.wait(lock, [&] {
        return shard.ring.size() < config_.shard_capacity ||
               !streaming_.load(std::memory_order_relaxed) ||
               policy_.load(std::memory_order_relaxed) !=
                   OverflowPolicy::kBlock;
      });
    }
    if (shard.ring.size() >= config_.shard_capacity) {
      shard.ring.pop_front();
      dropped_one = true;
      streaming_drop = streaming_.load(std::memory_order_relaxed);
    }
    // Seq is stamped under the shard lock: DrainSince holds all shard
    // locks for its cut, so no event can be in flight with an allocated
    // seq the drain's cursor advance would skip forever.
    event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    shard.ring.push_back(std::move(event));
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
  EventLogMetrics::Get().appended.Add(1);
  if (dropped_one) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    EventLogMetrics::Get().dropped.Add(1);
    if (streaming_drop) {
      stream_dropped_.fetch_add(1, std::memory_order_relaxed);
      EventLogMetrics::Get().sink_dropped.Add(1);
    }
  }
}

std::vector<Event> EventLog::DrainSince(std::uint64_t cursor) {
  // All shard locks at once: the cut is atomic across shards, so the
  // returned batch is exactly the events with cursor < seq <= max(seq)
  // at the cut — no gaps, no duplicates on the next drain. Appenders
  // only ever take one shard lock, so ordered acquisition cannot
  // deadlock.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  std::vector<Event> drained;
  for (const auto& shard : shards_) {
    // Within a shard the ring is seq-ascending (seq stamped under the
    // shard lock), so the survivors form a prefix.
    auto& ring = shard->ring;
    auto first = ring.begin();
    while (first != ring.end() && first->seq <= cursor) ++first;
    drained.insert(drained.end(), std::make_move_iterator(first),
                   std::make_move_iterator(ring.end()));
    ring.erase(first, ring.end());
    shard->space_freed.notify_all();
  }
  std::sort(drained.begin(), drained.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return drained;
}

std::size_t EventLog::Residency() const {
  std::size_t resident = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    resident += shard->ring.size();
  }
  return resident;
}

std::vector<Event> EventLog::Snapshot() const {
  std::vector<Event> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.insert(merged.end(), shard->ring.begin(), shard->ring.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return merged;
}

std::string EventLog::ToJsonl() const {
  std::ostringstream out;
  for (const Event& event : Snapshot()) {
    out << event.ToJson().Dump(/*indent=*/-1) << '\n';
  }
  return out.str();
}

bool EventLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    NoteWriteError("event log", path);
    return false;
  }
  out << ToJsonl();
  out.flush();
  if (!out) {
    NoteWriteError("event log", path);
    return false;
  }
  return true;
}

std::vector<Event> EventLog::ParseJsonl(std::string_view text) {
  std::vector<Event> events;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    events.push_back(Event::FromJson(JsonValue::Parse(line)));
  }
  return events;
}

bool EventLog::ReadJsonl(const std::string& path, std::vector<Event>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = ParseJsonl(text.str());
  return true;
}

}  // namespace gaugur::obs
