// Bounded per-server fleet time series.
//
// SimulateDynamicFleet records one ServerSample per server whenever that
// server's colocation changes (arrival or departure): the sim tick plus,
// for every occupied slot, the realized FPS and the equilibrium pressure
// on each of the seven shared resources. Forensics tooling uses the
// series to show what a server looked like around a QoS violation.
//
// Memory is bounded per server by a thinning downsampler: each series
// keeps at most `capacity_per_server` samples and enforces a minimum
// tick gap between kept samples. When a ring fills, every other sample
// is discarded and the minimum gap doubles, so an arbitrarily long run
// converges to `capacity` samples spread across the whole horizon
// (classic halving decimation — resolution degrades, coverage does not).
//
// Pressures are stored as a plain vector (index order matches
// resources::kAllResources) so the obs layer stays dependency-free.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace gaugur::obs {

struct SlotSample {
  int game_id = -1;
  double fps = 0.0;
  /// Equilibrium pressure per shared resource, resources::kAllResources
  /// order (7 entries); may be empty when pressure was not sampled.
  std::vector<double> pressure;

  bool operator==(const SlotSample&) const = default;
};

struct ServerSample {
  double tick = 0.0;
  std::vector<SlotSample> slots;

  bool operator==(const ServerSample&) const = default;
};

/// Wire form of a slot list, [{"game_id": ..., "fps": ..., "pressure":
/// [...]}, ...] — shared by FleetTimeSeries::ToJson and the streaming
/// sink's timeseries lines so both dumps parse the same way.
JsonValue SlotSamplesToJson(const std::vector<SlotSample>& slots);
std::vector<SlotSample> SlotSamplesFromJson(const JsonValue& value);

/// A run of full-fidelity samples for one server, handed from Record()
/// to the streaming sink. Sealed segments carry every sample as
/// recorded — the in-memory thinning decimation never touches them.
struct SealedSeriesSegment {
  std::size_t server = 0;
  std::vector<ServerSample> samples;
};

struct TimeSeriesConfig {
  /// Samples kept per server; halving decimation on overflow.
  std::size_t capacity_per_server = 512;
};

class FleetTimeSeries {
 public:
  explicit FleetTimeSeries(TimeSeriesConfig config = {});

  static FleetTimeSeries& Global();

  /// Replaces the configuration and drops all series.
  void Configure(TimeSeriesConfig config);
  void Clear();

  /// Records one sample for `server`. No-op when the observability
  /// switch is off, or when the sample is closer than the current
  /// minimum gap to the last kept sample of that server (streaming
  /// staging below sees it either way — thinning only governs the
  /// in-memory series).
  void Record(std::size_t server, ServerSample sample);

  /// Turns sealed-segment handoff on or off. While on, every Record()
  /// call (thinned or not) is also staged at full fidelity; a server's
  /// staging run is sealed into a SealedSeriesSegment every
  /// `seal_after` samples and queued for DrainSealed(). The sealed
  /// queue is bounded; overflow drops the oldest segment and counts it
  /// in StreamDropped(). Turning streaming off discards staged and
  /// sealed data.
  void SetStreaming(bool streaming, std::size_t seal_after = 256);

  /// Removes and returns all sealed segments, oldest first. With
  /// `seal_partial` set, in-progress staging runs are sealed and
  /// included too (the sink's final drain).
  std::vector<SealedSeriesSegment> DrainSealed(bool seal_partial = false);

  /// Samples lost to sealed-queue overflow since streaming was enabled.
  std::uint64_t StreamDropped() const;

  /// Kept samples for one server, oldest first (empty if never seen).
  std::vector<ServerSample> Series(std::size_t server) const;
  std::size_t NumServers() const;

  /// The most recent sample recorded per server, independent of the
  /// thinning downsampler (a thinned-away Record still updates this).
  std::map<std::size_t, ServerSample> LatestSamples() const;

  /// (server, minimum realized FPS over occupied slots) from each
  /// server's most recent sample; servers whose latest sample has no
  /// occupied slots are omitted (a drained server carries no deficit).
  /// The health engine's per-server FPS-deficit signal — computed under
  /// the lock so the per-tick read copies no slot or pressure vectors.
  std::vector<std::pair<std::size_t, double>> LatestMinFps() const;

  struct Summary {
    std::uint64_t servers = 0;
    /// All Record() calls while enabled, including thinned/skipped ones.
    std::uint64_t samples_seen = 0;
    /// Samples currently retained across all servers.
    std::uint64_t samples_kept = 0;
    /// Largest per-server minimum tick gap (0 until decimation starts).
    double max_gap = 0.0;

    bool operator==(const Summary&) const = default;
  };
  Summary Summarize() const;

  /// Full dump, {"<server>": [{"tick": ..., "slots": [...]}, ...]}.
  JsonValue ToJson() const;

 private:
  struct ServerSeries {
    std::vector<ServerSample> samples;
    double min_gap = 0.0;
    /// Most recent Record() for this server, thinned or not.
    ServerSample last;
  };

  void SealLocked(std::size_t server, std::vector<ServerSample>* staged);

  TimeSeriesConfig config_;
  mutable std::mutex mutex_;
  std::map<std::size_t, ServerSeries> series_;
  std::uint64_t samples_seen_ = 0;

  // Streaming state, guarded by the same mutex as the series.
  bool streaming_ = false;
  std::size_t seal_after_ = 256;
  std::map<std::size_t, std::vector<ServerSample>> staging_;
  std::deque<SealedSeriesSegment> sealed_;
  std::uint64_t stream_dropped_ = 0;
};

/// Sealed segments the sink will buffer before dropping the oldest.
inline constexpr std::size_t kMaxSealedSegments = 4096;

}  // namespace gaugur::obs
