// Forensics summary: the run-report section that joins the event log and
// the fleet time series into an at-a-glance provenance digest — how many
// decisions/violations were recorded, how many violations link back to a
// placement decision, and a bounded tail of recent violations with their
// full forensic chain (decision id, victim, dominant resource, dominant
// offender). The complete per-event detail stays in the JSONL event log;
// this section makes the run report self-describing and is what the CI
// telemetry job cross-checks against the model monitor's totals.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace gaugur::obs {

/// One QoS violation lifted out of the event log, with the provenance
/// chain resolved: decision_id links it to the placement decision that
/// created the colocation, dominant_resource / offender_game carry the
/// contention-model attribution computed when the violation fired.
struct ViolationRecap {
  std::uint64_t seq = 0;
  std::uint64_t decision_id = 0;
  std::uint64_t server = 0;
  double tick = 0.0;
  int victim_game = -1;
  double realized_fps = 0.0;
  double qos_fps = 0.0;
  std::string dominant_resource;
  int offender_game = -1;

  JsonValue ToJson() const;
  static ViolationRecap FromJson(const JsonValue& value);

  friend bool operator==(const ViolationRecap&,
                         const ViolationRecap&) = default;
};

struct ForensicsSummary {
  // Event-log volumes.
  std::uint64_t events = 0;
  std::uint64_t events_dropped = 0;
  std::map<std::string, std::uint64_t> events_by_kind;
  std::uint64_t decisions = 0;
  std::uint64_t violations = 0;
  /// Violations whose decision_id resolves to a decision event present in
  /// the log (== violations unless the ring dropped the decision).
  std::uint64_t violations_linked = 0;
  /// Newest-last bounded tail of violations.
  std::vector<ViolationRecap> recent_violations;

  // Fleet time-series volumes.
  std::uint64_t ts_servers = 0;
  std::uint64_t ts_samples_seen = 0;
  std::uint64_t ts_samples_kept = 0;

  bool Empty() const { return events == 0 && ts_samples_seen == 0; }

  JsonValue ToJson() const;
  static ForensicsSummary FromJson(const JsonValue& doc);

  friend bool operator==(const ForensicsSummary&,
                         const ForensicsSummary&) = default;
};

/// Builds the summary from an event-log snapshot plus the time-series
/// volumes; `dropped` is EventLog::TotalDropped() at snapshot time.
ForensicsSummary BuildForensics(std::span<const Event> events,
                                std::uint64_t dropped,
                                const FleetTimeSeries::Summary& timeseries,
                                std::size_t max_recaps = 32);

}  // namespace gaugur::obs
