#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/stream.h"
#include "obs/switch.h"

namespace gaugur::obs {

namespace {

/// Per-thread event buffer. Appends come only from the owning thread; the
/// mutex exists so Events()/Clear() on another thread can read safely.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

thread_local int tls_depth = 0;

/// Idempotent: joins the ordered exit-flush chain (obs/stream.h) at the
/// trace priority, so a streaming sink always drains its rings before
/// the emergency trace is written — trailing span events recorded during
/// that drain still make the trace.
void InstallExitFlushOnce() {
  static const bool installed = [] {
    RegisterFlushHook(kFlushPriorityTrace,
                      [] { Tracer::Global().FlushExitTrace(); });
    InstallExitFlush();
    return true;
  }();
  (void)installed;
}

}  // namespace

struct Tracer::Impl {
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<bool> tracing{false};
  std::atomic<std::uint32_t> next_tid{0};
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  ThreadBuffer& LocalBuffer() {
    thread_local ThreadBuffer* cached = nullptr;
    if (cached == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      owned->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      cached = owned.get();
      std::lock_guard lock(registry_mutex);
      buffers.push_back(std::move(owned));
    }
    return *cached;
  }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::Global() {
  // Leaked on purpose: worker threads may record during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetTracing(bool on) {
  if (on) InstallExitFlushOnce();
  impl_->tracing.store(on, std::memory_order_relaxed);
}

bool Tracer::TracingOn() const {
  return impl_->tracing.load(std::memory_order_relaxed);
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - impl_->epoch)
      .count();
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer& buffer = impl_->LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> all;
  std::lock_guard registry_lock(impl_->registry_mutex);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

void Tracer::Clear() {
  std::lock_guard registry_lock(impl_->registry_mutex);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

JsonValue Tracer::ToChromeJson() const {
  JsonArray events;
  for (const TraceEvent& e : Events()) {
    JsonObject entry;
    entry["name"] = e.name;
    entry["cat"] = "gaugur";
    entry["ph"] = "X";
    entry["pid"] = 1;
    entry["tid"] = static_cast<unsigned long long>(e.tid);
    entry["ts"] = e.ts_us;
    entry["dur"] = e.dur_us;
    entry["args"] = JsonObject{{"depth", e.depth}};
    events.push_back(JsonValue(std::move(entry)));
  }
  JsonObject doc;
  doc["traceEvents"] = JsonValue(std::move(events));
  doc["displayTimeUnit"] = "ms";
  return JsonValue(std::move(doc));
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeJson().Dump(2) << '\n';
  return static_cast<bool>(out);
}

bool Tracer::FlushExitTrace() const {
  // Only a run that is *still* tracing wants the emergency dump — scoped
  // TracingScope users (tests, benches) restore the switch and opt out.
  if (!TracingOn()) return false;
  if (Events().empty()) return false;
  const char* env = std::getenv("GAUGUR_TRACE_EXIT_PATH");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "gaugur_trace_exit.json";
  const bool ok = WriteChromeTrace(path);
  if (ok) {
    std::fprintf(stderr, "[obs] exit trace written to %s\n", path.c_str());
  }
  return ok;
}

ScopedSpan::ScopedSpan(std::string name)
    : active_(Enabled() && Tracer::Global().TracingOn()) {
  if (!active_) return;
  name_ = std::move(name);
  depth_ = tls_depth++;
  start_us_ = Tracer::Global().NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tls_depth;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = std::move(name_);
  event.depth = depth_;
  event.ts_us = start_us_;
  event.dur_us = tracer.NowUs() - start_us_;
  tracer.Record(std::move(event));
}

int ScopedSpan::CurrentDepth() { return tls_depth; }

}  // namespace gaugur::obs
