// Minimal JSON document model: enough for the observability layer to emit
// run reports / Chrome traces and to parse them back (schema round-trip
// tests, offline tooling). Zero third-party dependencies, by design.
//
// Numbers are stored as double (printed with enough digits to round-trip);
// integer counters are exact up to 2^53, far beyond any run this repo
// produces. Object keys are kept sorted (std::map) so output is
// deterministic and diff-friendly.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

// GCC's -Wmaybe-uninitialized reports phantom uninitialized reads inside
// std::variant copy/move construction when it inlines libstdc++ internals
// (seen with GCC 12 at -O1 under the TSan build; GCC bugs 80635/105593).
// The diagnostic is attributed to the inlined <variant> code in whatever TU
// touches a JsonValue, so a push/pop around this header can't contain it —
// disable it file-wide for JsonValue users instead.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace gaugur::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// Thrown by JsonValue::Parse on malformed input (with byte offset).
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(long long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool IsNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }
  bool IsNumber() const { return std::holds_alternative<double>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool IsObject() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::bad_variant_access on kind mismatch.
  bool AsBool() const { return std::get<bool>(value_); }
  double AsNumber() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(value_); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(value_); }
  JsonArray& AsArray() { return std::get<JsonArray>(value_); }
  JsonObject& AsObject() { return std::get<JsonObject>(value_); }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes; indent < 0 → compact one-liner, otherwise pretty-printed
  /// with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document; throws JsonParseError on bad input
  /// or trailing garbage.
  static JsonValue Parse(std::string_view text);

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace gaugur::obs
