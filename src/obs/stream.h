// Streaming-telemetry primitives: rotating JSONL segment files, the
// manifest that describes them, ordered exit-flush hooks, and the wire
// helpers for the metrics-delta and time-series streams.
//
// This header is the source-side half of the streaming pipeline; the
// background writer that drives it lives in obs/sink.h. Everything here
// is synchronous and single-owner (the sink's writer thread), so there
// are no locks — thread safety is the sink's job.
//
// Segment files: each telemetry stream ("events", "metrics_delta",
// "timeseries") is written as size-capped JSONL segments
// (events-00001.jsonl, events-00002.jsonl, ...). A line is NEVER split
// across segments: the writer rotates *before* a line that would push
// the current segment past the byte cap. Concatenating a stream's
// segments in manifest order therefore reproduces the monolithic dump
// byte for byte.
//
// Manifest (manifest.json in the sink directory, schema
// "gaugur.obs.manifest/v1"): per stream, the ordered segment list with
// line counts, byte sizes, and seq/tick ranges, plus drop and
// write-error tallies. It is rewritten atomically (tmp + rename) on
// every rotation and finalized on the last flush, so a reader always
// sees a parseable description of what is on disk and an offline tool
// can pick only the segments overlapping a seq or tick range.
//
// Exit-flush ordering: every layer that wants a crash-safe dump
// registers a hook with a fixed priority; FlushAll() runs them lowest
// priority first (sink drains before the tracer writes its exit trace,
// which runs before any report hook). InstallExitFlush() arms one
// atexit + std::terminate handler that calls FlushAll() — layers must
// not install their own exit hooks, or the relative order becomes
// registration-order luck.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace gaugur::obs {

inline constexpr const char* kManifestSchema = "gaugur.obs.manifest/v1";
inline constexpr const char* kMetricsDeltaSchema =
    "gaugur.obs.metrics_delta/v1";
inline constexpr const char* kTimeseriesSchema = "gaugur.obs.timeseries/v1";

/// Stream names used as manifest keys and segment file prefixes.
inline constexpr const char* kEventsStream = "events";
inline constexpr const char* kMetricsStream = "metrics_delta";
inline constexpr const char* kTimeseriesStream = "timeseries";

inline constexpr const char* kManifestFileName = "manifest.json";

// ---------------------------------------------------------------------------
// Ordered exit flush.

/// Canonical hook priorities: the sink must drain the event rings before
/// the tracer writes its exit trace (trailing span events recorded during
/// the sink's drain still make the trace), and any report writer runs
/// last so it captures post-flush counter totals.
inline constexpr int kFlushPrioritySink = 0;
inline constexpr int kFlushPriorityTrace = 10;
inline constexpr int kFlushPriorityReport = 20;

/// Registers `hook` to run during FlushAll(); lower priority runs first,
/// ties run in registration order. Hooks live for the process lifetime
/// and must be safe to call more than once.
void RegisterFlushHook(int priority, std::function<void()> hook);

/// Runs every registered hook in priority order. Reentrancy-safe: a hook
/// that triggers FlushAll() again (e.g. terminate during atexit) is a
/// no-op for the nested call.
void FlushAll();

/// Idempotent: arms one atexit handler and one std::terminate chain that
/// both call FlushAll(), so a run that dies mid-stream still leaves a
/// finalized manifest and a loadable trace.
void InstallExitFlush();

/// Logs a write failure (with errno text) to stderr and bumps the
/// `obs.sink.write_errors` counter — shared by every telemetry writer so
/// silent data loss always leaves a metric.
void NoteWriteError(std::string_view what, const std::string& path);

// ---------------------------------------------------------------------------
// Segments & manifest.

struct SegmentInfo {
  std::string file;  // file name relative to the sink directory
  std::uint64_t lines = 0;
  std::uint64_t bytes = 0;
  std::uint64_t seq_min = 0;
  std::uint64_t seq_max = 0;
  double tick_min = 0.0;
  double tick_max = 0.0;

  JsonValue ToJson() const;
  static SegmentInfo FromJson(const JsonValue& value);

  friend bool operator==(const SegmentInfo&, const SegmentInfo&) = default;
};

/// One stream's section of the manifest.
struct StreamManifest {
  std::vector<SegmentInfo> segments;
  std::uint64_t lines_total = 0;
  /// Entries lost to drop_oldest backpressure before they reached disk.
  std::uint64_t dropped = 0;
  std::uint64_t write_errors = 0;

  JsonValue ToJson() const;
  static StreamManifest FromJson(const JsonValue& value);

  friend bool operator==(const StreamManifest&,
                         const StreamManifest&) = default;
};

struct Manifest {
  std::string backpressure = "block";  // "block" | "drop_oldest"
  /// True once the final flush sealed every stream; a false value in a
  /// loaded manifest means the producing run is live or died mid-write
  /// after the last rotation.
  bool finalized = false;
  std::map<std::string, StreamManifest> streams;

  JsonValue ToJson() const;
  static Manifest FromJson(const JsonValue& value);

  /// Atomic rewrite of <dir>/manifest.json (tmp + rename); returns false
  /// (and notes a write error) on I/O failure.
  bool Write(const std::string& dir) const;
  /// Parses <dir>/manifest.json; returns false if missing/unreadable.
  static bool Load(const std::string& dir, Manifest* out);

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Indexes of segments whose [tick_min, tick_max] overlaps [lo, hi] —
/// the lazy-loading primitive trace_explorer uses for windowed reads.
std::vector<std::size_t> SelectSegmentsByTick(const StreamManifest& stream,
                                              double lo, double hi);
/// Same, by sequence-number range.
std::vector<std::size_t> SelectSegmentsBySeq(const StreamManifest& stream,
                                             std::uint64_t lo,
                                             std::uint64_t hi);

/// Size-capped rotating JSONL writer for one stream. Not thread-safe;
/// owned by the sink's writer thread.
class SegmentWriter {
 public:
  SegmentWriter(std::string dir, std::string prefix,
                std::size_t max_segment_bytes);

  /// Writes `line` + '\n', rotating to a fresh segment first when the
  /// line would push the current one past the byte cap (a line is never
  /// split; an oversized line gets a segment of its own). `seq` and
  /// `tick` feed the per-segment ranges in the manifest. Returns true
  /// when a new segment was opened (manifest rewrite due).
  bool Append(std::string_view line, std::uint64_t seq, double tick);

  /// Flushes the current segment's stream buffer to the OS.
  void Flush();
  /// Seals the current segment (further Appends open a new one).
  void Close();

  /// Manifest section describing everything written so far (the open
  /// segment included, with its live counts).
  const StreamManifest& Summary() const { return summary_; }
  std::uint64_t write_errors() const { return summary_.write_errors; }

 private:
  void OpenNextSegment();

  std::string dir_;
  std::string prefix_;
  std::size_t max_bytes_;
  std::ofstream out_;
  StreamManifest summary_;
  std::size_t next_index_ = 1;
};

// ---------------------------------------------------------------------------
// Wire helpers for the non-event streams.

/// One metrics-delta line: the changed entries of a registry snapshot
/// relative to the previous delta (counters/histograms as increments,
/// gauges as levels — see Snapshot::DeltaSince).
///
///   {"schema": "gaugur.obs.metrics_delta/v1", "seq": <n>, "tick": <t>,
///    "counters": {...}, "gauges": {...},
///    "histograms": {"<name>": {"count": <d>, "sum": <d>}}}
JsonValue MetricsDeltaToJson(const Snapshot& delta, std::uint64_t seq,
                             double tick);

/// One time-series line: a single ServerSample at full fidelity.
///
///   {"schema": "gaugur.obs.timeseries/v1", "seq": <n>,
///    "server": <s>, "tick": <t>, "slots": [...]}
JsonValue TimeseriesLineToJson(std::uint64_t seq, std::size_t server,
                               const ServerSample& sample);

struct TimeseriesPoint {
  std::uint64_t seq = 0;
  std::size_t server = 0;
  ServerSample sample;

  friend bool operator==(const TimeseriesPoint&,
                         const TimeseriesPoint&) = default;
};

/// Parses a timeseries-stream JSONL dump; throws std::logic_error
/// (GAUGUR_CHECK) on malformed lines or schema mismatches.
std::vector<TimeseriesPoint> ParseTimeseriesJsonl(std::string_view text);

}  // namespace gaugur::obs
