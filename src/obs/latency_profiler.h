// Decision latency attribution: an always-on flight recorder that splits
// every scheduler decision into fixed phases and accounts for where
// shard time goes when the fleet is sharded.
//
// `sched.decision_us` says how long a decision took; this module says
// *why*. Each decision is bracketed by BeginDecision/EndDecision on the
// deciding thread, and the code paths it crosses drop PhaseTimer RAII
// guards with one of seven fixed phase IDs:
//
//   candidate_enum   — open-server candidate selection + view build
//                      (ShardSim, outside the policy call)
//   colocation_hash  — extended-candidate assembly and additive
//                      colocation-hash / cache-key derivation
//   feature_build    — FeatureBuilder row appends for cache misses
//   cache_lookup     — PredictionCache lookups and re-inserts
//   kernel_eval      — the batched tree-kernel PredictBatch call
//   policy_select    — the placement policy invocation itself (the span
//                      SchedMetrics times as sched.decision_us)
//   event_emit       — EventLog appends for the decision (outside the
//                      policy call)
//
// Timers nest (policy_select contains colocation_hash, feature_build,
// cache_lookup, kernel_eval) and each timer records *exclusive* time —
// elapsed minus time spent in nested timers — so phase totals partition
// the decision instead of double counting it. The reconciliation
// contract, pinned by a pipeline test: the sum of the five in-decision
// phase totals (colocation_hash + feature_build + cache_lookup +
// kernel_eval + policy_select) tracks the sched.decision_us histogram
// sum within a small tolerance (timer/clock overhead and std::function
// dispatch are the only unattributed remainder). candidate_enum and
// event_emit run outside the timed policy span and are excluded.
//
// Storage is TSan-clean by construction: each decision accumulates into
// a thread-local scratch (zero contention), and EndDecision flushes it
// into (a) a fixed static array of per-shard slabs of relaxed atomics —
// no locks, no allocation on the decision path — and (b) global
// Registry histograms `sched.phase.<name>_us`, which stream through the
// TelemetrySink metrics-delta mechanism like every other metric.
//
// Contention accounting rides along:
//   * barrier waits — time each shard spends in the tick-window barrier
//     (SimulateShardedFleet), per shard;
//   * window imbalance — per tick window, the spread between the
//     busiest and idlest shard's in-window work time;
//   * cache lock waits — time spent blocked on striped PredictionCache
//     stripe mutexes (try_lock fast path: the uncontended case costs no
//     clock read).
//
// A slowest-K tail-exemplar ring keeps the full phase breakdown of the
// K slowest decisions seen, keyed by decision_id so each exemplar joins
// 1:1 back to its decision event in the EventLog (`trace_explorer
// profile` renders the join).
//
// The recorder is active only while obs::Enabled() && Armed(); Armed()
// defaults to true ("always on"), and SetArmed exists so
// bench_overhead can isolate the profiler's own cost (armed vs
// disarmed, obs on in both arms) behind the <2% gate
// (`profiler_overhead_pct` in BENCH_overhead.json). Everything here is
// a no-op — one relaxed load, no clock reads — while inactive.
//
// Summary() serializes as the `profile` section of
// gaugur.obs.run_report/v5 with an exact JSON round-trip
// (LatencyProfileSummary::ToJson / FromJson).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/switch.h"

namespace gaugur::obs {

// ---------------------------------------------------------------------------
// Phase taxonomy

enum class Phase : std::uint8_t {
  kCandidateEnum = 0,
  kColocationHash,
  kFeatureBuild,
  kCacheLookup,
  kKernelEval,
  kPolicySelect,
  kEventEmit,
};
inline constexpr std::size_t kNumPhases = 7;

/// Stable wire name ("candidate_enum", ...). Used in JSON and metric
/// names (`sched.phase.<name>_us`).
std::string_view PhaseName(Phase phase);
/// Inverse of PhaseName; returns false on an unknown name.
bool PhaseFromName(std::string_view name, Phase* out);

// ---------------------------------------------------------------------------
// Summary (the run report `profile` section; exact JSON round-trip)

/// One phase's accumulated exclusive time.
struct PhaseStats {
  std::uint64_t count = 0;  // timer activations
  double total_us = 0.0;    // exclusive microseconds
  double max_us = 0.0;      // largest single activation

  JsonValue ToJson() const;
  static PhaseStats FromJson(const JsonValue& value);
  friend bool operator==(const PhaseStats&, const PhaseStats&) = default;
};

/// One shard's attribution slice (legacy unsharded runs are shard 0).
struct ShardProfile {
  std::uint64_t shard = 0;
  std::uint64_t decisions = 0;
  std::array<PhaseStats, kNumPhases> phases{};
  /// Tick-window barrier waits (sharded runs only).
  std::uint64_t barrier_waits = 0;
  double barrier_wait_us = 0.0;
  /// In-window work time accumulated across windows (RecordWindow).
  double window_busy_us = 0.0;

  JsonValue ToJson() const;
  static ShardProfile FromJson(const JsonValue& value);
  friend bool operator==(const ShardProfile&, const ShardProfile&) = default;
};

/// Per-tick-window shard imbalance: spread = busiest minus idlest
/// shard's in-window work time, accumulated over windows.
struct WindowImbalance {
  std::uint64_t windows = 0;
  double spread_total_us = 0.0;
  double spread_max_us = 0.0;

  JsonValue ToJson() const;
  static WindowImbalance FromJson(const JsonValue& value);
  friend bool operator==(const WindowImbalance&,
                         const WindowImbalance&) = default;
};

/// Striped prediction-cache lock acquisition accounting (fleet-wide).
struct CacheContention {
  std::uint64_t acquisitions = 0;  // stripe locks taken while armed
  std::uint64_t contended = 0;     // of those, blocked on a holder
  double wait_us = 0.0;            // total blocked time
  double wait_max_us = 0.0;        // worst single wait

  JsonValue ToJson() const;
  static CacheContention FromJson(const JsonValue& value);
  friend bool operator==(const CacheContention&,
                         const CacheContention&) = default;
};

/// One of the K slowest decisions, with its full phase breakdown.
/// `decision_id` joins 1:1 to the decision event in the EventLog.
struct TailExemplar {
  std::uint64_t decision_id = 0;
  double tick = 0.0;
  std::uint64_t shard = 0;
  double total_us = 0.0;  // sum of phase_us
  std::array<double, kNumPhases> phase_us{};

  JsonValue ToJson() const;
  static TailExemplar FromJson(const JsonValue& value);
  friend bool operator==(const TailExemplar&, const TailExemplar&) = default;
};

/// The `profile` section of gaugur.obs.run_report/v5. All tallies are
/// stored, not recomputed — a written summary parses back bit-exactly.
struct LatencyProfileSummary {
  std::uint64_t decisions = 0;
  /// Merged across shards, indexed by Phase.
  std::array<PhaseStats, kNumPhases> fleet{};
  /// Only shards that recorded anything, sorted by shard index.
  std::vector<ShardProfile> shards;
  WindowImbalance imbalance;
  CacheContention cache;
  /// Slowest decisions first.
  std::vector<TailExemplar> exemplars;

  bool Empty() const { return decisions == 0 && exemplars.empty(); }

  JsonValue ToJson() const;
  static LatencyProfileSummary FromJson(const JsonValue& value);
  friend bool operator==(const LatencyProfileSummary&,
                         const LatencyProfileSummary&) = default;
};

// ---------------------------------------------------------------------------
// Recorder

namespace detail {

inline std::uint64_t ProfilerNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deepest meaningful nesting today is 2 (policy_select > cache_lookup);
/// deeper timers silently stop nesting rather than corrupting state.
inline constexpr int kMaxPhaseNesting = 6;

/// Per-thread accumulation for the decision in flight. `active` is the
/// one-branch gate every PhaseTimer checks; it is only true between
/// BeginDecision and EndDecision on a thread where the recorder is on.
struct DecisionScratch {
  bool active = false;
  std::uint32_t shard_slot = 0;
  int depth = 0;
  /// child_ns[d]: nanoseconds consumed by timers nested directly under
  /// the timer currently open at depth d.
  std::array<std::uint64_t, kMaxPhaseNesting> child_ns{};
  std::array<double, kNumPhases> exclusive_us{};
  std::array<std::uint32_t, kNumPhases> activations{};
};

DecisionScratch& TlsScratch();

}  // namespace detail

/// RAII phase guard. Construction/destruction cost one branch while no
/// decision is being recorded on this thread; two steady_clock reads
/// otherwise. Safe (and free) on any thread, any time.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase) : phase_(phase) {
    auto& scratch = detail::TlsScratch();
    if (!scratch.active || scratch.depth >= detail::kMaxPhaseNesting) return;
    depth_ = scratch.depth++;
    scratch.child_ns[depth_] = 0;
    start_ns_ = detail::ProfilerNowNs();
  }
  ~PhaseTimer() {
    if (depth_ < 0) return;
    auto& scratch = detail::TlsScratch();
    const std::uint64_t elapsed = detail::ProfilerNowNs() - start_ns_;
    const std::uint64_t child = scratch.child_ns[depth_];
    const double exclusive_us =
        static_cast<double>(elapsed > child ? elapsed - child : 0) / 1000.0;
    const auto index = static_cast<std::size_t>(phase_);
    scratch.exclusive_us[index] += exclusive_us;
    scratch.activations[index] += 1;
    scratch.depth = depth_;
    if (depth_ > 0) scratch.child_ns[depth_ - 1] += elapsed;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase phase_;
  int depth_ = -1;
  std::uint64_t start_ns_ = 0;
};

class LatencyProfiler {
 public:
  /// Per-shard accumulation slots; shard indices fold modulo this (the
  /// fleet bench tops out well below it on any current machine).
  static constexpr std::size_t kMaxShardSlots = 64;
  /// Tail-exemplar ring capacity (slowest-K decisions).
  static constexpr std::size_t kTailExemplars = 16;

  /// Process-wide instance every call site uses.
  static LatencyProfiler& Global();

  /// Recording is on iff obs::Enabled() && Armed(). Armed defaults to
  /// true; bench_overhead flips it to measure the recorder's own cost.
  bool Armed() const { return armed_.load(std::memory_order_relaxed); }
  void SetArmed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }
  bool Active() const { return Enabled() && Armed(); }

  /// RAII arm/disarm for benches and tests.
  class ArmedScope {
   public:
    explicit ArmedScope(bool armed)
        : previous_(Global().Armed()) {
      Global().SetArmed(armed);
    }
    ~ArmedScope() { Global().SetArmed(previous_); }
    ArmedScope(const ArmedScope&) = delete;
    ArmedScope& operator=(const ArmedScope&) = delete;

   private:
    bool previous_;
  };

  // --- decision lifecycle (ShardSim's loop; one thread per shard) ---

  /// Opens a decision on this thread (no-op while inactive). `shard` is
  /// the deciding shard's index; legacy unsharded runs pass 0.
  void BeginDecision(std::size_t shard);
  /// Flushes the scratch into the shard slab, the `sched.phase.*_us`
  /// histograms, and (if slow enough) the tail-exemplar ring.
  /// `decision_id` is the EventLog decision id the breakdown joins to.
  void EndDecision(std::uint64_t decision_id, double tick);

  // --- contention accounting ---

  /// One shard's time inside the tick-window barrier.
  void RecordBarrierWait(std::size_t shard, double wait_us);
  /// One tick window's per-shard in-window work time (index == shard).
  /// Called from the barrier completion step while all shards are
  /// quiescent.
  void RecordWindow(std::span<const double> shard_busy_us);
  /// One striped-cache stripe-lock acquisition; `wait_us` > 0 only when
  /// the lock was contended (`contended` true).
  void RecordCacheAcquisition(double wait_us, bool contended);

  /// Drops all accumulated state (slabs, contention, exemplars). Does
  /// not touch the Registry histograms.
  void Reset();

  LatencyProfileSummary Summary() const;

 private:
  LatencyProfiler();

  struct alignas(64) ShardSlab {
    std::atomic<std::uint64_t> decisions{0};
    std::array<std::atomic<std::uint64_t>, kNumPhases> phase_count{};
    std::array<std::atomic<double>, kNumPhases> phase_total_us{};
    std::array<std::atomic<double>, kNumPhases> phase_max_us{};
    std::atomic<std::uint64_t> barrier_waits{0};
    std::atomic<double> barrier_wait_us{0.0};
    std::atomic<double> window_busy_us{0.0};
  };

  void ConsiderExemplar(const TailExemplar& exemplar);

  std::atomic<bool> armed_{true};
  std::array<ShardSlab, kMaxShardSlots> slabs_{};

  // Cache contention (lock-free; stripes already serialize the hot path).
  std::atomic<std::uint64_t> cache_acquisitions_{0};
  std::atomic<std::uint64_t> cache_contended_{0};
  std::atomic<double> cache_wait_us_{0.0};
  std::atomic<double> cache_wait_max_us_{0.0};

  // Window imbalance (written from the barrier completion step only).
  mutable std::mutex window_mutex_;
  WindowImbalance imbalance_;

  // Tail exemplars: the relaxed floor makes the common case (decision
  // faster than the K-th slowest) lock-free.
  std::atomic<double> exemplar_floor_{-1.0};
  mutable std::mutex exemplar_mutex_;
  std::vector<TailExemplar> exemplars_;
};

}  // namespace gaugur::obs
