// Structured decision-provenance event log.
//
// Every scheduler-visible state change in a fleet run — arrivals,
// placement decisions (with the candidate set, batch predictions, and
// cache hit/miss flags), departures, power transitions, retrains, and
// QoS violations — is appended as one Event. Events carry a process-wide
// monotonic sequence number (total order across threads) and the
// simulation-tick timestamp, so an offline tool can replay the exact
// causal chain: violation -> decision id -> candidate scores.
//
// Storage is a fixed number of shards, each a mutex-guarded bounded ring
// (drop-oldest on overflow, drops counted), selected by the same
// thread-shard hint the metrics registry uses — appends from different
// threads rarely contend and the whole structure is TSan-clean.
// Append() is a no-op (one relaxed load + branch) when the
// GAUGUR_OBS_ENABLED kill switch is off.
//
// Flush format is JSON Lines, one event per line, each line carrying
// schema "gaugur.obs.event/v1":
//
//   {"schema": "gaugur.obs.event/v1", "seq": <uint>, "tick": <double>,
//    "kind": "<decision|arrival|departure|power_on|power_off|
//             qos_violation|retrain|alert>",
//    "decision_id": <uint>,          // 0 when not tied to a decision
//    "fields": {...}}                // kind-specific payload
//
// Doubles round-trip exactly through obs::JsonValue, so
// ParseJsonl(ToJsonl()) reproduces the snapshot bit-for-bit
// (tests/obs/event_log_test.cpp pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace gaugur::obs {

inline constexpr const char* kEventSchema = "gaugur.obs.event/v1";

/// What Append() does when a shard ring is full while a streaming sink
/// is attached (without a sink, the ring always drops its oldest entry —
/// that is the bounded-memory exit-dump mode).
enum class OverflowPolicy : std::uint8_t {
  /// Evict the oldest event in the shard; the loss is counted in
  /// StreamDropped() and the `obs.sink.dropped` counter.
  kDropOldest = 0,
  /// Block the appending thread until the sink drains the shard (or
  /// streaming detaches). Lossless, at the price of backpressure on the
  /// simulation thread when the writer falls behind.
  kBlock,
};

enum class EventKind : std::uint8_t {
  kDecision = 0,
  kArrival,
  kDeparture,
  kPowerOn,
  kPowerOff,
  kQosViolation,
  kRetrain,
  kAlert,
};

inline constexpr std::size_t kNumEventKinds = 8;

/// Stable wire name for a kind ("decision", "qos_violation", ...).
const char* EventKindName(EventKind kind);
/// Inverse of EventKindName; returns false on an unknown name.
bool EventKindFromName(std::string_view name, EventKind* out);

struct Event {
  std::uint64_t seq = 0;
  double tick = 0.0;
  EventKind kind = EventKind::kDecision;
  /// Links the event to the scheduler decision that caused it; 0 means
  /// "not tied to a decision" (e.g. an arrival or a retrain).
  std::uint64_t decision_id = 0;
  JsonObject fields;

  bool operator==(const Event&) const = default;

  JsonValue ToJson() const;
  static Event FromJson(const JsonValue& value);
};

struct EventLogConfig {
  /// Events kept per shard; the oldest event in a shard is dropped when
  /// its ring is full. Total capacity = shard_capacity * num_shards.
  std::size_t shard_capacity = 4096;
  std::size_t num_shards = 8;
};

class EventLog {
 public:
  explicit EventLog(EventLogConfig config = {});

  /// Process-wide instance the scheduler and predictor append to.
  static EventLog& Global();

  /// Replaces the configuration and drops all stored events. Not safe
  /// concurrently with Append(); call during setup or between runs.
  void Configure(EventLogConfig config);

  /// Drops all stored events and resets the appended/dropped tallies
  /// (sequence and decision-id counters keep advancing — they are
  /// process-monotonic so snapshots from successive runs never collide).
  void Clear();

  /// Allocates the next scheduler decision id (monotonic from 1; 0 is
  /// reserved for "no decision").
  std::uint64_t NextDecisionId() {
    return next_decision_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one event, stamping its sequence number. No-op (and `fields`
  /// is discarded) when the observability switch is off. The sequence
  /// number is allocated under the shard lock, so an event is never
  /// in flight with a published seq a concurrent DrainSince() could
  /// miss — the drain cut is gap-free.
  void Append(EventKind kind, double tick, std::uint64_t decision_id,
              JsonObject fields);

  /// Attaches (or detaches) a streaming sink. While attached, ring
  /// overflow follows `policy` instead of the default drop-oldest, and
  /// losses are tallied in StreamDropped(). Detaching wakes any
  /// appenders blocked by OverflowPolicy::kBlock.
  void SetStreaming(bool streaming, OverflowPolicy policy);

  /// Removes and returns every stored event with seq > `cursor`, sorted
  /// by seq. Holds all shard locks for the cut, so the result has no
  /// gaps: any event not returned either has seq <= cursor or will get
  /// a later seq. Drained entries are released from the rings (this is
  /// what bounds residency in streaming mode) and blocked appenders are
  /// woken.
  std::vector<Event> DrainSince(std::uint64_t cursor);

  /// Events currently resident in the rings (streaming keeps this
  /// bounded by drain cadence, not run length).
  std::size_t Residency() const;

  /// Events lost to ring overflow while a streaming sink was attached.
  std::uint64_t StreamDropped() const {
    return stream_dropped_.load(std::memory_order_relaxed);
  }

  /// Merged view of all shards, sorted by sequence number.
  std::vector<Event> Snapshot() const;

  std::uint64_t TotalAppended() const {
    return appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t TotalDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  bool Empty() const { return TotalAppended() == 0; }

  /// One JSON object per line, snapshot order (sorted by seq).
  std::string ToJsonl() const;
  /// Writes ToJsonl() to `path`; returns false on I/O failure, after
  /// logging the errno text and bumping `obs.sink.write_errors`.
  bool WriteJsonl(const std::string& path) const;

  /// Parses a JSONL dump back into events; throws std::logic_error
  /// (GAUGUR_CHECK) on a malformed line or a schema mismatch.
  static std::vector<Event> ParseJsonl(std::string_view text);
  /// Reads and parses `path`; returns false if the file cannot be read.
  static bool ReadJsonl(const std::string& path, std::vector<Event>* out);

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Wakes appenders blocked by OverflowPolicy::kBlock when a drain
    /// (or detach/clear) frees ring space.
    std::condition_variable space_freed;
    std::deque<Event> ring;
  };

  EventLogConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_decision_id_{0};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> dropped_{0};
  // Streaming attachment. Written under every shard lock (SetStreaming),
  // read under one shard lock (Append's wait predicate) — atomics so the
  // relaxed reads outside any lock (StreamDropped) stay race-free.
  std::atomic<bool> streaming_{false};
  std::atomic<OverflowPolicy> policy_{OverflowPolicy::kDropOldest};
  std::atomic<std::uint64_t> stream_dropped_{0};
};

}  // namespace gaugur::obs
