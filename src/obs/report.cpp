#include "obs/report.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace gaugur::obs {

namespace {

JsonValue HistogramToJson(const HistogramSnapshot& hist) {
  JsonObject object;
  object["count"] = static_cast<unsigned long long>(hist.count);
  object["sum"] = hist.sum;
  object["mean"] = hist.Mean();
  object["p50"] = hist.Percentile(0.50);
  object["p95"] = hist.Percentile(0.95);
  object["p99"] = hist.Percentile(0.99);
  object["p999"] = hist.Percentile(0.999);
  JsonArray buckets;
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    JsonObject bucket;
    bucket["le"] = i < hist.bounds.size() ? JsonValue(hist.bounds[i])
                                          : JsonValue(nullptr);
    bucket["count"] = static_cast<unsigned long long>(hist.counts[i]);
    buckets.push_back(JsonValue(std::move(bucket)));
  }
  object["buckets"] = JsonValue(std::move(buckets));
  return JsonValue(std::move(object));
}

HistogramSnapshot HistogramFromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "histogram entry must be an object");
  HistogramSnapshot hist;
  const JsonValue* sum = value.Find("sum");
  GAUGUR_CHECK_MSG(sum != nullptr && sum->IsNumber(),
                   "histogram missing numeric 'sum'");
  hist.sum = sum->AsNumber();
  const JsonValue* buckets = value.Find("buckets");
  GAUGUR_CHECK_MSG(buckets != nullptr && buckets->IsArray(),
                   "histogram missing 'buckets' array");
  for (const JsonValue& entry : buckets->AsArray()) {
    const JsonValue* le = entry.Find("le");
    const JsonValue* count = entry.Find("count");
    GAUGUR_CHECK_MSG(le != nullptr && count != nullptr && count->IsNumber(),
                     "bucket must have 'le' and numeric 'count'");
    if (le->IsNumber()) {
      hist.bounds.push_back(le->AsNumber());
    } else {
      GAUGUR_CHECK_MSG(le->IsNull(), "'le' must be a number or null");
    }
    hist.counts.push_back(static_cast<std::uint64_t>(count->AsNumber()));
  }
  GAUGUR_CHECK_MSG(hist.counts.size() == hist.bounds.size() + 1,
                   "exactly one overflow bucket (le: null) required, last");
  for (std::uint64_t c : hist.counts) hist.count += c;
  const JsonValue* count = value.Find("count");
  if (count != nullptr && count->IsNumber()) {
    GAUGUR_CHECK_MSG(
        static_cast<std::uint64_t>(count->AsNumber()) == hist.count,
        "'count' disagrees with the bucket sum");
  }
  return hist;
}

}  // namespace

JsonValue RunReport::ToJson() const {
  JsonObject doc;
  doc["schema"] = kRunReportSchema;
  doc["name"] = name_;
  JsonObject meta;
  for (const auto& [key, value] : meta_) meta[key] = value;
  doc["meta"] = JsonValue(std::move(meta));
  JsonObject counters;
  for (const auto& [name, value] : snapshot_.counters) {
    counters[name] = static_cast<unsigned long long>(value);
  }
  doc["counters"] = JsonValue(std::move(counters));
  JsonObject gauges;
  for (const auto& [name, value] : snapshot_.gauges) {
    gauges[name] = static_cast<long long>(value);
  }
  doc["gauges"] = JsonValue(std::move(gauges));
  JsonObject histograms;
  for (const auto& [name, hist] : snapshot_.histograms) {
    histograms[name] = HistogramToJson(hist);
  }
  doc["histograms"] = JsonValue(std::move(histograms));
  if (model_monitor_.has_value()) {
    doc["model_monitor"] = model_monitor_->ToJson();
  }
  if (forensics_.has_value()) {
    doc["forensics"] = forensics_->ToJson();
  }
  if (health_.has_value()) {
    doc["health"] = health_->ToJson();
  }
  if (profile_.has_value()) {
    doc["profile"] = profile_->ToJson();
  }
  return JsonValue(std::move(doc));
}

std::string RunReport::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

std::string RunReport::ToText() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

void RunReport::Print(std::ostream& os) const {
  common::Table scalars({"metric", "kind", "value"});
  for (const auto& [name, value] : snapshot_.counters) {
    scalars.AddRow({name, std::string("counter"),
                    static_cast<long long>(value)});
  }
  for (const auto& [name, value] : snapshot_.gauges) {
    scalars.AddRow({name, std::string("gauge"),
                    static_cast<long long>(value)});
  }
  if (scalars.NumRows() > 0) {
    scalars.Print(os, "run report: " + name_);
  }
  common::Table hists(
      {"histogram", "count", "mean", "p50", "p95", "p99", "p99.9"},
      /*double_precision=*/1);
  for (const auto& [name, hist] : snapshot_.histograms) {
    hists.AddRow({name, static_cast<long long>(hist.count), hist.Mean(),
                  hist.Percentile(0.50), hist.Percentile(0.95),
                  hist.Percentile(0.99), hist.Percentile(0.999)});
  }
  if (hists.NumRows() > 0) {
    hists.Print(os, "latency histograms (µs)");
  }
  if (model_monitor_.has_value()) {
    const ModelMonitorSummary& m = *model_monitor_;
    common::Table monitor({"model monitor", "value"}, /*double_precision=*/3);
    monitor.AddRow({std::string("cm predictions"),
                    static_cast<long long>(m.cm_predictions)});
    monitor.AddRow({std::string("rm predictions"),
                    static_cast<long long>(m.rm_predictions)});
    monitor.AddRow({std::string("outcomes joined"),
                    static_cast<long long>(m.outcomes_joined)});
    monitor.AddRow({std::string("cm precision"), m.cm_precision});
    monitor.AddRow({std::string("cm recall"), m.cm_recall});
    monitor.AddRow({std::string("cm fpr"), m.cm_fpr});
    monitor.AddRow({std::string("rm MAE (fps)"), m.rm_mae_fps});
    monitor.AddRow({std::string("rm p95 |err| (fps)"),
                    m.rm_p95_abs_error_fps});
    monitor.AddRow({std::string("cm max PSI"), m.cm_drift.max_psi});
    monitor.AddRow({std::string("rm max PSI"), m.rm_drift.max_psi});
    monitor.AddRow({std::string("attr: cm false positive"),
                    static_cast<long long>(m.attr_cm_false_positive)});
    monitor.AddRow({std::string("attr: rm overestimate"),
                    static_cast<long long>(m.attr_rm_overestimate)});
    monitor.AddRow({std::string("attr: capacity pressure"),
                    static_cast<long long>(m.attr_capacity_pressure)});
    monitor.AddRow({std::string("qos violations observed"),
                    static_cast<long long>(m.qos_violations_observed)});
    monitor.Print(os, "model monitor (rolling window)");
  }
  if (forensics_.has_value()) {
    const ForensicsSummary& f = *forensics_;
    common::Table forensics({"forensics", "value"});
    forensics.AddRow({std::string("events"),
                      static_cast<long long>(f.events)});
    forensics.AddRow({std::string("events dropped"),
                      static_cast<long long>(f.events_dropped)});
    forensics.AddRow({std::string("decisions"),
                      static_cast<long long>(f.decisions)});
    forensics.AddRow({std::string("qos violations"),
                      static_cast<long long>(f.violations)});
    forensics.AddRow({std::string("violations linked to decision"),
                      static_cast<long long>(f.violations_linked)});
    forensics.AddRow({std::string("timeseries samples kept"),
                      static_cast<long long>(f.ts_samples_kept)});
    forensics.Print(os, "decision provenance");
  }
  if (health_.has_value()) {
    const HealthSummary& h = *health_;
    common::Table health({"health", "value"});
    health.AddRow({std::string("rules"),
                   static_cast<long long>(h.rules.size())});
    health.AddRow({std::string("evaluations"),
                   static_cast<long long>(h.evaluations)});
    health.AddRow({std::string("transitions"),
                   static_cast<long long>(h.transitions)});
    health.AddRow({std::string("alerts fired"),
                   static_cast<long long>(h.alerts_fired)});
    health.AddRow({std::string("alerts resolved"),
                   static_cast<long long>(h.alerts_resolved)});
    health.AddRow({std::string("flaps suppressed"),
                   static_cast<long long>(h.flaps_suppressed)});
    health.AddRow({std::string("firing now"),
                   static_cast<long long>(h.firing)});
    health.Print(os, "fleet health");
  }
  if (profile_.has_value()) {
    const LatencyProfileSummary& p = *profile_;
    common::Table phases({"phase", "count", "total ms", "mean µs", "max µs"},
                         /*double_precision=*/2);
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      const PhaseStats& stats = p.fleet[i];
      if (stats.count == 0) continue;
      phases.AddRow({std::string(PhaseName(static_cast<Phase>(i))),
                     static_cast<long long>(stats.count),
                     stats.total_us / 1000.0,
                     stats.total_us / static_cast<double>(stats.count),
                     stats.max_us});
    }
    if (phases.NumRows() > 0) {
      phases.Print(os, "decision latency attribution (" +
                           std::to_string(p.decisions) + " decisions)");
    }
    common::Table contention({"contention", "value"}, /*double_precision=*/2);
    contention.AddRow({std::string("tick windows"),
                       static_cast<long long>(p.imbalance.windows)});
    contention.AddRow({std::string("shard spread mean (µs)"),
                       p.imbalance.windows > 0
                           ? p.imbalance.spread_total_us /
                                 static_cast<double>(p.imbalance.windows)
                           : 0.0});
    contention.AddRow({std::string("shard spread max (µs)"),
                       p.imbalance.spread_max_us});
    contention.AddRow({std::string("cache lock acquisitions"),
                       static_cast<long long>(p.cache.acquisitions)});
    contention.AddRow({std::string("cache lock contended"),
                       static_cast<long long>(p.cache.contended)});
    contention.AddRow({std::string("cache lock wait (µs)"), p.cache.wait_us});
    contention.Print(os, "shard / cache contention");
  }
}

bool RunReport::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJsonString() << '\n';
  return static_cast<bool>(out);
}

RunReport RunReport::FromJson(const JsonValue& doc) {
  GAUGUR_CHECK_MSG(doc.IsObject(), "run report must be a JSON object");
  const JsonValue* schema = doc.Find("schema");
  GAUGUR_CHECK_MSG(schema != nullptr && schema->IsString() &&
                       (schema->AsString() == kRunReportSchema ||
                        schema->AsString() == kRunReportSchemaV4 ||
                        schema->AsString() == kRunReportSchemaV3 ||
                        schema->AsString() == kRunReportSchemaV2 ||
                        schema->AsString() == kRunReportSchemaV1),
                   "unknown run-report schema");
  const JsonValue* name = doc.Find("name");
  GAUGUR_CHECK_MSG(name != nullptr && name->IsString(),
                   "run report missing 'name'");

  Snapshot snapshot;
  if (const JsonValue* counters = doc.Find("counters")) {
    GAUGUR_CHECK_MSG(counters->IsObject(), "'counters' must be an object");
    for (const auto& [key, value] : counters->AsObject()) {
      GAUGUR_CHECK_MSG(value.IsNumber(), "counter values must be numbers");
      snapshot.counters[key] = static_cast<std::uint64_t>(value.AsNumber());
    }
  }
  if (const JsonValue* gauges = doc.Find("gauges")) {
    GAUGUR_CHECK_MSG(gauges->IsObject(), "'gauges' must be an object");
    for (const auto& [key, value] : gauges->AsObject()) {
      GAUGUR_CHECK_MSG(value.IsNumber(), "gauge values must be numbers");
      snapshot.gauges[key] = static_cast<std::int64_t>(value.AsNumber());
    }
  }
  if (const JsonValue* histograms = doc.Find("histograms")) {
    GAUGUR_CHECK_MSG(histograms->IsObject(),
                     "'histograms' must be an object");
    for (const auto& [key, value] : histograms->AsObject()) {
      snapshot.histograms[key] = HistogramFromJson(value);
    }
  }

  RunReport report(name->AsString(), std::move(snapshot));
  if (const JsonValue* meta = doc.Find("meta")) {
    GAUGUR_CHECK_MSG(meta->IsObject(), "'meta' must be an object");
    for (const auto& [key, value] : meta->AsObject()) {
      GAUGUR_CHECK_MSG(value.IsString(), "meta values must be strings");
      report.SetMeta(key, value.AsString());
    }
  }
  if (const JsonValue* monitor = doc.Find("model_monitor")) {
    report.SetModelMonitor(ModelMonitorSummary::FromJson(*monitor));
  }
  if (const JsonValue* forensics = doc.Find("forensics")) {
    report.SetForensics(ForensicsSummary::FromJson(*forensics));
  }
  if (const JsonValue* health = doc.Find("health")) {
    report.SetHealth(HealthSummary::FromJson(*health));
  }
  if (const JsonValue* profile = doc.Find("profile")) {
    report.SetProfile(LatencyProfileSummary::FromJson(*profile));
  }
  return report;
}

}  // namespace gaugur::obs
