// Global observability kill switch.
//
// Two layers, mirroring how production telemetry is deployed:
//  * Compile time: build with -DGAUGUR_OBS_ENABLED=0 and every Enabled()
//    check folds to `false`, letting the optimizer delete instrumentation
//    entirely (the "we shipped a latency-critical binary" escape hatch).
//  * Run time: a single process-wide relaxed atomic, initialized once from
//    the GAUGUR_OBS_ENABLED environment variable (unset or anything but
//    "0"/"false" means on) and togglable via SetEnabled(). The disabled
//    fast path is one relaxed load + branch, cheap enough to leave in
//    every hot loop; bench_overhead measures exactly this.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gaugur::obs {

#if defined(GAUGUR_OBS_ENABLED) && (GAUGUR_OBS_ENABLED == 0)

constexpr bool CompiledIn() { return false; }
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#else

constexpr bool CompiledIn() { return true; }

namespace detail {

inline bool EnvDefault() {
  const char* env = std::getenv("GAUGUR_OBS_ENABLED");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "FALSE") == 0 || std::strcmp(env, "off") == 0);
}

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnvDefault()};
  return flag;
}

}  // namespace detail

inline bool Enabled() {
  return detail::EnabledFlag().load(std::memory_order_relaxed);
}

inline void SetEnabled(bool on) {
  detail::EnabledFlag().store(on, std::memory_order_relaxed);
}

#endif

/// RAII scope that forces observability on/off and restores the previous
/// state on exit — used by tests and by benches that compare both paths.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(Enabled()) { SetEnabled(on); }
  ~EnabledScope() { SetEnabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

}  // namespace gaugur::obs
