#include "obs/health.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/switch.h"
#include "obs/timeseries.h"

namespace gaugur::obs {

namespace {

constexpr const char* kStateNames[] = {"inactive", "pending", "firing",
                                       "resolved"};
constexpr const char* kSignalNames[] = {
    "counter",       "gauge",       "histogram_quantile", "counter_ratio",
    "monitor_field", "monitor_psi", "server_min_fps"};
constexpr const char* kConditionNames[] = {"threshold", "rate_of_change",
                                           "burn_rate"};
constexpr const char* kComparisonNames[] = {"above", "below"};

template <typename Enum, std::size_t N>
bool EnumFromName(const char* const (&names)[N], std::string_view name,
                  Enum* out) {
  for (std::size_t i = 0; i < N; ++i) {
    if (name == names[i]) {
      *out = static_cast<Enum>(i);
      return true;
    }
  }
  return false;
}

double NumberField(const JsonValue& value, const char* key) {
  const JsonValue* field = value.Find(key);
  GAUGUR_CHECK_MSG(field != nullptr && field->IsNumber(),
                   "health JSON missing numeric field");
  return field->AsNumber();
}

std::uint64_t UintField(const JsonValue& value, const char* key) {
  return static_cast<std::uint64_t>(NumberField(value, key));
}

std::string StringField(const JsonValue& value, const char* key) {
  const JsonValue* field = value.Find(key);
  GAUGUR_CHECK_MSG(field != nullptr && field->IsString(),
                   "health JSON missing string field");
  return field->AsString();
}

}  // namespace

const char* AlertStateName(AlertState state) {
  const auto index = static_cast<std::size_t>(state);
  GAUGUR_CHECK_MSG(index < 4, "unknown AlertState");
  return kStateNames[index];
}

bool AlertStateFromName(std::string_view name, AlertState* out) {
  return EnumFromName(kStateNames, name, out);
}

const char* SignalKindName(SignalKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  GAUGUR_CHECK_MSG(index < 7, "unknown SignalKind");
  return kSignalNames[index];
}

bool SignalKindFromName(std::string_view name, SignalKind* out) {
  return EnumFromName(kSignalNames, name, out);
}

const char* ConditionKindName(ConditionKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  GAUGUR_CHECK_MSG(index < 3, "unknown ConditionKind");
  return kConditionNames[index];
}

bool ConditionKindFromName(std::string_view name, ConditionKind* out) {
  return EnumFromName(kConditionNames, name, out);
}

const char* ComparisonName(Comparison cmp) {
  const auto index = static_cast<std::size_t>(cmp);
  GAUGUR_CHECK_MSG(index < 2, "unknown Comparison");
  return kComparisonNames[index];
}

bool ComparisonFromName(std::string_view name, Comparison* out) {
  return EnumFromName(kComparisonNames, name, out);
}

// ---------------------------------------------------------------------------
// JSON round-trips

JsonValue SignalSpec::ToJson() const {
  JsonObject object;
  object["kind"] = SignalKindName(kind);
  object["name"] = name;
  object["denominator"] = denominator;
  object["quantile"] = quantile;
  return JsonValue(std::move(object));
}

SignalSpec SignalSpec::FromJson(const JsonValue& value) {
  SignalSpec spec;
  GAUGUR_CHECK_MSG(
      SignalKindFromName(StringField(value, "kind"), &spec.kind),
      "unknown signal kind");
  spec.name = StringField(value, "name");
  spec.denominator = StringField(value, "denominator");
  spec.quantile = NumberField(value, "quantile");
  return spec;
}

JsonValue AlertRule::ToJson() const {
  JsonObject object;
  object["name"] = name;
  object["severity"] = severity;
  object["signal"] = signal.ToJson();
  object["condition"] = ConditionKindName(condition);
  object["comparison"] = ComparisonName(comparison);
  object["threshold"] = threshold;
  object["window_ticks"] = window_ticks;
  object["fast_window_ticks"] = fast_window_ticks;
  object["slow_window_ticks"] = slow_window_ticks;
  object["slo"] = slo;
  object["burn_threshold"] = burn_threshold;
  object["for_ticks"] = static_cast<long long>(for_ticks);
  object["resolve_ticks"] = static_cast<long long>(resolve_ticks);
  object["max_flaps"] = static_cast<long long>(max_flaps);
  object["flap_window_ticks"] = flap_window_ticks;
  return JsonValue(std::move(object));
}

AlertRule AlertRule::FromJson(const JsonValue& value) {
  AlertRule rule;
  rule.name = StringField(value, "name");
  rule.severity = StringField(value, "severity");
  const JsonValue* signal = value.Find("signal");
  GAUGUR_CHECK_MSG(signal != nullptr, "rule missing 'signal'");
  rule.signal = SignalSpec::FromJson(*signal);
  GAUGUR_CHECK_MSG(ConditionKindFromName(StringField(value, "condition"),
                                         &rule.condition),
                   "unknown condition kind");
  GAUGUR_CHECK_MSG(ComparisonFromName(StringField(value, "comparison"),
                                      &rule.comparison),
                   "unknown comparison");
  rule.threshold = NumberField(value, "threshold");
  rule.window_ticks = NumberField(value, "window_ticks");
  rule.fast_window_ticks = NumberField(value, "fast_window_ticks");
  rule.slow_window_ticks = NumberField(value, "slow_window_ticks");
  rule.slo = NumberField(value, "slo");
  rule.burn_threshold = NumberField(value, "burn_threshold");
  rule.for_ticks = static_cast<int>(NumberField(value, "for_ticks"));
  rule.resolve_ticks = static_cast<int>(NumberField(value, "resolve_ticks"));
  rule.max_flaps = static_cast<int>(NumberField(value, "max_flaps"));
  rule.flap_window_ticks = NumberField(value, "flap_window_ticks");
  return rule;
}

JsonValue AlertInstanceStatus::ToJson() const {
  JsonObject object;
  object["label"] = label;
  object["state"] = AlertStateName(state);
  object["last_value"] = last_value;
  object["last_eval_tick"] = last_eval_tick;
  object["last_change_tick"] = last_change_tick;
  object["fired"] = static_cast<unsigned long long>(fired);
  object["resolved"] = static_cast<unsigned long long>(resolved);
  object["suppressed"] = static_cast<unsigned long long>(suppressed);
  object["flap_suppressed"] = flap_suppressed;
  object["value_mean"] = value_mean;
  object["value_max"] = value_max;
  return JsonValue(std::move(object));
}

AlertInstanceStatus AlertInstanceStatus::FromJson(const JsonValue& value) {
  AlertInstanceStatus status;
  status.label = StringField(value, "label");
  GAUGUR_CHECK_MSG(
      AlertStateFromName(StringField(value, "state"), &status.state),
      "unknown alert state");
  status.last_value = NumberField(value, "last_value");
  status.last_eval_tick = NumberField(value, "last_eval_tick");
  status.last_change_tick = NumberField(value, "last_change_tick");
  status.fired = UintField(value, "fired");
  status.resolved = UintField(value, "resolved");
  status.suppressed = UintField(value, "suppressed");
  const JsonValue* flap = value.Find("flap_suppressed");
  GAUGUR_CHECK_MSG(flap != nullptr && flap->IsBool(),
                   "instance missing 'flap_suppressed'");
  status.flap_suppressed = flap->AsBool();
  status.value_mean = NumberField(value, "value_mean");
  status.value_max = NumberField(value, "value_max");
  return status;
}

JsonValue AlertRuleStatus::ToJson() const {
  JsonObject object;
  object["rule"] = rule.ToJson();
  object["evaluations"] = static_cast<unsigned long long>(evaluations);
  JsonArray array;
  array.reserve(instances.size());
  for (const AlertInstanceStatus& instance : instances) {
    array.push_back(instance.ToJson());
  }
  object["instances"] = JsonValue(std::move(array));
  return JsonValue(std::move(object));
}

AlertRuleStatus AlertRuleStatus::FromJson(const JsonValue& value) {
  AlertRuleStatus status;
  const JsonValue* rule = value.Find("rule");
  GAUGUR_CHECK_MSG(rule != nullptr, "rule status missing 'rule'");
  status.rule = AlertRule::FromJson(*rule);
  status.evaluations = UintField(value, "evaluations");
  const JsonValue* instances = value.Find("instances");
  GAUGUR_CHECK_MSG(instances != nullptr && instances->IsArray(),
                   "rule status missing 'instances'");
  for (const JsonValue& instance : instances->AsArray()) {
    status.instances.push_back(AlertInstanceStatus::FromJson(instance));
  }
  return status;
}

JsonValue HealthSummary::ToJson() const {
  JsonObject object;
  object["evaluations"] = static_cast<unsigned long long>(evaluations);
  object["transitions"] = static_cast<unsigned long long>(transitions);
  object["alerts_fired"] = static_cast<unsigned long long>(alerts_fired);
  object["alerts_resolved"] = static_cast<unsigned long long>(alerts_resolved);
  object["flaps_suppressed"] =
      static_cast<unsigned long long>(flaps_suppressed);
  object["firing"] = static_cast<unsigned long long>(firing);
  JsonArray array;
  array.reserve(rules.size());
  for (const AlertRuleStatus& rule : rules) array.push_back(rule.ToJson());
  object["rules"] = JsonValue(std::move(array));
  return JsonValue(std::move(object));
}

HealthSummary HealthSummary::FromJson(const JsonValue& value) {
  HealthSummary summary;
  summary.evaluations = UintField(value, "evaluations");
  summary.transitions = UintField(value, "transitions");
  summary.alerts_fired = UintField(value, "alerts_fired");
  summary.alerts_resolved = UintField(value, "alerts_resolved");
  summary.flaps_suppressed = UintField(value, "flaps_suppressed");
  summary.firing = UintField(value, "firing");
  const JsonValue* rules = value.Find("rules");
  GAUGUR_CHECK_MSG(rules != nullptr && rules->IsArray(),
                   "health summary missing 'rules'");
  for (const JsonValue& rule : rules->AsArray()) {
    summary.rules.push_back(AlertRuleStatus::FromJson(rule));
  }
  return summary;
}

bool MonitorFieldValue(const ModelMonitorSummary& summary,
                       std::string_view field, double* out) {
  if (field == "cm_precision") *out = summary.cm_precision;
  else if (field == "cm_recall") *out = summary.cm_recall;
  else if (field == "cm_fpr") *out = summary.cm_fpr;
  else if (field == "cm_accuracy") *out = summary.cm_accuracy;
  else if (field == "rm_mae_fps") *out = summary.rm_mae_fps;
  else if (field == "rm_p95_abs_error_fps") *out = summary.rm_p95_abs_error_fps;
  else if (field == "rm_bias_fps") *out = summary.rm_bias_fps;
  else if (field == "cm_max_psi") *out = summary.cm_drift.max_psi;
  else if (field == "rm_max_psi") *out = summary.rm_drift.max_psi;
  else if (field == "outcomes_joined")
    *out = static_cast<double>(summary.outcomes_joined);
  else if (field == "qos_violations_observed")
    *out = static_cast<double>(summary.qos_violations_observed);
  else
    return false;
  return true;
}

// ---------------------------------------------------------------------------
// Engine internals

/// One windowed observation of a signal: the tick plus the numerator /
/// denominator levels (denominator fixed at 1 for plain signals).
struct HealthEngine::Sample {
  double tick = 0.0;
  double num = 0.0;
  double den = 1.0;
};

/// One labeled lifecycle state machine plus its sliding sample ring.
struct HealthEngine::Instance {
  AlertState state = AlertState::kInactive;
  std::deque<Sample> ring;
  int true_streak = 0;
  int false_streak = 0;
  double last_value = 0.0;
  double last_eval_tick = 0.0;
  double last_change_tick = -1.0;
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  std::uint64_t suppressed = 0;
  /// Recent emitted-or-suppressed firing ticks (flap detection window).
  std::deque<double> fire_ticks;
  /// While set, every transition of this instance is muted. Engages on a
  /// firing entry that exceeds max_flaps, clears once the instance is
  /// back to inactive and the flap window has drained — so an emitted
  /// firing is never followed by a muted resolve, and vice versa.
  bool flap_suppressed = false;
  /// The last firing entry was emitted (drives the obs.health.firing
  /// gauge balance).
  bool fire_emitted = false;
  /// Scratch: label appeared in this evaluation's sample set.
  bool seen = false;
  common::RunningStats values;
};

struct HealthEngine::RuleState {
  AlertRule rule;
  std::uint64_t evaluations = 0;
  std::map<std::string, Instance> instances;
};

namespace {

/// Longest lookback a rule's condition needs from its sample ring.
double RingHorizon(const AlertRule& rule) {
  switch (rule.condition) {
    case ConditionKind::kBurnRate:
      return std::max(rule.fast_window_ticks, rule.slow_window_ticks);
    case ConditionKind::kRateOfChange:
    case ConditionKind::kThreshold:
      return rule.window_ticks;
  }
  return rule.window_ticks;
}

/// Newest sample with tick <= cutoff; falls back to the oldest sample.
/// (Templated so the file-local helpers never have to name the private
/// HealthEngine::Sample type.)
template <typename Ring>
const auto& SampleAtOrBefore(const Ring& ring, double cutoff) {
  const auto* best = &ring.front();
  for (const auto& sample : ring) {
    if (sample.tick > cutoff) break;
    best = &sample;
  }
  return *best;
}

/// Bad fraction delta(num)/delta(den) between `from` and the ring's
/// newest sample; false when the denominator did not advance.
template <typename Ring>
bool WindowFraction(const Ring& ring, double cutoff, double* out) {
  const auto& from = SampleAtOrBefore(ring, cutoff);
  const auto& now = ring.back();
  const double den = now.den - from.den;
  if (den <= 0.0) return false;
  *out = (now.num - from.num) / den;
  return true;
}

bool Compare(Comparison cmp, double value, double threshold) {
  return cmp == Comparison::kAbove ? value > threshold : value < threshold;
}

}  // namespace

HealthEngine::HealthEngine(HealthEngineConfig config) { Configure(config); }

HealthEngine::~HealthEngine() = default;

HealthEngine& HealthEngine::Global() {
  static HealthEngine* engine = new HealthEngine();
  return *engine;
}

void HealthEngine::Configure(HealthEngineConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  rules_.clear();
  subscribers_.clear();
  evaluated_once_ = false;
  last_eval_tick_ = 0.0;
  monitor_refreshed_once_ = false;
  monitor_last_refresh_tick_ = 0.0;
  evaluations_ = transitions_ = alerts_fired_ = alerts_resolved_ =
      flaps_suppressed_ = 0;
  firing_ = 0;
}

void HealthEngine::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  subscribers_.clear();
  evaluated_once_ = false;
  last_eval_tick_ = 0.0;
  monitor_refreshed_once_ = false;
  monitor_last_refresh_tick_ = 0.0;
  evaluations_ = transitions_ = alerts_fired_ = alerts_resolved_ =
      flaps_suppressed_ = 0;
  firing_ = 0;
}

Registry& HealthEngine::Reg() const {
  return config_.registry != nullptr ? *config_.registry : Registry::Global();
}

EventLog& HealthEngine::Log() const {
  return config_.event_log != nullptr ? *config_.event_log
                                      : EventLog::Global();
}

void HealthEngine::AddRule(AlertRule rule) {
  GAUGUR_CHECK_MSG(!rule.name.empty(), "alert rule needs a name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto state = std::make_unique<RuleState>();
  state->rule = std::move(rule);
  rules_.push_back(std::move(state));
}

void HealthEngine::InstallDefaultRules(double qos_fps) {
  {
    // Fleet-level SLO: fraction of placements that realize a QoS
    // violation, multi-window so a single bad tick does not page.
    AlertRule rule;
    rule.name = "fleet_qos_burn";
    rule.severity = "critical";
    rule.signal.kind = SignalKind::kCounterRatio;
    rule.signal.name = "model_monitor.qos_violations_observed";
    rule.signal.denominator = "sched.placements";
    rule.condition = ConditionKind::kBurnRate;
    rule.slo = 0.95;
    rule.burn_threshold = 1.0;
    rule.fast_window_ticks = 15.0;
    rule.slow_window_ticks = 60.0;
    rule.for_ticks = 2;
    rule.resolve_ticks = 3;
    AddRule(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "server_fps_deficit";
    rule.severity = "warning";
    rule.signal.kind = SignalKind::kServerMinFps;
    rule.condition = ConditionKind::kThreshold;
    rule.comparison = Comparison::kBelow;
    rule.threshold = qos_fps;
    rule.for_ticks = 3;
    rule.resolve_ticks = 3;
    AddRule(std::move(rule));
  }
  {
    // Classic PSI action threshold (matches ModelMonitorConfig's 0.2).
    AlertRule rule;
    rule.name = "psi_drift";
    rule.severity = "warning";
    rule.signal.kind = SignalKind::kMonitorPsi;
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 0.2;
    rule.for_ticks = 2;
    AddRule(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "cache_hit_collapse";
    rule.severity = "warning";
    rule.signal.kind = SignalKind::kCounterRatio;
    rule.signal.name = "gaugur.predictor.cache_misses";
    rule.signal.denominator =
        "gaugur.predictor.cache_hits+gaugur.predictor.cache_misses";
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 0.9;
    rule.window_ticks = 30.0;
    rule.for_ticks = 2;
    AddRule(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "sink_drops";
    rule.severity = "critical";
    rule.signal.kind = SignalKind::kCounter;
    rule.signal.name = "obs.sink.dropped";
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 0.0;
    rule.for_ticks = 1;
    AddRule(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "sink_write_errors";
    rule.severity = "critical";
    rule.signal.kind = SignalKind::kCounter;
    rule.signal.name = "obs.sink.write_errors";
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 0.0;
    rule.for_ticks = 1;
    AddRule(std::move(rule));
  }
  {
    AlertRule rule;
    rule.name = "pool_queue_backlog";
    rule.severity = "warning";
    rule.signal.kind = SignalKind::kGauge;
    rule.signal.name = "pool.queue_depth";
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 512.0;
    rule.for_ticks = 2;
    AddRule(std::move(rule));
  }
  {
    // Sharded fleet service: arrivals enqueued for shard workers but not
    // yet admitted. The gauge drains to zero within a run; a large level
    // sustained across tick barriers means shards have stalled (stuck
    // worker, pathological policy) while players wait for admission.
    AlertRule rule;
    rule.name = "fleet_shard_backlog";
    rule.severity = "warning";
    rule.signal.kind = SignalKind::kGauge;
    rule.signal.name = "sched.shard_backlog";
    rule.condition = ConditionKind::kThreshold;
    rule.threshold = 100000.0;
    rule.for_ticks = 3;
    rule.resolve_ticks = 2;
    AddRule(std::move(rule));
  }
}

bool HealthEngine::Armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !rules_.empty();
}

std::vector<AlertRule> HealthEngine::Rules() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertRule> rules;
  rules.reserve(rules_.size());
  for (const auto& state : rules_) rules.push_back(state->rule);
  return rules;
}

std::uint64_t HealthEngine::Subscribe(Subscriber fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = ++next_subscriber_id_;
  subscribers_.emplace_back(id, std::move(fn));
  return id;
}

void HealthEngine::Unsubscribe(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(subscribers_, [id](const auto& entry) {
    return entry.first == id;
  });
}

void HealthEngine::EmitLocked(RuleState& rs, Instance& inst,
                              const std::string& label, double tick,
                              AlertState from, AlertState to, double value) {
  inst.last_change_tick = tick;
  const bool entering_firing = to == AlertState::kFiring;
  if (entering_firing) {
    // Flap detection counts every firing entry, muted or not.
    inst.fire_ticks.push_back(tick);
    while (!inst.fire_ticks.empty() &&
           inst.fire_ticks.front() < tick - rs.rule.flap_window_ticks) {
      inst.fire_ticks.pop_front();
    }
    if (!inst.flap_suppressed &&
        inst.fire_ticks.size() > static_cast<std::size_t>(rs.rule.max_flaps)) {
      inst.flap_suppressed = true;
    }
  }
  if (inst.flap_suppressed) {
    ++inst.suppressed;
    ++flaps_suppressed_;
    Reg().GetCounter("obs.health.flaps_suppressed").Add();
    if (from == AlertState::kFiring && inst.fire_emitted) {
      // Defensive: cannot happen (suppression only engages at a firing
      // entry), but never leave the gauge unbalanced.
      inst.fire_emitted = false;
      --firing_;
      Reg().GetGauge("obs.health.firing").Sub();
    }
    return;
  }

  AlertTransition transition;
  transition.id = ++next_transition_id_;
  transition.tick = tick;
  transition.rule = rs.rule.name;
  transition.label = label;
  transition.severity = rs.rule.severity;
  transition.signal = rs.rule.signal.kind;
  transition.from = from;
  transition.to = to;
  transition.value = value;
  transition.threshold = rs.rule.condition == ConditionKind::kBurnRate
                             ? rs.rule.burn_threshold
                             : rs.rule.threshold;

  ++transitions_;
  Reg().GetCounter("obs.health.transitions").Add();
  if (entering_firing) {
    ++inst.fired;
    ++alerts_fired_;
    ++firing_;
    inst.fire_emitted = true;
    Reg().GetCounter("obs.health.alerts_fired").Add();
    Reg().GetGauge("obs.health.firing").Add();
  }
  if (from == AlertState::kFiring && !entering_firing && inst.fire_emitted) {
    inst.fire_emitted = false;
    --firing_;
    Reg().GetGauge("obs.health.firing").Sub();
  }
  if (to == AlertState::kResolved) {
    ++inst.resolved;
    ++alerts_resolved_;
    Reg().GetCounter("obs.health.alerts_resolved").Add();
  }

  JsonObject fields;
  fields["rule"] = transition.rule;
  fields["label"] = transition.label;
  fields["severity"] = transition.severity;
  fields["signal"] = SignalKindName(transition.signal);
  fields["from"] = AlertStateName(transition.from);
  fields["to"] = AlertStateName(transition.to);
  fields["value"] = transition.value;
  fields["threshold"] = transition.threshold;
  fields["transition"] = static_cast<unsigned long long>(transition.id);
  Log().Append(EventKind::kAlert, tick, /*decision_id=*/0, std::move(fields));

  for (const auto& [id, fn] : subscribers_) {
    if (fn) fn(transition);
  }
}

void HealthEngine::StepInstanceLocked(RuleState& rs, Instance& inst,
                                      const std::string& label, double tick,
                                      bool condition_true, double value) {
  inst.last_value = value;
  inst.last_eval_tick = tick;
  inst.values.Add(value);

  const AlertState from = inst.state;
  AlertState to = from;
  if (condition_true) {
    inst.false_streak = 0;
    ++inst.true_streak;
    switch (from) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        to = inst.true_streak >= rs.rule.for_ticks ? AlertState::kFiring
                                                   : AlertState::kPending;
        break;
      case AlertState::kPending:
        if (inst.true_streak >= rs.rule.for_ticks) to = AlertState::kFiring;
        break;
      case AlertState::kFiring:
        break;
    }
  } else {
    inst.true_streak = 0;
    ++inst.false_streak;
    switch (from) {
      case AlertState::kInactive:
        break;
      case AlertState::kPending:
        to = AlertState::kInactive;
        break;
      case AlertState::kFiring:
        if (inst.false_streak >= rs.rule.resolve_ticks) {
          to = AlertState::kResolved;
        }
        break;
      case AlertState::kResolved:
        // resolve_ticks more quiet evaluations and the episode closes.
        if (inst.false_streak >= 2 * rs.rule.resolve_ticks) {
          to = AlertState::kInactive;
        }
        break;
    }
  }

  if (to != from) {
    inst.state = to;
    if (to == AlertState::kFiring) inst.true_streak = 0;
    if (to == AlertState::kResolved) {
      // Keep counting quiet evals toward the resolved->inactive cooldown.
    } else if (to == AlertState::kInactive) {
      inst.false_streak = 0;
    }
    EmitLocked(rs, inst, label, tick, from, to, value);
  }

  // A settled instance with a drained flap window may speak again.
  if (inst.flap_suppressed && inst.state == AlertState::kInactive &&
      (inst.fire_ticks.empty() ||
       inst.fire_ticks.back() < tick - rs.rule.flap_window_ticks)) {
    inst.flap_suppressed = false;
    inst.fire_ticks.clear();
  }
}

void HealthEngine::EvaluateRuleLocked(RuleState& rs, double tick,
                                      const ModelMonitorSummary* monitor) {
  const AlertRule& rule = rs.rule;
  // Monitor-sourced rules only evaluate on monitor-refresh passes; in
  // between they are skipped outright (no evaluation, no false-step).
  const bool monitor_sourced =
      rule.signal.kind == SignalKind::kMonitorField ||
      rule.signal.kind == SignalKind::kMonitorPsi;
  if (monitor_sourced && monitor == nullptr) return;
  ++rs.evaluations;

  // 1. Sample the signal into (label, num, den) observations.
  struct Observation {
    std::string label;
    double num = 0.0;
    double den = 1.0;
  };
  std::vector<Observation> observations;
  switch (rule.signal.kind) {
    case SignalKind::kCounter:
      observations.push_back(
          {"", static_cast<double>(Reg().GetCounter(rule.signal.name).Value()),
           1.0});
      break;
    case SignalKind::kGauge:
      observations.push_back(
          {"", static_cast<double>(Reg().GetGauge(rule.signal.name).Value()),
           1.0});
      break;
    case SignalKind::kHistogramQuantile:
      observations.push_back(
          {"",
           Reg().GetHistogram(rule.signal.name).Snap().Percentile(
               rule.signal.quantile),
           1.0});
      break;
    case SignalKind::kCounterRatio: {
      double den = 0.0;
      std::string_view rest = rule.signal.denominator;
      while (!rest.empty()) {
        const std::size_t plus = rest.find('+');
        const std::string_view part = rest.substr(0, plus);
        if (!part.empty()) {
          den += static_cast<double>(
              Reg().GetCounter(std::string(part)).Value());
        }
        rest = plus == std::string_view::npos ? std::string_view{}
                                              : rest.substr(plus + 1);
      }
      observations.push_back(
          {"", static_cast<double>(Reg().GetCounter(rule.signal.name).Value()),
           den});
      break;
    }
    case SignalKind::kMonitorField: {
      double value = 0.0;
      if (MonitorFieldValue(*monitor, rule.signal.name, &value)) {
        observations.push_back({"", value, 1.0});
      }
      break;
    }
    case SignalKind::kMonitorPsi: {
      for (const PsiEntry& entry : monitor->cm_drift.features) {
        observations.push_back({"cm:" + entry.feature, entry.psi, 1.0});
      }
      for (const PsiEntry& entry : monitor->rm_drift.features) {
        observations.push_back({"rm:" + entry.feature, entry.psi, 1.0});
      }
      break;
    }
    case SignalKind::kServerMinFps: {
      FleetTimeSeries& series = config_.timeseries != nullptr
                                    ? *config_.timeseries
                                    : FleetTimeSeries::Global();
      for (const auto& [server, min_fps] : series.LatestMinFps()) {
        observations.push_back({std::to_string(server), min_fps, 1.0});
      }
      break;
    }
  }

  // 2. Feed each observation into its labeled instance and evaluate the
  //    condition over the instance's sliding ring.
  for (auto& [label, inst] : rs.instances) inst.seen = false;
  const double horizon = RingHorizon(rule);
  for (Observation& obs : observations) {
    Instance& inst = rs.instances[obs.label];
    inst.seen = true;
    inst.ring.push_back({tick, obs.num, obs.den});
    // Keep one sample at or beyond the horizon so "value at t - w" always
    // has a witness.
    while (inst.ring.size() >= 2 && inst.ring[1].tick <= tick - horizon) {
      inst.ring.pop_front();
    }

    bool condition_true = false;
    double value = 0.0;
    switch (rule.condition) {
      case ConditionKind::kThreshold:
        if (rule.signal.kind == SignalKind::kCounterRatio) {
          condition_true =
              WindowFraction(inst.ring, tick - rule.window_ticks, &value) &&
              Compare(rule.comparison, value, rule.threshold);
        } else {
          value = obs.num;
          condition_true = Compare(rule.comparison, value, rule.threshold);
        }
        break;
      case ConditionKind::kRateOfChange: {
        const Sample& from =
            SampleAtOrBefore(inst.ring, tick - rule.window_ticks);
        const double span = tick - from.tick;
        if (span > 0.0) {
          value = (obs.num - from.num) / span;
          condition_true = Compare(rule.comparison, value, rule.threshold);
        }
        break;
      }
      case ConditionKind::kBurnRate: {
        // burn_w = bad_fraction_w / error_budget; fires only when both
        // the fast and the slow window burn past the threshold.
        const double budget = std::max(1.0 - rule.slo, 1e-9);
        double frac_fast = 0.0, frac_slow = 0.0;
        const bool have_fast = WindowFraction(
            inst.ring, tick - rule.fast_window_ticks, &frac_fast);
        const bool have_slow = WindowFraction(
            inst.ring, tick - rule.slow_window_ticks, &frac_slow);
        value = have_fast ? frac_fast / budget : 0.0;
        condition_true = have_fast && have_slow &&
                         frac_fast / budget > rule.burn_threshold &&
                         frac_slow / budget > rule.burn_threshold;
        break;
      }
    }
    StepInstanceLocked(rs, inst, obs.label, tick, condition_true, value);
  }

  // 3. Labels that vanished from the sample set (a drained server, a
  //    reference swap) step with a false condition so they resolve
  //    instead of firing forever on stale data.
  for (auto& [label, inst] : rs.instances) {
    if (inst.seen || inst.state == AlertState::kInactive) continue;
    StepInstanceLocked(rs, inst, label, tick, /*condition_true=*/false,
                       inst.last_value);
  }
}

void HealthEngine::Evaluate(double tick) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (rules_.empty()) return;
  if (evaluated_once_ && config_.eval_min_gap_ticks > 0.0 &&
      tick - last_eval_tick_ < config_.eval_min_gap_ticks) {
    return;
  }
  evaluated_once_ = true;
  last_eval_tick_ = tick;
  ++evaluations_;
  Reg().GetCounter("obs.health.evaluations").Add();

  // One summary scan shared by every monitor-sourced rule, refreshed on
  // its own cadence (see HealthEngineConfig::monitor_refresh_ticks).
  bool want_monitor = false;
  for (const auto& state : rules_) {
    const SignalKind kind = state->rule.signal.kind;
    if (kind == SignalKind::kMonitorField || kind == SignalKind::kMonitorPsi) {
      want_monitor = true;
      break;
    }
  }
  ModelMonitorSummary monitor_summary;
  const ModelMonitorSummary* monitor = nullptr;
  if (want_monitor &&
      (!monitor_refreshed_once_ || config_.monitor_refresh_ticks <= 0.0 ||
       tick - monitor_last_refresh_tick_ >= config_.monitor_refresh_ticks)) {
    ModelMonitor& source = config_.monitor != nullptr ? *config_.monitor
                                                      : ModelMonitor::Global();
    monitor_summary = source.Summary();
    monitor = &monitor_summary;
    monitor_refreshed_once_ = true;
    monitor_last_refresh_tick_ = tick;
  }

  for (auto& state : rules_) EvaluateRuleLocked(*state, tick, monitor);
}

HealthSummary HealthEngine::Summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthSummary summary;
  summary.evaluations = evaluations_;
  summary.transitions = transitions_;
  summary.alerts_fired = alerts_fired_;
  summary.alerts_resolved = alerts_resolved_;
  summary.flaps_suppressed = flaps_suppressed_;
  summary.firing = static_cast<std::uint64_t>(std::max<std::int64_t>(
      firing_, 0));
  summary.rules.reserve(rules_.size());
  for (const auto& state : rules_) {
    AlertRuleStatus status;
    status.rule = state->rule;
    status.evaluations = state->evaluations;
    for (const auto& [label, inst] : state->instances) {
      AlertInstanceStatus instance;
      instance.label = label;
      instance.state = inst.state;
      instance.last_value = inst.last_value;
      instance.last_eval_tick = inst.last_eval_tick;
      instance.last_change_tick = inst.last_change_tick;
      instance.fired = inst.fired;
      instance.resolved = inst.resolved;
      instance.suppressed = inst.suppressed;
      instance.flap_suppressed = inst.flap_suppressed;
      instance.value_mean = inst.values.Mean();
      instance.value_max = inst.values.Count() > 0 ? inst.values.Max() : 0.0;
      status.instances.push_back(std::move(instance));
    }
    summary.rules.push_back(std::move(status));
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Offline alert-timeline analysis

std::vector<FiringWindow> ExtractFiringWindows(std::span<const Event> events) {
  std::vector<const Event*> alerts;
  for (const Event& event : events) {
    if (event.kind == EventKind::kAlert) alerts.push_back(&event);
  }
  std::sort(alerts.begin(), alerts.end(),
            [](const Event* a, const Event* b) { return a->seq < b->seq; });

  std::vector<FiringWindow> windows;
  std::map<std::pair<std::string, std::string>, std::size_t> open;
  double last_tick = 0.0;
  for (const Event* event : alerts) {
    last_tick = std::max(last_tick, event->tick);
    const JsonValue* rule = event->fields.count("rule")
                                ? &event->fields.at("rule")
                                : nullptr;
    const JsonValue* label = event->fields.count("label")
                                 ? &event->fields.at("label")
                                 : nullptr;
    const JsonValue* to = event->fields.count("to") ? &event->fields.at("to")
                                                    : nullptr;
    if (rule == nullptr || label == nullptr || to == nullptr ||
        !rule->IsString() || !label->IsString() || !to->IsString()) {
      continue;  // ack / free-form alert events carry no lifecycle edge
    }
    const auto key = std::make_pair(rule->AsString(), label->AsString());
    if (to->AsString() == "firing") {
      FiringWindow window;
      window.rule = key.first;
      window.label = key.second;
      window.fired_seq = event->seq;
      window.fired_tick = event->tick;
      if (auto it = event->fields.find("severity");
          it != event->fields.end() && it->second.IsString()) {
        window.severity = it->second.AsString();
      }
      if (auto it = event->fields.find("value");
          it != event->fields.end() && it->second.IsNumber()) {
        window.value = it->second.AsNumber();
      }
      if (auto it = event->fields.find("threshold");
          it != event->fields.end() && it->second.IsNumber()) {
        window.threshold = it->second.AsNumber();
      }
      if (auto it = event->fields.find("signal");
          it != event->fields.end() && it->second.IsString() &&
          it->second.AsString() == SignalKindName(SignalKind::kServerMinFps)) {
        char* end = nullptr;
        const long long server =
            std::strtoll(window.label.c_str(), &end, 10);
        if (end != window.label.c_str() && *end == '\0') {
          window.server = server;
        }
      }
      open[key] = windows.size();
      windows.push_back(std::move(window));
    } else if (to->AsString() == "resolved") {
      auto it = open.find(key);
      if (it != open.end()) {
        FiringWindow& window = windows[it->second];
        window.resolved = true;
        window.resolved_seq = event->seq;
        window.resolved_tick = event->tick;
        open.erase(it);
      }
    }
  }
  for (auto& [key, index] : open) {
    windows[index].resolved_tick = last_tick;  // still firing at log end
  }
  std::sort(windows.begin(), windows.end(),
            [](const FiringWindow& a, const FiringWindow& b) {
              return a.fired_seq < b.fired_seq;
            });
  return windows;
}

FiringWindowJoin JoinFiringWindow(const FiringWindow& window,
                                  std::span<const Event> events) {
  FiringWindowJoin join;
  for (const Event& event : events) {
    if (event.kind != EventKind::kQosViolation) continue;
    if (event.tick < window.fired_tick || event.tick > window.resolved_tick) {
      continue;
    }
    if (window.server >= 0) {
      auto it = event.fields.find("server");
      if (it == event.fields.end() || !it->second.IsNumber() ||
          static_cast<long long>(it->second.AsNumber()) != window.server) {
        continue;
      }
    }
    join.violation_seqs.push_back(event.seq);
    if (event.decision_id != 0) join.decision_ids.push_back(event.decision_id);
  }
  std::sort(join.violation_seqs.begin(), join.violation_seqs.end());
  std::sort(join.decision_ids.begin(), join.decision_ids.end());
  join.decision_ids.erase(
      std::unique(join.decision_ids.begin(), join.decision_ids.end()),
      join.decision_ids.end());
  return join;
}

}  // namespace gaugur::obs
