#include "obs/forensics.h"

#include <unordered_set>

#include "common/check.h"

namespace gaugur::obs {

namespace {

std::uint64_t FieldU64(const JsonObject& fields, const char* key) {
  auto it = fields.find(key);
  if (it == fields.end() || !it->second.IsNumber()) return 0;
  return static_cast<std::uint64_t>(it->second.AsNumber());
}

double FieldF64(const JsonObject& fields, const char* key) {
  auto it = fields.find(key);
  if (it == fields.end() || !it->second.IsNumber()) return 0.0;
  return it->second.AsNumber();
}

int FieldInt(const JsonObject& fields, const char* key, int fallback) {
  auto it = fields.find(key);
  if (it == fields.end() || !it->second.IsNumber()) return fallback;
  return static_cast<int>(it->second.AsNumber());
}

std::string FieldString(const JsonObject& fields, const char* key) {
  auto it = fields.find(key);
  if (it == fields.end() || !it->second.IsString()) return {};
  return it->second.AsString();
}

std::uint64_t OptU64(const JsonValue& doc, const char* key) {
  const JsonValue* value = doc.Find(key);
  GAUGUR_CHECK_MSG(value != nullptr && value->IsNumber(),
                   "forensics: expected a numeric field");
  return static_cast<std::uint64_t>(value->AsNumber());
}

double OptF64(const JsonValue& doc, const char* key) {
  const JsonValue* value = doc.Find(key);
  GAUGUR_CHECK_MSG(value != nullptr && value->IsNumber(),
                   "forensics: expected a numeric field");
  return value->AsNumber();
}

}  // namespace

JsonValue ViolationRecap::ToJson() const {
  JsonObject object;
  object["seq"] = static_cast<unsigned long long>(seq);
  object["decision_id"] = static_cast<unsigned long long>(decision_id);
  object["server"] = static_cast<unsigned long long>(server);
  object["tick"] = tick;
  object["victim_game"] = static_cast<long long>(victim_game);
  object["realized_fps"] = realized_fps;
  object["qos_fps"] = qos_fps;
  object["dominant_resource"] = dominant_resource;
  object["offender_game"] = static_cast<long long>(offender_game);
  return JsonValue(std::move(object));
}

ViolationRecap ViolationRecap::FromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "violation recap must be an object");
  ViolationRecap recap;
  recap.seq = OptU64(value, "seq");
  recap.decision_id = OptU64(value, "decision_id");
  recap.server = OptU64(value, "server");
  recap.tick = OptF64(value, "tick");
  recap.victim_game = static_cast<int>(OptF64(value, "victim_game"));
  recap.realized_fps = OptF64(value, "realized_fps");
  recap.qos_fps = OptF64(value, "qos_fps");
  const JsonValue* resource = value.Find("dominant_resource");
  GAUGUR_CHECK_MSG(resource != nullptr && resource->IsString(),
                   "violation recap missing 'dominant_resource'");
  recap.dominant_resource = resource->AsString();
  recap.offender_game = static_cast<int>(OptF64(value, "offender_game"));
  return recap;
}

JsonValue ForensicsSummary::ToJson() const {
  JsonObject doc;
  doc["events"] = static_cast<unsigned long long>(events);
  doc["events_dropped"] = static_cast<unsigned long long>(events_dropped);
  JsonObject by_kind;
  for (const auto& [kind, count] : events_by_kind) {
    by_kind[kind] = static_cast<unsigned long long>(count);
  }
  doc["events_by_kind"] = JsonValue(std::move(by_kind));
  doc["decisions"] = static_cast<unsigned long long>(decisions);
  doc["violations"] = static_cast<unsigned long long>(violations);
  doc["violations_linked"] =
      static_cast<unsigned long long>(violations_linked);
  JsonArray recaps;
  for (const ViolationRecap& recap : recent_violations) {
    recaps.push_back(recap.ToJson());
  }
  doc["recent_violations"] = JsonValue(std::move(recaps));
  JsonObject timeseries;
  timeseries["servers"] = static_cast<unsigned long long>(ts_servers);
  timeseries["samples_seen"] =
      static_cast<unsigned long long>(ts_samples_seen);
  timeseries["samples_kept"] =
      static_cast<unsigned long long>(ts_samples_kept);
  doc["timeseries"] = JsonValue(std::move(timeseries));
  return JsonValue(std::move(doc));
}

ForensicsSummary ForensicsSummary::FromJson(const JsonValue& doc) {
  GAUGUR_CHECK_MSG(doc.IsObject(), "forensics section must be an object");
  ForensicsSummary summary;
  summary.events = OptU64(doc, "events");
  summary.events_dropped = OptU64(doc, "events_dropped");
  const JsonValue* by_kind = doc.Find("events_by_kind");
  GAUGUR_CHECK_MSG(by_kind != nullptr && by_kind->IsObject(),
                   "forensics missing 'events_by_kind' object");
  for (const auto& [kind, count] : by_kind->AsObject()) {
    GAUGUR_CHECK_MSG(count.IsNumber(), "event-kind counts must be numbers");
    summary.events_by_kind[kind] =
        static_cast<std::uint64_t>(count.AsNumber());
  }
  summary.decisions = OptU64(doc, "decisions");
  summary.violations = OptU64(doc, "violations");
  summary.violations_linked = OptU64(doc, "violations_linked");
  const JsonValue* recaps = doc.Find("recent_violations");
  GAUGUR_CHECK_MSG(recaps != nullptr && recaps->IsArray(),
                   "forensics missing 'recent_violations' array");
  for (const JsonValue& recap : recaps->AsArray()) {
    summary.recent_violations.push_back(ViolationRecap::FromJson(recap));
  }
  const JsonValue* timeseries = doc.Find("timeseries");
  GAUGUR_CHECK_MSG(timeseries != nullptr && timeseries->IsObject(),
                   "forensics missing 'timeseries' object");
  summary.ts_servers = OptU64(*timeseries, "servers");
  summary.ts_samples_seen = OptU64(*timeseries, "samples_seen");
  summary.ts_samples_kept = OptU64(*timeseries, "samples_kept");
  return summary;
}

ForensicsSummary BuildForensics(std::span<const Event> events,
                                std::uint64_t dropped,
                                const FleetTimeSeries::Summary& timeseries,
                                std::size_t max_recaps) {
  ForensicsSummary summary;
  summary.events = events.size();
  summary.events_dropped = dropped;
  summary.ts_servers = timeseries.servers;
  summary.ts_samples_seen = timeseries.samples_seen;
  summary.ts_samples_kept = timeseries.samples_kept;

  std::unordered_set<std::uint64_t> decision_ids;
  for (const Event& event : events) {
    ++summary.events_by_kind[EventKindName(event.kind)];
    if (event.kind == EventKind::kDecision) {
      ++summary.decisions;
      decision_ids.insert(event.decision_id);
    }
  }
  for (const Event& event : events) {
    if (event.kind != EventKind::kQosViolation) continue;
    ++summary.violations;
    if (event.decision_id != 0 && decision_ids.count(event.decision_id)) {
      ++summary.violations_linked;
    }
    ViolationRecap recap;
    recap.seq = event.seq;
    recap.decision_id = event.decision_id;
    recap.server = FieldU64(event.fields, "server");
    recap.tick = event.tick;
    recap.victim_game = FieldInt(event.fields, "victim_game", -1);
    recap.realized_fps = FieldF64(event.fields, "realized_fps");
    recap.qos_fps = FieldF64(event.fields, "qos_fps");
    recap.dominant_resource = FieldString(event.fields, "dominant_resource");
    recap.offender_game = FieldInt(event.fields, "offender_game", -1);
    summary.recent_violations.push_back(std::move(recap));
    if (summary.recent_violations.size() > max_recaps) {
      summary.recent_violations.erase(summary.recent_violations.begin());
    }
  }
  return summary;
}

}  // namespace gaugur::obs
