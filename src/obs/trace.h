// Scoped wall-clock tracing with Chrome trace_event output.
//
// ScopedSpan is an RAII timer: construction stamps a start time, the
// destructor appends one complete ("ph":"X") event to a per-thread buffer
// owned by the global Tracer. Nesting falls out naturally — an inner
// span's [ts, ts+dur] interval lies inside its parent's, which is exactly
// how chrome://tracing / Perfetto reconstruct flame graphs; we also record
// the explicit nesting depth for tests and text tooling.
//
// Tracing is OFF by default (buffers would otherwise grow for the whole
// run) and is gated twice: the global obs::Enabled() switch AND
// Tracer::SetTracing(true). An inactive ScopedSpan costs two relaxed
// loads and no clock reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace gaugur::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;   // small sequential thread id
  int depth = 0;           // nesting depth at the time the span opened
  double ts_us = 0.0;      // start, microseconds since tracer epoch
  double dur_us = 0.0;     // wall-clock duration, microseconds
};

class Tracer {
 public:
  static Tracer& Global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch for span collection (independent of obs::Enabled(),
  /// which gates all observability).
  void SetTracing(bool on);
  bool TracingOn() const;

  /// Microseconds since the tracer's epoch (process-lifetime steady clock).
  double NowUs() const;

  /// Appends one finished event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Copies out all recorded events (across threads), ordered by start
  /// time.
  std::vector<TraceEvent> Events() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// Chrome trace_event JSON document:
  /// {"traceEvents":[{"name","cat","ph":"X","pid","tid","ts","dur","args"}]}
  JsonValue ToChromeJson() const;

  /// Serializes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Emergency flush: writes the Chrome trace to GAUGUR_TRACE_EXIT_PATH
  /// (default "gaugur_trace_exit.json") iff tracing is still on and any
  /// events were recorded. Installed automatically as an atexit and
  /// std::terminate hook on the first SetTracing(true), so a run that
  /// crashes mid-flight (uncaught exception, GAUGUR_CHECK failure) still
  /// leaves a loadable trace behind. Returns true when a file was
  /// written.
  bool FlushExitTrace() const;

 private:
  Tracer();
  struct Impl;
  Impl* impl_;  // intentionally leaked singleton state (thread-exit safe)
};

/// RAII span against the global tracer. Active only while both the obs
/// switch and tracing are on at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  /// Current nesting depth of active spans on this thread.
  static int CurrentDepth();

 private:
  bool active_;
  int depth_ = 0;
  double start_us_ = 0.0;
  std::string name_;
};

/// RAII scope that turns tracing on/off and restores the prior state.
class TracingScope {
 public:
  explicit TracingScope(bool on)
      : previous_(Tracer::Global().TracingOn()) {
    Tracer::Global().SetTracing(on);
  }
  ~TracingScope() { Tracer::Global().SetTracing(previous_); }
  TracingScope(const TracingScope&) = delete;
  TracingScope& operator=(const TracingScope&) = delete;

 private:
  bool previous_;
};

}  // namespace gaugur::obs
